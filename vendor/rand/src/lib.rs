//! Vendored stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this crate
//! implements the small slice of the rand 0.9 API the workspace actually
//! uses: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] methods `random_range` / `random_bool` / `random`.
//!
//! The generator is xoshiro256++ (the same family upstream `SmallRng` uses
//! on 64-bit targets), seeded through SplitMix64, so sequences are
//! deterministic for a given seed — which is all the harness relies on.

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of 64-bit randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding support mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every RngCore.
pub trait Rng: RngCore {
    /// Sample uniformly from a (half-open or inclusive) integer range.
    ///
    /// Panics on an empty range, like upstream rand.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // 53 random bits -> uniform f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Sample a value of a [`Standard`]-distributed type.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable by [`Rng::random`].
pub trait Standard: Sized {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`Rng::random_range`] accepts.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(
                    self.start < self.end,
                    "cannot sample empty range {:?}..{:?}", self.start, self.end
                );
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(
                    start <= end,
                    "cannot sample empty range {start:?}..={end:?}"
                );
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic PRNG — xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            SmallRng {
                s: [
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0..1000usize), b.random_range(0..1000usize));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(-4i64..5);
            assert!((-4..5).contains(&v));
            let w = rng.random_range(24..=64i32);
            assert!((24..=64).contains(&w));
        }
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }
}
