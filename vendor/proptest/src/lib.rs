//! Vendored stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this crate
//! implements the subset of the proptest API the workspace's property
//! suites use: the [`Strategy`](strategy::Strategy) trait with `prop_map`
//! / `prop_flat_map` / `prop_recursive` / `boxed`, tuple and `Vec`
//! strategies, integer-range strategies,
//! `prop::collection::{vec, btree_map}`, `prop::bool::ANY`,
//! [`Just`](strategy::Just), `prop_oneof!`, the `proptest!` macro with an
//! optional
//! `#![proptest_config(..)]` block, and `prop_assert!`-style macros.
//!
//! Differences from upstream, by design:
//! * **No shrinking.** A failing case reports its seed and message and
//!   panics immediately.
//! * Generation is driven by a deterministic per-test RNG, so failures are
//!   reproducible run-to-run; the `PROPTEST_CASES` environment variable
//!   caps case counts exactly like upstream.

pub mod strategy;
pub mod test_runner;

pub mod prop {
    pub mod collection {
        pub use crate::strategy::{btree_map, vec, SizeRange};
    }

    pub mod bool {
        pub use crate::strategy::bool_any::{Any, ANY};
    }

    pub mod num {
        //! Integer-range strategies are implemented directly on
        //! `Range`/`RangeInclusive`; nothing extra is needed here.
    }
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

pub use test_runner::{Config as ProptestConfig, TestCaseError};

/// The `proptest!` macro: runs each `#[test]` body against `cases`
/// randomly generated inputs.
///
/// Bodies behave like upstream: they may use `?` and `return Err(..)` with
/// [`TestCaseError`], and `prop_assert!` family macros short-circuit with a
/// failure instead of panicking mid-case.
#[macro_export]
macro_rules! proptest {
    // Internal expansion arm — must precede the catch-all arm below, or the
    // recursive call would loop forever.
    (@impl ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                $crate::test_runner::run_cases(
                    &config,
                    concat!(module_path!(), "::", stringify!($name)),
                    |__proptest_rng| {
                        let ($($arg,)*) = (
                            $($crate::strategy::Strategy::sample(&($strat), __proptest_rng),)*
                        );
                        let __proptest_out: ::std::result::Result<(), $crate::TestCaseError> =
                            (|| { $body ::std::result::Result::Ok(()) })();
                        __proptest_out
                    },
                );
            }
        )*
    };
    // With a leading `#![proptest_config(expr)]` block.
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    // Without a config block: use the (env-aware) default.
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Weighted/unweighted choice between strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            left, right, format!($($fmt)*)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
}
