//! Value-generation strategies: the combinator core of the stub.

use std::collections::BTreeMap;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating values of `Self::Value`.
///
/// Combinator methods carry `where Self: Sized` so the trait stays
/// object-safe and `BoxedStrategy` can hold a `dyn Strategy`.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Bounded recursive generation. `desired_size` and
    /// `expected_branch_size` are accepted for API compatibility but only
    /// `depth` bounds the recursion here: each level chooses between the
    /// leaf strategy and one more recursive wrapping.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(current).boxed();
            current = Union::new_weighted(vec![(1, leaf.clone()), (3, deeper)]).boxed();
        }
        current
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.sample(rng))
    }
}

pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.sample(rng)).sample(rng)
    }
}

/// Weighted choice between same-typed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        Self::new_weighted(arms.into_iter().map(|s| (1, s)).collect())
    }

    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total_weight = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "prop_oneof! weights sum to zero");
        Union { arms, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.random_range(0..self.total_weight);
        for (weight, strat) in &self.arms {
            let weight = u64::from(*weight);
            if pick < weight {
                return strat.sample(rng);
            }
            pick -= weight;
        }
        unreachable!("weighted pick exceeded total weight")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// `Vec<S>` runs every element strategy in order — the shape
/// `prop_flat_map` closures often return.
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.sample(rng)).collect()
    }
}

/// Collection-size specification: exact, half-open, or inclusive.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        rng.random_range(self.lo..=self.hi_inclusive)
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    BTreeMapStrategy {
        key,
        value,
        size: size.into(),
    }
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.sample(rng);
        let mut map = BTreeMap::new();
        // Keys can collide (the key domain may be smaller than the target
        // size), so bound the attempts and accept a smaller map.
        for _ in 0..(target * 10 + 10) {
            if map.len() >= target {
                break;
            }
            map.insert(self.key.sample(rng), self.value.sample(rng));
        }
        map
    }
}

pub mod bool_any {
    use super::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// `prop::bool::ANY` — a uniform boolean.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.random_range(0..2u32) == 1
        }
    }
}
