//! Case execution: deterministic RNG, config, and the run loop.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// The RNG handed to strategies. Deterministic per `(test name, attempt)`,
/// so failures reproduce run-to-run without persistence files.
pub struct TestRng(SmallRng);

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng(SmallRng::seed_from_u64(seed))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Mirror of `proptest::test_runner::Config` for the fields the workspace
/// uses. Construct with struct-update syntax
/// (`Config { cases: 40, ..Config::default() }`) or [`Config::with_cases`].
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Upper bound on rejected (discarded) cases across the whole run.
    pub max_global_rejects: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

impl Config {
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases,
            ..Config::default()
        }
    }
}

/// Why a single case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case failed; the whole test fails.
    Fail(String),
    /// The case was discarded (e.g. input too large); another is drawn.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "test case failed: {r}"),
            TestCaseError::Reject(r) => write!(f, "test case rejected: {r}"),
        }
    }
}

/// `PROPTEST_CASES` caps the case count of every suite, including ones
/// with an explicit `#![proptest_config]`, so CI can globally bound
/// property-test time (upstream only lets the env var replace the
/// *default*; a hard cap is more useful as a CI knob).
fn env_case_cap() -> Option<u32> {
    let raw = std::env::var("PROPTEST_CASES").ok()?;
    match raw.parse() {
        // A zero cap would make every property pass vacuously; reject it
        // loudly, like upstream rejects invalid config settings.
        Ok(0) | Err(_) => panic!("invalid PROPTEST_CASES value {raw:?}: need a positive integer"),
        Ok(n) => Some(n),
    }
}

fn seed_for(name: &str, attempt: u64) -> u64 {
    // FNV-1a over the test name, mixed with the attempt index.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash ^ attempt.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// Drive `body` until `cases` successes, panicking on the first failure.
pub fn run_cases<F>(config: &Config, name: &str, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let cases = match env_case_cap() {
        Some(cap) => config.cases.min(cap),
        None => config.cases,
    };
    let mut successes = 0u32;
    let mut rejects = 0u32;
    let mut attempt = 0u64;
    while successes < cases {
        let seed = seed_for(name, attempt);
        attempt += 1;
        let mut rng = TestRng::from_seed(seed);
        match body(&mut rng) {
            Ok(()) => successes += 1,
            Err(TestCaseError::Reject(_)) => {
                rejects += 1;
                assert!(
                    rejects <= config.max_global_rejects,
                    "{name}: too many rejected cases ({rejects}) — strategies discard too often"
                );
            }
            Err(TestCaseError::Fail(reason)) => {
                panic!(
                    "{name}: property failed after {successes} passing case(s) \
                     (deterministic seed {seed:#018x}):\n{reason}"
                );
            }
        }
    }
}
