//! Vendored stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so this crate
//! implements the benchmark-definition API the workspace uses
//! (`criterion_group!` / `criterion_main!`, `Criterion::bench_function`,
//! benchmark groups, `Bencher::iter` / `iter_batched`) with a simple
//! wall-clock measurement loop instead of criterion's statistical engine.
//! It reports mean ns/iter to stdout and honours `--test` (run each
//! benchmark body once, as `cargo test --benches` does).

use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            budget: if self.test_mode {
                Duration::ZERO
            } else {
                self.measurement_time
            },
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let per_iter = if bencher.iters == 0 {
            0.0
        } else {
            bencher.elapsed.as_nanos() as f64 / bencher.iters as f64
        };
        println!(
            "bench: {name:<40} {per_iter:>14.1} ns/iter ({} iters)",
            bencher.iters
        );
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup { criterion: self }
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.criterion.bench_function(name, f);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    budget: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Always run at least once so `--test` still exercises the body.
        let start = Instant::now();
        loop {
            black_box(routine());
            self.iters += 1;
            self.elapsed = start.elapsed();
            if self.elapsed >= self.budget {
                break;
            }
        }
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        loop {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iters += 1;
            if self.elapsed >= self.budget {
                break;
            }
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
