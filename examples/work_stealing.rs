//! The Cederman–Tsigas work-stealing deque study (paper Sec. 3.2.1):
//! the two fenceless bugs (`dlb-mp`: a steal reads a stale task;
//! `dlb-lb`: a steal reads a task pushed after the pop that emptied the
//! deque), plus the TeraScale 2 compiler making the test itself
//! meaningless.
//!
//! ```sh
//! cargo run --release --example work_stealing
//! ```

use weakgpu::litmus::corpus;
use weakgpu::optcheck::{amd_compile, AmdTarget};
use weakgpu::sim::chip::Chip;
use weakgpu::Session;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let session = Session::new()
        .iterations(100_000)
        .incantations(weakgpu::sim::chip::Incantations::best_inter_cta());

    println!("deque bug 1 — dlb-mp (steal sees incremented tail, stale task):\n");
    for fenced in [false, true] {
        let test = corpus::dlb_mp(fenced);
        print!("{:<22}", test.name());
        for chip in [Chip::TeslaC2075, Chip::Gtx660, Chip::GtxTitan, Chip::Gtx750] {
            let r = session.clone().chip(chip).run(&test)?;
            print!("  {}:{:>5}", chip.short(), r.obs_per_100k());
        }
        println!();
    }

    println!("\ndeque bug 2 — dlb-lb (steal reads a later push; a task is lost):\n");
    for fenced in [false, true] {
        let test = corpus::dlb_lb(fenced);
        print!("{:<22}", test.name());
        for chip in [Chip::TeslaC2075, Chip::GtxTitan, Chip::RadeonHd7970] {
            let r = session.clone().chip(chip).run(&test)?;
            print!("  {}:{:>6}", chip.short(), r.obs_per_100k());
        }
        println!();
    }

    // On the HD6570 the OpenCL compiler reorders the steal's load and CAS:
    // the binary no longer measures dlb-lb at all (the paper's "n/a").
    let (compiled, report) = amd_compile(&corpus::dlb_lb(false), AmdTarget::TeraScale2);
    println!(
        "\nHD6570: compiler reordered {} load/CAS pair(s); test meaningful: {}",
        report.load_cas_reordered,
        report.test_is_meaningful()
    );
    println!(
        "  (the compiled T1 begins with {:?})",
        compiled.threads()[1][0]
    );

    // The model agrees with the fix: fenced variants are forbidden.
    let model = weakgpu::models::ptx_model();
    for fenced in [false, true] {
        let t = corpus::dlb_lb(fenced);
        let v = session.model_check(&t, &model)?;
        println!(
            "model verdict for {:<22} {}",
            t.name(),
            if v.condition_witnessed {
                "ALLOWED"
            } else {
                "FORBIDDEN"
            }
        );
    }
    Ok(())
}
