//! The spin-lock study of the paper's Secs. 1 and 3.2 as a *running
//! program*, not just a distilled litmus test: a CUDA-by-Example-style
//! lock protects a shared counter; without fences the increments get lost
//! on weak chips (the wrong dot product of Sec. 3.2.2), with the erratum's
//! fences they never do.
//!
//! ```sh
//! cargo run --release --example spinlock
//! ```

use weakgpu::harness::runner::{run_test, RunConfig};
use weakgpu::litmus::{build::*, Instr, LitmusTest, Predicate, ThreadScope};
use weakgpu::sim::chip::{Chip, Incantations};

/// Builds an `n`-thread kernel where every thread acquires a global spin
/// lock, increments a shared counter with plain loads/stores, and
/// releases. The final condition checks the counter holds `n`.
fn lock_kernel(n: usize, fenced: bool) -> LitmusTest {
    let mut builder = LitmusTest::builder(if fenced {
        "lock-counter+fences"
    } else {
        "lock-counter"
    })
    .global("m", 0) // mutex, 0 = free
    .global("c", 0); // the protected counter
    for _ in 0..n {
        let mut code: Vec<Instr> = vec![
            label("SPIN"),
            cas("r0", "m", 0, 1), // while (atomicCAS(m,0,1) != 0);
            setp_ne("p", reg("r0"), imm(0)),
            bra("SPIN").guarded("p", true),
        ];
        if fenced {
            code.push(membar_gl()); // __threadfence() after acquire (+)
        }
        code.extend([
            ld("r1", "c"), // critical section: c = c + 1
            add("r1", reg("r1"), imm(1)),
            st_reg("c", "r1"),
        ]);
        if fenced {
            code.push(membar_gl()); // __threadfence() before release (+)
        }
        code.push(exch("r2", "m", 0)); // atomicExch(m, 0)
        builder = builder.thread(code);
    }
    builder
        .scope(ThreadScope::InterCta)
        .exists(Predicate::mem_eq("c", n as i64))
        .build()
        .expect("kernel is a valid litmus program")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const THREADS: usize = 4;
    const RUNS: usize = 20_000;
    println!(
        "{} threads, each: lock; c++; unlock — final c must be {THREADS}\n",
        THREADS
    );
    println!(
        "{:<14} {:>18} {:>18}",
        "chip", "lost-update runs", "with (+) fences"
    );
    for chip in [
        Chip::Gtx280,
        Chip::TeslaC2075,
        Chip::GtxTitan,
        Chip::RadeonHd6570,
        Chip::RadeonHd7970,
    ] {
        let cfg = RunConfig {
            iterations: RUNS,
            incantations: Incantations::best_inter_cta(),
            seed: 0x10c4,
            parallelism: None,
        };
        let buggy = run_test(&lock_kernel(THREADS, false), chip, &cfg)?;
        let fixed = run_test(&lock_kernel(THREADS, true), chip, &cfg)?;
        // `witnesses` counts runs where c == THREADS; losses are the rest.
        let lost = RUNS as u64 - buggy.witnesses;
        let lost_fixed = RUNS as u64 - fixed.witnesses;
        println!(
            "{:<14} {:>14}/{RUNS} {:>14}/{RUNS}",
            chip.short(),
            lost,
            lost_fixed
        );
        assert_eq!(lost_fixed, 0, "the erratum's fences must fix the lock");
    }
    println!(
        "\nNvidia's erratum (after this paper): the lock \"did not consider\n\
         [weak behaviours] and requires the addition of __threadfence()\n\
         instructions … to ensure stale values are not read\""
    );
    Ok(())
}
