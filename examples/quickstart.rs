//! Quickstart: write a litmus test, run it on simulated GPUs, and check it
//! against the paper's PTX memory model.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use weakgpu::litmus::{build::*, LitmusTest, Predicate, ScopeTree};
use weakgpu::models::{ptx_model, sc_model};
use weakgpu::sim::chip::Chip;
use weakgpu::Session;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build the message-passing test of the paper's Fig. 14: T0
    //    publishes data `x` then sets flag `y` behind a cta-scope fence;
    //    T1 reads the flag then the data behind a gl-scope fence.
    let mp = LitmusTest::builder("mp+membar.cta+membar.gl")
        .doc("the mp execution drawn in the paper's Fig. 14")
        .global("x", 0)
        .global("y", 0)
        .thread([st("x", 1), membar_cta(), st("y", 1)])
        .thread([ld("r0", "y"), membar_gl(), ld("r2", "x")])
        .scope_tree(ScopeTree::intra_cta(2))
        .exists(Predicate::reg_eq(1, "r0", 1).and(Predicate::reg_eq(1, "r2", 0)))
        .build()?;

    // The textual litmus format (parseable with litmus::parser::parse).
    println!("{mp}\n");

    // 2. Ask the axiomatic models about it. Intra-CTA, with a cta fence on
    //    the write side and a gl fence on the read side, the cycle closes
    //    in rmo-cta: the PTX model forbids the weak outcome.
    let session = Session::new().iterations(100_000);
    for model in [ptx_model(), sc_model()] {
        let verdict = session.model_check(&mp, &model)?;
        println!(
            "{:<16} {} candidate executions, {} allowed — weak outcome {}",
            weakgpu::axiom::Model::name(&model),
            verdict.num_candidates,
            verdict.num_allowed,
            if verdict.condition_witnessed {
                "ALLOWED"
            } else {
                "FORBIDDEN"
            }
        );
    }

    // 3. Run it on simulated chips: nothing should show up.
    println!();
    for chip in [Chip::GtxTitan, Chip::TeslaC2075, Chip::RadeonHd7970] {
        let report = session.clone().chip(chip).run(&mp)?;
        println!(
            "{:<16} obs {:>6}/100k    ({} distinct outcomes)",
            chip.short(),
            report.obs_per_100k(),
            report.histogram.distinct()
        );
    }

    // 4. Now drop the fences: the weak outcome appears on weak chips, and
    //    the PTX model (which must stay sound) allows it.
    let unfenced = weakgpu::litmus::corpus::mp(weakgpu::litmus::ThreadScope::IntraCta, None);
    println!("\nwithout fences:");
    for chip in [Chip::GtxTitan, Chip::Gtx280] {
        let report = session.clone().chip(chip).run(&unfenced)?;
        let soundness = session.clone().chip(chip).check_soundness(&unfenced)?;
        println!(
            "{:<16} obs {:>6}/100k    model-sound: {}",
            chip.short(),
            report.obs_per_100k(),
            soundness.is_sound()
        );
    }
    Ok(())
}
