//! diy-style test generation and model validation in miniature (paper
//! Secs. 4.1 and 5.4): enumerate relaxation cycles, synthesise litmus
//! tests, classify them under the PTX model vs SC, run a sample on the
//! simulator and verify soundness.
//!
//! ```sh
//! cargo run --release --example generate_and_verify
//! ```

use weakgpu::axiom::enumerate::model_outcomes;
use weakgpu::diy::{generate, GenConfig};
use weakgpu::models::{ptx_model, sc_model};
use weakgpu::sim::chip::Chip;
use weakgpu::Session;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = GenConfig::small();
    let tests = generate(&cfg);
    println!(
        "generated {} tests from {} cycles\n",
        tests.len(),
        cfg.cycles().len()
    );

    // Classify under the models.
    let ptx = ptx_model();
    let sc = sc_model();
    let mut ptx_allows = 0;
    let mut sc_allows = 0;
    for test in &tests {
        let enum_cfg = Default::default();
        if model_outcomes(test, &ptx, &enum_cfg)?.condition_witnessed {
            ptx_allows += 1;
        }
        if model_outcomes(test, &sc, &enum_cfg)?.condition_witnessed {
            sc_allows += 1;
        }
    }
    println!(
        "PTX model allows the cycle outcome in {ptx_allows}/{} tests",
        tests.len()
    );
    println!(
        "SC allows it in {sc_allows}/{} (cycles are non-SC by construction)\n",
        tests.len()
    );
    assert_eq!(sc_allows, 0);

    // Run a sample on the Titan profile and verify soundness: every
    // observation must be PTX-allowed (the paper's Sec. 5.4 validation).
    let session = Session::new().chip(Chip::GtxTitan).iterations(3_000);
    let mut weak_observed = 0;
    for test in tests.iter().take(40) {
        let report = session.run(test)?;
        let soundness = session.check_soundness(test)?;
        assert!(
            soundness.is_sound(),
            "{}: forbidden observation {:?}",
            test.name(),
            soundness.violations
        );
        if report.witnesses > 0 {
            weak_observed += 1;
        }
    }
    println!("ran 40 tests on GTX Titan: all sound; {weak_observed} exhibited their weak outcome");

    // Show one generated test in full: the mp shape (write pair vs read
    // pair joined by Rfe/Fre), whatever rotation named it.
    let show = tests
        .iter()
        .find(|t| {
            let n = t.name();
            n.contains("PodWW") && n.contains("PodRR") && n.contains("Rfe") && n.contains("Fre")
        })
        .expect("the mp cycle is generated");
    println!("\nexample generated test:\n\n{show}");
    Ok(())
}
