//! The optcheck pipeline (paper Secs. 4.4–4.5): compile litmus tests to
//! SASS-like code with the xor specification embedded, detect the
//! documented vendor miscompilations, and show which manufactured
//! dependency scheme survives `-O3`.
//!
//! ```sh
//! cargo run --release --example optcheck_demo
//! ```

use weakgpu::litmus::{build::*, corpus};
use weakgpu::optcheck::checker::check_thread;
use weakgpu::optcheck::deps::{dependency_survives, load_load_dep, DepScheme};
use weakgpu::optcheck::lower::{compile_thread, CompilerBug, CompilerConfig};

fn main() {
    // 1. Disassemble a clean compilation of coRR's reading thread.
    let corr = corpus::corr();
    let sass = compile_thread(&corr.threads()[1], &CompilerConfig::o3());
    println!("coRR T1 at -O3 (with embedded specification):");
    for instr in &sass {
        println!("  {instr}");
    }
    let report = check_thread(&sass);
    println!("optcheck: consistent = {}\n", report.consistent);

    // 2. A buggy compiler reorders volatile loads to the same address
    //    (CUDA 5.5 on Maxwell). optcheck flags it.
    let volatile_pair = vec![ld_volatile("r1", "x"), ld_volatile("r2", "x")];
    let buggy = compile_thread(
        &volatile_pair,
        &CompilerConfig::o3().with_bug(CompilerBug::ReorderVolatileLoads),
    );
    println!("volatile load pair under the CUDA 5.5 bug:");
    for instr in &buggy {
        println!("  {instr}");
    }
    let report = check_thread(&buggy);
    println!("optcheck: consistent = {}", report.consistent);
    for issue in &report.issues {
        println!("  issue: {issue}");
    }

    // 3. Fig. 13: the xor dependency scheme dies at -O3, the and-high-bit
    //    scheme survives.
    println!("\nmanufactured load-load address dependencies (Fig. 13):");
    for (name, scheme) in [
        ("xor (13a)", DepScheme::Xor),
        ("and-high-bit (13b)", DepScheme::AndHighBit),
    ] {
        let thread = load_load_dep(scheme);
        println!(
            "  {name:<20} -O0: {:<7} -O3: {}",
            if dependency_survives(&thread, &CompilerConfig::o0()) {
                "kept"
            } else {
                "erased"
            },
            if dependency_survives(&thread, &CompilerConfig::o3()) {
                "kept"
            } else {
                "erased"
            },
        );
    }
}
