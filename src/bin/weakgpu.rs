//! `weakgpu` — a command-line front end in the spirit of the paper's
//! `litmus` (run tests against "hardware") and `herd` (simulate a model)
//! tools.
//!
//! ```text
//! weakgpu run <file.litmus> [--chip SHORT] [--iterations N] [--seed N] [--parallelism N]
//! weakgpu campaign [NAME|FILE ...] [--chips SHORT,..] [--iterations N] [--seed N] [--parallelism N]
//! weakgpu sweep [--family small|paper] [--shard K/N] [--out FILE.json] [--chips ..] [..]
//! weakgpu sweep --merge a.json b.json ... [--out FILE.json]
//! weakgpu serve [--cache-file FILE.wgc] [--cache-readonly] [--model NAME] [--pruned]
//! weakgpu check <file.litmus> [--model ptx|sc|tso|rmo|operational]
//! weakgpu check <file ...> [--builtin]
//! weakgpu show <file.litmus> [--dot]
//! weakgpu corpus [NAME]
//! ```
//!
//! Parse errors are reported as caret diagnostics with the offending
//! source line, via the shared [`weakgpu::front`] infrastructure.

use std::io::Write as _;
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use weakgpu::axiom::cat::CatProgram;
use weakgpu::axiom::enumerate::{enumerate_executions, model_outcomes, EnumConfig};
use weakgpu::axiom::render;
use weakgpu::axiom::{Model, Plan};
use weakgpu::diy::{generate, GenConfig};
use weakgpu::front::{has_errors, render_all, Diagnostic, SourceFile};
use weakgpu::harness::campaign::{run_campaign_with, CampaignConfig, CellSpec};
use weakgpu::harness::report::ObsTable;
use weakgpu::harness::runner::{run_test, RunConfig};
use weakgpu::harness::sweep::{run_sweep_with, Shard, SweepConfig, SweepReport};
use weakgpu::litmus::{corpus, corpus_extra, parser, LitmusTest};
use weakgpu::models;
use weakgpu::sim::chip::Chip;

const USAGE: &str = "usage:
  weakgpu run <file.litmus> [--chip SHORT] [--iterations N] [--seed N] [--parallelism N]
  weakgpu campaign [NAME|FILE ...] [--chips SHORT[,SHORT...]] [--iterations N] [--seed N] [--parallelism N]
  weakgpu sweep [--family small|paper] [--shard K/N] [--out FILE.json]
                [--chips SHORT[,SHORT...]] [--iterations N] [--seed N] [--parallelism N]
                [--pruned] [--batched] [--incremental]
                [--cache-file FILE.wgc] [--cache-readonly]
  weakgpu sweep --merge FILE.json FILE.json ... [--out FILE.json]
  weakgpu serve [--cache-file FILE.wgc] [--cache-readonly] [--model NAME] [--pruned]
  weakgpu check <file.litmus> [--model ptx|sc|tso|rmo|operational]
  weakgpu check <file ...> [--builtin]
  weakgpu show <file.litmus> [--dot]
  weakgpu corpus [NAME]

`run` histograms one test; `campaign` schedules many (test, chip) cells
over one shared worker pool, streaming per-cell results as they finish
(default: the whole built-in corpus on the paper's tabled chips).

`sweep` is the paper's Sec. 5.4 validation as a subsystem: a generated
family (--family small|paper) runs on the tabled Nvidia chips and every
observation is checked against the PTX model. --shard K/N runs the K-th
of N deterministic, disjoint slices of the family (per-test seeds depend
only on the test's canonical index, so shards recombine exactly);
--out FILE.json writes the aggregate report there and streams one JSONL
record per cell to FILE.jsonl. --merge recombines shard reports, failing
on a missing shard or any model-forbidden observation. --pruned judges
cache-miss cells through the rf-class pruned enumerator (bit-identical
verdicts; the per-cell JSONL records the classes visited and candidates
cut). --batched additionally packs up to 64 sibling candidates into one
bit-plane plan pass (composes with --pruned; the JSONL records the
batches formed and lanes filled). --incremental maintains plan registers
and cycle detection as push/pop deltas along the walk instead of
refilling per cut attempt (implies --pruned, composes with --batched;
the JSONL records the cut-attempt time and register refills).
--cache-file FILE.wgc warm-starts the verdict cache from a
persisted `weakgpu-cache/1` file (created by an earlier sweep or serve)
and writes the updated cache back afterwards; --cache-readonly loads
without writing back, and fails if the file is missing rather than
silently running cold. Exit status is non-zero if any observation is
unsound.

`serve` is a long-running verdict daemon: each stdin line is one JSON
request ({\"op\": \"verdict\"|\"stats\"|\"shutdown\", \"id\": .., \"test\":
NAME, \"litmus\": SOURCE, \"model\": NAME, \"pruning\": BOOL}), each
stdout line the matching JSON response. All requests share one verdict
cache; --cache-file warm-starts it and persists it on shutdown/EOF
(unless --cache-readonly). --model picks the default model (ptx);
--pruned judges through the pruned enumerator by default.

`check` with one .litmus file judges its condition against a model.
With several files, any .cat file, or --builtin it is a linter instead:
each file is parsed with the diagnostics frontend, every error is shown
as a path:line:col caret diagnostic, and the exit status is non-zero if
any file has errors. --builtin also lints the shipped model sources.

--parallelism N pins the worker-thread count (default: all cores). It
affects wall-clock time only: for a fixed --seed the full histogram is
bit-identical on any machine at any parallelism.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn dispatch(args: &[String]) -> Result<(), String> {
    // `--help` wins anywhere on the line, so `weakgpu run --help` works too.
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return Ok(());
    }
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("campaign") => cmd_campaign(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        Some("show") => cmd_show(&args[1..]),
        Some("corpus") => cmd_corpus(&args[1..]),
        Some("help") => {
            println!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}")),
        None => Err("missing command".to_owned()),
    }
}

fn load(path: &str) -> Result<LitmusTest, String> {
    // Corpus names are accepted anywhere a file is.
    if let Some(test) = corpus_by_name(path) {
        return Ok(test);
    }
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let file = SourceFile::new(path, &text);
    match parser::parse_with_diagnostics(&file).into_result() {
        Ok(test) => Ok(test),
        Err(diags) => {
            // Full caret diagnostics (with the offending source lines)
            // go to stderr; the returned error stays a one-liner.
            eprintln!("{}", render_all(&diags, &file));
            let n = diags.iter().filter(|d| d.is_error()).count();
            Err(format!(
                "{path}: {n} parse error{}",
                if n == 1 { "" } else { "s" }
            ))
        }
    }
}

fn corpus_by_name(name: &str) -> Option<LitmusTest> {
    all_corpus().into_iter().find(|t| t.name() == name)
}

fn all_corpus() -> Vec<LitmusTest> {
    let mut v = corpus::all();
    v.extend(corpus_extra::all_extra());
    v
}

fn chip_by_short(short: &str) -> Result<Chip, String> {
    Chip::ALL
        .into_iter()
        .find(|c| c.short().eq_ignore_ascii_case(short))
        .ok_or_else(|| {
            format!(
                "unknown chip {short:?} (expected one of {})",
                Chip::ALL.map(|c| c.short()).join(", ")
            )
        })
}

fn model_by_name(name: &str) -> Result<Box<dyn Model>, String> {
    Ok(match name {
        "ptx" => Box::new(models::ptx_model()),
        "ptx-native" => Box::new(models::native::NativePtxModel::new()),
        "sc" => Box::new(models::sc_model()),
        "tso" => Box::new(models::tso_model()),
        "rmo" => Box::new(models::rmo_model()),
        "operational" => Box::new(models::operational_baseline()),
        other => return Err(format!("unknown model {other:?}")),
    })
}

fn take_opt(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    if pos + 1 >= args.len() {
        return None;
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    Some(value)
}

fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        Some(pos) => {
            args.remove(pos);
            true
        }
        None => false,
    }
}

/// Classic dynamic-programming edit distance, for "did you mean" hints.
fn edit_distance(a: &str, b: &str) -> usize {
    let b: Vec<char> = b.chars().collect();
    let mut row: Vec<usize> = (0..=b.len()).collect();
    for (i, ca) in a.chars().enumerate() {
        let mut diag = row[0];
        row[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = diag + usize::from(ca != cb);
            diag = row[j + 1];
            row[j + 1] = sub.min(diag + 1).min(row[j] + 1);
        }
    }
    row[b.len()]
}

/// Error for a leftover argument, naming the closest valid flag when the
/// argument looks like a misspelt one.
fn unexpected_arg(cmd: &str, arg: &str, flags: &[&str]) -> String {
    let nearest = flags
        .iter()
        .map(|f| (edit_distance(arg, f), *f))
        .min()
        .filter(|&(d, f)| arg.starts_with('-') && d <= f.len() / 2);
    match nearest {
        Some((_, flag)) => format!("{cmd}: unexpected argument {arg:?} (did you mean {flag:?}?)"),
        None => format!("{cmd}: unexpected argument {arg:?}"),
    }
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let chip = match take_opt(&mut args, "--chip") {
        Some(s) => Some(chip_by_short(&s)?),
        None => None,
    };
    let iterations = take_opt(&mut args, "--iterations")
        .map(|s| s.parse::<usize>().map_err(|e| e.to_string()))
        .transpose()?
        .unwrap_or(100_000);
    let seed = take_opt(&mut args, "--seed")
        .map(|s| s.parse::<u64>().map_err(|e| e.to_string()))
        .transpose()?
        .unwrap_or(0x5eed);
    let parallelism = take_opt(&mut args, "--parallelism")
        .map(|s| s.parse::<usize>().map_err(|e| e.to_string()))
        .transpose()?;
    let path = args.first().ok_or("run: missing litmus file")?;
    let test = load(path)?;
    let inc = weakgpu::harness::default_incantations(&test);
    let cfg = RunConfig {
        iterations,
        incantations: inc,
        seed,
        parallelism,
    };
    let chips: Vec<Chip> = match chip {
        Some(c) => vec![c],
        None => Chip::TABLED.to_vec(),
    };
    println!(
        "Test {} ({} runs, incantations {inc})",
        test.name(),
        iterations
    );
    println!("{}\n", test.cond());
    for chip in chips {
        let report = run_test(&test, chip, &cfg).map_err(|e| e.to_string())?;
        println!("{} ({}):", chip, chip.profile().arch);
        print!("{}", report.histogram);
        println!(
            "{} of {} runs witness the condition ({}/100k)\n",
            report.witnesses,
            iterations,
            report.obs_per_100k()
        );
    }
    Ok(())
}

/// The flag vocabulary of `campaign`, for "did you mean" hints.
const CAMPAIGN_FLAGS: &[&str] = &["--chips", "--iterations", "--seed", "--parallelism"];

fn cmd_campaign(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let chips: Vec<Chip> = match take_opt(&mut args, "--chips") {
        Some(list) => list
            .split(',')
            .map(chip_by_short)
            .collect::<Result<_, _>>()?,
        None => Chip::TABLED.to_vec(),
    };
    let iterations = take_opt(&mut args, "--iterations")
        .map(|s| s.parse::<usize>().map_err(|e| e.to_string()))
        .transpose()?
        .unwrap_or(10_000);
    let seed = take_opt(&mut args, "--seed")
        .map(|s| s.parse::<u64>().map_err(|e| e.to_string()))
        .transpose()?
        .unwrap_or(0x5eed);
    let parallelism = take_opt(&mut args, "--parallelism")
        .map(|s| s.parse::<usize>().map_err(|e| e.to_string()))
        .transpose()?;
    // Leftovers are test names/files; anything still dashed is a
    // misspelt flag that would otherwise fail as a missing file.
    if let Some(extra) = args.iter().find(|a| a.starts_with('-')) {
        return Err(unexpected_arg("campaign", extra, CAMPAIGN_FLAGS));
    }

    let tests: Vec<LitmusTest> = if args.is_empty() {
        all_corpus()
    } else {
        args.iter().map(|a| load(a)).collect::<Result<_, _>>()?
    };

    // Test-major cells: one row per test, one column per chip.
    let cells: Vec<CellSpec> = tests
        .iter()
        .flat_map(|test| {
            let inc = weakgpu::harness::default_incantations(test);
            chips.iter().map(move |&chip| {
                CellSpec::new(test.clone(), chip)
                    .incantations(inc)
                    .iterations(iterations)
                    .seed(seed)
            })
        })
        .collect();

    println!(
        "Campaign: {} tests × {} chips = {} cells × {} runs (seed {seed})",
        tests.len(),
        chips.len(),
        cells.len(),
        iterations
    );
    let reports = run_campaign_with(&cells, &CampaignConfig { parallelism }, |_, report| {
        // Streamed as cells complete (possibly out of order).
        println!(
            "  done {:<28} {:<8} {:>8} witnesses ({}/100k)",
            report.test,
            report.chip.short(),
            report.witnesses,
            report.obs_per_100k()
        );
    })
    .map_err(|e| e.to_string())?;

    // Summary grid in deterministic test-major order.
    let mut table = ObsTable::new("obs/100k", chips.iter().map(|c| c.short().to_owned()));
    for (t, test) in tests.iter().enumerate() {
        table.row(
            test.name().to_owned(),
            reports[t * chips.len()..(t + 1) * chips.len()]
                .iter()
                .map(|r| r.obs_per_100k()),
        );
    }
    println!("\n{table}");
    Ok(())
}

/// The flag vocabulary of `sweep`, for "did you mean" hints.
const SWEEP_FLAGS: &[&str] = &[
    "--family",
    "--shard",
    "--out",
    "--chips",
    "--iterations",
    "--seed",
    "--parallelism",
    "--pruned",
    "--batched",
    "--incremental",
    "--cache-file",
    "--cache-readonly",
    "--merge",
];

fn cmd_sweep(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    if take_flag(&mut args, "--merge") {
        return cmd_sweep_merge(args);
    }
    let family_name = take_opt(&mut args, "--family").unwrap_or_else(|| "small".into());
    let gen_cfg = GenConfig::named(&family_name).ok_or_else(|| {
        format!(
            "unknown family {family_name:?} (expected one of {})",
            GenConfig::FAMILY_NAMES.join(", ")
        )
    })?;
    let shard = take_opt(&mut args, "--shard")
        .map(|s| Shard::parse(&s))
        .transpose()?;
    let out = take_opt(&mut args, "--out");
    let chips: Vec<Chip> = match take_opt(&mut args, "--chips") {
        Some(list) => list
            .split(',')
            .map(chip_by_short)
            .collect::<Result<_, _>>()?,
        None => Chip::NVIDIA_TABLED.to_vec(),
    };
    let iterations = take_opt(&mut args, "--iterations")
        .map(|s| s.parse::<usize>().map_err(|e| e.to_string()))
        .transpose()?
        .unwrap_or(1_000);
    let seed = take_opt(&mut args, "--seed")
        .map(|s| s.parse::<u64>().map_err(|e| e.to_string()))
        .transpose()?
        .unwrap_or(0x5eed);
    let parallelism = take_opt(&mut args, "--parallelism")
        .map(|s| s.parse::<usize>().map_err(|e| e.to_string()))
        .transpose()?;
    let pruning = take_flag(&mut args, "--pruned");
    let batching = take_flag(&mut args, "--batched");
    let incremental = take_flag(&mut args, "--incremental");
    let cache_file = take_opt(&mut args, "--cache-file").map(std::path::PathBuf::from);
    let cache_readonly = take_flag(&mut args, "--cache-readonly");
    if let Some(extra) = args.first() {
        return Err(unexpected_arg("sweep", extra, SWEEP_FLAGS));
    }

    let tests = generate(&gen_cfg);
    let cfg = SweepConfig {
        family: family_name.clone(),
        shard,
        chips,
        iterations,
        seed,
        parallelism,
        pruning,
        batching,
        incremental,
        cache_file,
        cache_readonly,
    };
    let shard_tests = (0..tests.len())
        .filter(|&i| shard.is_none_or(|sh| sh.selects(i)))
        .count();
    let total_cells = shard_tests * cfg.chips.len();
    eprintln!(
        "sweep: family {family_name} ({} tests{}), {} chips × {iterations} runs = {total_cells} cells (seed {seed})",
        tests.len(),
        match shard {
            Some(sh) => format!(", shard {sh}: {shard_tests} tests"),
            None => String::new(),
        },
        cfg.chips.len(),
    );

    let jsonl = match &out {
        Some(path) => {
            let jsonl_path = std::path::Path::new(path).with_extension("jsonl");
            let file = std::fs::File::create(&jsonl_path)
                .map_err(|e| format!("{}: {e}", jsonl_path.display()))?;
            eprintln!("sweep: streaming cell records to {}", jsonl_path.display());
            Some(Mutex::new(std::io::BufWriter::new(file)))
        }
        None => None,
    };
    let done = AtomicUsize::new(0);
    let report = run_sweep_with(&tests, &cfg, |rec| {
        if let Some(w) = &jsonl {
            let mut w = w.lock().expect("no poisoned locks");
            let _ = writeln!(w, "{}", rec.to_jsonl());
        }
        let n = done.fetch_add(1, Ordering::Relaxed) + 1;
        if n.is_multiple_of(2_000) {
            eprintln!("  … {n}/{total_cells} cells");
        }
    })
    .map_err(|e| e.to_string())?;
    if let Some(w) = jsonl {
        w.into_inner()
            .expect("no poisoned locks")
            .flush()
            .map_err(|e| e.to_string())?;
    }
    if let Some(path) = &out {
        std::fs::write(path, report.to_json()).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("sweep: wrote aggregate report to {path}");
    }
    print_sweep_summary(&report, false);
    if !report.is_sound() {
        eprintln!(
            "error: {} cells observed model-forbidden outcomes",
            report.unsound_cells
        );
        std::process::exit(1);
    }
    Ok(())
}

fn cmd_sweep_merge(args: Vec<String>) -> Result<(), String> {
    let mut args = args;
    let out = take_opt(&mut args, "--out");
    if args.is_empty() {
        return Err("sweep --merge: no report files given".to_owned());
    }
    let reports: Vec<SweepReport> = args
        .iter()
        .map(|path| {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            SweepReport::from_json(&text).map_err(|e| format!("{path}: {e}"))
        })
        .collect::<Result<_, String>>()?;
    let merged = SweepReport::merge(&reports).map_err(|e| e.to_string())?;
    match &out {
        Some(path) => {
            std::fs::write(path, merged.to_json()).map_err(|e| format!("{path}: {e}"))?;
            eprintln!("sweep: wrote merged report to {path}");
            print_sweep_summary(&merged, false);
        }
        None => {
            // Without --out the JSON document IS stdout (so
            // `... --merge a.json b.json > merged.json` stays parseable);
            // the human-readable summary goes to stderr.
            print!("{}", merged.to_json());
            print_sweep_summary(&merged, true);
        }
    }
    if !merged.is_sound() {
        eprintln!(
            "error: {} cells observed model-forbidden outcomes",
            merged.unsound_cells
        );
        std::process::exit(1);
    }
    Ok(())
}

/// The flag vocabulary of `serve`, for "did you mean" hints.
const SERVE_FLAGS: &[&str] = &["--cache-file", "--cache-readonly", "--model", "--pruned"];

fn cmd_serve(args: &[String]) -> Result<(), String> {
    use weakgpu::axiom::cache::VerdictCache;
    use weakgpu::axiom::persist;
    use weakgpu::harness::serve::{model_by_name as serve_model, serve, ServeConfig};

    let mut args = args.to_vec();
    let cache_file = take_opt(&mut args, "--cache-file").map(std::path::PathBuf::from);
    let cache_readonly = take_flag(&mut args, "--cache-readonly");
    let default_model = take_opt(&mut args, "--model").unwrap_or_else(|| "ptx".into());
    let pruning = take_flag(&mut args, "--pruned");
    if let Some(extra) = args.first() {
        return Err(unexpected_arg("serve", extra, SERVE_FLAGS));
    }
    // Fail on a bad default model before reading any requests.
    serve_model(&default_model).map_err(|e| format!("serve: {e}"))?;

    let initial = match &cache_file {
        Some(path) if path.exists() => {
            persist::load(path).map_err(|e| format!("serve: verdict cache: {e}"))?
        }
        Some(path) if cache_readonly => {
            return Err(format!(
                "serve: verdict cache: {}: read-only cache file does not exist",
                path.display()
            ))
        }
        _ => VerdictCache::new(),
    };
    eprintln!(
        "serve: ready ({} cached verdicts, default model {default_model}); one JSON request per line",
        initial.len()
    );
    let cache = Mutex::new(initial);
    let cfg = ServeConfig {
        default_model,
        pruning,
    };
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let summary =
        serve(stdin.lock(), stdout.lock(), &cfg, &cache).map_err(|e| format!("serve: {e}"))?;
    let cache = cache.into_inner().expect("no poisoned locks");
    // Graceful shutdown flushes the cache for the next warm start.
    if let Some(path) = &cache_file {
        if !cache_readonly {
            persist::save(path, &cache).map_err(|e| format!("serve: verdict cache: {e}"))?;
        }
    }
    eprintln!(
        "serve: {} requests ({} errors), {}; cache {} entries, {} hits ({} warm) / {} misses",
        summary.requests,
        summary.errors,
        if summary.shutdown_requested {
            "shutdown requested"
        } else {
            "input closed"
        },
        cache.len(),
        cache.hits(),
        cache.warm_hits(),
        cache.misses()
    );
    Ok(())
}

/// Renders the human-readable summary to stdout, or to stderr when
/// stdout is carrying the JSON report itself.
fn print_sweep_summary(report: &SweepReport, to_stderr: bool) {
    let mut text = String::new();
    let mut line = |s: String| {
        text.push_str(&s);
        text.push('\n');
    };
    line(format!(
        "\n== sweep: family {} ({} tests), {} ==",
        report.family,
        report.family_size,
        match report.shard {
            Some(sh) => format!("shard {sh} ({} tests)", report.tests_run),
            None => format!("{} tests run", report.tests_run),
        }
    ));
    let mut table = ObsTable::new("validation", report.chips.iter().cloned());
    table.row("cells", report.per_chip.iter().map(|c| c.cells));
    table.row("runs", report.per_chip.iter().map(|c| c.runs));
    table.row(
        "witnessed cells",
        report.per_chip.iter().map(|c| c.witnessed_cells),
    );
    table.row("witnesses", report.per_chip.iter().map(|c| c.witnesses));
    table.row(
        "unsound cells",
        report.per_chip.iter().map(|c| c.unsound_cells),
    );
    line(format!("{table}"));
    line(format!(
        "{} of {} tests witnessed their weak outcome on >=1 chip; {} total runs",
        report.weak_tests, report.tests_run, report.total_runs
    ));
    line(format!(
        "verdict cache: {} entries ({} preloaded), {} hits ({} warm) / {} misses, {:.1} ms enumerating",
        report.cache.entries,
        report.cache.warm_entries,
        report.cache.hits,
        report.cache.warm_hits,
        report.cache.misses,
        report.cache.enum_micros as f64 / 1_000.0
    ));
    if report.is_sound() {
        line("RESULT: sound — every observation is allowed by the PTX model".to_owned());
    } else {
        line(format!(
            "RESULT: UNSOUND — {} cells observed forbidden outcomes:",
            report.unsound_cells
        ));
        for u in report.unsound.iter().take(20) {
            line(format!("  {} on {}: {:?}", u.test, u.chip, u.outcomes));
        }
    }
    if to_stderr {
        eprint!("{text}");
    } else {
        print!("{text}");
    }
}

/// The flag vocabulary of `check`, for "did you mean" hints.
const CHECK_FLAGS: &[&str] = &["--builtin", "--model"];

fn cmd_check(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let builtin = take_flag(&mut args, "--builtin");
    let model_opt = take_opt(&mut args, "--model");
    // Leftovers are file paths; anything still dashed is a misspelt
    // flag that would otherwise fail as a missing file.
    if let Some(extra) = args.iter().find(|a| a.starts_with('-')) {
        return Err(unexpected_arg("check", extra, CHECK_FLAGS));
    }
    // Lint mode: several files, any .cat file, or --builtin.
    if builtin || args.len() > 1 || args.iter().any(|a| a.ends_with(".cat")) {
        if model_opt.is_some() {
            return Err("check: --model only applies to a single-file verdict".to_owned());
        }
        return lint(&args, builtin);
    }
    let model = model_by_name(&model_opt.unwrap_or_else(|| "ptx".into()))?;
    let path = args.first().ok_or("check: missing litmus file")?;
    let test = load(path)?;
    let verdict =
        model_outcomes(&test, model.as_ref(), &EnumConfig::default()).map_err(|e| e.to_string())?;
    println!("Test {}  Model {}", test.name(), model.name());
    println!(
        "{} candidate executions, {} allowed",
        verdict.num_candidates, verdict.num_allowed
    );
    println!("allowed outcomes:");
    for o in &verdict.allowed_outcomes {
        let mark = if test.cond().witnessed_by(o) {
            "  *>"
        } else {
            "    "
        };
        println!("{mark} {o}");
    }
    println!(
        "condition {}: {}",
        test.cond(),
        if verdict.condition_witnessed {
            "Sometimes (allowed)"
        } else {
            "Never (forbidden)"
        }
    );
    Ok(())
}

/// Diagnostics-only `check`: parses every file (and, with `builtin`, the
/// shipped model sources), printing caret diagnostics for every problem
/// found; exits non-zero if any error diagnostic was produced.
fn lint(paths: &[String], builtin: bool) -> Result<(), String> {
    let mut sources: Vec<(String, String)> = Vec::new();
    for path in paths {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        sources.push((path.clone(), text));
    }
    if builtin {
        for &(name, src) in weakgpu::models::sources::ALL {
            sources.push((format!("<builtin:{name}.cat>"), src.to_owned()));
        }
    }
    if sources.is_empty() {
        return Err("check: no files to lint".to_owned());
    }
    let mut errors = 0usize;
    for (name, text) in &sources {
        let file = SourceFile::new(name, text);
        let diags = if name.ends_with(".cat") || name.ends_with(".cat>") {
            lint_cat(&file)
        } else {
            parser::parse_with_diagnostics(&file).diagnostics
        };
        if diags.is_empty() {
            println!("{name}: ok");
        } else {
            println!("{}", render_all(&diags, &file));
        }
        errors += diags.iter().filter(|d| d.is_error()).count();
    }
    if errors > 0 {
        eprintln!(
            "check: {errors} error{} in {} file{}",
            if errors == 1 { "" } else { "s" },
            sources.len(),
            if sources.len() == 1 { "" } else { "s" }
        );
        std::process::exit(1);
    }
    println!("check: {} file(s) ok", sources.len());
    Ok(())
}

/// Lints one `.cat` source: parse diagnostics, then (when the parse was
/// clean) compile-stage problems reported as unspanned diagnostics.
fn lint_cat(file: &SourceFile) -> Vec<Diagnostic> {
    let parsed = CatProgram::parse_with_diagnostics(file);
    let mut diags = parsed.diagnostics;
    if !has_errors(&diags) {
        if let Some(program) = parsed.value {
            if let Err(e) = Plan::compile(&program) {
                diags.push(Diagnostic::error(e.message));
            }
        }
    }
    diags
}

fn cmd_show(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let want_dot = take_flag(&mut args, "--dot");
    let path = args.first().ok_or("show: missing litmus file")?;
    let test = load(path)?;
    let cands = enumerate_executions(&test, &EnumConfig::default()).map_err(|e| e.to_string())?;
    // Show the witnessing execution if one exists, else the first.
    let cand = cands
        .iter()
        .find(|c| test.cond().witnessed_by(&c.outcome))
        .or_else(|| cands.first())
        .ok_or("no candidate executions")?;
    println!("{test}\n");
    if want_dot {
        println!("{}", render::dot(&cand.execution, test.name()));
    } else {
        println!("candidate execution with outcome {}:", cand.outcome);
        println!("{}", render::ascii(&cand.execution));
        let ptx = models::ptx_model();
        let reasons = render::explain_verdict(&ptx, &cand.execution);
        if reasons.is_empty() {
            println!("PTX model: allowed");
        } else {
            println!("PTX model: forbidden —");
            for r in reasons {
                println!("  {r}");
            }
        }
    }
    Ok(())
}

fn cmd_corpus(args: &[String]) -> Result<(), String> {
    match args.first() {
        None => {
            for t in all_corpus() {
                println!("{:<28} {}", t.name(), t.doc());
            }
            Ok(())
        }
        Some(name) => {
            let t = corpus_by_name(name).ok_or_else(|| format!("no corpus test {name:?}"))?;
            println!("{t}");
            Ok(())
        }
    }
}
