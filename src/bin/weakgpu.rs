//! `weakgpu` — a command-line front end in the spirit of the paper's
//! `litmus` (run tests against "hardware") and `herd` (simulate a model)
//! tools.
//!
//! ```text
//! weakgpu run <file.litmus> [--chip SHORT] [--iterations N] [--seed N] [--parallelism N]
//! weakgpu campaign [NAME|FILE ...] [--chips SHORT,..] [--iterations N] [--seed N] [--parallelism N]
//! weakgpu check <file.litmus> [--model ptx|sc|tso|rmo|operational]
//! weakgpu show <file.litmus> [--dot]
//! weakgpu corpus [NAME]
//! ```

use std::process::ExitCode;

use weakgpu::axiom::enumerate::{enumerate_executions, model_outcomes, EnumConfig};
use weakgpu::axiom::render;
use weakgpu::axiom::Model;
use weakgpu::harness::campaign::{run_campaign_with, CampaignConfig, CellSpec};
use weakgpu::harness::report::ObsTable;
use weakgpu::harness::runner::{run_test, RunConfig};
use weakgpu::litmus::{corpus, corpus_extra, parser, LitmusTest};
use weakgpu::models;
use weakgpu::sim::chip::Chip;

const USAGE: &str = "usage:
  weakgpu run <file.litmus> [--chip SHORT] [--iterations N] [--seed N] [--parallelism N]
  weakgpu campaign [NAME|FILE ...] [--chips SHORT[,SHORT...]] [--iterations N] [--seed N] [--parallelism N]
  weakgpu check <file.litmus> [--model ptx|sc|tso|rmo|operational]
  weakgpu show <file.litmus> [--dot]
  weakgpu corpus [NAME]

`run` histograms one test; `campaign` schedules many (test, chip) cells
over one shared worker pool, streaming per-cell results as they finish
(default: the whole built-in corpus on the paper's tabled chips).

--parallelism N pins the worker-thread count (default: all cores). It
affects wall-clock time only: for a fixed --seed the full histogram is
bit-identical on any machine at any parallelism.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn dispatch(args: &[String]) -> Result<(), String> {
    // `--help` wins anywhere on the line, so `weakgpu run --help` works too.
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return Ok(());
    }
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("campaign") => cmd_campaign(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        Some("show") => cmd_show(&args[1..]),
        Some("corpus") => cmd_corpus(&args[1..]),
        Some("help") => {
            println!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}")),
        None => Err("missing command".to_owned()),
    }
}

fn load(path: &str) -> Result<LitmusTest, String> {
    // Corpus names are accepted anywhere a file is.
    if let Some(test) = corpus_by_name(path) {
        return Ok(test);
    }
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parser::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn corpus_by_name(name: &str) -> Option<LitmusTest> {
    all_corpus().into_iter().find(|t| t.name() == name)
}

fn all_corpus() -> Vec<LitmusTest> {
    let mut v = corpus::all();
    v.extend(corpus_extra::all_extra());
    v
}

fn chip_by_short(short: &str) -> Result<Chip, String> {
    Chip::ALL
        .into_iter()
        .find(|c| c.short().eq_ignore_ascii_case(short))
        .ok_or_else(|| {
            format!(
                "unknown chip {short:?} (expected one of {})",
                Chip::ALL.map(|c| c.short()).join(", ")
            )
        })
}

fn model_by_name(name: &str) -> Result<Box<dyn Model>, String> {
    Ok(match name {
        "ptx" => Box::new(models::ptx_model()),
        "ptx-native" => Box::new(models::native::NativePtxModel::new()),
        "sc" => Box::new(models::sc_model()),
        "tso" => Box::new(models::tso_model()),
        "rmo" => Box::new(models::rmo_model()),
        "operational" => Box::new(models::operational_baseline()),
        other => return Err(format!("unknown model {other:?}")),
    })
}

fn take_opt(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    if pos + 1 >= args.len() {
        return None;
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    Some(value)
}

fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        Some(pos) => {
            args.remove(pos);
            true
        }
        None => false,
    }
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let chip = match take_opt(&mut args, "--chip") {
        Some(s) => Some(chip_by_short(&s)?),
        None => None,
    };
    let iterations = take_opt(&mut args, "--iterations")
        .map(|s| s.parse::<usize>().map_err(|e| e.to_string()))
        .transpose()?
        .unwrap_or(100_000);
    let seed = take_opt(&mut args, "--seed")
        .map(|s| s.parse::<u64>().map_err(|e| e.to_string()))
        .transpose()?
        .unwrap_or(0x5eed);
    let parallelism = take_opt(&mut args, "--parallelism")
        .map(|s| s.parse::<usize>().map_err(|e| e.to_string()))
        .transpose()?;
    let path = args.first().ok_or("run: missing litmus file")?;
    let test = load(path)?;
    let inc = weakgpu::harness::default_incantations(&test);
    let cfg = RunConfig {
        iterations,
        incantations: inc,
        seed,
        parallelism,
    };
    let chips: Vec<Chip> = match chip {
        Some(c) => vec![c],
        None => Chip::TABLED.to_vec(),
    };
    println!("Test {} ({} runs, incantations {inc})", test.name(), iterations);
    println!("{}\n", test.cond());
    for chip in chips {
        let report = run_test(&test, chip, &cfg).map_err(|e| e.to_string())?;
        println!("{} ({}):", chip, chip.profile().arch);
        print!("{}", report.histogram);
        println!(
            "{} of {} runs witness the condition ({}/100k)\n",
            report.witnesses,
            iterations,
            report.obs_per_100k()
        );
    }
    Ok(())
}

fn cmd_campaign(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let chips: Vec<Chip> = match take_opt(&mut args, "--chips") {
        Some(list) => list
            .split(',')
            .map(chip_by_short)
            .collect::<Result<_, _>>()?,
        None => Chip::TABLED.to_vec(),
    };
    let iterations = take_opt(&mut args, "--iterations")
        .map(|s| s.parse::<usize>().map_err(|e| e.to_string()))
        .transpose()?
        .unwrap_or(10_000);
    let seed = take_opt(&mut args, "--seed")
        .map(|s| s.parse::<u64>().map_err(|e| e.to_string()))
        .transpose()?
        .unwrap_or(0x5eed);
    let parallelism = take_opt(&mut args, "--parallelism")
        .map(|s| s.parse::<usize>().map_err(|e| e.to_string()))
        .transpose()?;

    let tests: Vec<LitmusTest> = if args.is_empty() {
        all_corpus()
    } else {
        args.iter().map(|a| load(a)).collect::<Result<_, _>>()?
    };

    // Test-major cells: one row per test, one column per chip.
    let cells: Vec<CellSpec> = tests
        .iter()
        .flat_map(|test| {
            let inc = weakgpu::harness::default_incantations(test);
            chips.iter().map(move |&chip| {
                CellSpec::new(test.clone(), chip)
                    .incantations(inc)
                    .iterations(iterations)
                    .seed(seed)
            })
        })
        .collect();

    println!(
        "Campaign: {} tests × {} chips = {} cells × {} runs (seed {seed})",
        tests.len(),
        chips.len(),
        cells.len(),
        iterations
    );
    let reports = run_campaign_with(
        &cells,
        &CampaignConfig { parallelism },
        |_, report| {
            // Streamed as cells complete (possibly out of order).
            println!(
                "  done {:<28} {:<8} {:>8} witnesses ({}/100k)",
                report.test,
                report.chip.short(),
                report.witnesses,
                report.obs_per_100k()
            );
        },
    )
    .map_err(|e| e.to_string())?;

    // Summary grid in deterministic test-major order.
    let mut table = ObsTable::new(
        "obs/100k",
        chips.iter().map(|c| c.short().to_owned()),
    );
    for (t, test) in tests.iter().enumerate() {
        table.row(
            test.name().to_owned(),
            reports[t * chips.len()..(t + 1) * chips.len()]
                .iter()
                .map(|r| r.obs_per_100k()),
        );
    }
    println!("\n{table}");
    Ok(())
}

fn cmd_check(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let model = model_by_name(&take_opt(&mut args, "--model").unwrap_or_else(|| "ptx".into()))?;
    let path = args.first().ok_or("check: missing litmus file")?;
    let test = load(path)?;
    let verdict =
        model_outcomes(&test, model.as_ref(), &EnumConfig::default()).map_err(|e| e.to_string())?;
    println!("Test {}  Model {}", test.name(), model.name());
    println!(
        "{} candidate executions, {} allowed",
        verdict.num_candidates, verdict.num_allowed
    );
    println!("allowed outcomes:");
    for o in &verdict.allowed_outcomes {
        let mark = if test.cond().witnessed_by(o) { "  *>" } else { "    " };
        println!("{mark} {o}");
    }
    println!(
        "condition {}: {}",
        test.cond(),
        if verdict.condition_witnessed {
            "Sometimes (allowed)"
        } else {
            "Never (forbidden)"
        }
    );
    Ok(())
}

fn cmd_show(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let want_dot = take_flag(&mut args, "--dot");
    let path = args.first().ok_or("show: missing litmus file")?;
    let test = load(path)?;
    let cands = enumerate_executions(&test, &EnumConfig::default()).map_err(|e| e.to_string())?;
    // Show the witnessing execution if one exists, else the first.
    let cand = cands
        .iter()
        .find(|c| test.cond().witnessed_by(&c.outcome))
        .or_else(|| cands.first())
        .ok_or("no candidate executions")?;
    println!("{test}\n");
    if want_dot {
        println!("{}", render::dot(&cand.execution, test.name()));
    } else {
        println!("candidate execution with outcome {}:", cand.outcome);
        println!("{}", render::ascii(&cand.execution));
        let ptx = models::ptx_model();
        let reasons = render::explain_verdict(&ptx, &cand.execution);
        if reasons.is_empty() {
            println!("PTX model: allowed");
        } else {
            println!("PTX model: forbidden —");
            for r in reasons {
                println!("  {r}");
            }
        }
    }
    Ok(())
}

fn cmd_corpus(args: &[String]) -> Result<(), String> {
    match args.first() {
        None => {
            for t in all_corpus() {
                println!("{:<28} {}", t.name(), t.doc());
            }
            Ok(())
        }
        Some(name) => {
            let t = corpus_by_name(name).ok_or_else(|| format!("no corpus test {name:?}"))?;
            println!("{t}");
            Ok(())
        }
    }
}
