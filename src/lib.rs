//! `weakgpu` — a reproduction of *GPU concurrency: Weak behaviours and
//! programming assumptions* (Alglave et al., ASPLOS 2015).
//!
//! This is a thin facade over [`weakgpu_core`], which itself re-exports the
//! subsystem crates:
//!
//! * [`weakgpu_core::litmus`] — GPU litmus tests (PTX AST, scope trees,
//!   parser, paper corpus),
//! * [`weakgpu_core::axiom`] — herd-style axiomatic engine and `.cat` DSL,
//! * [`weakgpu_core::models`] — the paper's PTX memory model and baselines,
//! * [`weakgpu_core::sim`] — the stochastic GPU hardware simulator,
//! * [`weakgpu_core::harness`] — the litmus-running harness with incantations,
//! * [`weakgpu_core::diy`] — cycle-based litmus test generation,
//! * [`weakgpu_core::optcheck`] — the compiled-code optimisation checker.
//!
//! See `examples/quickstart.rs` for a tour.

pub use weakgpu_core::*;
