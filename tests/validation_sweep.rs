//! A reduced version of the paper's Sec. 5.4 validation (the `--full`
//! variant lives in the `tab_validation` bench binary, CI runs the paper
//! family through the sharded `weakgpu sweep` matrix): a diy-generated
//! family, run on weak and strong chip profiles through the sweep
//! subsystem, with every observation checked against the paper's PTX
//! model.

use weakgpu::diy::{generate, GenConfig};
use weakgpu::harness::sweep::{run_sweep, Shard, SweepConfig, SweepReport};
use weakgpu::sim::chip::Chip;

#[test]
fn generated_family_observations_are_model_sound() {
    let tests = generate(&GenConfig::small());
    assert!(tests.len() > 80);
    // Several profiles (weak Kepler/Fermi, AMD, and the strong GTX 280)
    // in one sweep; per-cell soundness is checked inside run_sweep.
    let cfg = SweepConfig {
        family: "small".to_owned(),
        shard: None,
        chips: vec![
            Chip::GtxTitan,
            Chip::TeslaC2075,
            Chip::RadeonHd7970,
            Chip::Gtx280,
        ],
        iterations: 1_000,
        seed: 0x7a11,
        parallelism: None,
        pruning: false,
        batching: false,
        incremental: false,
        cache_file: None,
        cache_readonly: false,
    };
    let report = run_sweep(&tests, &cfg).unwrap();
    assert!(
        report.is_sound(),
        "model forbids observed outcomes: {:?}",
        report.unsound
    );
    assert_eq!(report.tests_run as usize, tests.len());
    assert_eq!(report.total_runs, (tests.len() * 4 * 1_000) as u64);
    // The family must actually exercise weak behaviour, not just pass
    // vacuously.
    assert!(
        report.weak_tests > 5,
        "only {} tests showed their weak outcome",
        report.weak_tests
    );
    // The verdict cache collapsed the four chip columns into (roughly —
    // racing cells of one test may both enumerate) one enumeration per
    // test shape.
    assert_eq!(report.cache.entries as usize, tests.len());
    assert!(report.cache.misses as usize >= tests.len());
    assert_eq!(
        (report.cache.hits + report.cache.misses) as usize,
        tests.len() * 4
    );
}

#[test]
fn strong_chip_never_witnesses_any_generated_cycle() {
    let tests = generate(&GenConfig::small());
    // This sweep judges its cells through the pruned enumerator — the
    // verdicts are bit-identical to the exhaustive arm (proven by the
    // differential battery in `crates/axiom/tests/pruning_diff.rs`), so
    // the soundness claim is unchanged while the integration path gets
    // exercised end to end.
    let cfg = SweepConfig {
        family: "small".to_owned(),
        shard: None,
        chips: vec![Chip::Gtx280],
        iterations: 800,
        seed: 0x57,
        parallelism: None,
        pruning: true,
        batching: false,
        incremental: false,
        cache_file: None,
        cache_readonly: false,
    };
    let report = run_sweep(&tests, &cfg).unwrap();
    assert_eq!(
        report.total_witnesses, 0,
        "GTX 280 must behave sequentially on the whole family"
    );
    assert_eq!(report.weak_tests, 0);
}

#[test]
fn sharded_validation_recombines_exactly() {
    // The CI matrix in miniature: four shards at bounded iterations,
    // merged, must equal the unsharded sweep at the same seed.
    let tests = generate(&GenConfig::small());
    let cfg = |shard| SweepConfig {
        family: "small".to_owned(),
        shard,
        chips: vec![Chip::GtxTitan, Chip::Gtx660],
        iterations: 250,
        seed: 0xc1,
        parallelism: None,
        pruning: false,
        batching: false,
        incremental: false,
        cache_file: None,
        cache_readonly: false,
    };
    let whole = run_sweep(&tests, &cfg(None)).unwrap();
    let shards: Vec<SweepReport> = (1..=4)
        .map(|index| run_sweep(&tests, &cfg(Some(Shard { index, count: 4 }))).unwrap())
        .collect();
    let merged = SweepReport::merge(&shards).unwrap();
    assert!(merged.totals_match(&whole));
    // Round-tripping every shard through its JSON form (as the CI
    // artifact path does) must not change the merge.
    let reparsed: Vec<SweepReport> = shards
        .iter()
        .map(|s| SweepReport::from_json(&s.to_json()).unwrap())
        .collect();
    let merged2 = SweepReport::merge(&reparsed).unwrap();
    assert_eq!(merged, merged2);
}

#[test]
fn small_family_shapes_are_contained_in_the_paper_family() {
    // The CI warm-start contract: the `cache-warm` job judges the small
    // family once and ships the cache to the paper-family shards. That
    // only produces warm hits if every small-family shape key (the
    // name-independent canonical form the verdict cache keys on) also
    // appears in the paper family — asserted here so a generator change
    // that breaks the containment fails in `cargo test`, not as a
    // silent cold CI run.
    use std::collections::HashSet;
    use weakgpu::axiom::cache::shape_key;

    let paper: HashSet<String> = generate(&GenConfig::paper())
        .iter()
        .map(shape_key)
        .collect();
    let missing: Vec<String> = generate(&GenConfig::small())
        .iter()
        .filter(|t| !paper.contains(&shape_key(t)))
        .map(|t| t.name().to_owned())
        .collect();
    assert!(
        missing.is_empty(),
        "small-family tests absent from the paper family: {missing:?}"
    );
}
