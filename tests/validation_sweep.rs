//! A reduced version of the paper's Sec. 5.4 validation (the `--full`
//! variant lives in the `tab_validation` bench binary): a diy-generated
//! family, run on weak and strong chip profiles, with every observation
//! checked against the paper's PTX model.

use weakgpu::axiom::enumerate::EnumConfig;
use weakgpu::diy::{generate, GenConfig};
use weakgpu::harness::runner::{run_test, RunConfig};
use weakgpu::harness::soundness::check_soundness;
use weakgpu::litmus::ThreadScope;
use weakgpu::models::ptx_model;
use weakgpu::sim::chip::{Chip, Incantations};

#[test]
fn generated_family_observations_are_model_sound() {
    let tests = generate(&GenConfig::small());
    assert!(tests.len() > 80);
    let model = ptx_model();
    let enum_cfg = EnumConfig::default();
    let mut weak_witnessed = 0usize;
    for (i, test) in tests.iter().enumerate() {
        let inc = match test.thread_scope() {
            Some(ThreadScope::InterCta) => Incantations::best_inter_cta(),
            _ => Incantations::all_on(),
        };
        // Alternate chips to cover several profiles without blowing up CI
        // time; include a strong chip every few tests.
        let chip = match i % 4 {
            0 => Chip::GtxTitan,
            1 => Chip::TeslaC2075,
            2 => Chip::RadeonHd7970,
            _ => Chip::Gtx280,
        };
        let cfg = RunConfig {
            iterations: 1_500,
            incantations: inc,
            seed: 0x7a11 ^ i as u64,
            parallelism: None,
        };
        let report = run_test(test, chip, &cfg)
            .unwrap_or_else(|e| panic!("{} on {chip}: {e}", test.name()));
        if report.witnesses > 0 {
            weak_witnessed += 1;
        }
        let soundness = check_soundness(test, &report.histogram, &model, &enum_cfg)
            .unwrap_or_else(|e| panic!("{}: {e}", test.name()));
        assert!(
            soundness.is_sound(),
            "{} on {chip}: model forbids observed {:?}",
            test.name(),
            soundness.violations
        );
    }
    // The family must actually exercise weak behaviour, not just pass
    // vacuously.
    assert!(
        weak_witnessed > 5,
        "only {weak_witnessed} tests showed their weak outcome"
    );
}

#[test]
fn strong_chip_never_witnesses_any_generated_cycle() {
    for (i, test) in generate(&GenConfig::small()).iter().enumerate().take(60) {
        let cfg = RunConfig {
            iterations: 800,
            incantations: Incantations::all_on(),
            seed: 0x57 ^ i as u64,
            parallelism: None,
        };
        let report = run_test(test, Chip::Gtx280, &cfg).unwrap();
        assert_eq!(
            report.witnesses,
            0,
            "{}: GTX 280 must behave sequentially",
            test.name()
        );
    }
}
