//! The on-disk `.litmus` corpus parses, runs, and gets the expected model
//! verdicts — exercising the same file-based workflow as the paper's
//! `litmus`/`herd` tools (and the `weakgpu` CLI).

use std::path::Path;

use weakgpu::axiom::enumerate::{model_outcomes, EnumConfig};
use weakgpu::harness::runner::{run_test, RunConfig};
use weakgpu::litmus::parser;
use weakgpu::models::{operational_baseline, ptx_model};
use weakgpu::sim::chip::{Chip, Incantations};

fn load(name: &str) -> weakgpu::litmus::LitmusTest {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("litmus")
        .join(name);
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path:?}: {e}"));
    parser::parse(&text).unwrap_or_else(|e| panic!("{path:?}: {e}"))
}

#[test]
fn all_files_parse_and_roundtrip() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("litmus");
    let mut count = 0;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|e| e != "litmus") {
            continue;
        }
        count += 1;
        let text = std::fs::read_to_string(&path).unwrap();
        let test = parser::parse(&text).unwrap_or_else(|e| panic!("{path:?}: {e}"));
        let reparsed = parser::parse(&test.to_string()).unwrap();
        assert_eq!(test.threads(), reparsed.threads(), "{path:?}");
        assert_eq!(test.cond(), reparsed.cond(), "{path:?}");
    }
    assert!(
        count >= 6,
        "expected the shipped corpus, found {count} files"
    );
}

#[test]
fn file_corpus_model_verdicts() {
    let cfg = EnumConfig::default();
    let ptx = ptx_model();
    let expectations = [
        ("sb.litmus", true),
        ("corr.litmus", true),
        ("lb+membar.ctas.litmus", true),
        ("cas-sl.litmus", true),
        ("mp+fences.litmus", false),
        ("iriw+membar.gls.litmus", false),
    ];
    for (file, allowed) in expectations {
        let test = load(file);
        let verdict = model_outcomes(&test, &ptx, &cfg).unwrap();
        assert_eq!(
            verdict.condition_witnessed, allowed,
            "{file}: PTX verdict mismatch"
        );
    }
    // The Sec. 6 file distinguishes the models.
    let lb = load("lb+membar.ctas.litmus");
    let op = model_outcomes(&lb, &operational_baseline(), &cfg).unwrap();
    assert!(!op.condition_witnessed);
}

#[test]
fn file_corpus_runs_on_the_simulator() {
    let test = load("sb.litmus");
    let cfg = RunConfig {
        iterations: 20_000,
        incantations: Incantations::all_on(), // intra-CTA file
        seed: 0xf11e,
        parallelism: None,
    };
    let report = run_test(&test, Chip::GtxTitan, &cfg).unwrap();
    assert!(report.witnesses > 0, "sb must be observable on the Titan");
    let strong = run_test(&test, Chip::Gtx280, &cfg).unwrap();
    assert_eq!(strong.witnesses, 0);
}
