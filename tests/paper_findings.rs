//! End-to-end integration tests: the ten findings of the paper's Tab. 2,
//! each established through the full pipeline (corpus → simulator/harness
//! → axiomatic model → optcheck), at CI-friendly iteration counts.

use weakgpu::harness::runner::{run_test, RunConfig};
use weakgpu::litmus::{corpus, FenceScope, LitmusTest, ThreadScope};
use weakgpu::models::{operational_baseline, ptx_model};
use weakgpu::optcheck::deps::{dependency_survives, load_load_dep, DepScheme};
use weakgpu::optcheck::{amd_compile, AmdTarget, CompilerBug, CompilerConfig};
use weakgpu::sim::chip::{Chip, Incantations};
use weakgpu::Session;

fn obs(test: &LitmusTest, chip: Chip, iterations: usize) -> u64 {
    let inc = match test.thread_scope() {
        Some(ThreadScope::InterCta) => Incantations::best_inter_cta(),
        _ => Incantations::all_on(),
    };
    run_test(
        test,
        chip,
        &RunConfig {
            iterations,
            incantations: inc,
            seed: 0xf1d1,
            parallelism: None,
        },
    )
    .unwrap()
    .witnesses
}

#[test]
fn finding_1_corr_on_fermi_and_kepler() {
    for chip in [
        Chip::Gtx540m,
        Chip::TeslaC2075,
        Chip::Gtx660,
        Chip::GtxTitan,
    ] {
        assert!(obs(&corpus::corr(), chip, 5_000) > 0, "{chip}");
    }
    for chip in [
        Chip::Gtx280,
        Chip::Gtx750,
        Chip::RadeonHd6570,
        Chip::RadeonHd7970,
    ] {
        assert_eq!(obs(&corpus::corr(), chip, 5_000), 0, "{chip}");
    }
}

#[test]
fn finding_2_fermi_l1_ignores_fences() {
    // Tesla C2075: mp-L1 and coRR-L2-L1 survive even membar.sys.
    assert!(
        obs(
            &corpus::mp_l1(Some(FenceScope::Sys)),
            Chip::TeslaC2075,
            80_000
        ) > 0
    );
    assert!(
        obs(
            &corpus::corr_l2_l1(Some(FenceScope::Sys)),
            Chip::TeslaC2075,
            50_000
        ) > 0
    );
    // Whereas membar.gl restores mp-L1 on the GTX Titan.
    assert_eq!(
        obs(&corpus::mp_l1(Some(FenceScope::Gl)), Chip::GtxTitan, 50_000),
        0
    );
}

#[test]
fn finding_3_volatile_does_not_restore_sc() {
    assert!(obs(&corpus::mp_volatile(), Chip::Gtx540m, 10_000) > 0);
    assert!(obs(&corpus::mp_volatile(), Chip::TeslaC2075, 10_000) > 0);
}

#[test]
fn finding_4_deque_loses_tasks_without_fences() {
    assert!(obs(&corpus::dlb_lb(false), Chip::GtxTitan, 30_000) > 0);
    assert_eq!(obs(&corpus::dlb_lb(true), Chip::GtxTitan, 30_000), 0);
    assert_eq!(obs(&corpus::dlb_mp(true), Chip::TeslaC2075, 30_000), 0);
}

#[test]
fn finding_5_and_6_spin_locks_read_stale_values() {
    for test in [corpus::cas_sl(false), corpus::exch_sl(false)] {
        assert!(obs(&test, Chip::GtxTitan, 60_000) > 0, "{}", test.name());
    }
    for test in [corpus::cas_sl(true), corpus::exch_sl(true)] {
        assert_eq!(obs(&test, Chip::GtxTitan, 60_000), 0, "{}", test.name());
    }
}

#[test]
fn finding_7_he_yu_lock_reads_future_values() {
    assert!(obs(&corpus::sl_future(false), Chip::TeslaC2075, 20_000) > 0);
    assert_eq!(obs(&corpus::sl_future(true), Chip::TeslaC2075, 20_000), 0);
}

#[test]
fn finding_8_cuda55_reorders_volatile_loads() {
    use weakgpu::litmus::{build::*, Predicate};
    let volatile_corr = LitmusTest::builder("coRR-volatile")
        .global("x", 0)
        .thread([st("x", 1)])
        .thread([ld_volatile("r1", "x"), ld_volatile("r2", "x")])
        .scope(ThreadScope::IntraCta)
        .exists(Predicate::reg_eq(1, "r1", 1).and(Predicate::reg_eq(1, "r2", 0)))
        .build()
        .unwrap();
    let report = weakgpu::optcheck::check_test(
        &volatile_corr,
        &CompilerConfig::o3().with_bug(CompilerBug::ReorderVolatileLoads),
    );
    assert!(!report.consistent);
}

#[test]
fn finding_9_gcn_removes_fences_between_loads() {
    let fenced = corpus::mp(ThreadScope::InterCta, Some(FenceScope::Gl));
    let (compiled, report) = amd_compile(&fenced, AmdTarget::Gcn10);
    assert_eq!(report.fences_removed, 1);
    // And the compiled program still exhibits mp on the HD7970.
    assert!(obs(&compiled, Chip::RadeonHd7970, 60_000) > 0);
    // TeraScale keeps the fences and the behaviour vanishes.
    let (kept, _) = amd_compile(&fenced, AmdTarget::TeraScale2);
    assert_eq!(obs(&kept, Chip::RadeonHd6570, 30_000), 0);
}

#[test]
fn finding_10_terascale_reorders_load_and_cas() {
    let (_, report) = amd_compile(&corpus::dlb_lb(false), AmdTarget::TeraScale2);
    assert_eq!(report.load_cas_reordered, 1);
    assert!(!report.test_is_meaningful());
}

#[test]
fn sec_4_5_dependency_schemes() {
    assert!(!dependency_survives(
        &load_load_dep(DepScheme::Xor),
        &CompilerConfig::o3()
    ));
    assert!(dependency_survives(
        &load_load_dep(DepScheme::AndHighBit),
        &CompilerConfig::o3()
    ));
}

#[test]
fn sec_6_operational_model_unsound_axiomatic_sound() {
    let test = corpus::lb(ThreadScope::InterCta, Some(FenceScope::Cta));
    let session = Session::new()
        .iterations(150_000)
        .incantations(Incantations::best_inter_cta());
    let report = session.run(&test).unwrap();
    assert!(report.witnesses > 0, "lb+membar.ctas must be observable");
    let ptx = session
        .check_soundness_against(&test, &ptx_model())
        .unwrap();
    assert!(ptx.is_sound());
    let op = session
        .check_soundness_against(&test, &operational_baseline())
        .unwrap();
    assert!(!op.is_sound());
}
