//! Smoke tests for the `weakgpu` command-line binary: the entry points the
//! README advertises must keep exiting 0.

use std::process::Command;

fn weakgpu() -> Command {
    Command::new(env!("CARGO_BIN_EXE_weakgpu"))
}

#[test]
fn help_exits_zero() {
    let out = weakgpu().arg("--help").output().unwrap();
    assert!(out.status.success(), "--help exited {:?}", out.status);
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("usage:"), "help text missing usage: {text}");
}

#[test]
fn corpus_listing_exits_zero() {
    let out = weakgpu().arg("corpus").output().unwrap();
    assert!(out.status.success(), "corpus exited {:?}", out.status);
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("coRR"), "corpus listing missing coRR: {text}");
}

#[test]
fn check_runs_on_a_corpus_file() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/litmus/sb.litmus");
    let out = weakgpu()
        .args(["check", path, "--model", "ptx"])
        .output()
        .unwrap();
    assert!(out.status.success(), "check exited {:?}", out.status);
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(
        text.contains("Sometimes (allowed)"),
        "sb must be PTX-allowed: {text}"
    );
}

#[test]
fn unknown_command_exits_nonzero() {
    let out = weakgpu().arg("frobnicate").output().unwrap();
    assert!(!out.status.success(), "unknown command must fail");
}
