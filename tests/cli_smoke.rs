//! Smoke tests for the `weakgpu` command-line binary: the entry points the
//! README advertises must keep exiting 0.

use std::process::Command;

fn weakgpu() -> Command {
    Command::new(env!("CARGO_BIN_EXE_weakgpu"))
}

#[test]
fn help_exits_zero() {
    let out = weakgpu().arg("--help").output().unwrap();
    assert!(out.status.success(), "--help exited {:?}", out.status);
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("usage:"), "help text missing usage: {text}");
}

#[test]
fn help_documents_the_enumeration_arms() {
    // The sweep's three judging strategies are part of the advertised
    // surface; losing one from the help text is a regression.
    let out = weakgpu().arg("--help").output().unwrap();
    assert!(out.status.success(), "--help exited {:?}", out.status);
    let text = String::from_utf8(out.stdout).unwrap();
    for flag in ["--pruned", "--batched", "--incremental"] {
        assert!(text.contains(flag), "help text missing {flag}: {text}");
    }
}

#[test]
fn incremental_sweep_streams_delta_counters() {
    // One tiny shard judged incrementally: exits 0 and the streamed
    // JSONL carries the delta-evaluation bookkeeping fields.
    let dir = std::env::temp_dir().join(format!("weakgpu-inc-sweep-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let out_path = dir.join("inc.json");
    let out = weakgpu()
        .args([
            "sweep",
            "--incremental",
            "--shard",
            "1/4",
            "--chips",
            "titan",
            "--iterations",
            "60",
            "--out",
        ])
        .arg(&out_path)
        .output()
        .unwrap();
    assert!(out.status.success(), "incremental sweep exited {:?}", out.status);
    let jsonl = std::fs::read_to_string(out_path.with_extension("jsonl")).unwrap();
    assert!(jsonl.contains("\"cut_attempt_micros\""), "{jsonl}");
    assert!(jsonl.contains("\"registers_refilled\""), "{jsonl}");
    let report = std::fs::read_to_string(&out_path).unwrap();
    assert!(report.contains("\"cut_attempt_micros\""), "{report}");
    assert!(report.contains("\"registers_refilled\""), "{report}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corpus_listing_exits_zero() {
    let out = weakgpu().arg("corpus").output().unwrap();
    assert!(out.status.success(), "corpus exited {:?}", out.status);
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("coRR"), "corpus listing missing coRR: {text}");
}

#[test]
fn check_runs_on_a_corpus_file() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/litmus/sb.litmus");
    let out = weakgpu()
        .args(["check", path, "--model", "ptx"])
        .output()
        .unwrap();
    assert!(out.status.success(), "check exited {:?}", out.status);
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(
        text.contains("Sometimes (allowed)"),
        "sb must be PTX-allowed: {text}"
    );
}

#[test]
fn check_lints_every_shipped_source() {
    // Lint mode: every on-disk .litmus file plus (via --builtin) every
    // shipped .cat model source must be diagnostic-free.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("litmus");
    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "litmus"))
        .collect();
    files.sort();
    assert!(files.len() >= 6);
    let out = weakgpu()
        .arg("check")
        .args(&files)
        .arg("--builtin")
        .output()
        .unwrap();
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        out.status.success(),
        "check lint exited {:?}\n{stdout}",
        out.status
    );
    assert!(stdout.contains("sb.litmus: ok"), "{stdout}");
    assert!(stdout.contains("<builtin:ptx.cat>: ok"), "{stdout}");
}

#[test]
fn check_lint_reports_carets_and_exits_nonzero() {
    let dir = std::env::temp_dir().join(format!("weakgpu-lint-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let bad_lit = dir.join("bad.litmus");
    std::fs::write(
        &bad_lit,
        "GPU_PTX bad\n{0:.reg .s32 r1}\nT0 ;\nfrobnicate r1 ;\nexists (0:r1=0)\n",
    )
    .unwrap();
    let bad_cat = dir.join("bad.cat");
    std::fs::write(&bad_cat, "let = po\nacyclic po rf as c\n").unwrap();
    let out = weakgpu()
        .arg("check")
        .arg(&bad_lit)
        .arg(&bad_cat)
        .output()
        .unwrap();
    assert!(!out.status.success(), "lint of bad files must fail");
    let stdout = String::from_utf8(out.stdout).unwrap();
    // Caret diagnostics with path:line:col and the offending line.
    assert!(stdout.contains("bad.litmus:4:1"), "{stdout}");
    assert!(stdout.contains("frobnicate r1 ;"), "{stdout}");
    assert!(stdout.contains('^'), "{stdout}");
    assert!(stdout.contains("bad.cat:1:5"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_command_exits_nonzero() {
    let out = weakgpu().arg("frobnicate").output().unwrap();
    assert!(!out.status.success(), "unknown command must fail");
}

#[test]
fn sweep_shard_and_merge_roundtrip() {
    // The CI pipeline in miniature: two shards at tiny scale, written to
    // JSON, then merged; the merged report must cover the whole family
    // and exit 0 (sound).
    let dir = std::env::temp_dir().join(format!("weakgpu-sweep-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut outs = Vec::new();
    for k in 1..=2 {
        let out_path = dir.join(format!("shard-{k}.json"));
        let out = weakgpu()
            .args([
                "sweep",
                "--shard",
                &format!("{k}/2"),
                "--chips",
                "titan",
                "--iterations",
                "60",
                "--out",
            ])
            .arg(&out_path)
            .output()
            .unwrap();
        assert!(out.status.success(), "shard {k} exited {:?}", out.status);
        // The streaming JSONL sits next to the aggregate.
        let jsonl = std::fs::read_to_string(out_path.with_extension("jsonl")).unwrap();
        assert!(!jsonl.trim().is_empty(), "shard {k} streamed no records");
        outs.push(out_path);
    }
    let merged_path = dir.join("merged.json");
    let out = weakgpu()
        .arg("sweep")
        .arg("--merge")
        .args(&outs)
        .arg("--out")
        .arg(&merged_path)
        .output()
        .unwrap();
    assert!(out.status.success(), "merge exited {:?}", out.status);
    let merged = std::fs::read_to_string(&merged_path).unwrap();
    assert!(merged.contains("\"shard\": null"), "{merged}");
    assert!(merged.contains("\"unsound_cells\": 0"), "{merged}");

    // Merging with a shard missing must fail loudly.
    let out = weakgpu()
        .arg("sweep")
        .arg("--merge")
        .arg(&outs[0])
        .output()
        .unwrap();
    assert!(
        !out.status.success(),
        "merge with a missing shard must fail"
    );
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("missing shard"), "{err}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_answers_a_jsonl_batch_and_persists_its_cache() {
    use std::io::Write as _;

    let dir = std::env::temp_dir().join(format!("weakgpu-serve-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let cache = dir.join("verdicts.wgc");
    let batch = concat!(
        "{\"id\": 1, \"test\": \"mp+inter-CTA\"}\n",
        "{\"id\": 2, \"test\": \"mp+inter-CTA\", \"model\": \"sc\"}\n",
        "{\"id\": 3, \"op\": \"shutdown\"}\n",
    );
    let run = |readonly: bool| {
        let mut cmd = weakgpu();
        cmd.arg("serve").arg("--cache-file").arg(&cache);
        if readonly {
            cmd.arg("--cache-readonly");
        }
        let mut child = cmd
            .stdin(std::process::Stdio::piped())
            .stdout(std::process::Stdio::piped())
            .spawn()
            .unwrap();
        child
            .stdin
            .take()
            .unwrap()
            .write_all(batch.as_bytes())
            .unwrap();
        let out = child.wait_with_output().unwrap();
        assert!(out.status.success(), "serve exited {:?}", out.status);
        let stdout = String::from_utf8(out.stdout).unwrap();
        let lines: Vec<&str> = stdout.lines().collect();
        assert_eq!(lines.len(), 3, "one response per request: {stdout}");
        // mp is PTX-allowed and SC-forbidden; shutdown is acknowledged.
        assert!(
            lines[0].contains("\"condition_witnessed\": true"),
            "{stdout}"
        );
        assert!(
            lines[1].contains("\"condition_witnessed\": false"),
            "{stdout}"
        );
        assert!(lines[2].contains("\"shutting_down\": true"), "{stdout}");
        stdout
    };

    let cold = run(false);
    assert!(cold.contains("\"cached\": false"), "{cold}");
    assert!(
        std::fs::read_to_string(&cache)
            .unwrap()
            .starts_with("weakgpu-cache/1"),
        "shutdown must flush a versioned cache file"
    );
    // Second daemon warm-starts from the flushed file: same verdicts,
    // no enumeration.
    let warm = run(true);
    assert!(!warm.contains("\"cached\": false"), "{warm}");
    assert!(warm.contains("\"cached\": true"), "{warm}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn misspelt_flags_get_a_did_you_mean_hint() {
    let out = weakgpu()
        .args(["sweep", "--cache-fiel", "x"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("did you mean \"--cache-file\"?"), "{err}");

    let out = weakgpu()
        .args(["serve", "--cache-redonly"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("did you mean \"--cache-readonly\"?"), "{err}");

    // `campaign` and `check` take positional names/paths, so only
    // dashed leftovers are treated as misspelt flags.
    let out = weakgpu()
        .args(["campaign", "--iterashuns", "10"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("did you mean \"--iterations\"?"), "{err}");

    let out = weakgpu().args(["check", "--bultin"]).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("did you mean \"--builtin\"?"), "{err}");

    let out = weakgpu()
        .args(["sweep", "--bathced", "--family", "small"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("did you mean \"--batched\"?"), "{err}");
}
