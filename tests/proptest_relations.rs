//! Property-based tests for the relational algebra underlying the `.cat`
//! evaluator — the laws a herd-style engine silently relies on.

use proptest::prelude::*;
use weakgpu::axiom::relation::{EventSet, Relation};

const N: usize = 9;

fn arb_relation() -> impl Strategy<Value = Relation> {
    prop::collection::vec((0..N, 0..N), 0..20).prop_map(|pairs| Relation::from_pairs(N, pairs))
}

fn arb_set() -> impl Strategy<Value = EventSet> {
    prop::collection::vec(0..N, 0..N).prop_map(|xs| EventSet::from_iter_n(N, xs))
}

proptest! {
    // Pure in-memory algebra: cheap per case, so a higher count is fine,
    // but stay bounded for CI (PROPTEST_CASES caps this further if set).
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn union_is_commutative_and_associative(a in arb_relation(), b in arb_relation(), c in arb_relation()) {
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
    }

    #[test]
    fn intersection_distributes_over_union(a in arb_relation(), b in arb_relation(), c in arb_relation()) {
        prop_assert_eq!(
            a.inter(&b.union(&c)),
            a.inter(&b).union(&a.inter(&c))
        );
    }

    #[test]
    fn difference_laws(a in arb_relation(), b in arb_relation()) {
        prop_assert_eq!(a.diff(&b).inter(&b).len(), 0);
        prop_assert_eq!(a.diff(&b).union(&a.inter(&b)), a.clone());
    }

    #[test]
    fn composition_is_associative(a in arb_relation(), b in arb_relation(), c in arb_relation()) {
        prop_assert_eq!(a.seq(&b).seq(&c), a.seq(&b.seq(&c)));
    }

    #[test]
    fn identity_is_neutral_for_composition(a in arb_relation()) {
        let id = Relation::identity(N);
        prop_assert_eq!(a.seq(&id), a.clone());
        prop_assert_eq!(id.seq(&a), a.clone());
    }

    #[test]
    fn inverse_is_involutive_and_antidistributes(a in arb_relation(), b in arb_relation()) {
        prop_assert_eq!(a.inverse().inverse(), a.clone());
        prop_assert_eq!(a.seq(&b).inverse(), b.inverse().seq(&a.inverse()));
    }

    #[test]
    fn transitive_closure_is_a_closure(a in arb_relation()) {
        let t = a.transitive_closure();
        // Contains the original, transitive, idempotent.
        prop_assert_eq!(t.union(&a), t.clone());
        prop_assert_eq!(t.seq(&t).union(&t), t.clone());
        prop_assert_eq!(t.transitive_closure(), t.clone());
    }

    #[test]
    fn acyclicity_agrees_with_closure_irreflexivity(a in arb_relation()) {
        // r is acyclic iff r+ is irreflexive — the textbook definition the
        // DFS implementation must match.
        prop_assert_eq!(a.is_acyclic(), a.transitive_closure().is_irreflexive());
    }

    #[test]
    fn restriction_is_monotone(a in arb_relation(), d in arb_set(), r in arb_set()) {
        let restricted = a.restrict(&d, &r);
        prop_assert!(restricted.len() <= a.len());
        for (x, y) in restricted.iter_pairs() {
            prop_assert!(d.contains(x) && r.contains(y));
            prop_assert!(a.contains(x, y));
        }
    }

    #[test]
    fn subrelations_of_acyclic_are_acyclic(a in arb_relation(), d in arb_set(), r in arb_set()) {
        if a.is_acyclic() {
            prop_assert!(a.restrict(&d, &r).is_acyclic());
        }
    }
}
