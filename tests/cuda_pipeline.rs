//! End-to-end: the paper's Fig. 2 CUDA lock, expressed in the mini-CUDA
//! layer, compiled through the Tab. 5 mapping, and run on the simulator —
//! reproducing the cas-sl result from source-level CUDA rather than from
//! the hand-distilled PTX.

use weakgpu::harness::runner::{run_test, RunConfig};
use weakgpu::litmus::cuda::{
    compile_thread, cuda_by_example_lock, cuda_by_example_unlock, var_register, CudaExpr, CudaStmt,
};
use weakgpu::litmus::{FinalExpr, LitmusTest, Loc, Predicate, ThreadScope};
use weakgpu::sim::chip::{Chip, Incantations};

/// Builds the critical-section test from CUDA source: T0 writes data and
/// unlocks; T1 locks and reads the data. Weak outcome: lock acquired yet
/// stale data read.
fn lock_test(fenced: bool) -> LitmusTest {
    let mut t0 = vec![CudaStmt::Store {
        loc: Loc::new("x"),
        value: CudaExpr::Lit(1),
        volatile: false,
    }];
    t0.extend(cuda_by_example_unlock(fenced));

    let mut t1 = cuda_by_example_lock(fenced);
    t1.push(CudaStmt::Load {
        var: "data".into(),
        loc: Loc::new("x"),
        volatile: false,
    });
    let regs = var_register(&t1);
    let data = regs["data"].clone();

    LitmusTest::builder(if fenced {
        "fig2-lock+fences"
    } else {
        "fig2-lock"
    })
    .global("x", 0)
    .global("mutex", 1) // T0 holds the lock initially, as in cas-sl
    .thread(compile_thread(&t0))
    .thread(compile_thread(&t1))
    .scope(ThreadScope::InterCta)
    .exists(Predicate::Eq(FinalExpr::Reg(1, data), 0))
    .build()
    .unwrap()
}

fn stale_reads(test: &LitmusTest, chip: Chip) -> u64 {
    let cfg = RunConfig {
        iterations: 60_000,
        incantations: Incantations::best_inter_cta(),
        seed: 0xcdaa,
        parallelism: None,
    };
    run_test(test, chip, &cfg).unwrap().witnesses
}

#[test]
fn fig2_lock_from_cuda_source_reads_stale_data() {
    // The spin loop means T1 only finishes once it *has* the lock, so any
    // witness is a stale read inside the critical section.
    let buggy = lock_test(false);
    assert!(
        stale_reads(&buggy, Chip::GtxTitan) > 0,
        "the Fig. 2 lock must read stale data on Kepler"
    );
    assert!(stale_reads(&buggy, Chip::RadeonHd7970) > 0);
    assert_eq!(
        stale_reads(&buggy, Chip::Gtx280),
        0,
        "no weak behaviour on the GTX 280"
    );
}

#[test]
fn fig2_lock_with_erratum_fences_is_correct() {
    let fixed = lock_test(true);
    for chip in [Chip::GtxTitan, Chip::TeslaC2075, Chip::RadeonHd7970] {
        assert_eq!(
            stale_reads(&fixed, chip),
            0,
            "{chip}: the erratum's fences must fix the lock"
        );
    }
}

#[test]
fn compiled_lock_passes_optcheck() {
    // The Tab. 5 output survives a clean -O3 compile untouched.
    let report =
        weakgpu::optcheck::check_test(&lock_test(true), &weakgpu::optcheck::CompilerConfig::o3());
    assert!(report.consistent, "{:?}", report.issues);
}
