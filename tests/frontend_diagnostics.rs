//! Integration suite for the shared diagnostics frontend
//! (`weakgpu::front`): caret diagnostics with `path:line:col`,
//! multi-error recovery, differential equivalence between the new packrat
//! parsers and the legacy single-error parsers, printer/parser
//! round-trips over the corpora and generated families, and no-panic
//! fuzzing of both grammars.

use proptest::prelude::*;

use weakgpu::axiom::cat::{self, CatProgram};
use weakgpu::diy::{generate, GenConfig};
use weakgpu::front::{render_all, SourceFile};
use weakgpu::litmus::{corpus, corpus_extra, parser, LitmusTest};
use weakgpu::models::sources;

/// Every built-in test, printed back to its textual form.
fn corpus_texts() -> Vec<(String, String)> {
    corpus::all()
        .into_iter()
        .chain(corpus_extra::all_extra())
        .map(|t| (t.name().to_owned(), t.to_string()))
        .collect()
}

/// The shipped on-disk `.litmus` files.
fn litmus_files() -> Vec<(String, String)> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("litmus");
    let mut v = Vec::new();
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "litmus") {
            v.push((
                path.display().to_string(),
                std::fs::read_to_string(&path).unwrap(),
            ));
        }
    }
    assert!(v.len() >= 6, "shipped corpus missing: {} files", v.len());
    v
}

// ------------------------------------------------ caret diagnostics

#[test]
fn malformed_litmus_yields_path_line_col_caret() {
    let src = "GPU_PTX bad\n{ 0:r1=x; }\nfrobnicate r1 ;\nexists (x == 1)\n";
    let file = SourceFile::new("tests/bad.litmus", src);
    let parsed = parser::parse_with_diagnostics(&file);
    assert!(parsed.has_errors());
    let rendered = render_all(&parsed.diagnostics, &file);
    assert!(rendered.contains("tests/bad.litmus:3:1"), "{rendered}");
    assert!(rendered.contains("frobnicate r1 ;"), "{rendered}");
    assert!(rendered.contains("^^^^^^^^^^"), "{rendered}");
}

#[test]
fn malformed_cat_yields_path_line_col_caret() {
    let src = "let com = rf | co\nacyclic (com | as oops\n";
    let file = SourceFile::new("models/bad.cat", src);
    let parsed = CatProgram::parse_with_diagnostics(&file);
    assert!(parsed.has_errors());
    let rendered = render_all(&parsed.diagnostics, &file);
    assert!(rendered.contains("models/bad.cat:2:"), "{rendered}");
    assert!(rendered.contains("acyclic (com | as oops"), "{rendered}");
    assert!(rendered.contains('^'), "{rendered}");
}

#[test]
fn multi_error_files_report_every_problem_in_one_pass() {
    // Two bad opcodes on one row, in different columns.
    let lit = "GPU_PTX multi\n\
        {0:.reg .s32 r1; 1:.reg .s32 r2}\n\
        T0 | T1 ;\n\
        frobnicate r1 | zorble r2 ;\n\
        ScopeTree(grid(cta(warp T0)(warp T1)))\n\
        exists (0:r1=0)\n";
    let file = SourceFile::new("multi.litmus", lit);
    let parsed = parser::parse_with_diagnostics(&file);
    let errors: Vec<_> = parsed.diagnostics.iter().filter(|d| d.is_error()).collect();
    assert!(errors.len() >= 2, "{:?}", parsed.diagnostics);

    // Three bad statements in one .cat file.
    let cat = "let = po\nacyclic po rf as c\nlet y = ~po\n";
    let file = SourceFile::new("multi.cat", cat);
    let parsed = CatProgram::parse_with_diagnostics(&file);
    let errors: Vec<_> = parsed.diagnostics.iter().filter(|d| d.is_error()).collect();
    assert!(errors.len() >= 2, "{:?}", parsed.diagnostics);
}

// ------------------------------------------------ differential suite

#[test]
fn new_litmus_parser_matches_legacy_on_all_corpora() {
    let mut texts = corpus_texts();
    texts.extend(litmus_files());
    for (name, text) in &texts {
        let new = parser::parse(text).unwrap_or_else(|e| panic!("{name} (new): {e}"));
        let old = parser::legacy::parse(text).unwrap_or_else(|e| panic!("{name} (legacy): {e}"));
        assert_eq!(new, old, "{name}: ASTs diverge");
    }
}

#[test]
fn new_cat_parser_matches_legacy_on_shipped_models() {
    for &(name, src) in sources::ALL {
        let new = CatProgram::parse(src).unwrap_or_else(|e| panic!("{name} (new): {e}"));
        let old = cat::legacy::parse(src).unwrap_or_else(|e| panic!("{name} (legacy): {e}"));
        assert_eq!(new, old, "{name}: ASTs diverge");
    }
}

// ------------------------------------------------ round-trips

fn assert_roundtrip(name: &str, test: &LitmusTest) {
    let printed = test.to_string();
    let reparsed = parser::parse(&printed)
        .unwrap_or_else(|e| panic!("{name}: reparse failed: {e}\n{printed}"));
    // Compare everything semantic; `doc` is builder-only metadata that the
    // textual format carries as a comment, which parsing (rightly) drops.
    assert_eq!(test.name(), reparsed.name(), "{name}");
    assert_eq!(test.threads(), reparsed.threads(), "{name}");
    assert_eq!(test.memory(), reparsed.memory(), "{name}");
    assert_eq!(test.scope_tree(), reparsed.scope_tree(), "{name}");
    assert_eq!(test.cond(), reparsed.cond(), "{name}");
    let init = |t: &LitmusTest| {
        t.reg_init()
            .map(|(tid, r, v)| (tid, r.clone(), v.clone()))
            .collect::<Vec<_>>()
    };
    assert_eq!(init(test), init(&reparsed), "{name}");
    // The diagnostics entry point agrees and is silent on good input.
    let file = SourceFile::new(name, &printed);
    let parsed = parser::parse_with_diagnostics(&file);
    assert!(parsed.diagnostics.is_empty(), "{:?}", parsed.diagnostics);
}

#[test]
fn printer_parser_roundtrip_over_corpora() {
    for test in corpus::all().iter().chain(corpus_extra::all_extra().iter()) {
        assert_roundtrip(test.name(), test);
    }
}

#[test]
fn printer_parser_roundtrip_over_generated_family() {
    let family = generate(&GenConfig::named("small").unwrap());
    assert!(!family.is_empty());
    // A deterministic sample: every 7th test keeps the suite fast while
    // spanning the family's shapes.
    for test in family.iter().step_by(7) {
        assert_roundtrip(test.name(), test);
    }
}

#[test]
fn cat_display_roundtrip_over_shipped_models() {
    for &(name, src) in sources::ALL {
        let p = CatProgram::parse(src).unwrap();
        let reparsed = CatProgram::parse(&p.to_string())
            .unwrap_or_else(|e| panic!("{name}: reparse failed: {e}"));
        assert_eq!(p, reparsed, "{name}");
    }
}

// ------------------------------------------------ no-panic fuzzing

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Arbitrary bytes never panic either frontend — they produce
    /// diagnostics (or succeed) instead.
    #[test]
    fn parsers_never_panic_on_arbitrary_bytes(bytes in prop::collection::vec(0u8..=255u8, 0..200)) {
        let text = String::from_utf8_lossy(&bytes).into_owned();
        let file = SourceFile::new("<fuzz>", &*text);
        let _ = parser::parse_with_diagnostics(&file);
        let _ = CatProgram::parse_with_diagnostics(&file);
        let _ = parser::parse(&text);
        let _ = CatProgram::parse(&text);
    }

    /// Mutated corpus text never panics the new parser, and whenever the
    /// new parser accepts a mutation the legacy parser agrees exactly.
    /// (The direction matters: legacy aborts on some malformed names that
    /// the new frontend reports as diagnostics, so legacy is only run on
    /// inputs the new parser accepted.)
    #[test]
    fn mutated_corpus_never_panics_and_stays_equivalent(
        which in 0usize..6,
        edits in prop::collection::vec((0usize..4096, 0u8..=127u8), 1..8),
    ) {
        let texts = corpus_texts();
        let (_, base) = &texts[which % texts.len()];
        let mut bytes = base.clone().into_bytes();
        for &(pos, byte) in &edits {
            let i = pos % bytes.len();
            bytes[i] = byte;
        }
        let text = String::from_utf8_lossy(&bytes).into_owned();
        let file = SourceFile::new("<mutated>", &text);
        let _ = parser::parse_with_diagnostics(&file);
        if let Ok(new) = parser::parse(&text) {
            let old = parser::legacy::parse(&text);
            prop_assert!(old.is_ok(), "new accepts, legacy rejects: {:?}\n{text}", old.err());
            prop_assert_eq!(new, old.unwrap());
        }
    }

    /// Same property for the `.cat` grammar: mutations never panic, and
    /// legacy-accepted mutations parse identically under the new frontend
    /// (which accepts a superset, so only the legacy-Ok direction holds).
    #[test]
    fn mutated_cat_sources_never_panic_and_stay_equivalent(
        which in 0usize..6,
        edits in prop::collection::vec((0usize..1024, 0u8..=127u8), 1..8),
    ) {
        let (_, base) = sources::ALL[which % sources::ALL.len()];
        let mut bytes = base.as_bytes().to_vec();
        for &(pos, byte) in &edits {
            let i = pos % bytes.len();
            bytes[i] = byte;
        }
        let text = String::from_utf8_lossy(&bytes).into_owned();
        let file = SourceFile::new("<mutated>", &text);
        let _ = CatProgram::parse_with_diagnostics(&file);
        if let Ok(old) = cat::legacy::parse(&text) {
            let new = CatProgram::parse(&text);
            prop_assert!(new.is_ok(), "legacy accepts, new rejects: {:?}\n{text}", new.err());
            prop_assert_eq!(new.unwrap(), old);
        }
    }
}
