//! Property-based tests across the whole pipeline.
//!
//! The central property mirrors the paper's validation: for *arbitrary*
//! straight-line litmus programs, every outcome the simulator produces
//! must appear among the axiomatic engine's candidate outcomes and be
//! allowed by the PTX model (simulator ⊆ model).

use proptest::prelude::*;

use weakgpu::axiom::enumerate::{enumerate_executions, model_outcomes, EnumConfig};
use weakgpu::harness::runner::{run_test, RunConfig};
use weakgpu::litmus::{build, FinalExpr, Instr, LitmusTest, Predicate, ThreadScope};
use weakgpu::models::ptx_model;
use weakgpu::sim::chip::{Chip, Incantations};

const LOCS: [&str; 2] = ["x", "y"];

/// One random instruction over two locations, writing registers named
/// after `(thread, index)` so they are unique.
fn arb_instr(tid: usize, idx: usize) -> impl Strategy<Value = Instr> {
    let reg = format!("r{tid}_{idx}");
    prop_oneof![
        // ld
        (0..2usize).prop_map({
            let reg = reg.clone();
            move |l| build::ld(&reg, LOCS[l])
        }),
        // st of a small constant
        (0..2usize, 1..3i64).prop_map(|(l, v)| build::st(LOCS[l], v)),
        // membar.gl / membar.cta
        Just(build::membar_gl()),
        Just(build::membar_cta()),
        // cas
        (0..2usize, 0..2i64, 1..3i64).prop_map({
            let reg = reg.clone();
            move |(l, e, d)| build::cas(&reg, LOCS[l], e, d)
        }),
        // exch
        (0..2usize, 1..3i64).prop_map({
            let reg = reg.clone();
            move |(l, v)| build::exch(&reg, LOCS[l], v)
        }),
        // inc
        (0..2usize).prop_map(move |l| build::inc(&reg, LOCS[l])),
    ]
}

fn arb_thread(tid: usize) -> impl Strategy<Value = Vec<Instr>> {
    prop::collection::vec(Just(()), 1..=3).prop_flat_map(move |slots| {
        slots
            .into_iter()
            .enumerate()
            .map(|(i, ())| arb_instr(tid, i))
            .collect::<Vec<_>>()
    })
}

fn arb_test() -> impl Strategy<Value = LitmusTest> {
    (arb_thread(0), arb_thread(1), prop::bool::ANY).prop_map(|(t0, t1, inter)| {
        // Observe every register any instruction writes.
        let mut terms = Vec::new();
        for (tid, thread) in [&t0, &t1].into_iter().enumerate() {
            for instr in thread {
                if let Some(r) = instr.written_reg() {
                    terms.push(Predicate::Eq(FinalExpr::Reg(tid, r.clone()), 0));
                }
            }
        }
        for l in LOCS {
            terms.push(Predicate::mem_eq(l, 0));
        }
        let scope = if inter {
            ThreadScope::InterCta
        } else {
            ThreadScope::IntraCta
        };
        LitmusTest::builder("random")
            .global("x", 0)
            .global("y", 0)
            .thread(t0)
            .thread(t1)
            .scope(scope)
            .exists(Predicate::all(terms))
            .build()
            .expect("random straight-line tests are valid")
    })
}

/// Randomly generated programs can explode combinatorially (several
/// same-location RMWs multiply oracle, rf and co choices); such cases are
/// discarded rather than ground through — the property is about the
/// tractable universe the paper's tests live in.
fn tractable_enum_config() -> EnumConfig {
    EnumConfig {
        max_executions: 60_000,
        max_traces_per_thread: 512,
        ..EnumConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    /// The flagship property: hardware-simulator outcomes ⊆ model-allowed
    /// outcomes, for arbitrary programs (cf. paper Sec. 5.4).
    #[test]
    fn simulator_is_sound_wrt_ptx_model(test in arb_test(), seed in 0u64..1_000) {
        let verdict = match model_outcomes(&test, &ptx_model(), &tractable_enum_config()) {
            Ok(v) => v,
            Err(_) => return Err(TestCaseError::reject("candidate explosion")),
        };
        let cfg = RunConfig {
            iterations: 120,
            incantations: Incantations::best_inter_cta(),
            seed,
            parallelism: Some(1),
        };
        let report = run_test(&test, Chip::GtxTitan, &cfg).unwrap();
        for (outcome, _) in report.histogram.iter() {
            prop_assert!(
                verdict.allowed_outcomes.contains(outcome),
                "simulator produced model-forbidden outcome {outcome} for\n{test}"
            );
        }
    }

    /// Every simulator outcome is a candidate outcome (the enumerator's
    /// universe covers the operational machine), even on a strong chip.
    #[test]
    fn simulator_outcomes_are_candidates(test in arb_test(), seed in 0u64..1_000) {
        let cands = match enumerate_executions(&test, &tractable_enum_config()) {
            Ok(c) => c,
            Err(_) => return Err(TestCaseError::reject("candidate explosion")),
        };
        let all: std::collections::BTreeSet<_> = cands
            .into_iter()
            .map(|c| c.outcome)
            .collect();
        let cfg = RunConfig {
            iterations: 60,
            incantations: Incantations::all_on(),
            seed,
            parallelism: Some(1),
        };
        for chip in [Chip::Gtx280, Chip::RadeonHd7970] {
            let report = run_test(&test, chip, &cfg).unwrap();
            for (outcome, _) in report.histogram.iter() {
                prop_assert!(
                    all.contains(outcome),
                    "{chip}: outcome {outcome} not among {} candidates for\n{test}",
                    all.len()
                );
            }
        }
    }

    /// Printing and re-parsing a random test preserves it.
    #[test]
    fn print_parse_roundtrip(test in arb_test()) {
        let text = test.to_string();
        let reparsed = weakgpu::litmus::parser::parse(&text)
            .map_err(|e| TestCaseError::fail(format!("{e}\n{text}")))?;
        prop_assert_eq!(test.threads(), reparsed.threads());
        prop_assert_eq!(test.cond(), reparsed.cond());
        prop_assert_eq!(test.scope_tree(), reparsed.scope_tree());
        prop_assert_eq!(test.memory(), reparsed.memory());
    }

    /// Fixed seeds make harness runs reproducible bit-for-bit.
    #[test]
    fn harness_is_deterministic(test in arb_test(), seed in 0u64..1_000) {
        let cfg = RunConfig {
            iterations: 50,
            incantations: Incantations::best_inter_cta(),
            seed,
            parallelism: Some(2),
        };
        let a = run_test(&test, Chip::TeslaC2075, &cfg).unwrap();
        let b = run_test(&test, Chip::TeslaC2075, &cfg).unwrap();
        prop_assert_eq!(a.histogram, b.histogram);
    }
}
