//! Property tests for the litmus representation layer: the textual format
//! round-trips, predicates behave like boolean algebra, and scope trees
//! classify consistently.

use proptest::prelude::*;
use weakgpu_litmus::{
    build, parser, printer, FinalExpr, Instr, LitmusTest, Outcome, Predicate, ScopeTree,
    ThreadScope,
};

fn arb_operand_reg() -> impl Strategy<Value = String> {
    (0..6u32).prop_map(|i| format!("r{i}"))
}

fn arb_loc() -> impl Strategy<Value = &'static str> {
    prop_oneof![Just("x"), Just("y"), Just("z")]
}

fn arb_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        (arb_operand_reg(), arb_loc()).prop_map(|(r, l)| build::ld(&r, l)),
        (arb_operand_reg(), arb_loc()).prop_map(|(r, l)| build::ld_ca(&r, l)),
        (arb_operand_reg(), arb_loc()).prop_map(|(r, l)| build::ld_volatile(&r, l)),
        (arb_loc(), -4i64..5).prop_map(|(l, v)| build::st(l, v)),
        (arb_loc(), -4i64..5).prop_map(|(l, v)| build::st_volatile(l, v)),
        Just(build::membar_cta()),
        Just(build::membar_gl()),
        Just(build::membar_sys()),
        (arb_operand_reg(), arb_loc(), 0i64..3, 1i64..4)
            .prop_map(|(r, l, e, d)| build::cas(&r, l, e, d)),
        (arb_operand_reg(), arb_loc(), 0i64..4).prop_map(|(r, l, v)| build::exch(&r, l, v)),
        (arb_operand_reg(), arb_loc()).prop_map(|(r, l)| build::inc(&r, l)),
        (arb_operand_reg(), -4i64..5).prop_map(|(r, v)| build::mov(&r, v)),
        (arb_operand_reg(), arb_operand_reg(), -4i64..5).prop_map(|(d, a, b)| build::add(
            &d,
            build::reg(&a),
            build::imm(b)
        )),
        (arb_operand_reg(), arb_operand_reg(), 0i64..3).prop_map(|(d, a, b)| build::setp_eq(
            &d,
            build::reg(&a),
            build::imm(b)
        )),
    ]
}

fn arb_program() -> impl Strategy<Value = LitmusTest> {
    (
        prop::collection::vec(arb_instr(), 1..5),
        prop::collection::vec(arb_instr(), 1..5),
        prop::bool::ANY,
    )
        .prop_map(|(t0, t1, inter)| {
            let mut pred = Predicate::True;
            for (tid, thread) in [&t0, &t1].into_iter().enumerate() {
                for i in thread {
                    if let Some(r) = i.written_reg() {
                        pred = pred.and(Predicate::Eq(FinalExpr::Reg(tid, r.clone()), 0));
                    }
                }
            }
            LitmusTest::builder("prop")
                .global("x", 0)
                .global("y", 1)
                .global("z", 0)
                .thread(t0)
                .thread(t1)
                .scope(if inter {
                    ThreadScope::InterCta
                } else {
                    ThreadScope::IntraCta
                })
                .exists(pred)
                .build()
                .expect("generated programs are structurally valid")
        })
}

proptest! {
    // Build/print/parse round-trips are cheap but not free; 64 keeps the
    // suite CI-friendly (PROPTEST_CASES caps this further if set).
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn tests_roundtrip_through_the_textual_format(test in arb_program()) {
        let text = test.to_string();
        let back = parser::parse(&text)
            .map_err(|e| TestCaseError::fail(format!("{e}\n{text}")))?;
        prop_assert_eq!(test.threads(), back.threads());
        prop_assert_eq!(test.memory(), back.memory());
        prop_assert_eq!(test.scope_tree(), back.scope_tree());
        prop_assert_eq!(test.cond(), back.cond());
        prop_assert_eq!(test.reg_init().count(), back.reg_init().count());
    }

    #[test]
    fn individual_instructions_roundtrip(instr in arb_instr()) {
        // Render one instruction and re-parse it in a one-thread skeleton.
        let text = format!(
            "GPU_PTX one\n{{0:.reg .s32 r0; 0:.reg .s32 r1; 0:.reg .s32 r2; \
             0:.reg .s32 r3; 0:.reg .s32 r4; 0:.reg .s32 r5}}\nT0 ;\n{} ;\n\
             x: global, y: global, z: global\nexists (true)\n",
            printer::render_instr(&instr)
        );
        let parsed = parser::parse(&text)
            .map_err(|e| TestCaseError::fail(format!("{e}\n{text}")))?;
        prop_assert_eq!(&parsed.threads()[0][0], &instr);
    }

    #[test]
    fn predicate_negation_flips_eval(
        vals in prop::collection::vec(-3i64..4, 3),
        probe in -3i64..4,
    ) {
        let mut outcome = Outcome::new();
        for (i, v) in vals.iter().enumerate() {
            outcome.set(FinalExpr::reg(0, format!("r{i}").as_str()), *v);
        }
        let p = Predicate::reg_eq(0, "r0", probe)
            .or(Predicate::reg_eq(0, "r1", probe));
        prop_assert_eq!(p.eval(&outcome), !p.clone().negate().eval(&outcome));
        // De Morgan against the other connective.
        let q = Predicate::Ne(FinalExpr::reg(0, "r0"), probe)
            .and(Predicate::Ne(FinalExpr::reg(0, "r1"), probe));
        prop_assert_eq!(p.eval(&outcome), !q.eval(&outcome));
    }

    #[test]
    fn scope_trees_classify_consistently(n in 2usize..6, scope_kind in 0..3usize) {
        let scope = [ThreadScope::IntraWarp, ThreadScope::IntraCta, ThreadScope::InterCta][scope_kind];
        let tree = ScopeTree::for_scope(scope, n);
        prop_assert_eq!(tree.num_threads(), n);
        for a in 0..n {
            for b in 0..n {
                // same_warp ⊆ same_cta.
                if tree.same_warp(a, b) {
                    prop_assert!(tree.same_cta(a, b));
                }
            }
        }
        match scope {
            ThreadScope::IntraWarp => prop_assert!(tree.same_warp(0, n - 1)),
            ThreadScope::IntraCta => {
                prop_assert!(tree.same_cta(0, n - 1));
                prop_assert!(!tree.same_warp(0, n - 1));
            }
            ThreadScope::InterCta => prop_assert!(!tree.same_cta(0, n - 1)),
        }
        // Display round-trips through the parser as part of a test.
        if n == 2 {
            prop_assert_eq!(tree.classify(), Some(scope));
        }
    }

    #[test]
    fn outcome_ordering_is_total_and_stable(
        a in prop::collection::btree_map(0..4usize, -3i64..4, 1..4),
        b in prop::collection::btree_map(0..4usize, -3i64..4, 1..4),
    ) {
        let mk = |m: &std::collections::BTreeMap<usize, i64>| -> Outcome {
            m.iter()
                .map(|(i, v)| (FinalExpr::reg(0, format!("r{i}").as_str()), *v))
                .collect()
        };
        let (oa, ob) = (mk(&a), mk(&b));
        // Total order: exactly one of <, ==, > holds.
        let lt = oa < ob;
        let gt = oa > ob;
        let eq = oa == ob;
        prop_assert_eq!(lt as u8 + gt as u8 + eq as u8, 1);
        // Display keys canonically: equal outcomes render identically.
        if eq {
            prop_assert_eq!(oa.to_string(), ob.to_string());
        }
    }
}
