//! Ergonomic constructors for [`Instr`], used heavily by the [`crate::corpus`]
//! and by the `weakgpu-diy` test generator.
//!
//! Address arguments accept either a location name (`"x"`, becoming a `Sym`
//! operand) or a pointer-holding register via [`reg`].
//!
//! ```
//! use weakgpu_litmus::build::*;
//! use weakgpu_litmus::FenceScope;
//!
//! let thread0 = vec![st("x", 1), membar(FenceScope::Gl), st("y", 1)];
//! assert_eq!(thread0.len(), 3);
//! ```

use crate::instr::{CacheOp, FenceScope, Instr, Label, Operand, Reg};
use crate::value::Loc;

/// A register operand, for use where an address or source operand is needed.
pub fn reg(name: &str) -> Operand {
    Operand::Reg(Reg::new(name))
}

/// An immediate operand.
pub fn imm(n: i64) -> Operand {
    Operand::Imm(n)
}

/// A symbolic address operand (the address of location `name`).
pub fn sym(name: &str) -> Operand {
    Operand::Sym(Loc::new(name))
}

fn addr_of(a: impl Into<AddrArg>) -> Operand {
    a.into().0
}

/// Anything acceptable as an address: a location name or an [`Operand`].
pub struct AddrArg(Operand);

impl From<&str> for AddrArg {
    fn from(s: &str) -> Self {
        AddrArg(Operand::Sym(Loc::new(s)))
    }
}

impl From<Operand> for AddrArg {
    fn from(o: Operand) -> Self {
        AddrArg(o)
    }
}

/// `ld.cg dst,[addr]` — the default (L2-targeting) load.
pub fn ld(dst: &str, addr: impl Into<AddrArg>) -> Instr {
    Instr::Ld {
        dst: Reg::new(dst),
        addr: addr_of(addr),
        cache: CacheOp::Cg,
        volatile: false,
    }
}

/// `ld.ca dst,[addr]` — an L1-targeting load (paper Sec. 3.1.2).
pub fn ld_ca(dst: &str, addr: impl Into<AddrArg>) -> Instr {
    Instr::Ld {
        dst: Reg::new(dst),
        addr: addr_of(addr),
        cache: CacheOp::Ca,
        volatile: false,
    }
}

/// `ld.volatile dst,[addr]`.
pub fn ld_volatile(dst: &str, addr: impl Into<AddrArg>) -> Instr {
    Instr::Ld {
        dst: Reg::new(dst),
        addr: addr_of(addr),
        cache: CacheOp::Cg,
        volatile: true,
    }
}

/// `st.cg [addr],imm`.
pub fn st(addr: impl Into<AddrArg>, value: i64) -> Instr {
    Instr::St {
        addr: addr_of(addr),
        src: Operand::Imm(value),
        cache: CacheOp::Cg,
        volatile: false,
    }
}

/// `st.cg [addr],reg`.
pub fn st_reg(addr: impl Into<AddrArg>, src: &str) -> Instr {
    Instr::St {
        addr: addr_of(addr),
        src: Operand::Reg(Reg::new(src)),
        cache: CacheOp::Cg,
        volatile: false,
    }
}

/// `st.volatile [addr],imm`.
pub fn st_volatile(addr: impl Into<AddrArg>, value: i64) -> Instr {
    Instr::St {
        addr: addr_of(addr),
        src: Operand::Imm(value),
        cache: CacheOp::Cg,
        volatile: true,
    }
}

/// `st.volatile [addr],reg`.
pub fn st_volatile_reg(addr: impl Into<AddrArg>, src: &str) -> Instr {
    Instr::St {
        addr: addr_of(addr),
        src: Operand::Reg(Reg::new(src)),
        cache: CacheOp::Cg,
        volatile: true,
    }
}

/// `atom.cas dst,[addr],expected,desired`.
pub fn cas(dst: &str, addr: impl Into<AddrArg>, expected: i64, desired: i64) -> Instr {
    Instr::Cas {
        dst: Reg::new(dst),
        addr: addr_of(addr),
        expected: Operand::Imm(expected),
        desired: Operand::Imm(desired),
    }
}

/// `atom.exch dst,[addr],src`.
pub fn exch(dst: &str, addr: impl Into<AddrArg>, value: i64) -> Instr {
    Instr::Exch {
        dst: Reg::new(dst),
        addr: addr_of(addr),
        src: Operand::Imm(value),
    }
}

/// `atom.inc dst,[addr]` — the paper's mapping of `atomicAdd(…, 1)`.
pub fn inc(dst: &str, addr: impl Into<AddrArg>) -> Instr {
    Instr::Inc {
        dst: Reg::new(dst),
        addr: addr_of(addr),
    }
}

/// `membar.scope`.
pub fn membar(scope: FenceScope) -> Instr {
    Instr::Membar { scope }
}

/// `membar.cta`.
pub fn membar_cta() -> Instr {
    membar(FenceScope::Cta)
}

/// `membar.gl`.
pub fn membar_gl() -> Instr {
    membar(FenceScope::Gl)
}

/// `membar.sys`.
pub fn membar_sys() -> Instr {
    membar(FenceScope::Sys)
}

/// `mov dst,src`.
pub fn mov(dst: &str, src: impl Into<Operand>) -> Instr {
    Instr::Mov {
        dst: Reg::new(dst),
        src: src.into(),
    }
}

/// `add dst,a,b`.
pub fn add(dst: &str, a: impl Into<Operand>, b: impl Into<Operand>) -> Instr {
    Instr::Add {
        dst: Reg::new(dst),
        a: a.into(),
        b: b.into(),
    }
}

/// `and dst,a,b`.
pub fn and(dst: &str, a: impl Into<Operand>, b: impl Into<Operand>) -> Instr {
    Instr::And {
        dst: Reg::new(dst),
        a: a.into(),
        b: b.into(),
    }
}

/// `xor dst,a,b`.
pub fn xor(dst: &str, a: impl Into<Operand>, b: impl Into<Operand>) -> Instr {
    Instr::Xor {
        dst: Reg::new(dst),
        a: a.into(),
        b: b.into(),
    }
}

/// `cvt dst,src`.
pub fn cvt(dst: &str, src: impl Into<Operand>) -> Instr {
    Instr::Cvt {
        dst: Reg::new(dst),
        src: src.into(),
    }
}

/// `setp.eq dst,a,b`.
pub fn setp_eq(dst: &str, a: impl Into<Operand>, b: impl Into<Operand>) -> Instr {
    Instr::SetpEq {
        dst: Reg::new(dst),
        a: a.into(),
        b: b.into(),
    }
}

/// `setp.ne dst,a,b`.
pub fn setp_ne(dst: &str, a: impl Into<Operand>, b: impl Into<Operand>) -> Instr {
    Instr::SetpNe {
        dst: Reg::new(dst),
        a: a.into(),
        b: b.into(),
    }
}

/// `bra target`.
pub fn bra(target: &str) -> Instr {
    Instr::Bra {
        target: Label::new(target),
    }
}

/// A label definition `name:`.
pub fn label(name: &str) -> Instr {
    Instr::LabelDef(Label::new(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_from_location_name() {
        let i = ld("r1", "x");
        assert_eq!(i.address().unwrap(), &sym("x"));
    }

    #[test]
    fn address_from_register() {
        let i = ld("r1", reg("r9"));
        assert_eq!(i.address().unwrap(), &reg("r9"));
    }

    #[test]
    fn default_cache_operator_is_cg() {
        match ld("r1", "x") {
            Instr::Ld { cache, .. } => assert_eq!(cache, CacheOp::Cg),
            _ => unreachable!(),
        }
    }
}
