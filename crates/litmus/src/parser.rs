//! Parser for the textual GPU litmus format (paper Fig. 12).
//!
//! The accepted grammar, line-oriented:
//!
//! ```text
//! GPU_PTX <name>
//! (* optional comment lines *)
//! { 0:.reg .s32 r0; 0:.reg .b64 r1 = x; … }      (optional, may span lines)
//! T0 | T1 ;
//! <instr> | <instr> ;                              (cells may be empty)
//! …
//! ScopeTree(grid(cta(warp T0)(warp T1)))
//! x: shared, y: global=1                           (optional; default global)
//! exists (0:r2=0 /\ 1:r2=0)                        (or ~exists / forall)
//! ```
//!
//! The implementation sits on [`weakgpu_front`]: the line-oriented outer
//! grammar derives precise [`Span`]s from borrowed slices via
//! [`SourceFile::span_of`], while the condition and scope-tree
//! sub-grammars run on a token [`Cursor`] with expected-set accumulation.
//! Errors are collected as [`Diagnostic`]s with per-cell / per-entry
//! recovery, so one pass over a broken file reports *every* problem:
//!
//! ```text
//! error: unknown opcode "frobnicate"
//!  --> tests/bad.litmus:3:1
//!   |
//! 3 | frobnicate r1 ;
//!   | ^^^^^^^^^^
//! ```
//!
//! [`parse`] is the classic single-error entry point, kept for existing
//! callers; [`parse_with_diagnostics`] is the full-fidelity one.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use weakgpu_front::{Cursor, Diagnostic, Parsed, SourceFile, Span, Token, TokenKind};

use crate::cond::{FinalCond, FinalExpr, Predicate, Quantifier};
use crate::instr::{CacheOp, FenceScope, Instr, Label, Operand, Reg};
use crate::program::{LitmusTest, ValidateError};
use crate::scope::ScopeTree;
use crate::value::{Loc, Value};

#[doc(hidden)]
pub mod legacy;

/// A parse failure, with a human-readable message and (1-based) line number
/// where available.
///
/// This is the compact error of the original API. The diagnostics-first
/// entry point [`parse_with_diagnostics`] reports rich spanned
/// [`Diagnostic`]s instead; this type survives as the projection of the
/// first error for callers that only want a one-liner.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// 1-based source line, when attributable.
    pub line: Option<usize>,
}

impl ParseError {
    fn new(message: impl Into<String>, line: Option<usize>) -> Self {
        ParseError {
            message: message.into(),
            line,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(l) => write!(f, "line {l}: {}", self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<ValidateError> for ParseError {
    fn from(e: ValidateError) -> Self {
        ParseError::new(e.to_string(), None)
    }
}

/// Parses a litmus test from its textual form.
///
/// Compatibility wrapper over [`parse_with_diagnostics`]: reports only the
/// first error, as a [`ParseError`].
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed syntax, and converts any
/// [`ValidateError`] raised while assembling the final test.
///
/// ```
/// let src = "\
/// GPU_PTX corr
/// {1:.reg .s32 r1; 1:.reg .s32 r2}
/// T0 | T1 ;
/// st.cg [x],1 | ld.cg r1,[x] ;
///             | ld.cg r2,[x] ;
/// ScopeTree(grid(cta(warp T0)(warp T1)))
/// x: global
/// exists (1:r1=1 /\\ 1:r2=0)
/// ";
/// let t = weakgpu_litmus::parser::parse(src).unwrap();
/// assert_eq!(t.name(), "corr");
/// assert_eq!(t.num_threads(), 2);
/// ```
pub fn parse(src: &str) -> Result<LitmusTest, ParseError> {
    let file = SourceFile::new("<litmus>", src);
    match parse_with_diagnostics(&file).into_result() {
        Ok(t) => Ok(t),
        Err(diags) => {
            let first = diags
                .iter()
                .find(|d| d.is_error())
                .cloned()
                .unwrap_or_else(|| Diagnostic::error("parse failed"));
            let line = first.line_in(&file);
            Err(ParseError::new(first.message, line))
        }
    }
}

/// Parses a litmus test, collecting *all* diagnostics in one pass.
///
/// Recovery is per instruction cell, per register-block entry and per
/// memory-map entry: a broken cell poisons only itself, so a file with
/// three bad opcodes yields three diagnostics. The value is `Some` when
/// enough of the test survived to assemble one, but
/// [`Parsed::into_result`] still fails if any *error* was reported.
pub fn parse_with_diagnostics(file: &SourceFile) -> Parsed<LitmusTest> {
    let mut diags: Vec<Diagnostic> = Vec::new();
    let sp = |s: &str| file.span_of(s).unwrap_or_else(|| file.eof_span());

    let rest_all: Vec<&str> = file
        .text()
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("(*") && !l.starts_with("//"))
        .collect();

    // Header.
    let Some(header) = rest_all.first().copied() else {
        diags.push(Diagnostic::error("empty litmus source").with_span(file.eof_span()));
        return Parsed::failure(diags);
    };
    let mut hparts = header.split_whitespace();
    let arch = hparts.next().unwrap_or_default();
    if arch != "GPU_PTX" {
        diags.push(
            Diagnostic::error(format!("expected GPU_PTX header, found {arch:?}"))
                .with_span(sp(if arch.is_empty() { header } else { arch })),
        );
        return Parsed::failure(diags);
    }
    let Some(name) = hparts.next().map(str::to_owned) else {
        diags.push(Diagnostic::error("missing test name in header").with_span(sp(header)));
        return Parsed::failure(diags);
    };

    let rest = &rest_all[1..];
    let mut idx = 0;

    // Optional register block (may span multiple physical lines). The
    // block is concatenated into one string before splitting on `;`, so a
    // parallel byte→source-offset map keeps entry spans exact even for
    // entries that cross physical lines.
    let mut reg_decls: BTreeMap<usize, BTreeSet<Reg>> = BTreeMap::new();
    let mut reg_inits: Vec<(usize, Reg, Value)> = Vec::new();
    if idx < rest.len() && rest[idx].starts_with('{') {
        let open = rest[idx];
        let mut body = String::new();
        let mut offs: Vec<u32> = Vec::new();
        let mut closed = false;
        while idx < rest.len() {
            let l = rest[idx];
            let base = sp(l).start;
            body.push_str(l);
            offs.extend((0..l.len()).map(|j| base + u32::try_from(j).expect("line fits u32")));
            body.push(' ');
            offs.push(base + u32::try_from(l.len()).expect("line fits u32"));
            idx += 1;
            if l.contains('}') {
                closed = true;
                break;
            }
        }
        if !closed {
            diags.push(Diagnostic::error("unterminated register block").with_span(sp(open)));
        } else {
            let entry_span = |e: &str| -> Span {
                let a = e.as_ptr() as usize - body.as_ptr() as usize;
                let b = a + e.len();
                Span {
                    start: offs[a],
                    end: offs[b - 1] + 1,
                }
            };
            let inner = body.trim().trim_start_matches('{').trim_end_matches('}');
            for entry in inner.split(';') {
                let entry = entry.trim();
                if entry.is_empty() {
                    continue;
                }
                match parse_reg_decl(entry) {
                    Ok((tid, reg, value)) => {
                        reg_decls.entry(tid).or_default().insert(reg.clone());
                        if let Some(v) = value {
                            reg_inits.push((tid, reg, v));
                        }
                    }
                    Err(m) => diags.push(Diagnostic::error(m).with_span(entry_span(entry))),
                }
            }
        }
    }

    // Thread header row: `T0 | T1 ;`.
    if idx >= rest.len() {
        diags.push(Diagnostic::error("missing thread header row").with_span(file.eof_span()));
        return Parsed::failure(diags);
    }
    let throw_raw = rest[idx];
    idx += 1;
    let throw = throw_raw.trim_end_matches(';').trim();
    let mut tids = Vec::new();
    let mut header_ok = true;
    for cell in throw.split('|') {
        let cell = cell.trim();
        match cell.strip_prefix('T').and_then(|s| s.parse::<usize>().ok()) {
            Some(t) => tids.push(t),
            None => {
                diags.push(
                    Diagnostic::error(format!("bad thread header cell {cell:?}"))
                        .with_span(sp(if cell.is_empty() { throw_raw } else { cell })),
                );
                header_ok = false;
            }
        }
    }
    if header_ok && tids.iter().enumerate().any(|(i, &t)| i != t) {
        diags.push(
            Diagnostic::error(format!("thread header must be T0 | T1 | …, got {throw:?}"))
                .with_span(sp(throw)),
        );
        header_ok = false;
    }
    if !header_ok {
        return Parsed::failure(diags);
    }
    let nthreads = tids.len();

    // Instruction rows until the ScopeTree line. Per-cell recovery: a bad
    // cell is reported and skipped, the rest of the row still parses.
    let mut threads: Vec<Vec<Instr>> = vec![Vec::new(); nthreads];
    let classifier = RegClassifier { decls: &reg_decls };
    while idx < rest.len() {
        let l = rest[idx];
        if l.starts_with("ScopeTree") || is_cond_line(l) || is_memmap_line(l) {
            break;
        }
        idx += 1;
        let row = l.trim_end_matches(';').trim_end();
        let cells: Vec<&str> = row.split('|').collect();
        if cells.len() > nthreads {
            diags.push(
                Diagnostic::error(format!(
                    "row has {} cells but there are {nthreads} threads",
                    cells.len()
                ))
                .with_span(sp(row)),
            );
        }
        for (tid, cell) in cells.iter().take(nthreads).enumerate() {
            let cell = cell.trim();
            if cell.is_empty() {
                continue;
            }
            match parse_instr(file, cell, tid, &classifier) {
                Ok(instr) => threads[tid].push(instr),
                Err(d) => diags.push(d),
            }
        }
    }

    // ScopeTree line (optional; defaults to inter-CTA).
    let mut scope_tree = None;
    if idx < rest.len() && rest[idx].starts_with("ScopeTree") {
        let l = rest[idx];
        idx += 1;
        match parse_scope_tree(file, l) {
            Ok(t) => scope_tree = Some(t),
            Err(d) => diags.push(d),
        }
    }

    // Memory map line (optional): `x: shared, y: global=1`. Per-entry
    // recovery.
    let mut mem: Vec<(Loc, crate::memmap::Region, i64)> = Vec::new();
    if idx < rest.len() && !is_cond_line(rest[idx]) {
        let l = rest[idx];
        idx += 1;
        for entry in l.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            match parse_memmap_entry(entry) {
                Ok(e) => mem.push(e),
                Err(m) => diags.push(Diagnostic::error(m).with_span(sp(entry))),
            }
        }
    }

    // Final condition.
    let mut cond = None;
    if idx >= rest.len() {
        diags.push(Diagnostic::error("missing final condition").with_span(file.eof_span()));
    } else {
        let cline = rest[idx];
        idx += 1;
        match parse_cond(file, cline) {
            Ok(c) => cond = Some(c),
            Err(d) => diags.push(d),
        }
    }
    for l in &rest[idx.min(rest.len())..] {
        diags.push(Diagnostic::error(format!("unexpected trailing line {l:?}")).with_span(sp(l)));
    }

    // Assemble. Locations referenced but not mapped default to global=0, as
    // in the paper's format where the memory map only lists exceptions.
    let Some(cond) = cond else {
        return Parsed::failure(diags);
    };
    let mut builder = LitmusTest::builder(name);
    for thread in threads {
        builder = builder.thread(thread);
    }
    for (tid, reg, v) in reg_inits {
        builder = builder.reg_init(tid, reg, v);
    }
    let mapped: BTreeSet<Loc> = mem.iter().map(|(l, _, _)| l.clone()).collect();
    for (loc, region, init) in mem {
        builder = match region {
            crate::memmap::Region::Global => builder.global(loc, init),
            crate::memmap::Region::Shared => builder.shared(loc, init),
        };
    }
    if let Some(tree) = scope_tree {
        builder = builder.scope_tree(tree);
    }
    builder = builder.cond(cond);
    let probe = builder.clone().build();
    let built = if let Err(ValidateError::UnmappedLoc(_)) = probe {
        let mut b2 = builder.clone();
        for loc in referenced_locs_of_builder(&builder) {
            if !mapped.contains(&loc) {
                b2 = b2.global(loc, 0);
            }
        }
        b2.build()
    } else {
        probe
    };
    match built {
        Ok(t) => Parsed {
            value: Some(t),
            diagnostics: diags,
        },
        Err(e) => {
            diags.push(Diagnostic::error(e.to_string()));
            Parsed::failure(diags)
        }
    }
}

fn referenced_locs_of_builder(builder: &crate::program::LitmusTestBuilder) -> BTreeSet<Loc> {
    // Re-parse is avoided: we conservatively rebuild from a clone with a
    // dummy condition to extract referenced locations.
    let clone = builder.clone();
    match clone.build() {
        Ok(t) => t.referenced_locs(),
        Err(_) => {
            // Fall back: build incrementally by adding global mappings for
            // every UnmappedLoc error until it validates or fails otherwise.
            let mut b = builder.clone();
            let mut locs = BTreeSet::new();
            for _ in 0..64 {
                match b.clone().build() {
                    Err(ValidateError::UnmappedLoc(l)) => {
                        locs.insert(l.clone());
                        b = b.global(l, 0);
                    }
                    Ok(t) => {
                        locs.extend(t.referenced_locs());
                        break;
                    }
                    Err(_) => break,
                }
            }
            locs
        }
    }
}

fn is_cond_line(l: &str) -> bool {
    l.starts_with("exists") || l.starts_with("~exists") || l.starts_with("forall")
}

/// `true` for lines of the shape `x: shared, y: global=1` — every
/// comma-separated entry must be `name: region[=init]`.
fn is_memmap_line(l: &str) -> bool {
    !l.is_empty()
        && l.split(',').all(|e| {
            let e = e.trim();
            match e.split_once(':') {
                Some((name, spec)) => {
                    let region = spec.trim().split('=').next().unwrap_or_default().trim();
                    !name.trim().is_empty() && (region == "global" || region == "shared")
                }
                None => false,
            }
        })
}

/// Parses one `name: region[=init]` memory-map entry.
fn parse_memmap_entry(entry: &str) -> Result<(Loc, crate::memmap::Region, i64), String> {
    let (loc, spec) = entry
        .split_once(':')
        .ok_or_else(|| format!("bad memory-map entry {entry:?}"))?;
    let spec = spec.trim();
    let (region_str, init) = match spec.split_once('=') {
        Some((r, v)) => (
            r.trim(),
            v.trim()
                .parse::<i64>()
                .map_err(|_| format!("bad initial value in {entry:?}"))?,
        ),
        None => (spec, 0),
    };
    let region = match region_str {
        "global" => crate::memmap::Region::Global,
        "shared" => crate::memmap::Region::Shared,
        other => return Err(format!("unknown region {other:?}")),
    };
    let loc = loc.trim();
    if !valid_loc_name(loc) {
        return Err(format!("bad location name {loc:?}"));
    }
    Ok((Loc::new(loc), region, init))
}

/// Parses `0:.reg .s32 r0`, `0:.reg .b64 r1 = x`, or `0:r1 = x`.
fn parse_reg_decl(entry: &str) -> Result<(usize, Reg, Option<Value>), String> {
    let (tid_str, rest) = entry
        .split_once(':')
        .ok_or_else(|| format!("bad register declaration {entry:?}"))?;
    let tid: usize = tid_str
        .trim()
        .parse()
        .map_err(|_| format!("bad thread id in declaration {entry:?}"))?;
    let (lhs, init) = match rest.split_once('=') {
        Some((l, r)) => (l, Some(r.trim())),
        None => (rest, None),
    };
    let mut name = None;
    for tok in lhs.split_whitespace() {
        if tok.starts_with('.') || tok == "reg" {
            continue; // type / .reg keywords
        }
        name = Some(tok);
    }
    let name = name.ok_or_else(|| format!("missing register name in {entry:?}"))?;
    let value = match init {
        None => None,
        Some(v) => Some(if let Ok(n) = v.parse::<i64>() {
            Value::Int(n)
        } else if let Some((base, off)) = v.split_once('+') {
            let base = base.trim();
            if !valid_loc_name(base) {
                return Err(format!("bad location name in {entry:?}"));
            }
            Value::Ptr {
                loc: Loc::new(base),
                offset: off
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad pointer offset in {entry:?}"))?,
            }
        } else {
            if !valid_loc_name(v) {
                return Err(format!("bad location name in {entry:?}"));
            }
            Value::ptr(v)
        }),
    };
    if !valid_reg_name(name) {
        return Err(format!("bad register name in {entry:?}"));
    }
    Ok((tid, Reg::new(name), value))
}

/// Name validity as enforced (with panics) by the [`Loc`] constructor;
/// checked before construction so bad names become diagnostics.
fn valid_loc_name(name: &str) -> bool {
    !name.is_empty()
        && !name
            .chars()
            .any(|c| c.is_whitespace() || "[],:;()=".contains(c))
}

/// Same, for the [`Reg`] and [`Label`] constructors.
fn valid_reg_name(name: &str) -> bool {
    !name.is_empty()
        && !name
            .chars()
            .any(|c| c.is_whitespace() || "[],:;()=@!".contains(c))
}

struct RegClassifier<'a> {
    decls: &'a BTreeMap<usize, BTreeSet<Reg>>,
}

impl RegClassifier<'_> {
    /// Is `name` a register of thread `tid`? Uses declarations when present,
    /// else the `r0`/`p0` naming heuristic.
    fn is_reg(&self, tid: usize, name: &str) -> bool {
        if let Some(set) = self.decls.get(&tid) {
            if !set.is_empty() {
                return set.iter().any(|r| r.as_str() == name);
            }
        }
        let mut chars = name.chars();
        matches!(chars.next(), Some('r') | Some('p')) && chars.all(|c| c.is_ascii_digit())
    }
}

fn parse_operand(
    file: &SourceFile,
    tok: &str,
    tid: usize,
    cls: &RegClassifier<'_>,
) -> Result<Operand, Diagnostic> {
    let tok = tok.trim();
    if tok.is_empty() {
        return Err(Diagnostic::error("empty operand").with_span(span_or_eof(file, tok)));
    }
    if let Ok(n) = tok.parse::<i64>() {
        return Ok(Operand::Imm(n));
    }
    if let Some(hex) = tok.strip_prefix("0x").or_else(|| tok.strip_prefix("0X")) {
        if let Ok(n) = i64::from_str_radix(hex, 16) {
            return Ok(Operand::Imm(n));
        }
    }
    if cls.is_reg(tid, tok) {
        Ok(Operand::Reg(Reg::new(tok)))
    } else if valid_loc_name(tok) {
        Ok(Operand::Sym(Loc::new(tok)))
    } else {
        Err(Diagnostic::error(format!("bad operand {tok:?}")).with_span(span_or_eof(file, tok)))
    }
}

fn parse_addr(
    file: &SourceFile,
    tok: &str,
    tid: usize,
    cls: &RegClassifier<'_>,
) -> Result<Operand, Diagnostic> {
    let inner = tok
        .trim()
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| {
            Diagnostic::error(format!("expected [address], found {tok:?}"))
                .with_span(span_or_eof(file, tok.trim()))
        })?;
    parse_operand(file, inner, tid, cls)
}

fn span_or_eof(file: &SourceFile, slice: &str) -> Span {
    file.span_of(slice).unwrap_or_else(|| file.eof_span())
}

/// Parses one instruction cell, e.g. `@!p4 ld.cg r1,[d]`. Errors carry
/// the span of the offending token (opcode, operand, …) where one can be
/// pinned down, else the whole cell.
fn parse_instr(
    file: &SourceFile,
    cell: &str,
    tid: usize,
    cls: &RegClassifier<'_>,
) -> Result<Instr, Diagnostic> {
    let cell = cell.trim();
    let cell_span = span_or_eof(file, cell);
    // Guards.
    if let Some(rest) = cell.strip_prefix('@') {
        let (guard, body) = rest.split_once(char::is_whitespace).ok_or_else(|| {
            Diagnostic::error(format!("guard without instruction in {cell:?}")).with_span(cell_span)
        })?;
        let (expect, pred) = match guard.strip_prefix('!') {
            Some(p) => (false, p),
            None => (true, guard),
        };
        if !valid_reg_name(pred) {
            return Err(Diagnostic::error(format!("bad guard register {pred:?}"))
                .with_span(span_or_eof(file, guard)));
        }
        let inner = parse_instr(file, body, tid, cls)?;
        if matches!(inner, Instr::Guard { .. } | Instr::LabelDef(_)) {
            return Err(Diagnostic::error(format!("cannot guard {body:?}"))
                .with_span(span_or_eof(file, body)));
        }
        return Ok(Instr::Guard {
            pred: Reg::new(pred),
            expect,
            inner: Box::new(inner),
        });
    }
    // Labels. (Names with separator characters fall through to the opcode
    // path, which reports them as unknown opcodes.)
    if let Some(name) = cell.strip_suffix(':') {
        if valid_reg_name(name) {
            return Ok(Instr::LabelDef(Label::new(name)));
        }
    }

    let (opcode, rest) = match cell.split_once(char::is_whitespace) {
        Some((o, r)) => (o, r.trim()),
        None => (cell, ""),
    };
    let parts: Vec<&str> = opcode.split('.').collect();
    let base = parts[0];
    let opcode_span = span_or_eof(file, opcode);
    let mods: BTreeSet<&str> = parts[1..].iter().copied().collect();
    let volatile = mods.contains("volatile");
    let cache = if mods.contains("ca") {
        CacheOp::Ca
    } else {
        CacheOp::Cg
    };

    // Split operands at top level on commas; `[…]` groups contain no commas
    // in this fragment.
    let ops: Vec<&str> = if rest.is_empty() {
        Vec::new()
    } else {
        rest.split(',').map(str::trim).collect()
    };
    let nops = ops.len();
    let want = |n: usize| -> Result<(), Diagnostic> {
        if nops == n {
            Ok(())
        } else {
            Err(Diagnostic::error(format!(
                "{base} expects {n} operands, found {nops} in {cell:?}"
            ))
            .with_span(cell_span))
        }
    };
    let regop = |i: usize| -> Result<Reg, Diagnostic> {
        match parse_operand(file, ops[i], tid, cls)? {
            Operand::Reg(r) => Ok(r),
            other => Err(Diagnostic::error(format!(
                "operand {i} of {cell:?} must be a register, found {other}"
            ))
            .with_span(span_or_eof(file, ops[i]))),
        }
    };

    match base {
        "ld" => {
            want(2)?;
            Ok(Instr::Ld {
                dst: regop(0)?,
                addr: parse_addr(file, ops[1], tid, cls)?,
                cache,
                volatile,
            })
        }
        "st" => {
            want(2)?;
            Ok(Instr::St {
                addr: parse_addr(file, ops[0], tid, cls)?,
                src: parse_operand(file, ops[1], tid, cls)?,
                cache,
                volatile,
            })
        }
        "atom" => {
            if mods.contains("cas") {
                want(4)?;
                Ok(Instr::Cas {
                    dst: regop(0)?,
                    addr: parse_addr(file, ops[1], tid, cls)?,
                    expected: parse_operand(file, ops[2], tid, cls)?,
                    desired: parse_operand(file, ops[3], tid, cls)?,
                })
            } else if mods.contains("exch") {
                want(3)?;
                Ok(Instr::Exch {
                    dst: regop(0)?,
                    addr: parse_addr(file, ops[1], tid, cls)?,
                    src: parse_operand(file, ops[2], tid, cls)?,
                })
            } else if mods.contains("inc") {
                want(2)?;
                Ok(Instr::Inc {
                    dst: regop(0)?,
                    addr: parse_addr(file, ops[1], tid, cls)?,
                })
            } else {
                Err(Diagnostic::error(format!("unsupported atomic {opcode:?}"))
                    .with_span(opcode_span))
            }
        }
        "membar" => {
            want(0)?;
            let scope = if mods.contains("cta") {
                FenceScope::Cta
            } else if mods.contains("gl") {
                FenceScope::Gl
            } else if mods.contains("sys") {
                FenceScope::Sys
            } else {
                return Err(
                    Diagnostic::error(format!("membar needs a scope in {cell:?}"))
                        .with_span(opcode_span),
                );
            };
            Ok(Instr::Membar { scope })
        }
        "mov" => {
            want(2)?;
            Ok(Instr::Mov {
                dst: regop(0)?,
                src: parse_operand(file, ops[1], tid, cls)?,
            })
        }
        "add" | "and" | "xor" => {
            want(3)?;
            let (dst, a, b) = (
                regop(0)?,
                parse_operand(file, ops[1], tid, cls)?,
                parse_operand(file, ops[2], tid, cls)?,
            );
            Ok(match base {
                "add" => Instr::Add { dst, a, b },
                "and" => Instr::And { dst, a, b },
                _ => Instr::Xor { dst, a, b },
            })
        }
        "cvt" => {
            want(2)?;
            Ok(Instr::Cvt {
                dst: regop(0)?,
                src: parse_operand(file, ops[1], tid, cls)?,
            })
        }
        "setp" => {
            want(3)?;
            let (dst, a, b) = (
                regop(0)?,
                parse_operand(file, ops[1], tid, cls)?,
                parse_operand(file, ops[2], tid, cls)?,
            );
            if mods.contains("ne") {
                Ok(Instr::SetpNe { dst, a, b })
            } else {
                Ok(Instr::SetpEq { dst, a, b })
            }
        }
        "bra" => {
            want(1)?;
            if !valid_reg_name(ops[0]) {
                return Err(Diagnostic::error(format!("bad label {:?}", ops[0]))
                    .with_span(span_or_eof(file, ops[0])));
            }
            Ok(Instr::Bra {
                target: Label::new(ops[0]),
            })
        }
        other => Err(
            Diagnostic::error(format!("unknown opcode {other:?}")).with_span(span_or_eof(
                file,
                if other.is_empty() { cell } else { other },
            )),
        ),
    }
}

// ---------------------------------------------------------------------------
// Scope trees, on the generic token cursor.
// ---------------------------------------------------------------------------

#[derive(Clone, PartialEq, Debug)]
enum TreeK {
    Open,
    Close,
    Word(String),
}

impl TokenKind for TreeK {
    fn describe(&self) -> String {
        match self {
            TreeK::Open => "`(`".into(),
            TreeK::Close => "`)`".into(),
            TreeK::Word(w) => format!("`{w}`"),
        }
    }
}

fn lex_tree(file: &SourceFile, s: &str) -> Vec<Token<TreeK>> {
    let base = span_or_eof(file, s).start as usize;
    let mut toks = Vec::new();
    let mut word_start = None::<usize>;
    let flush = |toks: &mut Vec<Token<TreeK>>, start: Option<usize>, end: usize| {
        if let Some(a) = start {
            toks.push(Token::new(
                TreeK::Word(s[a..end].to_string()),
                Span::new(base + a, base + end),
            ));
        }
    };
    for (i, c) in s.char_indices() {
        match c {
            '(' | ')' => {
                flush(&mut toks, word_start.take(), i);
                let kind = if c == '(' { TreeK::Open } else { TreeK::Close };
                toks.push(Token::new(kind, Span::new(base + i, base + i + 1)));
            }
            c if c.is_whitespace() => flush(&mut toks, word_start.take(), i),
            _ => {
                if word_start.is_none() {
                    word_start = Some(i);
                }
            }
        }
    }
    flush(&mut toks, word_start.take(), s.len());
    toks
}

fn eat_keyword(cur: &mut Cursor<'_, TreeK>, w: &str) -> Result<(), Diagnostic> {
    cur.expect(&TreeK::Word(w.to_string())).map(|_| ())
}

/// Parses `ScopeTree(grid(cta(warp T0)(warp T1))(cta(warp T2)))`.
fn parse_scope_tree(file: &SourceFile, l: &str) -> Result<ScopeTree, Diagnostic> {
    let l = l.trim();
    let inner = l
        .strip_prefix("ScopeTree")
        .map(str::trim)
        .and_then(|s| s.strip_prefix('('))
        .and_then(|s| s.strip_suffix(')'))
        .ok_or_else(|| {
            Diagnostic::error("malformed ScopeTree line").with_span(span_or_eof(file, l))
        })?;
    let toks = lex_tree(file, inner);
    let eof_at = span_or_eof(file, l).end as usize;
    let mut cur = Cursor::new(&toks, eof_at);
    eat_keyword(&mut cur, "grid")?;
    let mut ctas = Vec::new();
    while cur.eat(&TreeK::Open).is_some() {
        eat_keyword(&mut cur, "cta")?;
        let mut warps = Vec::new();
        while cur.eat(&TreeK::Open).is_some() {
            eat_keyword(&mut cur, "warp")?;
            let mut threads = Vec::new();
            while let Some((w, span)) = cur.eat_map("thread name", |k| match k {
                TreeK::Word(w) => Some(w.clone()),
                _ => None,
            }) {
                let t: usize = w
                    .strip_prefix('T')
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| {
                        Diagnostic::error(format!("bad thread name {w:?} in scope tree"))
                            .with_span(span)
                    })?;
                threads.push(t);
            }
            cur.expect(&TreeK::Close)?;
            warps.push(threads);
        }
        cur.expect(&TreeK::Close)?;
        ctas.push(warps);
    }
    if !cur.at_end() {
        return Err(cur.expected_error());
    }
    if ctas.is_empty() {
        return Err(Diagnostic::error("scope tree has no CTAs").with_span(span_or_eof(file, l)));
    }
    Ok(ScopeTree::new(ctas))
}

// ---------------------------------------------------------------------------
// Final conditions, on the generic token cursor.
// ---------------------------------------------------------------------------

#[derive(Clone, PartialEq, Debug)]
enum CondK {
    LPar,
    RPar,
    And,
    Or,
    Not,
    True,
    Eq,
    Ne,
    Word(String),
}

impl TokenKind for CondK {
    fn describe(&self) -> String {
        match self {
            CondK::LPar => "`(`".into(),
            CondK::RPar => "`)`".into(),
            CondK::And => "`/\\`".into(),
            CondK::Or => "`\\/`".into(),
            CondK::Not => "`not`".into(),
            CondK::True => "`true`".into(),
            CondK::Eq => "`=`".into(),
            CondK::Ne => "`!=`".into(),
            CondK::Word(w) => format!("`{w}`"),
        }
    }
}

fn lex_cond(file: &SourceFile, s: &str) -> Vec<Token<CondK>> {
    let base = span_or_eof(file, s).start as usize;
    let mut toks = Vec::new();
    let bytes = s.as_bytes();
    let mut i = 0;
    let mut push = |kind: CondK, a: usize, b: usize| {
        toks.push(Token::new(kind, Span::new(base + a, base + b)));
    };
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' => i += 1,
            '(' => {
                push(CondK::LPar, i, i + 1);
                i += 1;
            }
            ')' => {
                push(CondK::RPar, i, i + 1);
                i += 1;
            }
            '/' if s[i..].starts_with("/\\") => {
                push(CondK::And, i, i + 2);
                i += 2;
            }
            '\\' if s[i..].starts_with("\\/") => {
                push(CondK::Or, i, i + 2);
                i += 2;
            }
            '!' if s[i..].starts_with("!=") => {
                push(CondK::Ne, i, i + 2);
                i += 2;
            }
            '=' => {
                push(CondK::Eq, i, i + 1);
                i += 1;
            }
            _ => {
                let start = i;
                while i < bytes.len()
                    && !" \t()=!".contains(bytes[i] as char)
                    && !s[i..].starts_with("/\\")
                    && !s[i..].starts_with("\\/")
                {
                    i += 1;
                }
                if i == start {
                    // A stray delimiter byte that forms no token (e.g. `!`
                    // without `=`): consume it as a one-byte word so the
                    // lexer always advances.
                    i += 1;
                }
                let kind = match &s[start..i] {
                    "not" => CondK::Not,
                    "true" => CondK::True,
                    w => CondK::Word(w.to_string()),
                };
                push(kind, start, i);
            }
        }
    }
    toks
}

/// Parses the final-condition line.
fn parse_cond(file: &SourceFile, l: &str) -> Result<FinalCond, Diagnostic> {
    let (quant, rest) = if let Some(r) = l.strip_prefix("~exists") {
        (Quantifier::NotExists, r)
    } else if let Some(r) = l.strip_prefix("exists") {
        (Quantifier::Exists, r)
    } else if let Some(r) = l.strip_prefix("forall") {
        (Quantifier::Forall, r)
    } else {
        return Err(
            Diagnostic::error(format!("expected exists/~exists/forall, found {l:?}"))
                .with_span(span_or_eof(file, l)),
        );
    };
    let toks = lex_cond(file, rest.trim());
    let eof_at = span_or_eof(file, l).end as usize;
    let mut cur = Cursor::new(&toks, eof_at);
    let pred = parse_or(&mut cur)?;
    if !cur.at_end() {
        // `parse_or` already recorded `/\` and `\/` as legal here, so the
        // accumulated error reads "expected `/\` or `\/`, found …".
        return Err(cur.expected_error());
    }
    Ok(FinalCond {
        quantifier: quant,
        pred,
    })
}

fn parse_or(cur: &mut Cursor<'_, CondK>) -> Result<Predicate, Diagnostic> {
    let mut p = parse_and(cur)?;
    while cur.eat(&CondK::Or).is_some() {
        let q = parse_and(cur)?;
        p = p.or(q);
    }
    Ok(p)
}

fn parse_and(cur: &mut Cursor<'_, CondK>) -> Result<Predicate, Diagnostic> {
    let mut p = parse_unary(cur)?;
    while cur.eat(&CondK::And).is_some() {
        let q = parse_unary(cur)?;
        p = p.and(q);
    }
    Ok(p)
}

fn parse_unary(cur: &mut Cursor<'_, CondK>) -> Result<Predicate, Diagnostic> {
    if cur.eat(&CondK::Not).is_some() {
        return Ok(parse_unary(cur)?.negate());
    }
    if cur.eat(&CondK::LPar).is_some() {
        let p = parse_or(cur)?;
        cur.expect(&CondK::RPar)?;
        return Ok(p);
    }
    if cur.eat(&CondK::True).is_some() {
        return Ok(Predicate::True);
    }
    parse_atom(cur)
}

fn parse_atom(cur: &mut Cursor<'_, CondK>) -> Result<Predicate, Diagnostic> {
    let word = |k: &CondK| match k {
        CondK::Word(w) => Some(w.clone()),
        _ => None,
    };
    let Some((lhs, lhs_span)) = cur.eat_map("register or memory location", word) else {
        return Err(cur.expected_error());
    };
    let eq = if cur.eat(&CondK::Eq).is_some() {
        true
    } else if cur.eat(&CondK::Ne).is_some() {
        false
    } else {
        return Err(cur.expected_error());
    };
    let Some((rhs, rhs_span)) = cur.eat_map("value", word) else {
        return Err(cur.expected_error());
    };
    let n: i64 = rhs.parse().map_err(|_| {
        Diagnostic::error(format!("bad value {rhs:?} in condition")).with_span(rhs_span)
    })?;
    let expr = match lhs.split_once(':') {
        Some((t, r)) => {
            let tid: usize = t.parse().map_err(|_| {
                Diagnostic::error(format!("bad thread id in {lhs:?}")).with_span(lhs_span)
            })?;
            if !valid_reg_name(r) {
                return Err(
                    Diagnostic::error(format!("bad register name in {lhs:?}")).with_span(lhs_span)
                );
            }
            FinalExpr::Reg(tid, Reg::new(r))
        }
        None => {
            if !valid_loc_name(&lhs) {
                return Err(
                    Diagnostic::error(format!("bad location name {lhs:?}")).with_span(lhs_span)
                );
            }
            FinalExpr::Mem(Loc::new(&lhs))
        }
    };
    Ok(if eq {
        Predicate::Eq(expr, n)
    } else {
        Predicate::Ne(expr, n)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scope::ThreadScope;
    use weakgpu_front::render_all;

    const SB: &str = "\
GPU_PTX sb
{0:.reg .s32 r0; 0:.reg .s32 r2; 0:.reg .b64 r1 = x; 0:.reg .b64 r3 = y;
 1:.reg .s32 r0; 1:.reg .s32 r2; 1:.reg .b64 r1 = y; 1:.reg .b64 r3 = x;}
T0 | T1 ;
mov r0,1 | mov r0,1 ;
st.cg [r1],r0 | st.cg [r1],r0 ;
ld.cg r2,[r3] | ld.cg r2,[r3] ;
ScopeTree(grid(cta(warp T0)(warp T1)))
x: shared, y: global
exists (0:r2=0 /\\ 1:r2=0)
";

    #[test]
    fn parses_fig12_sb() {
        let t = parse(SB).unwrap();
        assert_eq!(t.name(), "sb");
        assert_eq!(t.num_threads(), 2);
        assert_eq!(t.thread_scope(), Some(ThreadScope::IntraCta));
        assert_eq!(t.memory().region(&"x".into()), Some(crate::Region::Shared));
        assert_eq!(t.memory().region(&"y".into()), Some(crate::Region::Global));
        assert_eq!(t.reg_init_value(0, &Reg::new("r1")), Value::ptr("x"),);
        assert_eq!(t.threads()[0].len(), 3);
        assert_eq!(t.cond().to_string(), "exists (0:r2=0 /\\ 1:r2=0)");
    }

    #[test]
    fn parses_guards_atomics_and_labels() {
        let src = "\
GPU_PTX casdemo
{1:.reg .s32 r1; 1:.reg .pred p; 1:.reg .s32 r3}
T0 | T1 ;
st.cg [x],1 | atom.cas r1,[m],0,1 ;
membar.gl | setp.eq p,r1,0 ;
atom.exch r0,[m],0 | @p membar.gl ;
 | @p ld.cg r3,[x] ;
x: global, m: global=1
exists (1:r1=0 /\\ 1:r3=0)
";
        let t = parse(src).unwrap();
        assert_eq!(t.threads()[1].len(), 4);
        assert!(matches!(
            t.threads()[1][2],
            Instr::Guard { expect: true, .. }
        ));
        assert_eq!(t.memory().init(&"m".into()), Some(1));
        // Default scope tree when the line is omitted.
        assert_eq!(t.thread_scope(), Some(ThreadScope::InterCta));
    }

    #[test]
    fn register_addresses_vs_locations() {
        let src = "\
GPU_PTX addr
{0:.reg .b64 r9 = x; 0:.reg .s32 r1}
T0 ;
ld.cg r1,[r9] ;
st.cg [y],1 ;
exists (0:r1=0)
";
        let t = parse(src).unwrap();
        match &t.threads()[0][0] {
            Instr::Ld { addr, .. } => assert_eq!(addr, &Operand::Reg(Reg::new("r9"))),
            other => panic!("unexpected {other:?}"),
        }
        match &t.threads()[0][1] {
            Instr::St { addr, .. } => assert_eq!(addr, &Operand::Sym(Loc::new("y"))),
            other => panic!("unexpected {other:?}"),
        }
        // y was defaulted to global=0.
        assert_eq!(t.memory().region(&"y".into()), Some(crate::Region::Global));
    }

    #[test]
    fn rejects_bad_header() {
        assert!(parse("X86 sb\nT0 ;\nexists (0:r1=0)\n").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn rejects_unknown_opcode() {
        let src = "GPU_PTX t\nT0 ;\nfrobnicate r1 ;\nexists (0:r1=0)\n";
        let err = parse(src).unwrap_err();
        assert!(err.message.contains("unknown opcode"), "{err}");
        assert_eq!(err.line, Some(3));
    }

    #[test]
    fn unknown_opcode_caret_diagnostic() {
        let file = SourceFile::new(
            "bad.litmus",
            "GPU_PTX t\nT0 ;\nfrobnicate r1 ;\nexists (0:r1=0)\n",
        );
        let parsed = parse_with_diagnostics(&file);
        assert!(parsed.has_errors());
        let rendered = render_all(&parsed.diagnostics, &file);
        assert!(rendered.contains("bad.litmus:3:1"), "{rendered}");
        assert!(rendered.contains("frobnicate r1 ;"), "{rendered}");
        assert!(rendered.contains("^^^^^^^^^^"), "{rendered}");
    }

    #[test]
    fn reports_multiple_errors_in_one_pass() {
        let file = SourceFile::new(
            "multi.litmus",
            "GPU_PTX t\nT0 | T1 ;\nfrobnicate r1 | zorble r2 ;\nexists (0:r1=0)\n",
        );
        let parsed = parse_with_diagnostics(&file);
        let errors: Vec<_> = parsed.diagnostics.iter().filter(|d| d.is_error()).collect();
        assert!(errors.len() >= 2, "{:?}", parsed.diagnostics);
        assert!(errors[0].message.contains("frobnicate"));
        assert!(errors[1].message.contains("zorble"));
        // Both land on line 3, different columns.
        assert_eq!(errors[0].line_in(&file), Some(3));
        assert_eq!(errors[1].line_in(&file), Some(3));
        assert_ne!(
            file.pos(errors[0].span.unwrap()).col,
            file.pos(errors[1].span.unwrap()).col
        );
    }

    #[test]
    fn condition_errors_list_expectations() {
        let file = SourceFile::new(
            "c.litmus",
            "GPU_PTX t\nT0 ;\nmov r1,1 ;\nexists (0:r1=0 ;\n",
        );
        let parsed = parse_with_diagnostics(&file);
        assert!(parsed.has_errors());
        let msg = &parsed.diagnostics[0].message;
        assert!(msg.contains("expected"), "{msg}");
        assert!(msg.contains("`)`"), "{msg}");
    }

    #[test]
    fn rejects_too_many_cells() {
        let src = "GPU_PTX t\nT0 ;\nmov r1,1 | mov r1,1 ;\nexists (0:r1=1)\n";
        assert!(parse(src).is_err());
    }

    #[test]
    fn parses_not_exists_and_forall() {
        let src = "GPU_PTX t\nT0 ;\nmov r1,1 ;\n~exists (0:r1=0)\n";
        assert_eq!(parse(src).unwrap().cond().quantifier, Quantifier::NotExists);
        let src = "GPU_PTX t\nT0 ;\nmov r1,1 ;\nforall (0:r1=1)\n";
        assert_eq!(parse(src).unwrap().cond().quantifier, Quantifier::Forall);
    }

    #[test]
    fn parses_ne_or_and_not() {
        let src = "GPU_PTX t\nT0 ;\nmov r1,1 ;\nexists (0:r1!=0 /\\ (0:r1=1 \\/ not (0:r1=2)))\n";
        let t = parse(src).unwrap();
        let mut o = crate::Outcome::new();
        o.set(FinalExpr::reg(0, "r1"), 1);
        assert!(t.cond().pred.eval(&o));
    }

    #[test]
    fn parses_three_cta_scope_tree() {
        let src = "\
GPU_PTX t3
T0 | T1 | T2 ;
st.cg [x],1 | ld.cg r1,[x] | ld.cg r1,[x] ;
ScopeTree(grid(cta(warp T0)(warp T1))(cta(warp T2)))
x: global
exists (1:r1=1 /\\ 2:r1=0)
";
        let t = parse(src).unwrap();
        assert!(t.scope_tree().same_cta(0, 1));
        assert!(!t.scope_tree().same_cta(0, 2));
    }

    #[test]
    fn roundtrip_through_printer() {
        let t = parse(SB).unwrap();
        let printed = t.to_string();
        let t2 = parse(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        assert_eq!(t, t2);
    }

    #[test]
    fn agrees_with_legacy_on_sb() {
        let new = parse(SB).unwrap();
        let old = legacy::parse(SB).unwrap();
        assert_eq!(new, old);
    }
}
