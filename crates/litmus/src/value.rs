//! Memory locations and runtime values.

use std::fmt;
use std::sync::Arc;

/// A named shared-memory location appearing in a litmus test (`x`, `y`, …).
///
/// Locations are cheap to clone (reference counted) and ordered
/// lexicographically, which fixes a canonical order for reports.
///
/// ```
/// use weakgpu_litmus::Loc;
/// let x = Loc::new("x");
/// assert_eq!(x.as_str(), "x");
/// assert_eq!(x.to_string(), "x");
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Loc(Arc<str>);

impl Loc {
    /// Creates a location with the given name.
    ///
    /// # Panics
    ///
    /// Panics if `name` is empty or contains whitespace, brackets or commas,
    /// which would make the textual litmus format ambiguous.
    pub fn new(name: impl AsRef<str>) -> Self {
        let name = name.as_ref();
        assert!(
            !name.is_empty()
                && !name
                    .chars()
                    .any(|c| c.is_whitespace() || "[],:;()=".contains(c)),
            "invalid location name {name:?}"
        );
        Loc(Arc::from(name))
    }

    /// The location's name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Loc({})", self.0)
    }
}

impl From<&str> for Loc {
    fn from(s: &str) -> Self {
        Loc::new(s)
    }
}

/// A runtime value: either a machine integer or a pointer to a location.
///
/// Pointers arise from register initialisations such as `0:.reg .b64 r1 = x`
/// in the litmus format: register `r1` holds the *address* of `x`. Address
/// arithmetic (used by manufactured address dependencies, paper Fig. 13)
/// keeps the pointer's base location and accumulates a byte offset.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Value {
    /// A signed 32/64-bit integer (litmus tests use small constants).
    Int(i64),
    /// The address of `loc` plus `offset` (in elements; 0 in practice).
    Ptr {
        /// Base location.
        loc: Loc,
        /// Element offset from the base (non-zero offsets denote distinct
        /// cells of an array rooted at `loc`).
        offset: i64,
    },
}

impl Value {
    /// A pointer to `loc` with offset 0.
    pub fn ptr(loc: impl Into<Loc>) -> Self {
        Value::Ptr {
            loc: loc.into(),
            offset: 0,
        }
    }

    /// The integer payload, if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            Value::Ptr { .. } => None,
        }
    }

    /// The pointed-to cell, if this is a [`Value::Ptr`].
    pub fn as_ptr(&self) -> Option<(&Loc, i64)> {
        match self {
            Value::Int(_) => None,
            Value::Ptr { loc, offset } => Some((loc, *offset)),
        }
    }

    /// Two's-complement addition; pointer + integer moves the offset.
    ///
    /// Adding two pointers has no meaning in a litmus test; the operands are
    /// combined by treating the right pointer as offset 0 (this situation is
    /// rejected earlier by [`crate::LitmusTest`] validation in practice).
    pub fn wrapping_add(&self, rhs: &Value) -> Value {
        match (self, rhs) {
            (Value::Int(a), Value::Int(b)) => Value::Int(a.wrapping_add(*b)),
            (Value::Ptr { loc, offset }, Value::Int(n))
            | (Value::Int(n), Value::Ptr { loc, offset }) => Value::Ptr {
                loc: loc.clone(),
                offset: offset.wrapping_add(*n),
            },
            (Value::Ptr { loc, offset }, Value::Ptr { .. }) => Value::Ptr {
                loc: loc.clone(),
                offset: *offset,
            },
        }
    }

    /// Bitwise AND; pointers degrade to their offset (only ever used by
    /// manufactured-dependency chains where the result feeds an add by 0).
    pub fn bitand(&self, rhs: &Value) -> Value {
        Value::Int(self.to_bits() & rhs.to_bits())
    }

    /// Bitwise XOR, as used by `xor r2, r1, r1` false dependencies.
    pub fn bitxor(&self, rhs: &Value) -> Value {
        Value::Int(self.to_bits() ^ rhs.to_bits())
    }

    fn to_bits(&self) -> i64 {
        match self {
            Value::Int(n) => *n,
            Value::Ptr { offset, .. } => *offset,
        }
    }
}

impl Default for Value {
    fn default() -> Self {
        Value::Int(0)
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Int(n)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(n) => write!(f, "{n}"),
            Value::Ptr { loc, offset } if *offset == 0 => write!(f, "{loc}"),
            Value::Ptr { loc, offset } => write!(f, "{loc}+{offset}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loc_display_and_order() {
        let x = Loc::new("x");
        let y = Loc::new("y");
        assert!(x < y);
        assert_eq!(x.to_string(), "x");
        assert_eq!(x, Loc::from("x"));
    }

    #[test]
    #[should_panic(expected = "invalid location name")]
    fn loc_rejects_brackets() {
        let _ = Loc::new("a[0]");
    }

    #[test]
    #[should_panic(expected = "invalid location name")]
    fn loc_rejects_empty() {
        let _ = Loc::new("");
    }

    #[test]
    fn int_arithmetic_wraps() {
        let a = Value::Int(i64::MAX);
        let b = Value::Int(1);
        assert_eq!(a.wrapping_add(&b), Value::Int(i64::MIN));
    }

    #[test]
    fn pointer_arithmetic_keeps_base() {
        let p = Value::ptr("x");
        let q = p.wrapping_add(&Value::Int(0));
        assert_eq!(q, Value::ptr("x"));
        let r = q.wrapping_add(&Value::Int(2));
        assert_eq!(
            r,
            Value::Ptr {
                loc: Loc::new("x"),
                offset: 2
            }
        );
    }

    #[test]
    fn xor_self_is_zero() {
        let v = Value::Int(0x7f3a);
        assert_eq!(v.bitxor(&v), Value::Int(0));
    }

    #[test]
    fn and_high_bit_of_small_value_is_zero() {
        // The manufactured-dependency scheme of Fig. 13b: small positive
        // values ANDed with 0x8000_0000 yield 0.
        let v = Value::Int(1);
        assert_eq!(v.bitand(&Value::Int(0x8000_0000)), Value::Int(0));
    }

    #[test]
    fn value_display() {
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::ptr("x").to_string(), "x");
        assert_eq!(
            Value::Ptr {
                loc: Loc::new("x"),
                offset: 1
            }
            .to_string(),
            "x+1"
        );
    }
}
