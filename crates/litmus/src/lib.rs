//! GPU litmus tests in the style of Alglave et al., *GPU concurrency: Weak
//! behaviours and programming assumptions* (ASPLOS 2015).
//!
//! A [`LitmusTest`] is a short concurrent PTX program together with
//!
//! * a **memory map** ([`MemMap`]) assigning each shared location a region
//!   (global or shared) and an initial value,
//! * a **scope tree** ([`ScopeTree`]) placing the threads into the GPU
//!   execution hierarchy (warps inside CTAs inside a grid), and
//! * a **final condition** ([`FinalCond`]) — a quantified predicate over the
//!   final register and memory state, e.g. `exists (0:r2=0 /\ 1:r2=0)`.
//!
//! The crate provides the instruction AST ([`Instr`]), a parser and printer
//! for the textual litmus format of the paper's Fig. 12, and the
//! [`corpus`] of named tests from the paper (`coRR`, `mp-L1`, `dlb-lb`,
//! `cas-sl`, `sl-future`, …).
//!
//! # Example
//!
//! Build the store-buffering test of the paper's Fig. 12 and print it:
//!
//! ```
//! use weakgpu_litmus::{corpus, parser, ThreadScope};
//!
//! let sb = corpus::sb(ThreadScope::IntraCta, None);
//! let text = sb.to_string();
//! let reparsed = parser::parse(&text).expect("round trip");
//! assert_eq!(reparsed.name(), "sb");
//! ```

pub mod build;
pub mod cond;
pub mod corpus;
pub mod corpus_extra;
pub mod cuda;
pub mod instr;
pub mod memmap;
pub mod parser;
pub mod printer;
pub mod program;
pub mod scope;
pub mod value;

pub use cond::{FinalCond, FinalExpr, Outcome, Predicate, Quantifier};
pub use instr::{CacheOp, FenceScope, Instr, Label, Operand, Reg};
pub use memmap::{MemMap, Region};
pub use program::{LitmusTest, LitmusTestBuilder, ValidateError};
pub use scope::{ScopeTree, ThreadPlacement, ThreadScope};
pub use value::{Loc, Value};
