//! The litmus tests of the paper, constructed exactly as listed in its
//! figures.
//!
//! Each function documents the figure it reproduces. Fence-variant tests
//! take an `Option<FenceScope>` (or a `fenced: bool` for the distilled
//! programming-assumption tests, matching the paper's `(+)`-prefixed lines).

use crate::build::*;
use crate::cond::Predicate;
use crate::instr::{FenceScope, Instr};
use crate::program::LitmusTest;
use crate::scope::ThreadScope;

fn fence_suffix(fence: Option<FenceScope>) -> String {
    match fence {
        None => String::new(),
        Some(s) => format!("+membar{}s", s.suffix()),
    }
}

fn optional_fence(fence: Option<FenceScope>) -> Vec<Instr> {
    fence.map(membar).into_iter().collect()
}

/// Fig. 1 — `coRR`: read-read coherence, intra-CTA, global memory.
///
/// `T0: st.cg [x],1` against `T1: ld.cg r1,[x]; ld.cg r2,[x]`;
/// weak outcome `1:r1=1 /\ 1:r2=0`.
pub fn corr() -> LitmusTest {
    LitmusTest::builder("coRR")
        .doc("PTX test for coherent reads (Fig. 1)")
        .global("x", 0)
        .thread([st("x", 1)])
        .thread([ld("r1", "x"), ld("r2", "x")])
        .scope(ThreadScope::IntraCta)
        .exists(Predicate::reg_eq(1, "r1", 1).and(Predicate::reg_eq(1, "r2", 0)))
        .build()
        .expect("corpus test is valid")
}

/// `coRR` with a fence separating the two reads (used when probing whether
/// fences restore SC per location).
pub fn corr_fenced(fence: FenceScope) -> LitmusTest {
    LitmusTest::builder(format!("coRR{}", fence_suffix(Some(fence))))
        .doc("coRR with a fence between the reads")
        .global("x", 0)
        .thread([st("x", 1)])
        .thread([ld("r1", "x"), membar(fence), ld("r2", "x")])
        .scope(ThreadScope::IntraCta)
        .exists(Predicate::reg_eq(1, "r1", 1).and(Predicate::reg_eq(1, "r2", 0)))
        .build()
        .expect("corpus test is valid")
}

/// Fig. 4 — `coRR-L2-L1`: first read targets the L2 (`.cg`), the second the
/// L1 (`.ca`), optionally fenced. Intra-CTA, global memory.
pub fn corr_l2_l1(fence: Option<FenceScope>) -> LitmusTest {
    let mut t1 = vec![ld("r1", "x")];
    t1.extend(optional_fence(fence));
    t1.push(ld_ca("r2", "x"));
    LitmusTest::builder(format!("coRR-L2-L1{}", fence_suffix(fence)))
        .doc("PTX coRR mixing cache operators (Fig. 4)")
        .global("x", 0)
        .thread([st("x", 1)])
        .thread(t1)
        .scope(ThreadScope::IntraCta)
        .exists(Predicate::reg_eq(1, "r1", 1).and(Predicate::reg_eq(1, "r2", 0)))
        .build()
        .expect("corpus test is valid")
}

/// Fig. 3 — `mp-L1`: message passing with `.ca` (L1-targeting) loads,
/// inter-CTA, global memory, with an optional fence on both sides.
pub fn mp_l1(fence: Option<FenceScope>) -> LitmusTest {
    let mut t0 = vec![st("x", 1)];
    t0.extend(optional_fence(fence));
    t0.push(st("y", 1));
    let mut t1 = vec![ld_ca("r1", "y")];
    t1.extend(optional_fence(fence));
    t1.push(ld_ca("r2", "x"));
    LitmusTest::builder(format!("mp-L1{}", fence_suffix(fence)))
        .doc("PTX mp with L1 cache operators (Fig. 3)")
        .global("x", 0)
        .global("y", 0)
        .thread(t0)
        .thread(t1)
        .scope(ThreadScope::InterCta)
        .exists(Predicate::reg_eq(1, "r1", 1).and(Predicate::reg_eq(1, "r2", 0)))
        .build()
        .expect("corpus test is valid")
}

/// The classic `mp` with `.cg` accesses, optional fences, at a chosen
/// thread placement.
pub fn mp(scope: ThreadScope, fence: Option<FenceScope>) -> LitmusTest {
    let mut t0 = vec![st("x", 1)];
    t0.extend(optional_fence(fence));
    t0.push(st("y", 1));
    let mut t1 = vec![ld("r1", "y")];
    t1.extend(optional_fence(fence));
    t1.push(ld("r2", "x"));
    LitmusTest::builder(format!("mp{}", fence_suffix(fence)))
        .doc("message passing (handshake) idiom")
        .global("x", 0)
        .global("y", 0)
        .thread(t0)
        .thread(t1)
        .scope(scope)
        .exists(Predicate::reg_eq(1, "r1", 1).and(Predicate::reg_eq(1, "r2", 0)))
        .build()
        .expect("corpus test is valid")
}

/// `mp` with an address dependency on the reading side (manufactured with
/// the and-high-bit scheme of Fig. 13b) and a fence between the writes.
pub fn mp_dep(scope: ThreadScope, fence: FenceScope) -> LitmusTest {
    LitmusTest::builder(format!("mp+membar{}+addr", fence.suffix()))
        .doc("mp with fence (writes) and address dependency (reads)")
        .global("x", 0)
        .global("y", 0)
        .reg_init(1, "r4", crate::value::Value::ptr("x"))
        .thread([st("x", 1), membar(fence), st("y", 1)])
        .thread([
            ld("r1", "y"),
            and("r2", reg("r1"), imm(0x8000_0000)),
            cvt("r3", reg("r2")),
            add("r4", reg("r4"), reg("r3")),
            ld("r5", reg("r4")),
        ])
        .scope(scope)
        .exists(Predicate::reg_eq(1, "r1", 1).and(Predicate::reg_eq(1, "r5", 0)))
        .build()
        .expect("corpus test is valid")
}

/// Fig. 5 — `mp-volatile`: all accesses `.volatile`, locations in shared
/// memory, threads intra-CTA (different warps).
pub fn mp_volatile() -> LitmusTest {
    LitmusTest::builder("mp-volatile")
        .doc("PTX mp with volatiles (Fig. 5)")
        .shared("x", 0)
        .shared("y", 0)
        .thread([st_volatile("x", 1), st_volatile("y", 1)])
        .thread([ld_volatile("r1", "y"), ld_volatile("r2", "x")])
        .scope(ThreadScope::IntraCta)
        .exists(Predicate::reg_eq(1, "r1", 1).and(Predicate::reg_eq(1, "r2", 0)))
        .build()
        .expect("corpus test is valid")
}

/// Fig. 12 — `sb` (store buffering), at a chosen placement, with optional
/// fences between the store and the load of each thread.
pub fn sb(scope: ThreadScope, fence: Option<FenceScope>) -> LitmusTest {
    let side = |stl: &str, ldl: &str| {
        let mut v = vec![mov("r0", 1), st_reg(stl, "r0")];
        v.extend(optional_fence(fence));
        v.push(ld("r2", ldl));
        v
    };
    LitmusTest::builder(format!("sb{}", fence_suffix(fence)))
        .doc("store buffering idiom (Fig. 12)")
        .global("x", 0)
        .global("y", 0)
        .thread(side("x", "y"))
        .thread(side("y", "x"))
        .scope(scope)
        .exists(Predicate::reg_eq(0, "r2", 0).and(Predicate::reg_eq(1, "r2", 0)))
        .build()
        .expect("corpus test is valid")
}

/// `lb` (load buffering), at a chosen placement, with optional fences
/// between the load and the store of each thread.
///
/// With `Some(FenceScope::Cta)` and [`ThreadScope::InterCta`] this is the
/// `lb+membar.ctas` test that distinguishes the paper's model from the
/// operational model of Sorensen et al. (Sec. 6): the axiomatic model
/// allows it (and hardware exhibits it), the operational model forbids it.
pub fn lb(scope: ThreadScope, fence: Option<FenceScope>) -> LitmusTest {
    let side = |ldl: &str, stl: &str| {
        let mut v = vec![ld("r1", ldl)];
        v.extend(optional_fence(fence));
        v.push(st(stl, 1));
        v
    };
    LitmusTest::builder(format!("lb{}", fence_suffix(fence)))
        .doc("load buffering idiom")
        .global("x", 0)
        .global("y", 0)
        .thread(side("x", "y"))
        .thread(side("y", "x"))
        .scope(scope)
        .exists(Predicate::reg_eq(0, "r1", 1).and(Predicate::reg_eq(1, "r1", 1)))
        .build()
        .expect("corpus test is valid")
}

/// Fig. 7 — `dlb-mp`: the message-passing bug distilled from the
/// Cederman–Tsigas work-stealing deque (GPU Computing Gems).
///
/// `fenced: true` adds the paper's `(+)` fences, which forbid the weak
/// behaviour. `t` models the deque's volatile `tail` counter, `d` the
/// `tasks` array slot.
pub fn dlb_mp(fenced: bool) -> LitmusTest {
    let name = if fenced {
        "dlb-mp+membar.gls"
    } else {
        "dlb-mp"
    };
    let mut t0 = vec![st("d", 1)];
    if fenced {
        t0.push(membar_gl()); // Fig. 6 line 4
    }
    t0.extend([
        ld_volatile("r2", "t"), // Fig. 6 line 5 (tail++)
        add("r2", reg("r2"), imm(1)),
        st_volatile_reg("t", "r2"),
    ]);
    let mut t1 = vec![
        ld_volatile("r0", "t"),           // Fig. 6 line 8
        setp_eq("p4", reg("r0"), imm(0)), // tail <= oldHead.index → return EMPTY
    ];
    if fenced {
        t1.push(membar_gl().guarded("p4", false)); // Fig. 6 line 9
    }
    t1.push(ld("r1", "d").guarded("p4", false)); // Fig. 6 line 10
    LitmusTest::builder(name)
        .doc("PTX mp from dynamic load balancing (Fig. 7)")
        .global("t", 0)
        .global("d", 0)
        .thread(t0)
        .thread(t1)
        .scope(ThreadScope::InterCta)
        .exists(Predicate::reg_eq(1, "r0", 1).and(Predicate::reg_eq(1, "r1", 0)))
        .build()
        .expect("corpus test is valid")
}

/// Fig. 8 — `dlb-lb`: the load-buffering bug distilled from the
/// Cederman–Tsigas deque (a steal can read a task pushed *after* the pop
/// that emptied the deque, losing a task).
pub fn dlb_lb(fenced: bool) -> LitmusTest {
    let name = if fenced {
        "dlb-lb+membar.gls"
    } else {
        "dlb-lb"
    };
    let mut t0 = vec![cas("r0", "h", 0, 1)]; // Fig. 6 line 20
    if fenced {
        t0.push(membar_gl()); // Fig. 6 line 21
    }
    t0.extend([mov("r2", 1), st_reg("t", "r2")]); // Fig. 6 line 3
    let mut t1 = vec![ld("r1", "t")]; // Fig. 6 line 10
    if fenced {
        t1.push(membar_gl()); // Fig. 6 line 11
    }
    t1.push(cas("r3", "h", 0, 1)); // Fig. 6 line 13
    LitmusTest::builder(name)
        .doc("PTX lb from dynamic load balancing (Fig. 8)")
        .global("t", 0)
        .global("h", 0)
        .thread(t0)
        .thread(t1)
        .scope(ThreadScope::InterCta)
        .exists(Predicate::reg_eq(0, "r0", 1).and(Predicate::reg_eq(1, "r1", 1)))
        .build()
        .expect("corpus test is valid")
}

/// Fig. 9 — `cas-sl`: the CUDA-by-Example spin lock distilled. A critical
/// section protected by a CAS-acquired lock reads a stale value.
///
/// `m` is the mutex (initially locked, = 1) and `x` the data. T0 stores to
/// `x` then releases with `atom.exch`; T1 acquires with `atom.cas` and, on
/// success, loads `x`. Weak outcome: lock acquired (`1:r1=0`) yet a stale
/// `x` read (`1:r3=0`).
pub fn cas_sl(fenced: bool) -> LitmusTest {
    let name = if fenced {
        "cas-sl+membar.gls"
    } else {
        "cas-sl"
    };
    let mut t0 = vec![st("x", 1)];
    if fenced {
        t0.push(membar_gl()); // Fig. 2 line 5
    }
    t0.push(exch("r0", "m", 0)); // Fig. 2 line 6
    let mut t1 = vec![
        cas("r1", "m", 0, 1),            // Fig. 2 line 2
        setp_eq("p", reg("r1"), imm(0)), // lock acquired?
    ];
    if fenced {
        t1.push(membar_gl().guarded("p", true)); // Fig. 2 line 3
    }
    t1.push(ld("r3", "x").guarded("p", true));
    LitmusTest::builder(name)
        .doc("PTX compare-and-swap spin lock (Fig. 9)")
        .global("x", 0)
        .global("m", 1)
        .thread(t0)
        .thread(t1)
        .scope(ThreadScope::InterCta)
        .exists(Predicate::reg_eq(1, "r1", 0).and(Predicate::reg_eq(1, "r3", 0)))
        .build()
        .expect("corpus test is valid")
}

/// The Stuart–Owens variant of the spin lock, releasing with an exchange
/// and acquiring with an exchange instead of a CAS (`exch-sl`, Tab. 2).
pub fn exch_sl(fenced: bool) -> LitmusTest {
    let name = if fenced {
        "exch-sl+membar.gls"
    } else {
        "exch-sl"
    };
    let mut t0 = vec![st("x", 1)];
    if fenced {
        t0.push(membar_gl());
    }
    t0.push(exch("r0", "m", 0));
    let mut t1 = vec![exch("r1", "m", 1), setp_eq("p", reg("r1"), imm(0))];
    if fenced {
        t1.push(membar_gl().guarded("p", true));
    }
    t1.push(ld("r3", "x").guarded("p", true));
    LitmusTest::builder(name)
        .doc("PTX exchange spin lock (Stuart-Owens, Tab. 2)")
        .global("x", 0)
        .global("m", 1)
        .thread(t0)
        .thread(t1)
        .scope(ThreadScope::InterCta)
        .exists(Predicate::reg_eq(1, "r1", 0).and(Predicate::reg_eq(1, "r3", 0)))
        .build()
        .expect("corpus test is valid")
}

/// Fig. 11 — `sl-future`: the He–Yu transaction spin lock. A thread inside
/// a critical section reads a value written by the *next* critical section.
///
/// `fixed: false` builds the original (buggy) lock: release by a plain
/// store (Fig. 10 line 10) followed by a too-late fence (line 11).
/// `fixed: true` builds the corrected lock: fences at entry and exit, and
/// release by `atom.exch` (the `(+)` lines).
pub fn sl_future(fixed: bool) -> LitmusTest {
    let name = if fixed { "sl-future+fix" } else { "sl-future" };
    let t0: Vec<Instr> = if fixed {
        vec![
            ld("r0", "x"),      // Fig. 10 line 7 (critical section read)
            membar_gl(),        // line 8 (+)
            exch("r1", "m", 0), // line 9 (+)
        ]
    } else {
        vec![
            ld("r0", "x"), // line 7
            st("m", 0),    // line 10 (-): plain-store release
            membar_gl(),   // line 11 (-): fence after the release
        ]
    };
    let mut t1 = vec![
        cas("r2", "m", 0, 1),            // Fig. 10 line 3
        setp_eq("p", reg("r2"), imm(0)), // line 4
        mov("r3", 1).guarded("p", true), // line 5
    ];
    if fixed {
        t1.push(membar_gl().guarded("p", true)); // line 6 (+)
    }
    t1.push(st("x", 1).guarded("p", true)); // line 7
    LitmusTest::builder(name)
        .doc("PTX spin lock future value test (Fig. 11)")
        .global("x", 0)
        .global("m", 1)
        .thread(t0)
        .thread(t1)
        .scope(ThreadScope::InterCta)
        .exists(Predicate::reg_eq(0, "r0", 1).and(Predicate::reg_eq(1, "r2", 0)))
        .build()
        .expect("corpus test is valid")
}

/// The four idioms of Tab. 6 at the placements used there:
/// `coRR` intra-CTA and `lb`, `mp`, `sb` inter-CTA, all targeting global
/// memory, unfenced.
pub fn tab6_tests() -> Vec<LitmusTest> {
    vec![
        corr(),
        lb(ThreadScope::InterCta, None),
        mp(ThreadScope::InterCta, None),
        sb(ThreadScope::InterCta, None),
    ]
}

/// Every distinct test in the corpus (all figures, both fence polarities).
pub fn all() -> Vec<LitmusTest> {
    let mut v = vec![
        corr(),
        corr_l2_l1(None),
        mp_volatile(),
        dlb_mp(false),
        dlb_mp(true),
        dlb_lb(false),
        dlb_lb(true),
        cas_sl(false),
        cas_sl(true),
        exch_sl(false),
        exch_sl(true),
        sl_future(false),
        sl_future(true),
    ];
    for fence in [
        None,
        Some(FenceScope::Cta),
        Some(FenceScope::Gl),
        Some(FenceScope::Sys),
    ] {
        v.push(mp_l1(fence));
        if fence.is_some() {
            v.push(corr_l2_l1(fence));
        }
    }
    for scope in [ThreadScope::IntraCta, ThreadScope::InterCta] {
        for fence in [
            None,
            Some(FenceScope::Cta),
            Some(FenceScope::Gl),
            Some(FenceScope::Sys),
        ] {
            v.push(mp(scope, fence).with_name(format!("mp{}+{scope}", fence_suffix(fence),)));
            v.push(sb(scope, fence).with_name(format!("sb{}+{scope}", fence_suffix(fence),)));
            v.push(lb(scope, fence).with_name(format!("lb{}+{scope}", fence_suffix(fence),)));
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser;

    #[test]
    fn all_tests_build_and_roundtrip() {
        let tests = all();
        assert!(tests.len() >= 30);
        for t in tests {
            let printed = t.to_string();
            let reparsed = parser::parse(&printed)
                .unwrap_or_else(|e| panic!("{}: reparse failed: {e}\n{printed}", t.name()));
            assert_eq!(t.threads(), reparsed.threads(), "{}", t.name());
            assert_eq!(t.cond(), reparsed.cond(), "{}", t.name());
            assert_eq!(t.scope_tree(), reparsed.scope_tree(), "{}", t.name());
        }
    }

    #[test]
    fn corr_matches_fig1() {
        let t = corr();
        assert_eq!(t.thread_scope(), Some(ThreadScope::IntraCta));
        assert_eq!(t.threads()[0].len(), 1);
        assert_eq!(t.threads()[1].len(), 2);
        assert_eq!(t.memory().init(&"x".into()), Some(0));
    }

    #[test]
    fn mp_l1_uses_ca_loads_and_cg_stores() {
        use crate::instr::{CacheOp, Instr};
        let t = mp_l1(Some(FenceScope::Gl));
        match &t.threads()[1][0] {
            Instr::Ld { cache, .. } => assert_eq!(*cache, CacheOp::Ca),
            other => panic!("unexpected {other:?}"),
        }
        match &t.threads()[0][0] {
            Instr::St { cache, .. } => assert_eq!(*cache, CacheOp::Cg),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(t.threads()[0][1], membar_gl());
        assert_eq!(t.name(), "mp-L1+membar.gls");
    }

    #[test]
    fn mp_volatile_is_shared_intra_cta() {
        let t = mp_volatile();
        assert_eq!(t.thread_scope(), Some(ThreadScope::IntraCta));
        assert_eq!(t.memory().region(&"x".into()), Some(crate::Region::Shared));
        for i in t.threads().iter().flatten() {
            match i {
                Instr::Ld { volatile, .. } | Instr::St { volatile, .. } => assert!(volatile),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn cas_sl_mutex_initially_locked() {
        let t = cas_sl(false);
        assert_eq!(t.memory().init(&"m".into()), Some(1));
        // T1's load of x is guarded on lock acquisition.
        assert!(matches!(
            t.threads()[1].last().unwrap(),
            Instr::Guard { expect: true, .. }
        ));
    }

    #[test]
    fn fenced_variants_add_fences() {
        for (unfenced, fenced) in [
            (dlb_mp(false), dlb_mp(true)),
            (dlb_lb(false), dlb_lb(true)),
            (cas_sl(false), cas_sl(true)),
            (exch_sl(false), exch_sl(true)),
        ] {
            let count = |t: &LitmusTest| {
                t.threads()
                    .iter()
                    .flatten()
                    .filter(|i| i.is_fence())
                    .count()
            };
            assert_eq!(count(&unfenced), 0, "{}", unfenced.name());
            assert_eq!(count(&fenced), 2, "{}", fenced.name());
        }
    }

    #[test]
    fn sl_future_fixed_uses_exchange_release() {
        let buggy = sl_future(false);
        let fixed = sl_future(true);
        assert!(buggy.threads()[0]
            .iter()
            .any(|i| matches!(i, Instr::St { .. })));
        assert!(fixed.threads()[0]
            .iter()
            .any(|i| matches!(i, Instr::Exch { .. })));
        // The buggy version's fence comes after the release.
        assert!(buggy.threads()[0][2].is_fence());
    }

    #[test]
    fn dlb_lb_final_cond_matches_fig8() {
        let t = dlb_lb(false);
        assert_eq!(t.cond().to_string(), "exists (0:r0=1 /\\ 1:r1=1)");
    }

    #[test]
    fn mp_dep_has_false_dependency_chain() {
        let t = mp_dep(ThreadScope::InterCta, FenceScope::Gl);
        assert!(t.threads()[1].len() == 5);
        assert!(t.threads()[1]
            .iter()
            .any(|i| matches!(i, Instr::And { .. })));
    }

    #[test]
    fn tab6_tests_have_expected_scopes() {
        let tests = tab6_tests();
        assert_eq!(tests[0].thread_scope(), Some(ThreadScope::IntraCta));
        for t in &tests[1..] {
            assert_eq!(
                t.thread_scope(),
                Some(ThreadScope::InterCta),
                "{}",
                t.name()
            );
        }
    }
}
