//! Rendering litmus tests in the textual format of the paper's Fig. 12.
//!
//! The output of [`write_test`] (also available via `LitmusTest`'s
//! [`std::fmt::Display`] impl) is accepted by [`crate::parser::parse`];
//! round-tripping is covered by property tests.

use std::collections::BTreeSet;
use std::fmt;

use crate::instr::{Instr, Reg};
use crate::program::LitmusTest;
use crate::value::Value;

/// Writes `test` in the textual litmus format.
pub fn write_test(test: &LitmusTest, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    writeln!(f, "GPU_PTX {}", test.name())?;
    if !test.doc().is_empty() {
        writeln!(f, "(* {} *)", test.doc())?;
    }

    // Register declaration block: declare every register used per thread,
    // with initialisations where present. Declarations let the parser
    // distinguish `[r1]` (register-held address) from `[x]` (location).
    let mut decls: Vec<String> = Vec::new();
    for (tid, thread) in test.threads().iter().enumerate() {
        let mut regs: BTreeSet<Reg> = BTreeSet::new();
        for instr in thread {
            regs.extend(instr.read_regs());
            if let Some(r) = instr.written_reg() {
                regs.insert(r.clone());
            }
        }
        let preds = predicate_regs(thread);
        for r in regs {
            let init = test.reg_init_value(tid, &r);
            let ty = if preds.contains(&r) {
                ".pred"
            } else if matches!(init, Value::Ptr { .. }) {
                ".b64"
            } else {
                ".s32"
            };
            let mut d = format!("{tid}:.reg {ty} {r}");
            match init {
                Value::Int(0) => {}
                Value::Int(n) => d.push_str(&format!(" = {n}")),
                Value::Ptr { loc, offset: 0 } => d.push_str(&format!(" = {loc}")),
                Value::Ptr { loc, offset } => d.push_str(&format!(" = {loc}+{offset}")),
            }
            decls.push(d);
        }
    }
    if !decls.is_empty() {
        writeln!(f, "{{{}}}", decls.join("; "))?;
    }

    // Column header.
    let header: Vec<String> = (0..test.num_threads()).map(|t| format!("T{t}")).collect();
    writeln!(f, "{} ;", header.join(" | "))?;

    // Instruction rows, padded to the longest thread.
    let rows = test.threads().iter().map(Vec::len).max().unwrap_or(0);
    for row in 0..rows {
        let cells: Vec<String> = test
            .threads()
            .iter()
            .map(|t| t.get(row).map(render_instr).unwrap_or_default())
            .collect();
        writeln!(f, "{} ;", cells.join(" | "))?;
    }

    writeln!(f, "{}", test.scope_tree())?;
    if !test.memory().is_empty() {
        writeln!(f, "{}", test.memory())?;
    }
    write!(f, "{}", test.cond())
}

fn predicate_regs(thread: &[Instr]) -> BTreeSet<Reg> {
    let mut preds = BTreeSet::new();
    for instr in thread {
        if let Instr::Guard { pred, .. } = instr {
            preds.insert(pred.clone());
        }
        if let Instr::SetpEq { dst, .. } | Instr::SetpNe { dst, .. } = instr.unguarded() {
            preds.insert(dst.clone());
        }
    }
    preds
}

/// Renders a single instruction in PTX-style syntax, e.g. `st.cg [x],1`.
pub fn render_instr(instr: &Instr) -> String {
    match instr {
        Instr::Ld {
            dst,
            addr,
            cache,
            volatile,
        } => {
            if *volatile {
                format!("ld.volatile {dst},[{addr}]")
            } else {
                format!("ld{cache} {dst},[{addr}]")
            }
        }
        Instr::St {
            addr,
            src,
            cache,
            volatile,
        } => {
            if *volatile {
                format!("st.volatile [{addr}],{src}")
            } else {
                format!("st{cache} [{addr}],{src}")
            }
        }
        Instr::Cas {
            dst,
            addr,
            expected,
            desired,
        } => format!("atom.cas {dst},[{addr}],{expected},{desired}"),
        Instr::Exch { dst, addr, src } => format!("atom.exch {dst},[{addr}],{src}"),
        Instr::Inc { dst, addr } => format!("atom.inc {dst},[{addr}]"),
        Instr::Membar { scope } => format!("membar{scope}"),
        Instr::Mov { dst, src } => format!("mov {dst},{src}"),
        Instr::Add { dst, a, b } => format!("add {dst},{a},{b}"),
        Instr::And { dst, a, b } => format!("and {dst},{a},{b}"),
        Instr::Xor { dst, a, b } => format!("xor {dst},{a},{b}"),
        Instr::Cvt { dst, src } => format!("cvt {dst},{src}"),
        Instr::SetpEq { dst, a, b } => format!("setp.eq {dst},{a},{b}"),
        Instr::SetpNe { dst, a, b } => format!("setp.ne {dst},{a},{b}"),
        Instr::Bra { target } => format!("bra {target}"),
        Instr::Guard {
            pred,
            expect,
            inner,
        } => {
            let bang = if *expect { "" } else { "!" };
            format!("@{bang}{pred} {}", render_instr(inner))
        }
        Instr::LabelDef(l) => format!("{l}:"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::*;
    use crate::cond::Predicate;
    use crate::instr::FenceScope;
    use crate::scope::ScopeTree;
    use crate::LitmusTest;

    #[test]
    fn renders_instructions() {
        assert_eq!(render_instr(&st("x", 1)), "st.cg [x],1");
        assert_eq!(render_instr(&ld_ca("r1", "y")), "ld.ca r1,[y]");
        assert_eq!(render_instr(&ld_volatile("r1", "y")), "ld.volatile r1,[y]");
        assert_eq!(render_instr(&membar(FenceScope::Gl)), "membar.gl");
        assert_eq!(render_instr(&cas("r0", "m", 0, 1)), "atom.cas r0,[m],0,1");
        assert_eq!(render_instr(&exch("r0", "m", 0)), "atom.exch r0,[m],0");
        assert_eq!(render_instr(&inc("r0", "c")), "atom.inc r0,[c]");
        assert_eq!(
            render_instr(&ld("r3", "x").guarded("p", true)),
            "@p ld.cg r3,[x]"
        );
        assert_eq!(
            render_instr(&membar_gl().guarded("p4", false)),
            "@!p4 membar.gl"
        );
        assert_eq!(render_instr(&label("LOOP")), "LOOP:");
        assert_eq!(render_instr(&bra("LOOP")), "bra LOOP");
        assert_eq!(
            render_instr(&setp_eq("p", reg("r0"), imm(0))),
            "setp.eq p,r0,0"
        );
    }

    #[test]
    fn full_test_rendering() {
        let t = LitmusTest::builder("sb")
            .global("x", 0)
            .global("y", 0)
            .thread([mov("r0", 1), st_reg("x", "r0"), ld("r2", "y")])
            .thread([mov("r0", 1), st_reg("y", "r0"), ld("r2", "x")])
            .scope_tree(ScopeTree::intra_cta(2))
            .exists(Predicate::reg_eq(0, "r2", 0).and(Predicate::reg_eq(1, "r2", 0)))
            .build()
            .unwrap();
        let s = t.to_string();
        assert!(s.starts_with("GPU_PTX sb\n"), "{s}");
        assert!(s.contains("T0 | T1 ;"), "{s}");
        assert!(s.contains("st.cg [x],r0 | st.cg [y],r0 ;"), "{s}");
        assert!(s.contains("ScopeTree(grid(cta(warp T0)(warp T1)))"), "{s}");
        assert!(s.contains("x: global, y: global"), "{s}");
        assert!(s.ends_with("exists (0:r2=0 /\\ 1:r2=0)"), "{s}");
        // registers declared
        assert!(s.contains("0:.reg .s32 r0"), "{s}");
    }

    #[test]
    fn uneven_threads_padded() {
        let t = LitmusTest::builder("t")
            .global("x", 0)
            .thread([st("x", 1)])
            .thread([ld("r1", "x"), ld("r2", "x")])
            .exists(Predicate::reg_eq(1, "r1", 1))
            .build()
            .unwrap();
        let s = t.to_string();
        assert!(s.contains(" | ld.cg r2,[x] ;"), "{s}");
    }
}
