//! Scope trees: the placement of litmus-test threads in the GPU execution
//! hierarchy (warps inside CTAs inside a grid; paper Secs. 2.1 and 4.1).

use std::fmt;

/// Where a thread sits in the hierarchy: `(cta, warp)` indices.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ThreadPlacement {
    /// Index of the thread's CTA within the grid.
    pub cta: usize,
    /// Index of the thread's warp within its CTA.
    pub warp: usize,
}

/// The classic placements used throughout the paper's tables.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum ThreadScope {
    /// All threads in the same warp (not exercised by the paper's tests).
    IntraWarp,
    /// Same CTA, different warps — "intra-CTA" in the tables.
    IntraCta,
    /// Same grid, different CTAs — "inter-CTA" in the tables.
    InterCta,
}

impl fmt::Display for ThreadScope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThreadScope::IntraWarp => write!(f, "intra-warp"),
            ThreadScope::IntraCta => write!(f, "intra-CTA"),
            ThreadScope::InterCta => write!(f, "inter-CTA"),
        }
    }
}

/// A scope tree for a single grid: CTAs containing warps containing thread
/// ids. Thread ids must be exactly `0..n` across the tree, in any order.
///
/// ```
/// use weakgpu_litmus::ScopeTree;
///
/// let st = ScopeTree::inter_cta(2);
/// assert!(!st.same_cta(0, 1));
/// assert!(st.to_string().contains("grid"));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ScopeTree {
    ctas: Vec<Vec<Vec<usize>>>,
}

impl ScopeTree {
    /// Builds a scope tree from explicit nesting: `ctas[c][w]` is the list
    /// of thread ids in warp `w` of CTA `c`.
    ///
    /// # Panics
    ///
    /// Panics unless the thread ids across all warps are exactly `0..n`
    /// with no duplicates, and no CTA or warp is empty.
    pub fn new(ctas: Vec<Vec<Vec<usize>>>) -> Self {
        let mut seen: Vec<usize> = ctas
            .iter()
            .flat_map(|c| c.iter())
            .flat_map(|w| w.iter().copied())
            .collect();
        assert!(!seen.is_empty(), "scope tree must contain threads");
        assert!(
            ctas.iter()
                .all(|c| !c.is_empty() && c.iter().all(|w| !w.is_empty())),
            "scope tree must not contain empty CTAs or warps"
        );
        seen.sort_unstable();
        assert!(
            seen.iter().copied().eq(0..seen.len()),
            "thread ids must be exactly 0..n, got {seen:?}"
        );
        ScopeTree { ctas }
    }

    /// `n` threads in one warp of one CTA.
    pub fn intra_warp(n: usize) -> Self {
        ScopeTree::new(vec![vec![(0..n).collect()]])
    }

    /// `n` threads in one CTA, one warp each (the paper's "intra-CTA").
    pub fn intra_cta(n: usize) -> Self {
        ScopeTree::new(vec![(0..n).map(|t| vec![t]).collect()])
    }

    /// `n` threads in distinct CTAs (the paper's "inter-CTA").
    pub fn inter_cta(n: usize) -> Self {
        ScopeTree::new((0..n).map(|t| vec![vec![t]]).collect())
    }

    /// Builds the canonical tree for one of the named placements.
    pub fn for_scope(scope: ThreadScope, n: usize) -> Self {
        match scope {
            ThreadScope::IntraWarp => ScopeTree::intra_warp(n),
            ThreadScope::IntraCta => ScopeTree::intra_cta(n),
            ThreadScope::InterCta => ScopeTree::inter_cta(n),
        }
    }

    /// Number of threads in the tree.
    pub fn num_threads(&self) -> usize {
        self.ctas.iter().flatten().map(Vec::len).sum()
    }

    /// Number of CTAs in the tree.
    pub fn num_ctas(&self) -> usize {
        self.ctas.len()
    }

    /// The `(cta, warp)` placement of thread `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not in the tree.
    pub fn placement(&self, t: usize) -> ThreadPlacement {
        for (c, cta) in self.ctas.iter().enumerate() {
            for (w, warp) in cta.iter().enumerate() {
                if warp.contains(&t) {
                    return ThreadPlacement { cta: c, warp: w };
                }
            }
        }
        panic!("thread {t} not in scope tree");
    }

    /// `true` if threads `a` and `b` are in the same CTA (including `a = b`).
    pub fn same_cta(&self, a: usize, b: usize) -> bool {
        self.placement(a).cta == self.placement(b).cta
    }

    /// `true` if threads `a` and `b` are in the same warp (including `a = b`).
    pub fn same_warp(&self, a: usize, b: usize) -> bool {
        let (pa, pb) = (self.placement(a), self.placement(b));
        pa.cta == pb.cta && pa.warp == pb.warp
    }

    /// Classifies a two-thread tree into the named placements; `None` for
    /// trees with other shapes.
    pub fn classify(&self) -> Option<ThreadScope> {
        if self.num_threads() != 2 {
            return None;
        }
        Some(if self.same_warp(0, 1) {
            ThreadScope::IntraWarp
        } else if self.same_cta(0, 1) {
            ThreadScope::IntraCta
        } else {
            ThreadScope::InterCta
        })
    }

    /// Iterates over `(cta_index, warp_index, thread_id)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, usize)> + '_ {
        self.ctas.iter().enumerate().flat_map(|(c, cta)| {
            cta.iter()
                .enumerate()
                .flat_map(move |(w, warp)| warp.iter().map(move |&t| (c, w, t)))
        })
    }
}

impl fmt::Display for ScopeTree {
    /// Renders the paper's syntax, e.g.
    /// `ScopeTree(grid(cta(warp T0)(warp T1)))`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ScopeTree(grid")?;
        for cta in &self.ctas {
            write!(f, "(cta")?;
            for warp in cta {
                write!(f, "(warp")?;
                for t in warp {
                    write!(f, " T{t}")?;
                }
                write!(f, ")")?;
            }
            write!(f, ")")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_trees() {
        let w = ScopeTree::intra_warp(2);
        assert!(w.same_warp(0, 1));
        assert_eq!(w.classify(), Some(ThreadScope::IntraWarp));

        let c = ScopeTree::intra_cta(2);
        assert!(c.same_cta(0, 1));
        assert!(!c.same_warp(0, 1));
        assert_eq!(c.classify(), Some(ThreadScope::IntraCta));

        let g = ScopeTree::inter_cta(2);
        assert!(!g.same_cta(0, 1));
        assert_eq!(g.classify(), Some(ThreadScope::InterCta));
        assert_eq!(g.num_ctas(), 2);
        assert_eq!(g.num_threads(), 2);
    }

    #[test]
    fn display_matches_paper_syntax() {
        assert_eq!(
            ScopeTree::intra_cta(2).to_string(),
            "ScopeTree(grid(cta(warp T0)(warp T1)))"
        );
        assert_eq!(
            ScopeTree::inter_cta(2).to_string(),
            "ScopeTree(grid(cta(warp T0))(cta(warp T1)))"
        );
    }

    #[test]
    fn mixed_tree_three_threads() {
        // T0 and T1 intra-CTA, T2 in its own CTA.
        let t = ScopeTree::new(vec![vec![vec![0], vec![1]], vec![vec![2]]]);
        assert!(t.same_cta(0, 1));
        assert!(!t.same_cta(0, 2));
        assert_eq!(t.classify(), None);
        assert_eq!(t.iter().count(), 3);
        assert_eq!(t.placement(2), ThreadPlacement { cta: 1, warp: 0 });
    }

    #[test]
    #[should_panic(expected = "thread ids must be exactly")]
    fn rejects_gaps() {
        let _ = ScopeTree::new(vec![vec![vec![0, 2]]]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn rejects_empty_warp() {
        let _ = ScopeTree::new(vec![vec![vec![0], vec![]]]);
    }
}
