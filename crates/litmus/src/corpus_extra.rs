//! Classic litmus idioms beyond the paper's figures, at GPU scopes —
//! the wider families the paper's generated validation covers
//! (write-to-read causality, independent-reads-independent-writes,
//! 2+2W, S and R shapes), useful for model exploration and as extra
//! validation fodder.

use crate::build::*;
use crate::cond::Predicate;
use crate::instr::FenceScope;
use crate::program::LitmusTest;
use crate::scope::{ScopeTree, ThreadScope};

fn fences(fence: Option<FenceScope>) -> Vec<crate::instr::Instr> {
    fence.map(membar).into_iter().collect()
}

/// `wrc` — write-to-read causality: T0 writes `x`; T1 reads it and then
/// writes `y`; T2 reads `y` then `x`. Weak outcome: T2 sees `y` but not
/// the causally-earlier `x`.
pub fn wrc(scope: ThreadScope, fence: Option<FenceScope>) -> LitmusTest {
    let mut t1 = vec![ld("r1", "x")];
    t1.extend(fences(fence));
    t1.push(st("y", 1));
    let mut t2 = vec![ld("r2", "y")];
    t2.extend(fences(fence));
    t2.push(ld("r3", "x"));
    LitmusTest::builder(match fence {
        None => "wrc".to_owned(),
        Some(s) => format!("wrc+membar{}s", s.suffix()),
    })
    .doc("write-to-read causality")
    .global("x", 0)
    .global("y", 0)
    .thread([st("x", 1)])
    .thread(t1)
    .thread(t2)
    .scope_tree(ScopeTree::for_scope(scope, 3))
    .exists(
        Predicate::reg_eq(1, "r1", 1)
            .and(Predicate::reg_eq(2, "r2", 1))
            .and(Predicate::reg_eq(2, "r3", 0)),
    )
    .build()
    .expect("corpus test is valid")
}

/// `isa2` — a three-thread handshake: T0 writes data and flag 1, T1
/// forwards flag 1 into flag 2, T2 reads flag 2 then the data.
pub fn isa2(scope: ThreadScope, fence: Option<FenceScope>) -> LitmusTest {
    let mut t0 = vec![st("x", 1)];
    t0.extend(fences(fence));
    t0.push(st("y", 1));
    let mut t1 = vec![ld("r1", "y")];
    t1.extend(fences(fence));
    t1.push(st("z", 1));
    let mut t2 = vec![ld("r2", "z")];
    t2.extend(fences(fence));
    t2.push(ld("r3", "x"));
    LitmusTest::builder(match fence {
        None => "isa2".to_owned(),
        Some(s) => format!("isa2+membar{}s", s.suffix()),
    })
    .doc("three-thread message passing chain")
    .global("x", 0)
    .global("y", 0)
    .global("z", 0)
    .thread(t0)
    .thread(t1)
    .thread(t2)
    .scope_tree(ScopeTree::for_scope(scope, 3))
    .exists(
        Predicate::reg_eq(1, "r1", 1)
            .and(Predicate::reg_eq(2, "r2", 1))
            .and(Predicate::reg_eq(2, "r3", 0)),
    )
    .build()
    .expect("corpus test is valid")
}

/// `iriw` — independent reads of independent writes: two writers to
/// different locations; two readers observe them in opposite orders.
pub fn iriw(scope: ThreadScope, fence: Option<FenceScope>) -> LitmusTest {
    let reader = |first: &str, second: &str, ra: &str, rb: &str| {
        let mut v = vec![ld(ra, first)];
        v.extend(fences(fence));
        v.push(ld(rb, second));
        v
    };
    LitmusTest::builder(match fence {
        None => "iriw".to_owned(),
        Some(s) => format!("iriw+membar{}s", s.suffix()),
    })
    .doc("independent reads of independent writes")
    .global("x", 0)
    .global("y", 0)
    .thread([st("x", 1)])
    .thread([st("y", 1)])
    .thread(reader("x", "y", "r1", "r2"))
    .thread(reader("y", "x", "r3", "r4"))
    .scope_tree(ScopeTree::for_scope(scope, 4))
    .exists(
        Predicate::reg_eq(2, "r1", 1)
            .and(Predicate::reg_eq(2, "r2", 0))
            .and(Predicate::reg_eq(3, "r3", 1))
            .and(Predicate::reg_eq(3, "r4", 0)),
    )
    .build()
    .expect("corpus test is valid")
}

/// `rwc` — read-to-write causality: T1 reads T0's write of `x`, then
/// reads `y`; T2 writes `y` then `x`… here in the classic shape where T2
/// stores `y` and then T0's `x` is overwritten is folded into `fr` edges.
pub fn rwc(scope: ThreadScope, fence: Option<FenceScope>) -> LitmusTest {
    let mut t1 = vec![ld("r1", "x")];
    t1.extend(fences(fence));
    t1.push(ld("r2", "y"));
    let mut t2 = vec![st("y", 1)];
    t2.extend(fences(fence));
    t2.push(st("x", 2));
    LitmusTest::builder(match fence {
        None => "rwc".to_owned(),
        Some(s) => format!("rwc+membar{}s", s.suffix()),
    })
    .doc("read-to-write causality")
    .global("x", 0)
    .global("y", 0)
    .thread([st("x", 1)])
    .thread(t1)
    .thread(t2)
    .scope_tree(ScopeTree::for_scope(scope, 3))
    .exists(
        Predicate::reg_eq(1, "r1", 1)
            .and(Predicate::reg_eq(1, "r2", 0))
            .and(Predicate::mem_eq("x", 1)),
    )
    .build()
    .expect("corpus test is valid")
}

/// `2+2w` — two threads, each writing both locations in opposite orders;
/// the weak outcome has each location's *first* writer win coherence.
pub fn two_plus_two_w(scope: ThreadScope, fence: Option<FenceScope>) -> LitmusTest {
    let side = |a: &str, b: &str| {
        let mut v = vec![st(a, 2)];
        v.extend(fences(fence));
        v.push(st(b, 1));
        v
    };
    LitmusTest::builder(match fence {
        None => "2+2w".to_owned(),
        Some(s) => format!("2+2w+membar{}s", s.suffix()),
    })
    .doc("double write-write coherence shape")
    .global("x", 0)
    .global("y", 0)
    .thread(side("x", "y"))
    .thread(side("y", "x"))
    .scope_tree(ScopeTree::for_scope(scope, 2))
    .exists(Predicate::mem_eq("x", 2).and(Predicate::mem_eq("y", 2)))
    .build()
    .expect("corpus test is valid")
}

/// `s` — write, write / read, write on the same data: the read observes
/// the first write, yet its thread's write loses coherence to it.
pub fn s_shape(scope: ThreadScope, fence: Option<FenceScope>) -> LitmusTest {
    let mut t0 = vec![st("x", 2)];
    t0.extend(fences(fence));
    t0.push(st("y", 1));
    let mut t1 = vec![ld("r1", "y")];
    t1.extend(fences(fence));
    t1.push(st("x", 1));
    LitmusTest::builder(match fence {
        None => "s".to_owned(),
        Some(sc) => format!("s+membar{}s", sc.suffix()),
    })
    .doc("the S shape (coherence against message passing)")
    .global("x", 0)
    .global("y", 0)
    .thread(t0)
    .thread(t1)
    .scope_tree(ScopeTree::for_scope(scope, 2))
    .exists(Predicate::reg_eq(1, "r1", 1).and(Predicate::mem_eq("x", 2)))
    .build()
    .expect("corpus test is valid")
}

/// `r` — write, write / write, read: store buffering against coherence.
pub fn r_shape(scope: ThreadScope, fence: Option<FenceScope>) -> LitmusTest {
    let mut t0 = vec![st("x", 1)];
    t0.extend(fences(fence));
    t0.push(st("y", 1));
    let mut t1 = vec![st("y", 2)];
    t1.extend(fences(fence));
    t1.push(ld("r1", "x"));
    LitmusTest::builder(match fence {
        None => "r".to_owned(),
        Some(s) => format!("r+membar{}s", s.suffix()),
    })
    .doc("the R shape (store buffering against coherence)")
    .global("x", 0)
    .global("y", 0)
    .thread(t0)
    .thread(t1)
    .scope_tree(ScopeTree::for_scope(scope, 2))
    .exists(Predicate::mem_eq("y", 2).and(Predicate::reg_eq(1, "r1", 0)))
    .build()
    .expect("corpus test is valid")
}

/// `corr-fan` — an oversized coherence shape beyond the paper family:
/// `writers` threads each store 1 to `x`, and one reader thread issues
/// `reads` back-to-back loads of `x`. The candidate space is
/// `(writers+1)^reads · writers!` — exponential in the reader length —
/// but under a coherent model almost all value patterns embed the
/// forbidden new-then-old pair, so the pruned enumerator
/// (`EnumConfig::pruning`) collapses the space by orders of magnitude
/// while the exhaustive stream blows the candidate budget. The weak
/// condition is the long-distance coRR pattern: the first load sees a
/// write, the last load sees the initial state.
pub fn corr_fan(writers: usize, reads: usize) -> LitmusTest {
    assert!(writers >= 1 && reads >= 2, "corr-fan needs a fan");
    let mut b = LitmusTest::builder(format!("corr-fan-{writers}w{reads}r"))
        .doc("oversized read-fan coherence shape (equivalence-pruning showcase)")
        .global("x", 0);
    for _ in 0..writers {
        b = b.thread([st("x", 1)]);
    }
    b = b.thread((1..=reads).map(|i| ld(&format!("r{i}"), "x")));
    b.scope_tree(ScopeTree::for_scope(ThreadScope::InterCta, writers + 1))
        .exists(Predicate::reg_eq(writers, "r1", 1).and(Predicate::reg_eq(
            writers,
            format!("r{reads}").as_str(),
            0,
        )))
        .build()
        .expect("corpus test is valid")
}

/// All extra idioms, unfenced and gl-fenced, at both placements.
pub fn all_extra() -> Vec<LitmusTest> {
    let mut v = Vec::new();
    for scope in [ThreadScope::IntraCta, ThreadScope::InterCta] {
        for fence in [None, Some(FenceScope::Gl)] {
            let suffix = format!("+{scope}");
            v.push(wrc(scope, fence).with_name(format!("{}{}", wrc(scope, fence).name(), suffix)));
            v.push(isa2(scope, fence).with_name(format!(
                "{}{}",
                isa2(scope, fence).name(),
                suffix
            )));
            v.push(iriw(scope, fence).with_name(format!(
                "{}{}",
                iriw(scope, fence).name(),
                suffix
            )));
            v.push(rwc(scope, fence).with_name(format!("{}{}", rwc(scope, fence).name(), suffix)));
            v.push(two_plus_two_w(scope, fence).with_name(format!(
                "{}{}",
                two_plus_two_w(scope, fence).name(),
                suffix
            )));
            v.push(s_shape(scope, fence).with_name(format!(
                "{}{}",
                s_shape(scope, fence).name(),
                suffix
            )));
            v.push(r_shape(scope, fence).with_name(format!(
                "{}{}",
                r_shape(scope, fence).name(),
                suffix
            )));
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser;

    #[test]
    fn all_extra_build_and_roundtrip() {
        let tests = all_extra();
        assert_eq!(tests.len(), 28);
        for t in tests {
            let printed = t.to_string();
            let reparsed =
                parser::parse(&printed).unwrap_or_else(|e| panic!("{}: {e}\n{printed}", t.name()));
            assert_eq!(t.threads(), reparsed.threads(), "{}", t.name());
        }
    }

    #[test]
    fn corr_fan_shape_and_roundtrip() {
        let t = corr_fan(2, 4);
        assert_eq!(t.num_threads(), 3);
        assert_eq!(t.threads()[2].len(), 4);
        // Only the first and last reader registers are observed.
        assert_eq!(t.observed().len(), 2);
        let printed = t.to_string();
        let reparsed = parser::parse(&printed).unwrap_or_else(|e| panic!("{e}\n{printed}"));
        assert_eq!(t.threads(), reparsed.threads());
    }

    #[test]
    fn shapes() {
        assert_eq!(wrc(ThreadScope::InterCta, None).num_threads(), 3);
        assert_eq!(isa2(ThreadScope::InterCta, None).num_threads(), 3);
        assert_eq!(iriw(ThreadScope::InterCta, None).num_threads(), 4);
        assert_eq!(two_plus_two_w(ThreadScope::IntraCta, None).num_threads(), 2);
        // iriw observes four registers.
        assert_eq!(iriw(ThreadScope::InterCta, None).observed().len(), 4);
        // 2+2w observes final memory only.
        assert!(two_plus_two_w(ThreadScope::InterCta, None)
            .observed()
            .iter()
            .all(|e| matches!(e, crate::FinalExpr::Mem(_))));
    }
}
