//! A miniature CUDA-like source layer and the paper's Tab. 5 mapping to
//! PTX.
//!
//! The paper's programming-assumption studies start from CUDA snippets
//! (Figs. 2, 6 and 10) and distil them to PTX litmus threads through the
//! compilation mapping of Tab. 5 (discovered by examining CUDA 5.5
//! output with `-Xptxas -dlcm=cg`):
//!
//! | CUDA | PTX |
//! |---|---|
//! | `atomicCAS` | `atom.cas` |
//! | `atomicExch` | `atom.exch` |
//! | `atomicAdd(…, 1)` | `atom.inc` |
//! | `__threadfence()` | `membar.gl` |
//! | `__threadfence_block()` | `membar.cta` |
//! | store/load of global `int` | `st.cg` / `ld.cg` |
//! | store/load of `volatile int` | `st.volatile` / `ld.volatile` |
//! | control flow | jumps and predicated instructions |
//!
//! [`CudaStmt`] models exactly the statement forms those snippets use;
//! [`compile_thread`] applies Tab. 5.

use crate::build;
use crate::instr::{Instr, Operand, Reg};
use crate::value::Loc;

/// A value expression in the mini-CUDA fragment.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CudaExpr {
    /// An integer literal.
    Lit(i64),
    /// A local variable.
    Var(String),
    /// `a + b`.
    Add(Box<CudaExpr>, Box<CudaExpr>),
}

impl CudaExpr {
    /// A variable reference.
    pub fn var(name: &str) -> Self {
        CudaExpr::Var(name.to_owned())
    }
}

/// A condition in the fragment: equality/inequality against a literal.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CudaCond {
    /// `var == lit`.
    Eq(String, i64),
    /// `var != lit`.
    Ne(String, i64),
}

/// The statement forms used by the paper's CUDA snippets.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CudaStmt {
    /// `var = *loc;` — a load from a global (or volatile global) int.
    Load {
        /// Local variable receiving the value.
        var: String,
        /// Source location.
        loc: Loc,
        /// Declared `volatile`.
        volatile: bool,
    },
    /// `*loc = expr;` — a store.
    Store {
        /// Target location.
        loc: Loc,
        /// Stored expression.
        value: CudaExpr,
        /// Declared `volatile`.
        volatile: bool,
    },
    /// `var = atomicCAS(loc, expected, desired);`.
    AtomicCas {
        /// Receives the old value.
        var: String,
        /// Target location.
        loc: Loc,
        /// Comparison value.
        expected: i64,
        /// Swapped-in value.
        desired: i64,
    },
    /// `var = atomicExch(loc, value);`.
    AtomicExch {
        /// Receives the old value.
        var: String,
        /// Target location.
        loc: Loc,
        /// New value.
        value: i64,
    },
    /// `var = atomicAdd(loc, 1);`.
    AtomicInc {
        /// Receives the old value.
        var: String,
        /// Target location.
        loc: Loc,
    },
    /// `__threadfence();`.
    Threadfence,
    /// `__threadfence_block();`.
    ThreadfenceBlock,
    /// `if (cond) { … }`.
    If {
        /// The branch condition.
        cond: CudaCond,
        /// The guarded body.
        body: Vec<CudaStmt>,
    },
    /// `while (cond) { body }` — compiled, like the CUDA compiler does,
    /// to a label/branch loop with predicated exit.
    While {
        /// The loop condition (re-evaluated per iteration).
        cond: CudaCond,
        /// The loop body.
        body: Vec<CudaStmt>,
    },
}

/// Compilation state: fresh register/label allocation and the variable →
/// register map.
struct Compiler {
    var_regs: std::collections::BTreeMap<String, Reg>,
    fresh: usize,
    labels: usize,
    out: Vec<Instr>,
}

impl Compiler {
    fn reg_for(&mut self, var: &str) -> Reg {
        if let Some(r) = self.var_regs.get(var) {
            return r.clone();
        }
        let r = Reg::new(format!("r{}", self.fresh));
        self.fresh += 1;
        self.var_regs.insert(var.to_owned(), r.clone());
        r
    }

    fn fresh_pred(&mut self) -> Reg {
        let r = Reg::new(format!("p{}", self.fresh));
        self.fresh += 1;
        r
    }

    fn fresh_label(&mut self, stem: &str) -> String {
        self.labels += 1;
        format!("{stem}{}", self.labels)
    }

    fn expr(&mut self, e: &CudaExpr) -> Operand {
        match e {
            CudaExpr::Lit(n) => Operand::Imm(*n),
            CudaExpr::Var(v) => Operand::Reg(self.reg_for(v)),
            CudaExpr::Add(a, b) => {
                let (oa, ob) = (self.expr(a), self.expr(b));
                let dst = Reg::new(format!("r{}", self.fresh));
                self.fresh += 1;
                self.out.push(Instr::Add {
                    dst: dst.clone(),
                    a: oa,
                    b: ob,
                });
                Operand::Reg(dst)
            }
        }
    }

    fn cond_pred(&mut self, cond: &CudaCond) -> Reg {
        let p = self.fresh_pred();
        let (var, lit, eq) = match cond {
            CudaCond::Eq(v, n) => (v, *n, true),
            CudaCond::Ne(v, n) => (v, *n, false),
        };
        let r = self.reg_for(var);
        let instr = if eq {
            Instr::SetpEq {
                dst: p.clone(),
                a: Operand::Reg(r),
                b: Operand::Imm(lit),
            }
        } else {
            Instr::SetpNe {
                dst: p.clone(),
                a: Operand::Reg(r),
                b: Operand::Imm(lit),
            }
        };
        self.out.push(instr);
        p
    }

    fn stmt(&mut self, s: &CudaStmt) {
        match s {
            CudaStmt::Load { var, loc, volatile } => {
                let dst = self.reg_for(var);
                self.out.push(Instr::Ld {
                    dst,
                    addr: Operand::Sym(loc.clone()),
                    cache: crate::instr::CacheOp::Cg,
                    volatile: *volatile,
                });
            }
            CudaStmt::Store {
                loc,
                value,
                volatile,
            } => {
                let src = self.expr(value);
                self.out.push(Instr::St {
                    addr: Operand::Sym(loc.clone()),
                    src,
                    cache: crate::instr::CacheOp::Cg,
                    volatile: *volatile,
                });
            }
            CudaStmt::AtomicCas {
                var,
                loc,
                expected,
                desired,
            } => {
                let dst = self.reg_for(var);
                self.out.push(Instr::Cas {
                    dst,
                    addr: Operand::Sym(loc.clone()),
                    expected: Operand::Imm(*expected),
                    desired: Operand::Imm(*desired),
                });
            }
            CudaStmt::AtomicExch { var, loc, value } => {
                let dst = self.reg_for(var);
                self.out.push(Instr::Exch {
                    dst,
                    addr: Operand::Sym(loc.clone()),
                    src: Operand::Imm(*value),
                });
            }
            CudaStmt::AtomicInc { var, loc } => {
                let dst = self.reg_for(var);
                self.out.push(Instr::Inc {
                    dst,
                    addr: Operand::Sym(loc.clone()),
                });
            }
            CudaStmt::Threadfence => self.out.push(build::membar_gl()),
            CudaStmt::ThreadfenceBlock => self.out.push(build::membar_cta()),
            CudaStmt::If { cond, body } => {
                // Predicate every instruction of the body (the CUDA
                // compiler predicates short bodies rather than branching).
                let p = self.cond_pred(cond);
                let mark = self.out.len();
                for inner in body {
                    self.stmt(inner);
                }
                for instr in self.out[mark..].iter_mut() {
                    let taken = std::mem::replace(instr, build::membar_gl());
                    *instr = match taken {
                        guard @ Instr::Guard { .. } => guard, // nested ifs already guarded
                        Instr::LabelDef(l) => Instr::LabelDef(l),
                        other => other.guarded(p.clone(), true),
                    };
                }
            }
            CudaStmt::While { cond, body } => {
                // LOOP: body; re-evaluate; @p bra LOOP
                let label = self.fresh_label("LOOP");
                self.out.push(build::label(&label));
                for inner in body {
                    self.stmt(inner);
                }
                let p = self.cond_pred(cond);
                self.out.push(build::bra(&label).guarded(p, true));
            }
        }
    }
}

/// Compiles a mini-CUDA thread body to PTX instructions via Tab. 5.
pub fn compile_thread(body: &[CudaStmt]) -> Vec<Instr> {
    let mut c = Compiler {
        var_regs: std::collections::BTreeMap::new(),
        fresh: 0,
        labels: 0,
        out: Vec::new(),
    };
    for s in body {
        c.stmt(s);
    }
    c.out
}

/// The register a variable compiled to, for wiring final conditions.
pub fn var_register(body: &[CudaStmt]) -> std::collections::BTreeMap<String, Reg> {
    let mut c = Compiler {
        var_regs: std::collections::BTreeMap::new(),
        fresh: 0,
        labels: 0,
        out: Vec::new(),
    };
    for s in body {
        c.stmt(s);
    }
    c.var_regs
}

/// The `lock()`/`unlock()` of the paper's Fig. 2 (CUDA by Example), as
/// mini-CUDA. `fenced` adds the erratum's `__threadfence()` calls.
pub fn cuda_by_example_lock(fenced: bool) -> Vec<CudaStmt> {
    let mut body = vec![CudaStmt::While {
        cond: CudaCond::Ne("old".into(), 0),
        body: vec![CudaStmt::AtomicCas {
            var: "old".into(),
            loc: Loc::new("mutex"),
            expected: 0,
            desired: 1,
        }],
    }];
    if fenced {
        body.push(CudaStmt::Threadfence);
    }
    body
}

/// The matching `unlock()`.
pub fn cuda_by_example_unlock(fenced: bool) -> Vec<CudaStmt> {
    let mut body = Vec::new();
    if fenced {
        body.push(CudaStmt::Threadfence);
    }
    body.push(CudaStmt::AtomicExch {
        var: "ignored".into(),
        loc: Loc::new("mutex"),
        value: 0,
    });
    body
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::FenceScope;

    type InstrCheck = fn(&Instr) -> bool;

    #[test]
    fn tab5_primitive_mappings() {
        let loc = Loc::new("x");
        let cases: Vec<(CudaStmt, InstrCheck)> = vec![
            (
                CudaStmt::Load {
                    var: "v".into(),
                    loc: loc.clone(),
                    volatile: false,
                },
                |i| {
                    matches!(
                        i,
                        Instr::Ld {
                            volatile: false,
                            ..
                        }
                    )
                },
            ),
            (
                CudaStmt::Store {
                    loc: loc.clone(),
                    value: CudaExpr::Lit(1),
                    volatile: true,
                },
                |i| matches!(i, Instr::St { volatile: true, .. }),
            ),
            (
                CudaStmt::AtomicCas {
                    var: "v".into(),
                    loc: loc.clone(),
                    expected: 0,
                    desired: 1,
                },
                |i| matches!(i, Instr::Cas { .. }),
            ),
            (
                CudaStmt::AtomicExch {
                    var: "v".into(),
                    loc: loc.clone(),
                    value: 0,
                },
                |i| matches!(i, Instr::Exch { .. }),
            ),
            (
                CudaStmt::AtomicInc {
                    var: "v".into(),
                    loc,
                },
                |i| matches!(i, Instr::Inc { .. }),
            ),
            (CudaStmt::Threadfence, |i| {
                matches!(
                    i,
                    Instr::Membar {
                        scope: FenceScope::Gl
                    }
                )
            }),
            (CudaStmt::ThreadfenceBlock, |i| {
                matches!(
                    i,
                    Instr::Membar {
                        scope: FenceScope::Cta
                    }
                )
            }),
        ];
        for (stmt, check) in cases {
            let compiled = compile_thread(std::slice::from_ref(&stmt));
            assert_eq!(compiled.len(), 1, "{stmt:?}");
            assert!(check(&compiled[0]), "{stmt:?} → {:?}", compiled[0]);
        }
    }

    #[test]
    fn while_compiles_to_label_and_predicated_branch() {
        let body = cuda_by_example_lock(false);
        let compiled = compile_thread(&body);
        assert!(matches!(compiled[0], Instr::LabelDef(_)));
        assert!(matches!(compiled[1], Instr::Cas { .. }));
        assert!(matches!(compiled[2], Instr::SetpNe { .. }));
        assert!(matches!(compiled[3], Instr::Guard { expect: true, .. }));
        assert!(!compiled[3].unguarded().is_fence());
    }

    #[test]
    fn if_predicates_the_body() {
        let prog = vec![
            CudaStmt::Load {
                var: "v".into(),
                loc: Loc::new("m"),
                volatile: false,
            },
            CudaStmt::If {
                cond: CudaCond::Eq("v".into(), 0),
                body: vec![CudaStmt::Store {
                    loc: Loc::new("x"),
                    value: CudaExpr::Lit(1),
                    volatile: false,
                }],
            },
        ];
        let compiled = compile_thread(&prog);
        // ld, setp, @p st.
        assert_eq!(compiled.len(), 3);
        assert!(matches!(compiled[2], Instr::Guard { expect: true, .. }));
        assert!(compiled[2].is_memory_access());
    }

    #[test]
    fn expressions_lower_through_add() {
        let prog = vec![
            CudaStmt::Load {
                var: "t".into(),
                loc: Loc::new("tail"),
                volatile: true,
            },
            CudaStmt::Store {
                loc: Loc::new("tail"),
                value: CudaExpr::Add(Box::new(CudaExpr::var("t")), Box::new(CudaExpr::Lit(1))),
                volatile: true,
            },
        ];
        let compiled = compile_thread(&prog);
        // ld.volatile, add, st.volatile — the dlb-mp writer of Fig. 7.
        assert_eq!(compiled.len(), 3);
        assert!(matches!(compiled[1], Instr::Add { .. }));
    }

    #[test]
    fn lock_and_unlock_build_a_runnable_test() {
        use crate::{LitmusTest, Predicate, ThreadScope};
        // T0: store data, unlock. T1: lock, read data — Fig. 2/Fig. 9.
        let mut t0 = vec![CudaStmt::Store {
            loc: Loc::new("x"),
            value: CudaExpr::Lit(1),
            volatile: false,
        }];
        t0.extend(cuda_by_example_unlock(true));
        let mut t1 = cuda_by_example_lock(true);
        t1.push(CudaStmt::Load {
            var: "data".into(),
            loc: Loc::new("x"),
            volatile: false,
        });
        let t1_regs = var_register(&t1);
        let data_reg = t1_regs.get("data").expect("data compiled").clone();
        let test = LitmusTest::builder("cuda-lock")
            .global("x", 0)
            .global("mutex", 1)
            .thread(compile_thread(&t0))
            .thread(compile_thread(&t1))
            .scope(ThreadScope::InterCta)
            .exists(Predicate::Eq(crate::FinalExpr::Reg(1, data_reg), 0))
            .build()
            .expect("compiled CUDA test is valid");
        assert_eq!(test.num_threads(), 2);
        // The spin loop made it through: a label and a guarded branch.
        assert!(test.threads()[1]
            .iter()
            .any(|i| matches!(i, Instr::LabelDef(_))));
    }
}
