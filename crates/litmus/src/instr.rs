//! The PTX instruction fragment used by GPU litmus tests.
//!
//! This covers exactly the instructions the paper's framework supports
//! (Sec. 2.3): loads (`ld`), stores (`st`), ALU operations (`mov`, `add`,
//! `and`, `xor`, `cvt`), fences (`membar`) parameterised by scope,
//! unconditional jumps (`bra`), predicate setting (`setp.eq`/`setp.ne`),
//! predicated instructions (`@p …` / `@!p …`), and the read-modify-write
//! atomics `atom.cas`, `atom.exch` and `atom.inc` used by the programming-
//! assumption studies (Sec. 3.2).

use std::fmt;
use std::sync::Arc;

use crate::value::Loc;

/// A PTX register name (`r0`, `p1`, …). Cheap to clone.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(Arc<str>);

impl Reg {
    /// Creates a register with the given name.
    ///
    /// # Panics
    ///
    /// Panics if the name is empty or contains separators used by the
    /// textual format.
    pub fn new(name: impl AsRef<str>) -> Self {
        let name = name.as_ref();
        assert!(
            !name.is_empty()
                && !name
                    .chars()
                    .any(|c| c.is_whitespace() || "[],:;()=@!".contains(c)),
            "invalid register name {name:?}"
        );
        Reg(Arc::from(name))
    }

    /// The register's name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Reg({})", self.0)
    }
}

impl From<&str> for Reg {
    fn from(s: &str) -> Self {
        Reg::new(s)
    }
}

/// A branch target label.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label(Arc<str>);

impl Label {
    /// Creates a label with the given name.
    ///
    /// # Panics
    ///
    /// Panics on names that the textual format could not represent.
    pub fn new(name: impl AsRef<str>) -> Self {
        let name = name.as_ref();
        assert!(
            !name.is_empty()
                && !name
                    .chars()
                    .any(|c| c.is_whitespace() || "[],:;()=@!".contains(c)),
            "invalid label name {name:?}"
        );
        Label(Arc::from(name))
    }

    /// The label's name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Label({})", self.0)
    }
}

impl From<&str> for Label {
    fn from(s: &str) -> Self {
        Label::new(s)
    }
}

/// PTX cache operators on memory accesses (paper Sec. 2.3 and 3.1.2).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub enum CacheOp {
    /// `.ca` — cache at all levels; loads may hit the (per-SM) L1.
    Ca,
    /// `.cg` — cache at the global level; accesses target the shared L2.
    ///
    /// This is the operator the paper's formal model assumes for all
    /// accesses (Sec. 5.5) and the default used by the corpus, matching the
    /// paper's `-Xptxas -dlcm=cg` compilation setup.
    #[default]
    Cg,
}

impl CacheOp {
    /// The textual suffix, e.g. `".ca"`.
    pub fn suffix(self) -> &'static str {
        match self {
            CacheOp::Ca => ".ca",
            CacheOp::Cg => ".cg",
        }
    }
}

impl fmt::Display for CacheOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.suffix())
    }
}

/// The scope of a `membar` fence (paper Sec. 2.3).
///
/// `membar.cta` orders accesses for observers in the same CTA, `membar.gl`
/// for the whole GPU, and `membar.sys` also with the host.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum FenceScope {
    /// `membar.cta`.
    Cta,
    /// `membar.gl`.
    Gl,
    /// `membar.sys`.
    Sys,
}

impl FenceScope {
    /// All scopes, weakest first.
    pub const ALL: [FenceScope; 3] = [FenceScope::Cta, FenceScope::Gl, FenceScope::Sys];

    /// `true` if `self` is at least as strong as `other`
    /// (`sys` ≥ `gl` ≥ `cta`).
    pub fn at_least(self, other: FenceScope) -> bool {
        self >= other
    }

    /// The textual suffix, e.g. `".gl"`.
    pub fn suffix(self) -> &'static str {
        match self {
            FenceScope::Cta => ".cta",
            FenceScope::Gl => ".gl",
            FenceScope::Sys => ".sys",
        }
    }
}

impl fmt::Display for FenceScope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.suffix())
    }
}

/// An instruction operand: a register, an immediate, or the address of a
/// named location (`[x]` in the litmus syntax when used directly).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Operand {
    /// A register read.
    Reg(Reg),
    /// An immediate constant.
    Imm(i64),
    /// The address of a named location.
    Sym(Loc),
}

impl Operand {
    /// The register, if this operand reads one.
    pub fn as_reg(&self) -> Option<&Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            _ => None,
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(n) => write!(f, "{n}"),
            Operand::Sym(l) => write!(f, "{l}"),
        }
    }
}

impl From<&str> for Operand {
    fn from(s: &str) -> Self {
        Operand::Reg(Reg::new(s))
    }
}

impl From<i64> for Operand {
    fn from(n: i64) -> Self {
        Operand::Imm(n)
    }
}

/// One PTX instruction of the litmus fragment.
///
/// Construct these with the [`crate::build`] helpers; e.g.
/// `build::st("x", 1)` for `st.cg [x],1`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Instr {
    /// `ld{.volatile}{.ca|.cg} dst,[addr]`.
    Ld {
        /// Destination register.
        dst: Reg,
        /// Address operand (`Sym` or a pointer-holding register).
        addr: Operand,
        /// Cache operator (ignored when `volatile`).
        cache: CacheOp,
        /// `.volatile` marker.
        volatile: bool,
    },
    /// `st{.volatile}{.cg} [addr],src`.
    St {
        /// Address operand.
        addr: Operand,
        /// Value to store.
        src: Operand,
        /// Cache operator (stores cannot target the L1; `.cg` in practice).
        cache: CacheOp,
        /// `.volatile` marker.
        volatile: bool,
    },
    /// `atom.cas dst,[addr],expected,desired` — compare-and-swap; `dst`
    /// receives the old value; the store happens iff old = `expected`.
    Cas {
        /// Receives the old memory value.
        dst: Reg,
        /// Address operand.
        addr: Operand,
        /// Comparison value.
        expected: Operand,
        /// Value written on success.
        desired: Operand,
    },
    /// `atom.exch dst,[addr],src` — unconditional atomic exchange.
    Exch {
        /// Receives the old memory value.
        dst: Reg,
        /// Address operand.
        addr: Operand,
        /// Value written.
        src: Operand,
    },
    /// `atom.inc dst,[addr]` — atomic increment (the paper's mapping of
    /// `atomicAdd(…, 1)`, Tab. 5). `dst` receives the old value.
    Inc {
        /// Receives the old memory value.
        dst: Reg,
        /// Address operand.
        addr: Operand,
    },
    /// `membar.{cta,gl,sys}`.
    Membar {
        /// Fence scope.
        scope: FenceScope,
    },
    /// `mov dst,src`.
    Mov {
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Operand,
    },
    /// `add dst,a,b`.
    Add {
        /// Destination register.
        dst: Reg,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `and dst,a,b` (bitwise).
    And {
        /// Destination register.
        dst: Reg,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `xor dst,a,b` (bitwise).
    Xor {
        /// Destination register.
        dst: Reg,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `cvt dst,src` — width conversion; value-preserving in this fragment.
    Cvt {
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Operand,
    },
    /// `setp.eq dst,a,b` — set predicate `dst` to (a = b).
    SetpEq {
        /// Destination predicate register.
        dst: Reg,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `setp.ne dst,a,b` — set predicate `dst` to (a ≠ b).
    SetpNe {
        /// Destination predicate register.
        dst: Reg,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `bra target` — unconditional jump (combine with predication for
    /// conditional control flow, as the CUDA compiler does, Tab. 5).
    Bra {
        /// Jump target.
        target: Label,
    },
    /// `@p inner` or `@!p inner` — predicated execution.
    Guard {
        /// Predicate register consulted.
        pred: Reg,
        /// Execute `inner` when the predicate equals this value.
        expect: bool,
        /// The guarded instruction (never itself a `Guard` or `Label`).
        inner: Box<Instr>,
    },
    /// A label definition, `NAME:`.
    LabelDef(Label),
}

impl Instr {
    /// Registers read by this instruction (including address registers and
    /// guard predicates).
    pub fn read_regs(&self) -> Vec<Reg> {
        fn op(v: &mut Vec<Reg>, o: &Operand) {
            if let Operand::Reg(r) = o {
                v.push(r.clone());
            }
        }
        let mut v = Vec::new();
        match self {
            Instr::Ld { addr, .. } => op(&mut v, addr),
            Instr::St { addr, src, .. } => {
                op(&mut v, addr);
                op(&mut v, src);
            }
            Instr::Cas {
                addr,
                expected,
                desired,
                ..
            } => {
                op(&mut v, addr);
                op(&mut v, expected);
                op(&mut v, desired);
            }
            Instr::Exch { addr, src, .. } => {
                op(&mut v, addr);
                op(&mut v, src);
            }
            Instr::Inc { addr, .. } => op(&mut v, addr),
            Instr::Membar { .. } | Instr::Bra { .. } | Instr::LabelDef(_) => {}
            Instr::Mov { src, .. } | Instr::Cvt { src, .. } => op(&mut v, src),
            Instr::Add { a, b, .. }
            | Instr::And { a, b, .. }
            | Instr::Xor { a, b, .. }
            | Instr::SetpEq { a, b, .. }
            | Instr::SetpNe { a, b, .. } => {
                op(&mut v, a);
                op(&mut v, b);
            }
            Instr::Guard { pred, inner, .. } => {
                v.push(pred.clone());
                v.extend(inner.read_regs());
            }
        }
        v
    }

    /// The register written by this instruction, if any.
    pub fn written_reg(&self) -> Option<&Reg> {
        match self {
            Instr::Ld { dst, .. }
            | Instr::Cas { dst, .. }
            | Instr::Exch { dst, .. }
            | Instr::Inc { dst, .. }
            | Instr::Mov { dst, .. }
            | Instr::Add { dst, .. }
            | Instr::And { dst, .. }
            | Instr::Xor { dst, .. }
            | Instr::Cvt { dst, .. }
            | Instr::SetpEq { dst, .. }
            | Instr::SetpNe { dst, .. } => Some(dst),
            Instr::Guard { inner, .. } => inner.written_reg(),
            Instr::St { .. } | Instr::Membar { .. } | Instr::Bra { .. } | Instr::LabelDef(_) => {
                None
            }
        }
    }

    /// `true` for instructions that access memory (loads, stores, atomics),
    /// looking through guards.
    pub fn is_memory_access(&self) -> bool {
        match self {
            Instr::Ld { .. }
            | Instr::St { .. }
            | Instr::Cas { .. }
            | Instr::Exch { .. }
            | Instr::Inc { .. } => true,
            Instr::Guard { inner, .. } => inner.is_memory_access(),
            _ => false,
        }
    }

    /// `true` for atomics (`atom.cas`, `atom.exch`, `atom.inc`), looking
    /// through guards.
    pub fn is_atomic(&self) -> bool {
        match self {
            Instr::Cas { .. } | Instr::Exch { .. } | Instr::Inc { .. } => true,
            Instr::Guard { inner, .. } => inner.is_atomic(),
            _ => false,
        }
    }

    /// `true` for `membar` fences, looking through guards.
    pub fn is_fence(&self) -> bool {
        match self {
            Instr::Membar { .. } => true,
            Instr::Guard { inner, .. } => inner.is_fence(),
            _ => false,
        }
    }

    /// The innermost instruction, unwrapping any guard.
    pub fn unguarded(&self) -> &Instr {
        match self {
            Instr::Guard { inner, .. } => inner.unguarded(),
            other => other,
        }
    }

    /// The address operand of a memory access, looking through guards.
    pub fn address(&self) -> Option<&Operand> {
        match self {
            Instr::Ld { addr, .. }
            | Instr::St { addr, .. }
            | Instr::Cas { addr, .. }
            | Instr::Exch { addr, .. }
            | Instr::Inc { addr, .. } => Some(addr),
            Instr::Guard { inner, .. } => inner.address(),
            _ => None,
        }
    }

    /// Wraps this instruction in a predicate guard.
    ///
    /// # Panics
    ///
    /// Panics when attempting to guard a `Guard` or a label definition.
    pub fn guarded(self, pred: impl Into<Reg>, expect: bool) -> Instr {
        assert!(
            !matches!(self, Instr::Guard { .. } | Instr::LabelDef(_)),
            "cannot guard a guard or a label"
        );
        Instr::Guard {
            pred: pred.into(),
            expect,
            inner: Box::new(self),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build;

    #[test]
    fn fence_strength_order() {
        assert!(FenceScope::Sys.at_least(FenceScope::Gl));
        assert!(FenceScope::Gl.at_least(FenceScope::Cta));
        assert!(FenceScope::Cta.at_least(FenceScope::Cta));
        assert!(!FenceScope::Cta.at_least(FenceScope::Gl));
    }

    #[test]
    fn read_and_written_regs() {
        let i = build::ld("r1", "x");
        assert!(i.read_regs().is_empty());
        assert_eq!(i.written_reg().unwrap().as_str(), "r1");

        let st = build::st_reg("x", "r2");
        assert_eq!(st.read_regs(), vec![Reg::new("r2")]);
        assert!(st.written_reg().is_none());

        let cas = build::cas("r0", "m", 0, 1);
        assert_eq!(cas.written_reg().unwrap().as_str(), "r0");
        assert!(cas.is_atomic());
        assert!(cas.is_memory_access());
    }

    #[test]
    fn guard_reads_predicate() {
        let g = build::ld("r3", "x").guarded("p", true);
        assert!(g.read_regs().contains(&Reg::new("p")));
        assert!(g.is_memory_access());
        assert!(!g.is_fence());
        assert_eq!(g.written_reg().unwrap().as_str(), "r3");
    }

    #[test]
    #[should_panic(expected = "cannot guard")]
    fn double_guard_panics() {
        let g = build::ld("r3", "x").guarded("p", true);
        let _ = g.guarded("q", false);
    }

    #[test]
    fn membar_is_fence_not_memory() {
        let f = build::membar(FenceScope::Gl);
        assert!(f.is_fence());
        assert!(!f.is_memory_access());
        assert!(f.read_regs().is_empty());
    }
}
