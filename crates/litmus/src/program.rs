//! The [`LitmusTest`] type: a complete GPU litmus test, with builder and
//! validation.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::cond::{FinalCond, FinalExpr, Predicate};
use crate::instr::{Instr, Label, Operand, Reg};
use crate::memmap::{MemMap, Region};
use crate::scope::{ScopeTree, ThreadScope};
use crate::value::{Loc, Value};

/// A complete GPU litmus test (paper Sec. 4.1, Fig. 12).
///
/// Construct with [`LitmusTest::builder`]:
///
/// ```
/// use weakgpu_litmus::{build::*, LitmusTest, Predicate, ScopeTree};
///
/// let mp = LitmusTest::builder("mp")
///     .global("x", 0)
///     .global("y", 0)
///     .thread([st("x", 1), st("y", 1)])
///     .thread([ld("r1", "y"), ld("r2", "x")])
///     .scope_tree(ScopeTree::inter_cta(2))
///     .exists(Predicate::reg_eq(1, "r1", 1).and(Predicate::reg_eq(1, "r2", 0)))
///     .build()
///     .unwrap();
/// assert_eq!(mp.num_threads(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LitmusTest {
    name: String,
    doc: String,
    threads: Vec<Vec<Instr>>,
    reg_init: BTreeMap<(usize, Reg), Value>,
    mem: MemMap,
    scope_tree: ScopeTree,
    cond: FinalCond,
}

impl LitmusTest {
    /// Starts building a test with the given name.
    pub fn builder(name: impl Into<String>) -> LitmusTestBuilder {
        LitmusTestBuilder {
            name: name.into(),
            doc: String::new(),
            threads: Vec::new(),
            reg_init: BTreeMap::new(),
            mem: MemMap::new(),
            scope_tree: None,
            cond: None,
        }
    }

    /// The test's name (e.g. `"coRR"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// A one-line description (may be empty).
    pub fn doc(&self) -> &str {
        &self.doc
    }

    /// The per-thread instruction lists.
    pub fn threads(&self) -> &[Vec<Instr>] {
        &self.threads
    }

    /// Number of threads.
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// Initial register bindings (`(thread, reg) → value`); registers not
    /// listed start at integer 0.
    pub fn reg_init(&self) -> impl Iterator<Item = (usize, &Reg, &Value)> {
        self.reg_init.iter().map(|((t, r), v)| (*t, r, v))
    }

    /// The initial value of `(thread, reg)`, defaulting to integer 0.
    pub fn reg_init_value(&self, tid: usize, reg: &Reg) -> Value {
        self.reg_init
            .get(&(tid, reg.clone()))
            .cloned()
            .unwrap_or_default()
    }

    /// The memory map.
    pub fn memory(&self) -> &MemMap {
        &self.mem
    }

    /// The scope tree.
    pub fn scope_tree(&self) -> &ScopeTree {
        &self.scope_tree
    }

    /// The final condition.
    pub fn cond(&self) -> &FinalCond {
        &self.cond
    }

    /// The values a harness must record per run: every expression the final
    /// condition inspects.
    pub fn observed(&self) -> Vec<FinalExpr> {
        self.cond.pred.exprs()
    }

    /// The named placement of the test's threads, if it is a standard
    /// two-thread shape.
    pub fn thread_scope(&self) -> Option<ThreadScope> {
        self.scope_tree.classify()
    }

    /// All locations referenced by instructions or the final condition.
    pub fn referenced_locs(&self) -> BTreeSet<Loc> {
        let mut locs = BTreeSet::new();
        for thread in &self.threads {
            for instr in thread {
                collect_locs(instr, &mut locs);
            }
        }
        for (_, v) in self.reg_init.iter() {
            if let Value::Ptr { loc, .. } = v {
                locs.insert(loc.clone());
            }
        }
        for e in self.cond.pred.exprs() {
            if let FinalExpr::Mem(l) = e {
                locs.insert(l);
            }
        }
        locs
    }

    /// Renames the test (used by generators to attach canonical names).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Attaches a one-line description.
    pub fn with_doc(mut self, doc: impl Into<String>) -> Self {
        self.doc = doc.into();
        self
    }
}

fn collect_locs(instr: &Instr, locs: &mut BTreeSet<Loc>) {
    if let Some(Operand::Sym(l)) = instr.address() {
        locs.insert(l.clone());
    }
    if let Instr::Guard { inner, .. } = instr {
        collect_locs(inner, locs);
    }
}

impl fmt::Display for LitmusTest {
    /// Renders the textual litmus format; parseable by
    /// [`crate::parser::parse`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::printer::write_test(self, f)
    }
}

/// Errors detected by [`LitmusTestBuilder::build`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ValidateError {
    /// The test has no threads.
    NoThreads,
    /// The final condition was never set.
    NoCond,
    /// An instruction or the condition references an unmapped location.
    UnmappedLoc(Loc),
    /// The condition references a thread index out of range.
    BadThreadRef(usize),
    /// The scope tree's thread count disagrees with the program's.
    ScopeTreeMismatch {
        /// Threads in the program.
        program: usize,
        /// Threads in the scope tree.
        tree: usize,
    },
    /// A `bra` targets an undefined label.
    UndefinedLabel(usize, Label),
    /// The same label is defined twice in one thread.
    DuplicateLabel(usize, Label),
    /// A register-initialisation entry names a thread out of range.
    BadRegInitThread(usize),
    /// Shared-memory locations used by threads in different CTAs (each CTA
    /// would see a distinct instance, so the test would be vacuous).
    SharedAcrossCtas(Loc),
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::NoThreads => write!(f, "litmus test has no threads"),
            ValidateError::NoCond => write!(f, "litmus test has no final condition"),
            ValidateError::UnmappedLoc(l) => {
                write!(f, "location {l} is referenced but not in the memory map")
            }
            ValidateError::BadThreadRef(t) => {
                write!(f, "final condition references unknown thread {t}")
            }
            ValidateError::ScopeTreeMismatch { program, tree } => write!(
                f,
                "scope tree has {tree} threads but the program has {program}"
            ),
            ValidateError::UndefinedLabel(t, l) => {
                write!(f, "thread {t} branches to undefined label {l}")
            }
            ValidateError::DuplicateLabel(t, l) => {
                write!(f, "thread {t} defines label {l} twice")
            }
            ValidateError::BadRegInitThread(t) => {
                write!(f, "register initialisation references unknown thread {t}")
            }
            ValidateError::SharedAcrossCtas(l) => write!(
                f,
                "shared location {l} is accessed from multiple CTAs; each CTA has its own instance"
            ),
        }
    }
}

impl std::error::Error for ValidateError {}

/// Builder for [`LitmusTest`]; see [`LitmusTest::builder`].
#[derive(Clone, Debug)]
pub struct LitmusTestBuilder {
    name: String,
    doc: String,
    threads: Vec<Vec<Instr>>,
    reg_init: BTreeMap<(usize, Reg), Value>,
    mem: MemMap,
    scope_tree: Option<ScopeTree>,
    cond: Option<FinalCond>,
}

impl LitmusTestBuilder {
    /// Attaches a one-line description.
    pub fn doc(mut self, doc: impl Into<String>) -> Self {
        self.doc = doc.into();
        self
    }

    /// Appends a thread with the given instructions.
    pub fn thread(mut self, instrs: impl IntoIterator<Item = Instr>) -> Self {
        self.threads.push(instrs.into_iter().collect());
        self
    }

    /// Maps a global-memory location with an initial value.
    pub fn global(mut self, loc: impl Into<Loc>, init: i64) -> Self {
        self.mem.insert_global(loc, init);
        self
    }

    /// Maps a shared-memory location with an initial value.
    pub fn shared(mut self, loc: impl Into<Loc>, init: i64) -> Self {
        self.mem.insert_shared(loc, init);
        self
    }

    /// Initialises a register of a thread (e.g. to a pointer:
    /// `0:.reg .b64 r1 = x`).
    pub fn reg_init(mut self, tid: usize, reg: impl Into<Reg>, value: Value) -> Self {
        self.reg_init.insert((tid, reg.into()), value);
        self
    }

    /// Sets the scope tree. Defaults to [`ScopeTree::inter_cta`] over the
    /// thread count if unset.
    pub fn scope_tree(mut self, tree: ScopeTree) -> Self {
        self.scope_tree = Some(tree);
        self
    }

    /// Places the threads with one of the canonical scopes.
    pub fn scope(self, scope: ThreadScope) -> Self {
        let n = self.threads.len();
        self.scope_tree(ScopeTree::for_scope(scope, n))
    }

    /// Sets the final condition to `exists (pred)`.
    pub fn exists(mut self, pred: Predicate) -> Self {
        self.cond = Some(FinalCond::exists(pred));
        self
    }

    /// Sets an arbitrary final condition.
    pub fn cond(mut self, cond: FinalCond) -> Self {
        self.cond = Some(cond);
        self
    }

    /// Validates and builds the test.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidateError`] when the test is structurally broken —
    /// missing threads or condition, dangling locations/labels/threads, a
    /// scope-tree size mismatch, or shared memory used across CTAs.
    pub fn build(self) -> Result<LitmusTest, ValidateError> {
        if self.threads.is_empty() {
            return Err(ValidateError::NoThreads);
        }
        let cond = self.cond.ok_or(ValidateError::NoCond)?;
        let n = self.threads.len();
        let scope_tree = self.scope_tree.unwrap_or_else(|| ScopeTree::inter_cta(n));
        if scope_tree.num_threads() != n {
            return Err(ValidateError::ScopeTreeMismatch {
                program: n,
                tree: scope_tree.num_threads(),
            });
        }

        for (t, _) in self.reg_init.keys().map(|(t, r)| (*t, r)) {
            if t >= n {
                return Err(ValidateError::BadRegInitThread(t));
            }
        }

        // Label well-formedness per thread.
        for (tid, thread) in self.threads.iter().enumerate() {
            let mut defined = BTreeSet::new();
            for instr in thread {
                if let Instr::LabelDef(l) = instr {
                    if !defined.insert(l.clone()) {
                        return Err(ValidateError::DuplicateLabel(tid, l.clone()));
                    }
                }
            }
            for instr in thread {
                if let Instr::Bra { target } = instr.unguarded() {
                    if !defined.contains(target) {
                        return Err(ValidateError::UndefinedLabel(tid, target.clone()));
                    }
                }
            }
        }

        let test = LitmusTest {
            name: self.name,
            doc: self.doc,
            threads: self.threads,
            reg_init: self.reg_init,
            mem: self.mem,
            scope_tree,
            cond,
        };

        // Location coverage.
        for loc in test.referenced_locs() {
            if !test.mem.contains(&loc) {
                return Err(ValidateError::UnmappedLoc(loc));
            }
        }

        // Condition thread references.
        for e in test.cond.pred.exprs() {
            if let FinalExpr::Reg(t, _) = e {
                if t >= n {
                    return Err(ValidateError::BadThreadRef(t));
                }
            }
        }

        // Shared locations must stay within one CTA.
        let mut shared_users: BTreeMap<Loc, BTreeSet<usize>> = BTreeMap::new();
        for (tid, thread) in test.threads.iter().enumerate() {
            let mut locs = BTreeSet::new();
            for instr in thread {
                collect_locs(instr, &mut locs);
            }
            for loc in locs {
                if test.mem.region(&loc) == Some(Region::Shared) {
                    shared_users
                        .entry(loc)
                        .or_default()
                        .insert(test.scope_tree.placement(tid).cta);
                }
            }
        }
        for (loc, ctas) in shared_users {
            if ctas.len() > 1 {
                return Err(ValidateError::SharedAcrossCtas(loc));
            }
        }

        Ok(test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::*;

    fn mp_builder() -> LitmusTestBuilder {
        LitmusTest::builder("mp")
            .global("x", 0)
            .global("y", 0)
            .thread([st("x", 1), st("y", 1)])
            .thread([ld("r1", "y"), ld("r2", "x")])
            .exists(Predicate::reg_eq(1, "r1", 1).and(Predicate::reg_eq(1, "r2", 0)))
    }

    #[test]
    fn builds_valid_test() {
        let t = mp_builder().build().unwrap();
        assert_eq!(t.name(), "mp");
        assert_eq!(t.num_threads(), 2);
        assert_eq!(t.thread_scope(), Some(ThreadScope::InterCta));
        assert_eq!(t.observed().len(), 2);
        let locs = t.referenced_locs();
        assert!(locs.contains(&Loc::new("x")) && locs.contains(&Loc::new("y")));
    }

    #[test]
    fn default_scope_is_inter_cta() {
        let t = mp_builder().build().unwrap();
        assert!(!t.scope_tree().same_cta(0, 1));
    }

    #[test]
    fn missing_cond_rejected() {
        let err = LitmusTest::builder("t")
            .global("x", 0)
            .thread([st("x", 1)])
            .build()
            .unwrap_err();
        assert_eq!(err, ValidateError::NoCond);
    }

    #[test]
    fn no_threads_rejected() {
        let err = LitmusTest::builder("t")
            .exists(Predicate::True)
            .build()
            .unwrap_err();
        assert_eq!(err, ValidateError::NoThreads);
    }

    #[test]
    fn unmapped_location_rejected() {
        let err = LitmusTest::builder("t")
            .thread([st("x", 1)])
            .exists(Predicate::True)
            .build()
            .unwrap_err();
        assert_eq!(err, ValidateError::UnmappedLoc(Loc::new("x")));
    }

    #[test]
    fn unmapped_condition_location_rejected() {
        let err = LitmusTest::builder("t")
            .global("x", 0)
            .thread([st("x", 1)])
            .exists(Predicate::mem_eq("z", 1))
            .build()
            .unwrap_err();
        assert_eq!(err, ValidateError::UnmappedLoc(Loc::new("z")));
    }

    #[test]
    fn bad_thread_ref_rejected() {
        let err = LitmusTest::builder("t")
            .global("x", 0)
            .thread([ld("r1", "x")])
            .exists(Predicate::reg_eq(3, "r1", 0))
            .build()
            .unwrap_err();
        assert_eq!(err, ValidateError::BadThreadRef(3));
    }

    #[test]
    fn scope_tree_size_mismatch_rejected() {
        let err = mp_builder()
            .scope_tree(ScopeTree::inter_cta(3))
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            ValidateError::ScopeTreeMismatch {
                program: 2,
                tree: 3
            }
        );
    }

    #[test]
    fn undefined_label_rejected() {
        let err = LitmusTest::builder("t")
            .global("x", 0)
            .thread([bra("LOOP"), st("x", 1)])
            .exists(Predicate::True)
            .build()
            .unwrap_err();
        assert_eq!(err, ValidateError::UndefinedLabel(0, Label::new("LOOP")));
    }

    #[test]
    fn duplicate_label_rejected() {
        let err = LitmusTest::builder("t")
            .global("x", 0)
            .thread([label("L"), label("L")])
            .exists(Predicate::True)
            .build()
            .unwrap_err();
        assert_eq!(err, ValidateError::DuplicateLabel(0, Label::new("L")));
    }

    #[test]
    fn labelled_loop_accepted() {
        let t = LitmusTest::builder("spin")
            .global("m", 1)
            .thread([
                label("SPIN"),
                cas("r0", "m", 0, 1),
                setp_ne("p", reg("r0"), imm(0)),
                bra("SPIN").guarded("p", true),
            ])
            .exists(Predicate::reg_eq(0, "r0", 0))
            .build()
            .unwrap();
        assert_eq!(t.num_threads(), 1);
    }

    #[test]
    fn shared_across_ctas_rejected() {
        let err = LitmusTest::builder("t")
            .shared("x", 0)
            .thread([st("x", 1)])
            .thread([ld("r1", "x")])
            .scope(ThreadScope::InterCta)
            .exists(Predicate::reg_eq(1, "r1", 1))
            .build()
            .unwrap_err();
        assert_eq!(err, ValidateError::SharedAcrossCtas(Loc::new("x")));
    }

    #[test]
    fn shared_intra_cta_accepted() {
        let t = LitmusTest::builder("t")
            .shared("x", 0)
            .thread([st("x", 1)])
            .thread([ld("r1", "x")])
            .scope(ThreadScope::IntraCta)
            .exists(Predicate::reg_eq(1, "r1", 1))
            .build()
            .unwrap();
        assert_eq!(t.thread_scope(), Some(ThreadScope::IntraCta));
    }

    #[test]
    fn reg_init_defaults_to_zero() {
        let t = mp_builder().build().unwrap();
        assert_eq!(t.reg_init_value(1, &Reg::new("r1")), Value::Int(0));
    }

    #[test]
    fn reg_init_pointer() {
        let t = LitmusTest::builder("t")
            .global("x", 0)
            .reg_init(0, "r9", Value::ptr("x"))
            .thread([ld("r1", reg("r9"))])
            .exists(Predicate::reg_eq(0, "r1", 0))
            .build()
            .unwrap();
        assert_eq!(t.reg_init_value(0, &Reg::new("r9")), Value::ptr("x"));
        assert!(t.referenced_locs().contains(&Loc::new("x")));
    }

    #[test]
    fn bad_reg_init_thread_rejected() {
        let err = LitmusTest::builder("t")
            .global("x", 0)
            .reg_init(7, "r9", Value::ptr("x"))
            .thread([st("x", 1)])
            .exists(Predicate::True)
            .build()
            .unwrap_err();
        assert_eq!(err, ValidateError::BadRegInitThread(7));
    }
}
