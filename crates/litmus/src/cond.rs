//! Final conditions and outcomes.
//!
//! A litmus test ends with a quantified assertion over the final state of
//! registers and memory, e.g. `exists (0:r2=0 /\ 1:r2=0)` (paper Fig. 12,
//! line 12). Running a test produces an [`Outcome`] — the observed values of
//! the inspected registers/locations — and the harness counts how often the
//! condition's body holds.

use std::collections::BTreeMap;
use std::fmt;

use crate::instr::Reg;
use crate::value::Loc;

/// Something inspected by a final condition: a thread's register or a
/// memory location.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum FinalExpr {
    /// `t:r` — register `r` of thread `t` after the test.
    Reg(usize, Reg),
    /// `x` — the final value of memory location `x`.
    Mem(Loc),
}

impl FinalExpr {
    /// Convenience constructor for `t:r`.
    pub fn reg(tid: usize, r: impl Into<Reg>) -> Self {
        FinalExpr::Reg(tid, r.into())
    }

    /// Convenience constructor for a memory location.
    pub fn mem(loc: impl Into<Loc>) -> Self {
        FinalExpr::Mem(loc.into())
    }
}

impl fmt::Display for FinalExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FinalExpr::Reg(t, r) => write!(f, "{t}:{r}"),
            FinalExpr::Mem(l) => write!(f, "{l}"),
        }
    }
}

/// A boolean combination of equalities over final values.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Predicate {
    /// `expr = n`.
    Eq(FinalExpr, i64),
    /// `expr != n`.
    Ne(FinalExpr, i64),
    /// Conjunction, `/\`.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction, `\/`.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation, `not (…)`.
    Not(Box<Predicate>),
    /// The trivially true predicate.
    True,
}

impl Predicate {
    /// `t:r = n`.
    pub fn reg_eq(tid: usize, r: impl Into<Reg>, n: i64) -> Self {
        Predicate::Eq(FinalExpr::reg(tid, r), n)
    }

    /// `loc = n` (final memory value).
    pub fn mem_eq(loc: impl Into<Loc>, n: i64) -> Self {
        Predicate::Eq(FinalExpr::mem(loc), n)
    }

    /// `self /\ rhs`.
    pub fn and(self, rhs: Predicate) -> Self {
        Predicate::And(Box::new(self), Box::new(rhs))
    }

    /// `self \/ rhs`.
    pub fn or(self, rhs: Predicate) -> Self {
        Predicate::Or(Box::new(self), Box::new(rhs))
    }

    /// `not (self)`.
    pub fn negate(self) -> Self {
        Predicate::Not(Box::new(self))
    }

    /// Conjunction of an iterator of predicates ([`Predicate::True`] when
    /// empty).
    pub fn all(preds: impl IntoIterator<Item = Predicate>) -> Self {
        preds
            .into_iter()
            .reduce(Predicate::and)
            .unwrap_or(Predicate::True)
    }

    /// Evaluates the predicate against an outcome.
    ///
    /// Inspected values missing from the outcome are treated as 0, the
    /// hardware's register/memory reset value — this matches the behaviour
    /// of the paper's harness for threads whose predicated instructions did
    /// not execute.
    pub fn eval(&self, outcome: &Outcome) -> bool {
        match self {
            Predicate::Eq(e, n) => outcome.get(e).unwrap_or(0) == *n,
            Predicate::Ne(e, n) => outcome.get(e).unwrap_or(0) != *n,
            Predicate::And(a, b) => a.eval(outcome) && b.eval(outcome),
            Predicate::Or(a, b) => a.eval(outcome) || b.eval(outcome),
            Predicate::Not(p) => !p.eval(outcome),
            Predicate::True => true,
        }
    }

    /// All [`FinalExpr`]s mentioned, in first-mention order without
    /// duplicates. These are the values a harness must record.
    pub fn exprs(&self) -> Vec<FinalExpr> {
        fn walk(p: &Predicate, out: &mut Vec<FinalExpr>) {
            match p {
                Predicate::Eq(e, _) | Predicate::Ne(e, _) => {
                    if !out.contains(e) {
                        out.push(e.clone());
                    }
                }
                Predicate::And(a, b) | Predicate::Or(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                Predicate::Not(p) => walk(p, out),
                Predicate::True => {}
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::Eq(e, n) => write!(f, "{e}={n}"),
            Predicate::Ne(e, n) => write!(f, "{e}!={n}"),
            Predicate::And(a, b) => write!(f, "{a} /\\ {b}"),
            Predicate::Or(a, b) => write!(f, "({a} \\/ {b})"),
            Predicate::Not(p) => write!(f, "not ({p})"),
            Predicate::True => write!(f, "true"),
        }
    }
}

/// The quantifier of a final condition.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Quantifier {
    /// `exists` — the interesting (often weak) outcome is reachable.
    #[default]
    Exists,
    /// `~exists` — the outcome must never be observed.
    NotExists,
    /// `forall` — every execution satisfies the body.
    Forall,
}

impl fmt::Display for Quantifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Quantifier::Exists => write!(f, "exists"),
            Quantifier::NotExists => write!(f, "~exists"),
            Quantifier::Forall => write!(f, "forall"),
        }
    }
}

/// A quantified final condition.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct FinalCond {
    /// The quantifier.
    pub quantifier: Quantifier,
    /// The body predicate.
    pub pred: Predicate,
}

impl FinalCond {
    /// `exists (pred)`, the common case.
    pub fn exists(pred: Predicate) -> Self {
        FinalCond {
            quantifier: Quantifier::Exists,
            pred,
        }
    }

    /// `~exists (pred)`.
    pub fn not_exists(pred: Predicate) -> Self {
        FinalCond {
            quantifier: Quantifier::NotExists,
            pred,
        }
    }

    /// `forall (pred)`.
    pub fn forall(pred: Predicate) -> Self {
        FinalCond {
            quantifier: Quantifier::Forall,
            pred,
        }
    }

    /// `true` if this outcome is a *witness* for the condition body
    /// (the outcome the paper's `obs` counts tally).
    ///
    /// For `exists`/`~exists`, a witness satisfies the body; for `forall`, a
    /// witness *violates* it.
    pub fn witnessed_by(&self, outcome: &Outcome) -> bool {
        match self.quantifier {
            Quantifier::Exists | Quantifier::NotExists => self.pred.eval(outcome),
            Quantifier::Forall => !self.pred.eval(outcome),
        }
    }
}

impl fmt::Display for FinalCond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.quantifier, self.pred)
    }
}

/// One observed final state: values of the inspected registers/locations.
///
/// Outcomes order and render canonically (`0:r1=1; 1:r2=0;`), so they can
/// key histograms.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Outcome {
    values: BTreeMap<FinalExpr, i64>,
}

impl Outcome {
    /// An empty outcome.
    pub fn new() -> Self {
        Outcome::default()
    }

    /// Records `expr = value`, replacing any previous binding.
    pub fn set(&mut self, expr: FinalExpr, value: i64) -> &mut Self {
        self.values.insert(expr, value);
        self
    }

    /// The recorded value of `expr`, if present.
    pub fn get(&self, expr: &FinalExpr) -> Option<i64> {
        self.values.get(expr).copied()
    }

    /// Number of recorded bindings.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if nothing is recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates bindings in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (&FinalExpr, i64)> {
        self.values.iter().map(|(e, v)| (e, *v))
    }
}

impl FromIterator<(FinalExpr, i64)> for Outcome {
    fn from_iter<I: IntoIterator<Item = (FinalExpr, i64)>>(iter: I) -> Self {
        Outcome {
            values: iter.into_iter().collect(),
        }
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (e, v) in &self.values {
            write!(f, "{e}={v}; ")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mp_outcome(r1: i64, r2: i64) -> Outcome {
        [(FinalExpr::reg(1, "r1"), r1), (FinalExpr::reg(1, "r2"), r2)]
            .into_iter()
            .collect()
    }

    #[test]
    fn eval_conjunction() {
        let cond = Predicate::reg_eq(1, "r1", 1).and(Predicate::reg_eq(1, "r2", 0));
        assert!(cond.eval(&mp_outcome(1, 0)));
        assert!(!cond.eval(&mp_outcome(1, 1)));
        assert!(!cond.eval(&mp_outcome(0, 0)));
    }

    #[test]
    fn missing_values_default_to_zero() {
        let cond = Predicate::reg_eq(0, "r9", 0);
        assert!(cond.eval(&Outcome::new()));
        let ne = Predicate::Ne(FinalExpr::reg(0, "r9"), 0);
        assert!(!ne.eval(&Outcome::new()));
    }

    #[test]
    fn not_and_or() {
        let p = Predicate::reg_eq(1, "r1", 1)
            .or(Predicate::reg_eq(1, "r2", 1))
            .negate();
        assert!(p.eval(&mp_outcome(0, 0)));
        assert!(!p.eval(&mp_outcome(1, 0)));
    }

    #[test]
    fn exprs_deduplicated_in_order() {
        let p = Predicate::reg_eq(1, "r1", 1)
            .and(Predicate::reg_eq(1, "r2", 0))
            .and(Predicate::reg_eq(1, "r1", 0));
        let exprs = p.exprs();
        assert_eq!(
            exprs,
            vec![FinalExpr::reg(1, "r1"), FinalExpr::reg(1, "r2")]
        );
    }

    #[test]
    fn witness_semantics() {
        let body = Predicate::reg_eq(1, "r1", 1);
        let exists = FinalCond::exists(body.clone());
        let forall = FinalCond::forall(body);
        assert!(exists.witnessed_by(&mp_outcome(1, 0)));
        assert!(!exists.witnessed_by(&mp_outcome(0, 0)));
        // forall witnesses are violations.
        assert!(!forall.witnessed_by(&mp_outcome(1, 0)));
        assert!(forall.witnessed_by(&mp_outcome(0, 0)));
    }

    #[test]
    fn display_round_readable() {
        let cond =
            FinalCond::exists(Predicate::reg_eq(0, "r2", 0).and(Predicate::reg_eq(1, "r2", 0)));
        assert_eq!(cond.to_string(), "exists (0:r2=0 /\\ 1:r2=0)");
        assert_eq!(mp_outcome(1, 0).to_string(), "1:r1=1; 1:r2=0; ");
    }

    #[test]
    fn all_combines_predicates() {
        let p = Predicate::all(vec![
            Predicate::reg_eq(0, "r0", 1),
            Predicate::reg_eq(1, "r1", 2),
        ]);
        let mut o = Outcome::new();
        o.set(FinalExpr::reg(0, "r0"), 1);
        o.set(FinalExpr::reg(1, "r1"), 2);
        assert!(p.eval(&o));
        assert_eq!(Predicate::all(vec![]), Predicate::True);
    }

    #[test]
    fn mem_exprs() {
        let p = Predicate::mem_eq("x", 2);
        let mut o = Outcome::new();
        o.set(FinalExpr::mem("x"), 2);
        assert!(p.eval(&o));
        assert_eq!(p.exprs(), vec![FinalExpr::mem("x")]);
    }
}
