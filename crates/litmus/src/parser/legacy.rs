//! The pre-diagnostics litmus parser, kept verbatim so the differential
//! test suite can assert the new frontend accepts exactly the same
//! language and builds identical ASTs. Not part of the public API.

use std::collections::{BTreeMap, BTreeSet};

use super::ParseError;
use crate::cond::{FinalCond, FinalExpr, Predicate, Quantifier};
use crate::instr::{CacheOp, FenceScope, Instr, Label, Operand, Reg};
use crate::program::{LitmusTest, ValidateError};
use crate::scope::ScopeTree;
use crate::value::{Loc, Value};

/// Parses a litmus test with the original single-error parser.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed syntax.
pub fn parse(src: &str) -> Result<LitmusTest, ParseError> {
    let mut lines = src
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with("(*") && !l.starts_with("//"));

    // Header.
    let (hline, header) = lines
        .next()
        .ok_or_else(|| ParseError::new("empty litmus source", None))?;
    let mut hparts = header.split_whitespace();
    let arch = hparts.next().unwrap_or_default();
    if arch != "GPU_PTX" {
        return Err(ParseError::new(
            format!("expected GPU_PTX header, found {arch:?}"),
            Some(hline),
        ));
    }
    let name = hparts
        .next()
        .ok_or_else(|| ParseError::new("missing test name in header", Some(hline)))?
        .to_owned();

    let rest: Vec<(usize, &str)> = lines.collect();
    let mut idx = 0;

    // Optional register block (may span multiple physical lines).
    let mut reg_decls: BTreeMap<usize, BTreeSet<Reg>> = BTreeMap::new();
    let mut reg_inits: Vec<(usize, Reg, Value)> = Vec::new();
    if idx < rest.len() && rest[idx].1.starts_with('{') {
        let start_line = rest[idx].0;
        let mut body = String::new();
        let mut closed = false;
        while idx < rest.len() {
            let (_, l) = rest[idx];
            body.push_str(l);
            body.push(' ');
            idx += 1;
            if l.contains('}') {
                closed = true;
                break;
            }
        }
        if !closed {
            return Err(ParseError::new(
                "unterminated register block",
                Some(start_line),
            ));
        }
        let inner = body
            .trim()
            .trim_start_matches('{')
            .trim_end_matches('}')
            .trim_end_matches('}')
            .to_owned();
        let inner = inner.trim_end_matches('}');
        for entry in inner.split(';') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (tid, reg, value) = parse_reg_decl(entry, start_line)?;
            reg_decls.entry(tid).or_default().insert(reg.clone());
            if let Some(v) = value {
                reg_inits.push((tid, reg, v));
            }
        }
    }

    // Thread header row: `T0 | T1 ;`.
    if idx >= rest.len() {
        return Err(ParseError::new("missing thread header row", None));
    }
    let (thline, throw) = rest[idx];
    idx += 1;
    let throw = throw.trim_end_matches(';').trim();
    let mut tids = Vec::new();
    for cell in throw.split('|') {
        let cell = cell.trim();
        let t: usize = cell
            .strip_prefix('T')
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                ParseError::new(format!("bad thread header cell {cell:?}"), Some(thline))
            })?;
        tids.push(t);
    }
    if tids.iter().enumerate().any(|(i, &t)| i != t) {
        return Err(ParseError::new(
            format!("thread header must be T0 | T1 | …, got {throw:?}"),
            Some(thline),
        ));
    }
    let nthreads = tids.len();

    // Instruction rows until the ScopeTree line.
    let mut threads: Vec<Vec<Instr>> = vec![Vec::new(); nthreads];
    let classifier = RegClassifier { decls: &reg_decls };
    while idx < rest.len() {
        let (lno, l) = rest[idx];
        if l.starts_with("ScopeTree") || is_cond_line(l) || is_memmap_line(l) {
            break;
        }
        idx += 1;
        let row = l.trim_end_matches(';').trim_end();
        let cells: Vec<&str> = row.split('|').collect();
        if cells.len() > nthreads {
            return Err(ParseError::new(
                format!(
                    "row has {} cells but there are {nthreads} threads",
                    cells.len()
                ),
                Some(lno),
            ));
        }
        for (tid, cell) in cells.iter().enumerate() {
            let cell = cell.trim();
            if cell.is_empty() {
                continue;
            }
            let instr =
                parse_instr(cell, tid, &classifier).map_err(|m| ParseError::new(m, Some(lno)))?;
            threads[tid].push(instr);
        }
    }

    // ScopeTree line (optional; defaults to inter-CTA).
    let mut scope_tree = None;
    if idx < rest.len() && rest[idx].1.starts_with("ScopeTree") {
        let (lno, l) = rest[idx];
        idx += 1;
        scope_tree = Some(parse_scope_tree(l).map_err(|m| ParseError::new(m, Some(lno)))?);
    }

    // Memory map line (optional): `x: shared, y: global=1`.
    let mut mem: Vec<(Loc, crate::memmap::Region, i64)> = Vec::new();
    if idx < rest.len() && !is_cond_line(rest[idx].1) {
        let (lno, l) = rest[idx];
        idx += 1;
        for entry in l.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (loc, spec) = entry.split_once(':').ok_or_else(|| {
                ParseError::new(format!("bad memory-map entry {entry:?}"), Some(lno))
            })?;
            let spec = spec.trim();
            let (region_str, init) = match spec.split_once('=') {
                Some((r, v)) => (
                    r.trim(),
                    v.trim().parse::<i64>().map_err(|_| {
                        ParseError::new(format!("bad initial value in {entry:?}"), Some(lno))
                    })?,
                ),
                None => (spec, 0),
            };
            let region = match region_str {
                "global" => crate::memmap::Region::Global,
                "shared" => crate::memmap::Region::Shared,
                other => {
                    return Err(ParseError::new(
                        format!("unknown region {other:?}"),
                        Some(lno),
                    ))
                }
            };
            mem.push((Loc::new(loc.trim()), region, init));
        }
    }

    // Final condition.
    if idx >= rest.len() {
        return Err(ParseError::new("missing final condition", None));
    }
    let (clno, cline) = rest[idx];
    idx += 1;
    let cond = parse_cond(cline).map_err(|m| ParseError::new(m, Some(clno)))?;
    if idx < rest.len() {
        return Err(ParseError::new(
            format!("unexpected trailing line {:?}", rest[idx].1),
            Some(rest[idx].0),
        ));
    }

    // Assemble. Locations referenced but not mapped default to global=0, as
    // in the paper's format where the memory map only lists exceptions.
    let mut builder = LitmusTest::builder(name);
    for thread in threads {
        builder = builder.thread(thread);
    }
    for (tid, reg, v) in reg_inits {
        builder = builder.reg_init(tid, reg, v);
    }
    let mapped: BTreeSet<Loc> = mem.iter().map(|(l, _, _)| l.clone()).collect();
    for (loc, region, init) in mem {
        builder = match region {
            crate::memmap::Region::Global => builder.global(loc, init),
            crate::memmap::Region::Shared => builder.shared(loc, init),
        };
    }
    if let Some(tree) = scope_tree {
        builder = builder.scope_tree(tree);
    }
    builder = builder.cond(cond);
    // Default-map unmentioned locations.
    let probe = builder.clone().build();
    if let Err(ValidateError::UnmappedLoc(_)) = probe {
        // Collect all referenced locations by building with a permissive map.
        let mut b2 = builder.clone();
        // Build a throwaway test to learn referenced locations: map
        // everything we can see syntactically.
        let referenced = referenced_locs_of_builder(&builder);
        for loc in referenced {
            if !mapped.contains(&loc) {
                b2 = b2.global(loc, 0);
            }
        }
        return b2.build().map_err(ParseError::from);
    }
    probe.map_err(ParseError::from)
}

fn referenced_locs_of_builder(builder: &crate::program::LitmusTestBuilder) -> BTreeSet<Loc> {
    // Re-parse is avoided: we conservatively rebuild from a clone with a
    // dummy condition to extract referenced locations.
    let clone = builder.clone();
    match clone.build() {
        Ok(t) => t.referenced_locs(),
        Err(_) => {
            // Fall back: build incrementally by adding global mappings for
            // every UnmappedLoc error until it validates or fails otherwise.
            let mut b = builder.clone();
            let mut locs = BTreeSet::new();
            for _ in 0..64 {
                match b.clone().build() {
                    Err(ValidateError::UnmappedLoc(l)) => {
                        locs.insert(l.clone());
                        b = b.global(l, 0);
                    }
                    Ok(t) => {
                        locs.extend(t.referenced_locs());
                        break;
                    }
                    Err(_) => break,
                }
            }
            locs
        }
    }
}

fn is_cond_line(l: &str) -> bool {
    l.starts_with("exists") || l.starts_with("~exists") || l.starts_with("forall")
}

/// `true` for lines of the shape `x: shared, y: global=1` — every
/// comma-separated entry must be `name: region[=init]`.
fn is_memmap_line(l: &str) -> bool {
    !l.is_empty()
        && l.split(',').all(|e| {
            let e = e.trim();
            match e.split_once(':') {
                Some((name, spec)) => {
                    let region = spec.trim().split('=').next().unwrap_or_default().trim();
                    !name.trim().is_empty() && (region == "global" || region == "shared")
                }
                None => false,
            }
        })
}

fn parse_reg_decl(entry: &str, line: usize) -> Result<(usize, Reg, Option<Value>), ParseError> {
    // `0:.reg .s32 r0` or `0:.reg .b64 r1 = x` or `0:r1 = x`.
    let (tid_str, rest) = entry.split_once(':').ok_or_else(|| {
        ParseError::new(format!("bad register declaration {entry:?}"), Some(line))
    })?;
    let tid: usize = tid_str.trim().parse().map_err(|_| {
        ParseError::new(
            format!("bad thread id in declaration {entry:?}"),
            Some(line),
        )
    })?;
    let (lhs, init) = match rest.split_once('=') {
        Some((l, r)) => (l, Some(r.trim())),
        None => (rest, None),
    };
    let mut name = None;
    for tok in lhs.split_whitespace() {
        if tok.starts_with('.') || tok == "reg" {
            continue; // type / .reg keywords
        }
        name = Some(tok);
    }
    let name = name.ok_or_else(|| {
        ParseError::new(format!("missing register name in {entry:?}"), Some(line))
    })?;
    let value = match init {
        None => None,
        Some(v) => Some(if let Ok(n) = v.parse::<i64>() {
            Value::Int(n)
        } else if let Some((base, off)) = v.split_once('+') {
            Value::Ptr {
                loc: Loc::new(base.trim()),
                offset: off.trim().parse().map_err(|_| {
                    ParseError::new(format!("bad pointer offset in {entry:?}"), Some(line))
                })?,
            }
        } else {
            Value::ptr(v)
        }),
    };
    Ok((tid, Reg::new(name), value))
}

struct RegClassifier<'a> {
    decls: &'a BTreeMap<usize, BTreeSet<Reg>>,
}

impl RegClassifier<'_> {
    /// Is `name` a register of thread `tid`? Uses declarations when present,
    /// else the `r0`/`p0` naming heuristic.
    fn is_reg(&self, tid: usize, name: &str) -> bool {
        if let Some(set) = self.decls.get(&tid) {
            if !set.is_empty() {
                return set.iter().any(|r| r.as_str() == name);
            }
        }
        let mut chars = name.chars();
        matches!(chars.next(), Some('r') | Some('p')) && chars.all(|c| c.is_ascii_digit())
    }
}

fn parse_operand(tok: &str, tid: usize, cls: &RegClassifier<'_>) -> Result<Operand, String> {
    let tok = tok.trim();
    if tok.is_empty() {
        return Err("empty operand".into());
    }
    if let Ok(n) = tok.parse::<i64>() {
        return Ok(Operand::Imm(n));
    }
    if let Some(hex) = tok.strip_prefix("0x").or_else(|| tok.strip_prefix("0X")) {
        if let Ok(n) = i64::from_str_radix(hex, 16) {
            return Ok(Operand::Imm(n));
        }
    }
    if cls.is_reg(tid, tok) {
        Ok(Operand::Reg(Reg::new(tok)))
    } else {
        Ok(Operand::Sym(Loc::new(tok)))
    }
}

fn parse_addr(tok: &str, tid: usize, cls: &RegClassifier<'_>) -> Result<Operand, String> {
    let inner = tok
        .trim()
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| format!("expected [address], found {tok:?}"))?;
    parse_operand(inner, tid, cls)
}

/// Parses one instruction cell, e.g. `@!p4 ld.cg r1,[d]`.
fn parse_instr(cell: &str, tid: usize, cls: &RegClassifier<'_>) -> Result<Instr, String> {
    let cell = cell.trim();
    // Guards.
    if let Some(rest) = cell.strip_prefix('@') {
        let (guard, body) = rest
            .split_once(char::is_whitespace)
            .ok_or_else(|| format!("guard without instruction in {cell:?}"))?;
        let (expect, pred) = match guard.strip_prefix('!') {
            Some(p) => (false, p),
            None => (true, guard),
        };
        let inner = parse_instr(body, tid, cls)?;
        if matches!(inner, Instr::Guard { .. } | Instr::LabelDef(_)) {
            return Err(format!("cannot guard {body:?}"));
        }
        return Ok(Instr::Guard {
            pred: Reg::new(pred),
            expect,
            inner: Box::new(inner),
        });
    }
    // Labels.
    if let Some(name) = cell.strip_suffix(':') {
        if !name.contains(char::is_whitespace) {
            return Ok(Instr::LabelDef(Label::new(name)));
        }
    }

    let (opcode, rest) = match cell.split_once(char::is_whitespace) {
        Some((o, r)) => (o, r.trim()),
        None => (cell, ""),
    };
    let parts: Vec<&str> = opcode.split('.').collect();
    let base = parts[0];
    let mods: BTreeSet<&str> = parts[1..].iter().copied().collect();
    let volatile = mods.contains("volatile");
    let cache = if mods.contains("ca") {
        CacheOp::Ca
    } else {
        CacheOp::Cg
    };

    // Split operands at top level on commas; `[…]` groups contain no commas
    // in this fragment.
    let ops: Vec<&str> = if rest.is_empty() {
        Vec::new()
    } else {
        rest.split(',').map(str::trim).collect()
    };
    let nops = ops.len();
    let want = |n: usize| -> Result<(), String> {
        if nops == n {
            Ok(())
        } else {
            Err(format!(
                "{base} expects {n} operands, found {nops} in {cell:?}"
            ))
        }
    };
    let regop = |i: usize| -> Result<Reg, String> {
        match parse_operand(ops[i], tid, cls)? {
            Operand::Reg(r) => Ok(r),
            other => Err(format!(
                "operand {i} of {cell:?} must be a register, found {other}"
            )),
        }
    };

    match base {
        "ld" => {
            want(2)?;
            Ok(Instr::Ld {
                dst: regop(0)?,
                addr: parse_addr(ops[1], tid, cls)?,
                cache,
                volatile,
            })
        }
        "st" => {
            want(2)?;
            Ok(Instr::St {
                addr: parse_addr(ops[0], tid, cls)?,
                src: parse_operand(ops[1], tid, cls)?,
                cache,
                volatile,
            })
        }
        "atom" => {
            if mods.contains("cas") {
                want(4)?;
                Ok(Instr::Cas {
                    dst: regop(0)?,
                    addr: parse_addr(ops[1], tid, cls)?,
                    expected: parse_operand(ops[2], tid, cls)?,
                    desired: parse_operand(ops[3], tid, cls)?,
                })
            } else if mods.contains("exch") {
                want(3)?;
                Ok(Instr::Exch {
                    dst: regop(0)?,
                    addr: parse_addr(ops[1], tid, cls)?,
                    src: parse_operand(ops[2], tid, cls)?,
                })
            } else if mods.contains("inc") {
                want(2)?;
                Ok(Instr::Inc {
                    dst: regop(0)?,
                    addr: parse_addr(ops[1], tid, cls)?,
                })
            } else {
                Err(format!("unsupported atomic {opcode:?}"))
            }
        }
        "membar" => {
            want(0)?;
            let scope = if mods.contains("cta") {
                FenceScope::Cta
            } else if mods.contains("gl") {
                FenceScope::Gl
            } else if mods.contains("sys") {
                FenceScope::Sys
            } else {
                return Err(format!("membar needs a scope in {cell:?}"));
            };
            Ok(Instr::Membar { scope })
        }
        "mov" => {
            want(2)?;
            Ok(Instr::Mov {
                dst: regop(0)?,
                src: parse_operand(ops[1], tid, cls)?,
            })
        }
        "add" | "and" | "xor" => {
            want(3)?;
            let (dst, a, b) = (
                regop(0)?,
                parse_operand(ops[1], tid, cls)?,
                parse_operand(ops[2], tid, cls)?,
            );
            Ok(match base {
                "add" => Instr::Add { dst, a, b },
                "and" => Instr::And { dst, a, b },
                _ => Instr::Xor { dst, a, b },
            })
        }
        "cvt" => {
            want(2)?;
            Ok(Instr::Cvt {
                dst: regop(0)?,
                src: parse_operand(ops[1], tid, cls)?,
            })
        }
        "setp" => {
            want(3)?;
            let (dst, a, b) = (
                regop(0)?,
                parse_operand(ops[1], tid, cls)?,
                parse_operand(ops[2], tid, cls)?,
            );
            if mods.contains("ne") {
                Ok(Instr::SetpNe { dst, a, b })
            } else {
                Ok(Instr::SetpEq { dst, a, b })
            }
        }
        "bra" => {
            want(1)?;
            Ok(Instr::Bra {
                target: Label::new(ops[0]),
            })
        }
        other => Err(format!("unknown opcode {other:?}")),
    }
}

/// Parses `ScopeTree(grid(cta(warp T0)(warp T1))(cta(warp T2)))`.
fn parse_scope_tree(l: &str) -> Result<ScopeTree, String> {
    let inner = l
        .trim()
        .strip_prefix("ScopeTree")
        .map(str::trim)
        .and_then(|s| s.strip_prefix('('))
        .and_then(|s| s.strip_suffix(')'))
        .ok_or("malformed ScopeTree line")?;
    let toks = tokenize_tree(inner);
    let mut pos = 0;
    let tree = parse_grid(&toks, &mut pos)?;
    if pos != toks.len() {
        return Err("trailing tokens in scope tree".into());
    }
    Ok(tree)
}

#[derive(PartialEq, Eq, Debug)]
enum TreeTok {
    Open,
    Close,
    Word(String),
}

fn tokenize_tree(s: &str) -> Vec<TreeTok> {
    let mut toks = Vec::new();
    let mut word = String::new();
    for c in s.chars() {
        match c {
            '(' | ')' => {
                if !word.is_empty() {
                    toks.push(TreeTok::Word(std::mem::take(&mut word)));
                }
                toks.push(if c == '(' {
                    TreeTok::Open
                } else {
                    TreeTok::Close
                });
            }
            c if c.is_whitespace() => {
                if !word.is_empty() {
                    toks.push(TreeTok::Word(std::mem::take(&mut word)));
                }
            }
            c => word.push(c),
        }
    }
    if !word.is_empty() {
        toks.push(TreeTok::Word(word));
    }
    toks
}

fn expect_word(toks: &[TreeTok], pos: &mut usize, w: &str) -> Result<(), String> {
    match toks.get(*pos) {
        Some(TreeTok::Word(s)) if s == w => {
            *pos += 1;
            Ok(())
        }
        other => Err(format!("expected {w:?} in scope tree, found {other:?}")),
    }
}

fn parse_grid(toks: &[TreeTok], pos: &mut usize) -> Result<ScopeTree, String> {
    expect_word(toks, pos, "grid")?;
    let mut ctas = Vec::new();
    while toks.get(*pos) == Some(&TreeTok::Open) {
        *pos += 1;
        expect_word(toks, pos, "cta")?;
        let mut warps = Vec::new();
        while toks.get(*pos) == Some(&TreeTok::Open) {
            *pos += 1;
            expect_word(toks, pos, "warp")?;
            let mut threads = Vec::new();
            while let Some(TreeTok::Word(w)) = toks.get(*pos) {
                let t: usize = w
                    .strip_prefix('T')
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| format!("bad thread name {w:?} in scope tree"))?;
                threads.push(t);
                *pos += 1;
            }
            if toks.get(*pos) != Some(&TreeTok::Close) {
                return Err("unterminated warp in scope tree".into());
            }
            *pos += 1;
            warps.push(threads);
        }
        if toks.get(*pos) != Some(&TreeTok::Close) {
            return Err("unterminated cta in scope tree".into());
        }
        *pos += 1;
        ctas.push(warps);
    }
    if ctas.is_empty() {
        return Err("scope tree has no CTAs".into());
    }
    Ok(ScopeTree::new(ctas))
}

/// Parses the final-condition line.
fn parse_cond(l: &str) -> Result<FinalCond, String> {
    let (quant, rest) = if let Some(r) = l.strip_prefix("~exists") {
        (Quantifier::NotExists, r)
    } else if let Some(r) = l.strip_prefix("exists") {
        (Quantifier::Exists, r)
    } else if let Some(r) = l.strip_prefix("forall") {
        (Quantifier::Forall, r)
    } else {
        return Err(format!("expected exists/~exists/forall, found {l:?}"));
    };
    let mut toks = CondLexer::new(rest.trim());
    let pred = parse_or(&mut toks)?;
    if toks.peek().is_some() {
        return Err(format!("trailing tokens in condition: {:?}", toks.peek()));
    }
    Ok(FinalCond {
        quantifier: quant,
        pred,
    })
}

struct CondLexer<'a> {
    toks: Vec<&'a str>,
    pos: usize,
}

impl<'a> CondLexer<'a> {
    fn new(s: &'a str) -> Self {
        // Tokens: ( ) /\ \/ not != = identifiers numbers `t:r`.
        let mut toks = Vec::new();
        let bytes = s.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let c = bytes[i] as char;
            match c {
                ' ' | '\t' => i += 1,
                '(' | ')' => {
                    toks.push(&s[i..i + 1]);
                    i += 1;
                }
                '/' if s[i..].starts_with("/\\") => {
                    toks.push(&s[i..i + 2]);
                    i += 2;
                }
                '\\' if s[i..].starts_with("\\/") => {
                    toks.push(&s[i..i + 2]);
                    i += 2;
                }
                '!' if s[i..].starts_with("!=") => {
                    toks.push(&s[i..i + 2]);
                    i += 2;
                }
                '=' => {
                    toks.push(&s[i..i + 1]);
                    i += 1;
                }
                _ => {
                    let start = i;
                    while i < bytes.len()
                        && !" \t()=!".contains(bytes[i] as char)
                        && !s[i..].starts_with("/\\")
                        && !s[i..].starts_with("\\/")
                    {
                        i += 1;
                    }
                    toks.push(&s[start..i]);
                }
            }
        }
        CondLexer { toks, pos: 0 }
    }

    fn peek(&self) -> Option<&'a str> {
        self.toks.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<&'a str> {
        let t = self.peek();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &str) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }
}

fn parse_or(lx: &mut CondLexer<'_>) -> Result<Predicate, String> {
    let mut p = parse_and(lx)?;
    while lx.eat("\\/") {
        let q = parse_and(lx)?;
        p = p.or(q);
    }
    Ok(p)
}

fn parse_and(lx: &mut CondLexer<'_>) -> Result<Predicate, String> {
    let mut p = parse_unary(lx)?;
    while lx.eat("/\\") {
        let q = parse_unary(lx)?;
        p = p.and(q);
    }
    Ok(p)
}

fn parse_unary(lx: &mut CondLexer<'_>) -> Result<Predicate, String> {
    match lx.peek() {
        Some("not") => {
            lx.next();
            Ok(parse_unary(lx)?.negate())
        }
        Some("(") => {
            lx.next();
            let p = parse_or(lx)?;
            if !lx.eat(")") {
                return Err("missing closing parenthesis in condition".into());
            }
            Ok(p)
        }
        Some("true") => {
            lx.next();
            Ok(Predicate::True)
        }
        Some(_) => parse_atom(lx),
        None => Err("unexpected end of condition".into()),
    }
}

fn parse_atom(lx: &mut CondLexer<'_>) -> Result<Predicate, String> {
    let lhs = lx.next().ok_or("expected atom in condition")?;
    let op = lx
        .next()
        .ok_or_else(|| format!("expected = or != after {lhs:?}"))?;
    let rhs = lx
        .next()
        .ok_or_else(|| format!("expected value after {lhs:?} {op}"))?;
    let n: i64 = rhs
        .parse()
        .map_err(|_| format!("bad value {rhs:?} in condition"))?;
    let expr = match lhs.split_once(':') {
        Some((t, r)) => {
            let tid: usize = t.parse().map_err(|_| format!("bad thread id in {lhs:?}"))?;
            FinalExpr::Reg(tid, Reg::new(r))
        }
        None => FinalExpr::Mem(Loc::new(lhs)),
    };
    match op {
        "=" => Ok(Predicate::Eq(expr, n)),
        "!=" => Ok(Predicate::Ne(expr, n)),
        other => Err(format!("unknown comparison {other:?}")),
    }
}
