//! Memory maps: which region each litmus-test location lives in, and its
//! initial value (paper Secs. 2.2 and 4.1).

use std::collections::BTreeMap;
use std::fmt;

use crate::value::Loc;

/// A GPU memory region (paper Sec. 2.2).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub enum Region {
    /// Global memory: shared by all threads in the grid, cached in L1/L2.
    #[default]
    Global,
    /// Shared memory: one instance per SM, visible only within a CTA.
    Shared,
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Region::Global => write!(f, "global"),
            Region::Shared => write!(f, "shared"),
        }
    }
}

/// Region and initial value of one location.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct MemInit {
    /// The region the location is allocated in.
    pub region: Region,
    /// The initial value (0 in nearly every paper test).
    pub init: i64,
}

/// The memory map of a litmus test: every location with region and initial
/// value, in canonical (lexicographic) order.
///
/// ```
/// use weakgpu_litmus::{MemMap, Region};
///
/// let mut m = MemMap::new();
/// m.insert_global("x", 0);
/// m.insert_shared("y", 1);
/// assert_eq!(m.region(&"x".into()), Some(Region::Global));
/// assert_eq!(m.init(&"y".into()), Some(1));
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct MemMap {
    entries: BTreeMap<Loc, MemInit>,
}

impl MemMap {
    /// An empty memory map.
    pub fn new() -> Self {
        MemMap::default()
    }

    /// Adds or replaces a location.
    pub fn insert(&mut self, loc: impl Into<Loc>, region: Region, init: i64) -> &mut Self {
        self.entries.insert(loc.into(), MemInit { region, init });
        self
    }

    /// Adds a global-memory location with the given initial value.
    pub fn insert_global(&mut self, loc: impl Into<Loc>, init: i64) -> &mut Self {
        self.insert(loc, Region::Global, init)
    }

    /// Adds a shared-memory location with the given initial value.
    pub fn insert_shared(&mut self, loc: impl Into<Loc>, init: i64) -> &mut Self {
        self.insert(loc, Region::Shared, init)
    }

    /// The region of `loc`, if mapped.
    pub fn region(&self, loc: &Loc) -> Option<Region> {
        self.entries.get(loc).map(|e| e.region)
    }

    /// The initial value of `loc`, if mapped.
    pub fn init(&self, loc: &Loc) -> Option<i64> {
        self.entries.get(loc).map(|e| e.init)
    }

    /// `true` if `loc` is mapped.
    pub fn contains(&self, loc: &Loc) -> bool {
        self.entries.contains_key(loc)
    }

    /// Number of mapped locations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no locations are mapped.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates locations in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (&Loc, &MemInit)> {
        self.entries.iter()
    }

    /// The locations in canonical order.
    pub fn locs(&self) -> impl Iterator<Item = &Loc> {
        self.entries.keys()
    }
}

impl FromIterator<(Loc, MemInit)> for MemMap {
    fn from_iter<I: IntoIterator<Item = (Loc, MemInit)>>(iter: I) -> Self {
        MemMap {
            entries: iter.into_iter().collect(),
        }
    }
}

impl Extend<(Loc, MemInit)> for MemMap {
    fn extend<I: IntoIterator<Item = (Loc, MemInit)>>(&mut self, iter: I) {
        self.entries.extend(iter);
    }
}

impl fmt::Display for MemMap {
    /// Renders the paper's memory-map line, e.g. `x: shared, y: global`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (loc, init) in &self.entries {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{loc}: {}", init.region)?;
            if init.init != 0 {
                write!(f, "={}", init.init)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_query() {
        let mut m = MemMap::new();
        m.insert_global("x", 0).insert_shared("y", 5);
        assert_eq!(m.len(), 2);
        assert!(m.contains(&"x".into()));
        assert_eq!(m.region(&"y".into()), Some(Region::Shared));
        assert_eq!(m.init(&"y".into()), Some(5));
        assert_eq!(m.region(&"z".into()), None);
    }

    #[test]
    fn canonical_order_and_display() {
        let mut m = MemMap::new();
        m.insert_shared("y", 0).insert_global("x", 1);
        let locs: Vec<_> = m.locs().map(|l| l.as_str().to_owned()).collect();
        assert_eq!(locs, ["x", "y"]);
        assert_eq!(m.to_string(), "x: global=1, y: shared");
    }

    #[test]
    fn replace_updates_entry() {
        let mut m = MemMap::new();
        m.insert_global("x", 0);
        m.insert_shared("x", 9);
        assert_eq!(m.len(), 1);
        assert_eq!(m.region(&"x".into()), Some(Region::Shared));
        assert_eq!(m.init(&"x".into()), Some(9));
    }

    #[test]
    fn collect_from_iterator() {
        let m: MemMap = [(
            Loc::new("x"),
            MemInit {
                region: Region::Global,
                init: 3,
            },
        )]
        .into_iter()
        .collect();
        assert_eq!(m.init(&"x".into()), Some(3));
    }
}
