//! Symbolic per-thread execution.
//!
//! To enumerate candidate executions (paper Sec. 5.1.2) each thread's code
//! is unwound into a sequence of memory events. Loads receive their values
//! from an **oracle** (a list of integers consumed in order); given an
//! oracle, execution is deterministic, so enumerating oracles enumerates the
//! thread's possible event sequences — including which predicated
//! instructions execute and whether a CAS succeeds.
//!
//! During execution we track, per register, the set of load events whose
//! values flowed into it; this yields the address (`addr`), data (`data`)
//! and control (`ctrl`) dependency edges of the paper's model (Sec. 5.1.1).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use weakgpu_litmus::{CacheOp, Instr, Label, Loc, Operand, Reg, Value};

use crate::event::EventKind;

/// A thread-local event: like [`crate::Event`] but with thread-local ids
/// and explicit dependency edges.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ThreadEvent {
    /// Read, write or fence.
    pub kind: EventKind,
    /// Accessed location (`None` for fences).
    pub loc: Option<Loc>,
    /// Value read/written.
    pub value: i64,
    /// Cache operator.
    pub cache: CacheOp,
    /// `.volatile` marker.
    pub volatile: bool,
    /// From an atomic instruction.
    pub atomic: bool,
    /// Originating instruction index.
    pub instr_idx: usize,
    /// Local indices of read events this event address-depends on.
    pub addr_deps: Vec<usize>,
    /// Local indices of read events this event data-depends on.
    pub data_deps: Vec<usize>,
    /// Local indices of read events this event control-depends on.
    pub ctrl_deps: Vec<usize>,
}

/// The result of unwinding one thread under one oracle.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ThreadTrace {
    /// Thread id.
    pub tid: usize,
    /// Events in program order.
    pub events: Vec<ThreadEvent>,
    /// Read/write event pairs of successful atomics.
    pub rmw_pairs: Vec<(usize, usize)>,
    /// Final register file, sorted by register name.
    pub final_regs: Vec<(Reg, Value)>,
    /// The oracle consumed (one entry per read event, in order).
    pub oracle: Vec<i64>,
}

impl ThreadTrace {
    /// The final integer value of `reg` (pointers and unset registers
    /// read as 0, the hardware reset value).
    pub fn final_int(&self, reg: &Reg) -> i64 {
        match self
            .final_regs
            .binary_search_by(|e| e.0.cmp(reg))
            .map(|i| &self.final_regs[i].1)
        {
            Ok(Value::Int(n)) => *n,
            _ => 0,
        }
    }

    /// Read events (location, local index) in order — the oracle's shape.
    pub fn reads(&self) -> impl Iterator<Item = (usize, &Loc)> {
        self.events
            .iter()
            .enumerate()
            .filter(|(_, e)| e.kind.is_read())
            .map(|(i, e)| (i, e.loc.as_ref().expect("reads have locations")))
    }
}

/// Why a symbolic run could not complete.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SymError {
    /// A memory access's address operand did not evaluate to a location.
    BadAddress {
        /// Thread id.
        tid: usize,
        /// Offending instruction index.
        instr_idx: usize,
    },
    /// A store attempted to write a pointer value.
    StoreOfPointer {
        /// Thread id.
        tid: usize,
        /// Offending instruction index.
        instr_idx: usize,
    },
    /// The step limit was exceeded (unbounded loop).
    StepLimit {
        /// Thread id.
        tid: usize,
    },
    /// Trace enumeration exceeded its configured bound.
    TooManyTraces,
}

impl fmt::Display for SymError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymError::BadAddress { tid, instr_idx } => {
                write!(
                    f,
                    "thread {tid}, instruction {instr_idx}: address is not a location"
                )
            }
            SymError::StoreOfPointer { tid, instr_idx } => {
                write!(
                    f,
                    "thread {tid}, instruction {instr_idx}: cannot store a pointer"
                )
            }
            SymError::StepLimit { tid } => write!(f, "thread {tid}: step limit exceeded"),
            SymError::TooManyTraces => write!(f, "trace enumeration limit exceeded"),
        }
    }
}

impl std::error::Error for SymError {}

/// Outcome of [`run_thread`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SymResult {
    /// The thread ran to completion.
    Complete(ThreadTrace),
    /// The oracle is too short: the next read (of the given location) needs
    /// a value. Extend the oracle and re-run.
    NeedValue {
        /// Location the pending read accesses.
        loc: Loc,
    },
    /// The run failed.
    Error(SymError),
}

/// A value plus the sorted, deduplicated read events it derives from.
/// Taint sets hold at most a handful of indices, so a sorted `Vec`
/// (cloned per operand read) is much cheaper than a tree set.
#[derive(Clone, Default)]
struct Tainted {
    value: Value,
    taint: Vec<usize>,
}

/// Inserts `v` into a sorted, deduplicated vector.
fn taint_insert(taint: &mut Vec<usize>, v: usize) {
    if let Err(pos) = taint.binary_search(&v) {
        taint.insert(pos, v);
    }
}

/// Merges `src` into the sorted, deduplicated `dst`.
fn taint_union(dst: &mut Vec<usize>, src: &[usize]) {
    for &v in src {
        taint_insert(dst, v);
    }
}

struct ThreadState<'a> {
    tid: usize,
    /// The register file, sorted by register name — a thread touches a
    /// handful of registers, so a sorted vector beats a tree map for
    /// the per-oracle clone and per-instruction lookups.
    regs: Vec<(Reg, Tainted)>,
    events: Vec<ThreadEvent>,
    rmw_pairs: Vec<(usize, usize)>,
    oracle: &'a [i64],
    oracle_pos: usize,
    /// Reads that every subsequent event control-depends on (conditional
    /// branches taken so far), sorted and deduplicated.
    path_taint: Vec<usize>,
}

impl ThreadState<'_> {
    fn eval(&self, op: &Operand) -> Tainted {
        match op {
            Operand::Reg(r) => self
                .regs
                .binary_search_by(|e| e.0.cmp(r))
                .map(|i| self.regs[i].1.clone())
                .unwrap_or_default(),
            Operand::Imm(n) => Tainted {
                value: Value::Int(*n),
                taint: Vec::new(),
            },
            Operand::Sym(l) => Tainted {
                value: Value::ptr(l.as_str()),
                taint: Vec::new(),
            },
        }
    }

    fn set(&mut self, reg: &Reg, t: Tainted) {
        match self.regs.binary_search_by(|e| e.0.cmp(reg)) {
            Ok(i) => self.regs[i].1 = t,
            Err(i) => self.regs.insert(i, (reg.clone(), t)),
        }
    }

    fn resolve_addr(&self, op: &Operand, instr_idx: usize) -> Result<(Loc, Vec<usize>), SymError> {
        let t = self.eval(op);
        match t.value {
            Value::Ptr { loc, offset: 0 } => Ok((loc, t.taint)),
            _ => Err(SymError::BadAddress {
                tid: self.tid,
                instr_idx,
            }),
        }
    }
}

/// The oracle-independent setup of one thread's symbolic execution:
/// resolved branch labels plus the pre-seeded initial register file.
/// Computing this once per thread (instead of once per oracle attempt)
/// is what keeps depth-first oracle enumeration cheap — the per-oracle
/// restart then only clones the register map.
struct ThreadSetup<'a> {
    labels: BTreeMap<&'a Label, usize>,
    init_regs: Vec<(Reg, Tainted)>,
}

impl<'a> ThreadSetup<'a> {
    fn new(instrs: &'a [Instr], reg_init: &dyn Fn(&Reg) -> Value) -> Self {
        let mut labels: BTreeMap<&Label, usize> = BTreeMap::new();
        for (i, instr) in instrs.iter().enumerate() {
            if let Instr::LabelDef(l) = instr {
                labels.insert(l, i);
            }
        }
        // Pre-seed registers mentioned by instructions with their
        // initial values so `final_regs` is total over used registers.
        let mut init_regs: Vec<(Reg, Tainted)> = Vec::new();
        for instr in instrs {
            for r in instr
                .read_regs()
                .into_iter()
                .chain(instr.written_reg().cloned())
            {
                if let Err(i) = init_regs.binary_search_by(|e| e.0.cmp(&r)) {
                    let value = reg_init(&r);
                    init_regs.insert(
                        i,
                        (
                            r,
                            Tainted {
                                value,
                                taint: Vec::new(),
                            },
                        ),
                    );
                }
            }
        }
        ThreadSetup { labels, init_regs }
    }
}

/// Unwinds thread `tid` under the given oracle.
///
/// `reg_init` supplies initial register values (default integer 0);
/// `max_steps` bounds the number of executed instructions (loops unroll up
/// to this bound, after which [`SymError::StepLimit`] is reported).
pub fn run_thread(
    tid: usize,
    instrs: &[Instr],
    reg_init: &dyn Fn(&Reg) -> Value,
    oracle: &[i64],
    max_steps: usize,
) -> SymResult {
    run_thread_prepared(
        tid,
        instrs,
        &ThreadSetup::new(instrs, reg_init),
        oracle,
        max_steps,
    )
}

/// [`run_thread`] against a precomputed [`ThreadSetup`].
fn run_thread_prepared(
    tid: usize,
    instrs: &[Instr],
    setup: &ThreadSetup<'_>,
    oracle: &[i64],
    max_steps: usize,
) -> SymResult {
    let mut st = ThreadState {
        tid,
        regs: setup.init_regs.clone(),
        events: Vec::new(),
        rmw_pairs: Vec::new(),
        oracle,
        oracle_pos: 0,
        path_taint: Vec::new(),
    };

    let mut pc = 0usize;
    let mut steps = 0usize;
    while pc < instrs.len() {
        steps += 1;
        if steps > max_steps {
            return SymResult::Error(SymError::StepLimit { tid });
        }
        let instr = &instrs[pc];
        match step(&mut st, instr, pc, &setup.labels) {
            Ok(Flow::Next) => pc += 1,
            Ok(Flow::Jump(target)) => pc = target,
            Err(StepFail::NeedValue(loc)) => return SymResult::NeedValue { loc },
            Err(StepFail::Error(e)) => return SymResult::Error(e),
        }
    }

    SymResult::Complete(ThreadTrace {
        tid,
        events: st.events,
        rmw_pairs: st.rmw_pairs,
        final_regs: st.regs.into_iter().map(|(r, t)| (r, t.value)).collect(),
        oracle: oracle[..st.oracle_pos].to_vec(),
    })
}

enum Flow {
    Next,
    Jump(usize),
}

enum StepFail {
    NeedValue(Loc),
    Error(SymError),
}

impl From<SymError> for StepFail {
    fn from(e: SymError) -> Self {
        StepFail::Error(e)
    }
}

fn step(
    st: &mut ThreadState<'_>,
    instr: &Instr,
    pc: usize,
    labels: &BTreeMap<&Label, usize>,
) -> Result<Flow, StepFail> {
    step_guarded(st, instr, pc, labels, &[])
}

fn step_guarded(
    st: &mut ThreadState<'_>,
    instr: &Instr,
    pc: usize,
    labels: &BTreeMap<&Label, usize>,
    guard_taint: &[usize],
) -> Result<Flow, StepFail> {
    let ctrl_now = |st: &ThreadState<'_>| -> Vec<usize> {
        let mut v = st.path_taint.clone();
        taint_union(&mut v, guard_taint);
        v
    };
    match instr {
        Instr::Guard {
            pred,
            expect,
            inner,
        } => {
            let p = st.eval(&Operand::Reg(pred.clone()));
            let truth = matches!(p.value, Value::Int(n) if n != 0);
            if truth != *expect {
                // Skipped; a conditional *branch* not taken still taints the
                // suffix (the decision was made either way).
                if matches!(**inner, Instr::Bra { .. }) {
                    taint_union(&mut st.path_taint, &p.taint);
                }
                return Ok(Flow::Next);
            }
            if matches!(**inner, Instr::Bra { .. }) {
                taint_union(&mut st.path_taint, &p.taint);
            }
            let mut gt = guard_taint.to_vec();
            taint_union(&mut gt, &p.taint);
            step_guarded(st, inner, pc, labels, &gt)
        }
        Instr::LabelDef(_) => Ok(Flow::Next),
        Instr::Bra { target } => {
            let dst = labels
                .get(target)
                .copied()
                .expect("labels validated at build time");
            Ok(Flow::Jump(dst))
        }
        Instr::Ld {
            dst,
            addr,
            cache,
            volatile,
        } => {
            let (loc, addr_deps) = st.resolve_addr(addr, pc)?;
            if st.oracle_pos >= st.oracle.len() {
                return Err(StepFail::NeedValue(loc));
            }
            let v = st.oracle[st.oracle_pos];
            st.oracle_pos += 1;
            let idx = st.events.len();
            st.events.push(ThreadEvent {
                kind: EventKind::Read,
                loc: Some(loc),
                value: v,
                cache: *cache,
                volatile: *volatile,
                atomic: false,
                instr_idx: pc,
                addr_deps,
                data_deps: Vec::new(),
                ctrl_deps: ctrl_now(st),
            });
            st.set(
                dst,
                Tainted {
                    value: Value::Int(v),
                    taint: vec![idx],
                },
            );
            Ok(Flow::Next)
        }
        Instr::St {
            addr,
            src,
            cache,
            volatile,
        } => {
            let (loc, addr_deps) = st.resolve_addr(addr, pc)?;
            let sv = st.eval(src);
            let n = match sv.value {
                Value::Int(n) => n,
                Value::Ptr { .. } => {
                    return Err(SymError::StoreOfPointer {
                        tid: st.tid,
                        instr_idx: pc,
                    }
                    .into())
                }
            };
            st.events.push(ThreadEvent {
                kind: EventKind::Write,
                loc: Some(loc),
                value: n,
                cache: *cache,
                volatile: *volatile,
                atomic: false,
                instr_idx: pc,
                addr_deps,
                data_deps: sv.taint.clone(),
                ctrl_deps: ctrl_now(st),
            });
            Ok(Flow::Next)
        }
        Instr::Cas {
            dst,
            addr,
            expected,
            desired,
        } => {
            let (loc, addr_deps) = st.resolve_addr(addr, pc)?;
            if st.oracle_pos >= st.oracle.len() {
                return Err(StepFail::NeedValue(loc));
            }
            let old = st.oracle[st.oracle_pos];
            st.oracle_pos += 1;
            let exp = st.eval(expected);
            let des = st.eval(desired);
            let (exp_n, des_n) = match (exp.value, des.value) {
                (Value::Int(a), Value::Int(b)) => (a, b),
                _ => {
                    return Err(SymError::StoreOfPointer {
                        tid: st.tid,
                        instr_idx: pc,
                    }
                    .into())
                }
            };
            let ridx = st.events.len();
            st.events.push(ThreadEvent {
                kind: EventKind::Read,
                loc: Some(loc.clone()),
                value: old,
                cache: CacheOp::Cg,
                volatile: false,
                atomic: true,
                instr_idx: pc,
                addr_deps: addr_deps.clone(),
                data_deps: Vec::new(),
                ctrl_deps: ctrl_now(st),
            });
            if old == exp_n {
                let widx = st.events.len();
                let mut ctrl: Vec<usize> = ctrl_now(st);
                // The write is conditional on the read's value.
                if !ctrl.contains(&ridx) {
                    ctrl.push(ridx);
                }
                let mut data: Vec<usize> = des.taint.clone();
                data.extend(exp.taint.iter().copied());
                st.events.push(ThreadEvent {
                    kind: EventKind::Write,
                    loc: Some(loc),
                    value: des_n,
                    cache: CacheOp::Cg,
                    volatile: false,
                    atomic: true,
                    instr_idx: pc,
                    addr_deps,
                    data_deps: data,
                    ctrl_deps: ctrl,
                });
                st.rmw_pairs.push((ridx, widx));
            }
            st.set(
                dst,
                Tainted {
                    value: Value::Int(old),
                    taint: vec![ridx],
                },
            );
            Ok(Flow::Next)
        }
        Instr::Exch { dst, addr, src } => {
            let (loc, addr_deps) = st.resolve_addr(addr, pc)?;
            if st.oracle_pos >= st.oracle.len() {
                return Err(StepFail::NeedValue(loc));
            }
            let old = st.oracle[st.oracle_pos];
            st.oracle_pos += 1;
            let sv = st.eval(src);
            let n = match sv.value {
                Value::Int(n) => n,
                Value::Ptr { .. } => {
                    return Err(SymError::StoreOfPointer {
                        tid: st.tid,
                        instr_idx: pc,
                    }
                    .into())
                }
            };
            let ridx = st.events.len();
            st.events.push(ThreadEvent {
                kind: EventKind::Read,
                loc: Some(loc.clone()),
                value: old,
                cache: CacheOp::Cg,
                volatile: false,
                atomic: true,
                instr_idx: pc,
                addr_deps: addr_deps.clone(),
                data_deps: Vec::new(),
                ctrl_deps: ctrl_now(st),
            });
            let widx = st.events.len();
            st.events.push(ThreadEvent {
                kind: EventKind::Write,
                loc: Some(loc),
                value: n,
                cache: CacheOp::Cg,
                volatile: false,
                atomic: true,
                instr_idx: pc,
                addr_deps,
                data_deps: sv.taint.clone(),
                ctrl_deps: ctrl_now(st),
            });
            st.rmw_pairs.push((ridx, widx));
            st.set(
                dst,
                Tainted {
                    value: Value::Int(old),
                    taint: vec![ridx],
                },
            );
            Ok(Flow::Next)
        }
        Instr::Inc { dst, addr } => {
            let (loc, addr_deps) = st.resolve_addr(addr, pc)?;
            if st.oracle_pos >= st.oracle.len() {
                return Err(StepFail::NeedValue(loc));
            }
            let old = st.oracle[st.oracle_pos];
            st.oracle_pos += 1;
            let ridx = st.events.len();
            st.events.push(ThreadEvent {
                kind: EventKind::Read,
                loc: Some(loc.clone()),
                value: old,
                cache: CacheOp::Cg,
                volatile: false,
                atomic: true,
                instr_idx: pc,
                addr_deps: addr_deps.clone(),
                data_deps: Vec::new(),
                ctrl_deps: ctrl_now(st),
            });
            let widx = st.events.len();
            st.events.push(ThreadEvent {
                kind: EventKind::Write,
                loc: Some(loc),
                value: old.wrapping_add(1),
                cache: CacheOp::Cg,
                volatile: false,
                atomic: true,
                instr_idx: pc,
                addr_deps,
                // The written value is derived from the read.
                data_deps: vec![ridx],
                ctrl_deps: ctrl_now(st),
            });
            st.rmw_pairs.push((ridx, widx));
            st.set(
                dst,
                Tainted {
                    value: Value::Int(old),
                    taint: vec![ridx],
                },
            );
            Ok(Flow::Next)
        }
        Instr::Membar { scope } => {
            st.events.push(ThreadEvent {
                kind: EventKind::Fence(*scope),
                loc: None,
                value: 0,
                cache: CacheOp::Cg,
                volatile: false,
                atomic: false,
                instr_idx: pc,
                addr_deps: Vec::new(),
                data_deps: Vec::new(),
                ctrl_deps: ctrl_now(st),
            });
            Ok(Flow::Next)
        }
        Instr::Mov { dst, src } | Instr::Cvt { dst, src } => {
            let t = st.eval(src);
            st.set(dst, t);
            Ok(Flow::Next)
        }
        Instr::Add { dst, a, b } => {
            alu(st, dst, a, b, |x, y| x.wrapping_add(y));
            Ok(Flow::Next)
        }
        Instr::And { dst, a, b } => {
            alu(st, dst, a, b, |x, y| x.bitand(y));
            Ok(Flow::Next)
        }
        Instr::Xor { dst, a, b } => {
            alu(st, dst, a, b, |x, y| x.bitxor(y));
            Ok(Flow::Next)
        }
        Instr::SetpEq { dst, a, b } => {
            setp(st, dst, a, b, true);
            Ok(Flow::Next)
        }
        Instr::SetpNe { dst, a, b } => {
            setp(st, dst, a, b, false);
            Ok(Flow::Next)
        }
    }
}

fn alu(
    st: &mut ThreadState<'_>,
    dst: &Reg,
    a: &Operand,
    b: &Operand,
    f: impl Fn(&Value, &Value) -> Value,
) {
    let ta = st.eval(a);
    let tb = st.eval(b);
    let value = f(&ta.value, &tb.value);
    let mut taint = ta.taint;
    taint_union(&mut taint, &tb.taint);
    st.set(dst, Tainted { value, taint });
}

fn setp(st: &mut ThreadState<'_>, dst: &Reg, a: &Operand, b: &Operand, eq: bool) {
    let ta = st.eval(a);
    let tb = st.eval(b);
    let same = ta.value == tb.value;
    let truth = if eq { same } else { !same };
    let mut taint = ta.taint;
    taint_union(&mut taint, &tb.taint);
    st.set(
        dst,
        Tainted {
            value: Value::Int(truth as i64),
            taint,
        },
    );
}

/// Enumerates every trace of a thread by extending oracles depth-first.
///
/// `domains` gives, per location, the candidate values a read of that
/// location may return (the enumerator computes these from the test's
/// writes; see [`crate::enumerate`]).
///
/// # Errors
///
/// Propagates [`SymError`]s; reports [`SymError::TooManyTraces`] if more
/// than `max_traces` complete traces arise.
pub fn enumerate_thread_traces(
    tid: usize,
    instrs: &[Instr],
    reg_init: &dyn Fn(&Reg) -> Value,
    domains: &BTreeMap<Loc, BTreeSet<i64>>,
    max_steps: usize,
    max_traces: usize,
) -> Result<Vec<ThreadTrace>, SymError> {
    let setup = ThreadSetup::new(instrs, reg_init);
    let mut traces = Vec::new();
    let mut stack: Vec<Vec<i64>> = vec![Vec::new()];
    while let Some(oracle) = stack.pop() {
        match run_thread_prepared(tid, instrs, &setup, &oracle, max_steps) {
            SymResult::Complete(tr) => {
                traces.push(tr);
                if traces.len() > max_traces {
                    return Err(SymError::TooManyTraces);
                }
            }
            SymResult::NeedValue { loc } => {
                let dom = domains.get(&loc).cloned().unwrap_or_default();
                // Push in reverse so smaller values explore first.
                for v in dom.into_iter().rev() {
                    let mut ext = oracle.clone();
                    ext.push(v);
                    stack.push(ext);
                }
            }
            SymResult::Error(e) => return Err(e),
        }
    }
    Ok(traces)
}

#[cfg(test)]
mod tests {
    use super::*;
    use weakgpu_litmus::build::*;
    use weakgpu_litmus::FenceScope;

    fn zero_init(_: &Reg) -> Value {
        Value::Int(0)
    }

    fn domains(pairs: &[(&str, &[i64])]) -> BTreeMap<Loc, BTreeSet<i64>> {
        pairs
            .iter()
            .map(|(l, vs)| (Loc::new(l), vs.iter().copied().collect()))
            .collect()
    }

    #[test]
    fn straight_line_store_thread() {
        let code = vec![st("x", 1), membar(FenceScope::Gl), st("y", 1)];
        let r = run_thread(0, &code, &zero_init, &[], 64);
        let tr = match r {
            SymResult::Complete(tr) => tr,
            other => panic!("{other:?}"),
        };
        assert_eq!(tr.events.len(), 3);
        assert!(tr.events[0].kind.is_write());
        assert!(matches!(
            tr.events[1].kind,
            EventKind::Fence(FenceScope::Gl)
        ));
        assert_eq!(tr.events[2].value, 1);
        assert!(tr.rmw_pairs.is_empty());
    }

    #[test]
    fn load_requests_oracle_value() {
        let code = vec![ld("r1", "x")];
        match run_thread(0, &code, &zero_init, &[], 64) {
            SymResult::NeedValue { loc } => assert_eq!(loc, Loc::new("x")),
            other => panic!("{other:?}"),
        }
        match run_thread(0, &code, &zero_init, &[7], 64) {
            SymResult::Complete(tr) => {
                assert_eq!(tr.events[0].value, 7);
                assert_eq!(tr.final_int(&Reg::new("r1")), 7);
                assert_eq!(tr.oracle, vec![7]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn data_dependency_tracked() {
        // r2 := load x; store y := r2 + 1  ⇒ data dep from read to write.
        let code = vec![
            ld("r2", "x"),
            add("r2", reg("r2"), imm(1)),
            st_reg("y", "r2"),
        ];
        let tr = match run_thread(0, &code, &zero_init, &[3], 64) {
            SymResult::Complete(tr) => tr,
            other => panic!("{other:?}"),
        };
        assert_eq!(tr.events[1].value, 4);
        assert_eq!(tr.events[1].data_deps, vec![0]);
    }

    #[test]
    fn address_dependency_tracked() {
        // Manufactured address dependency (paper Fig. 13b).
        let code = vec![
            ld("r1", "x"),
            and("r2", reg("r1"), imm(0x8000_0000)),
            cvt("r3", reg("r2")),
            add("r4", reg("r4"), reg("r3")),
            ld("r5", reg("r4")),
        ];
        let init = |r: &Reg| {
            if r.as_str() == "r4" {
                Value::ptr("y")
            } else {
                Value::Int(0)
            }
        };
        let tr = match run_thread(0, &code, &init, &[1, 9], 64) {
            SymResult::Complete(tr) => tr,
            other => panic!("{other:?}"),
        };
        assert_eq!(tr.events.len(), 2);
        assert_eq!(tr.events[1].loc, Some(Loc::new("y")));
        assert_eq!(tr.events[1].addr_deps, vec![0]);
        assert_eq!(tr.events[1].value, 9);
    }

    #[test]
    fn control_dependency_from_guard() {
        // setp from a load, guarded load ⇒ ctrl dep.
        let code = vec![
            ld("r0", "t"),
            setp_eq("p4", reg("r0"), imm(0)),
            membar_gl().guarded("p4", false),
            ld("r1", "d").guarded("p4", false),
        ];
        // r0 = 1 ⇒ p4 false ⇒ @!p4 executes.
        let tr = match run_thread(1, &code, &zero_init, &[1, 0], 64) {
            SymResult::Complete(tr) => tr,
            other => panic!("{other:?}"),
        };
        assert_eq!(tr.events.len(), 3);
        assert_eq!(tr.events[1].kind, EventKind::Fence(FenceScope::Gl));
        assert_eq!(tr.events[2].ctrl_deps, vec![0]);
        // r0 = 0 ⇒ guarded instructions skipped.
        let tr2 = match run_thread(1, &code, &zero_init, &[0], 64) {
            SymResult::Complete(tr) => tr,
            other => panic!("{other:?}"),
        };
        assert_eq!(tr2.events.len(), 1);
    }

    #[test]
    fn cas_success_and_failure() {
        let code = vec![cas("r1", "m", 0, 1)];
        // Success: reads 0, writes 1, rmw pair.
        let tr = match run_thread(0, &code, &zero_init, &[0], 64) {
            SymResult::Complete(tr) => tr,
            other => panic!("{other:?}"),
        };
        assert_eq!(tr.events.len(), 2);
        assert_eq!(tr.rmw_pairs, vec![(0, 1)]);
        assert_eq!(tr.events[1].value, 1);
        assert!(tr.events[1].ctrl_deps.contains(&0));
        assert_eq!(tr.final_int(&Reg::new("r1")), 0);
        // Failure: reads 1, no write.
        let tr2 = match run_thread(0, &code, &zero_init, &[1], 64) {
            SymResult::Complete(tr) => tr,
            other => panic!("{other:?}"),
        };
        assert_eq!(tr2.events.len(), 1);
        assert!(tr2.rmw_pairs.is_empty());
        assert_eq!(tr2.final_int(&Reg::new("r1")), 1);
    }

    #[test]
    fn exch_and_inc() {
        let code = vec![exch("r0", "m", 5)];
        let tr = match run_thread(0, &code, &zero_init, &[2], 64) {
            SymResult::Complete(tr) => tr,
            other => panic!("{other:?}"),
        };
        assert_eq!(tr.events[1].value, 5);
        assert_eq!(tr.rmw_pairs.len(), 1);

        let code = vec![inc("r0", "c")];
        let tr = match run_thread(0, &code, &zero_init, &[9], 64) {
            SymResult::Complete(tr) => tr,
            other => panic!("{other:?}"),
        };
        assert_eq!(tr.events[1].value, 10);
        assert_eq!(tr.events[1].data_deps, vec![0]);
    }

    #[test]
    fn loop_hits_step_limit() {
        let code = vec![label("L"), bra("L")];
        match run_thread(0, &code, &zero_init, &[], 32) {
            SymResult::Error(SymError::StepLimit { tid: 0 }) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn spin_loop_terminates_when_oracle_allows() {
        // while (CAS(m,0,1) != 0) {} — succeeds on second try.
        let code = vec![
            label("SPIN"),
            cas("r0", "m", 0, 1),
            setp_ne("p", reg("r0"), imm(0)),
            bra("SPIN").guarded("p", true),
        ];
        let tr = match run_thread(0, &code, &zero_init, &[1, 0], 256) {
            SymResult::Complete(tr) => tr,
            other => panic!("{other:?}"),
        };
        // Two CAS reads, one successful write.
        assert_eq!(tr.events.len(), 3);
        assert_eq!(tr.rmw_pairs, vec![(1, 2)]);
        // The suffix is control-tainted by the first (failed) CAS read.
        assert!(tr.events[2].ctrl_deps.contains(&0));
    }

    #[test]
    fn bad_address_reported() {
        let code = vec![ld("r1", reg("r9"))]; // r9 = 0, not a pointer
        match run_thread(3, &code, &zero_init, &[0], 64) {
            SymResult::Error(SymError::BadAddress {
                tid: 3,
                instr_idx: 0,
            }) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn enumerate_traces_of_corr_reader() {
        let code = vec![ld("r1", "x"), ld("r2", "x")];
        let traces =
            enumerate_thread_traces(1, &code, &zero_init, &domains(&[("x", &[0, 1])]), 64, 1024)
                .unwrap();
        // 2 × 2 oracle choices.
        assert_eq!(traces.len(), 4);
        let weird: Vec<_> = traces.iter().filter(|t| t.oracle == vec![1, 0]).collect();
        assert_eq!(weird.len(), 1);
    }

    #[test]
    fn enumerate_traces_with_guards_varies_event_count() {
        let code = vec![
            cas("r1", "m", 0, 1),
            setp_eq("p", reg("r1"), imm(0)),
            ld("r3", "x").guarded("p", true),
        ];
        let traces = enumerate_thread_traces(
            1,
            &code,
            &zero_init,
            &domains(&[("m", &[0, 1]), ("x", &[0, 1])]),
            64,
            1024,
        )
        .unwrap();
        // m=0 ⇒ CAS succeeds ⇒ guarded load runs (x ∈ {0,1}): 2 traces.
        // m=1 ⇒ CAS fails ⇒ no load: 1 trace. Total 3.
        assert_eq!(traces.len(), 3);
    }
}
