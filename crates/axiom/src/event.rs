//! Memory events — the nodes of candidate-execution graphs (paper
//! Sec. 5.1.1).

use std::fmt;

use weakgpu_litmus::{CacheOp, FenceScope, Loc};

/// What an event does.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum EventKind {
    /// A read of memory (loads; the read half of atomics).
    Read,
    /// A write to memory (stores; the write half of atomics).
    Write,
    /// A `membar` fence of the given scope.
    Fence(FenceScope),
}

impl EventKind {
    /// `true` for reads.
    pub fn is_read(self) -> bool {
        matches!(self, EventKind::Read)
    }

    /// `true` for writes.
    pub fn is_write(self) -> bool {
        matches!(self, EventKind::Write)
    }

    /// `true` for memory accesses (reads or writes).
    pub fn is_access(self) -> bool {
        !matches!(self, EventKind::Fence(_))
    }
}

/// One memory event of a candidate execution.
///
/// Atomic operations (`atom.cas`, `atom.exch`, `atom.inc`) produce a read
/// event and (on success) a write event, linked by the execution's `rmw`
/// relation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Event {
    /// Global event id — the index into [`crate::Execution::events`].
    pub id: usize,
    /// Owning thread.
    pub tid: usize,
    /// Position in the thread's event sequence (program order).
    pub po_idx: usize,
    /// Read, write or fence.
    pub kind: EventKind,
    /// Accessed location (`None` for fences).
    pub loc: Option<Loc>,
    /// Value read or written (0 for fences).
    pub value: i64,
    /// The access's cache operator.
    pub cache: CacheOp,
    /// `.volatile` marker.
    pub volatile: bool,
    /// `true` when the event comes from an atomic instruction.
    pub atomic: bool,
    /// Index of the originating instruction in the thread's code (for
    /// diagnostics and optcheck cross-referencing).
    pub instr_idx: usize,
}

impl Event {
    /// `true` for reads.
    pub fn is_read(&self) -> bool {
        self.kind.is_read()
    }

    /// `true` for writes.
    pub fn is_write(&self) -> bool {
        self.kind.is_write()
    }

    /// `true` for fences.
    pub fn is_fence(&self) -> bool {
        matches!(self.kind, EventKind::Fence(_))
    }

    /// `true` if the event accesses `loc`.
    pub fn accesses(&self, loc: &Loc) -> bool {
        self.loc.as_ref() == Some(loc)
    }

    /// A compact label like `a: W.cg x=1` (cf. the paper's Fig. 14).
    pub fn label(&self) -> String {
        let letter = (b'a' + (self.id % 26) as u8) as char;
        match self.kind {
            EventKind::Fence(scope) => format!("{letter}: F{scope} (T{})", self.tid),
            kind => {
                let k = if kind.is_read() { "R" } else { "W" };
                let vol = if self.volatile { ".vol" } else { "" };
                format!(
                    "{letter}: {k}{}{vol} {}={} (T{})",
                    self.cache,
                    self.loc.as_ref().map(|l| l.as_str()).unwrap_or("?"),
                    self.value,
                    self.tid
                )
            }
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind) -> Event {
        Event {
            id: 0,
            tid: 1,
            po_idx: 0,
            kind,
            loc: (kind.is_access()).then(|| Loc::new("x")),
            value: 1,
            cache: CacheOp::Cg,
            volatile: false,
            atomic: false,
            instr_idx: 0,
        }
    }

    #[test]
    fn kinds() {
        assert!(ev(EventKind::Read).is_read());
        assert!(!ev(EventKind::Read).is_write());
        assert!(ev(EventKind::Write).is_write());
        assert!(ev(EventKind::Fence(FenceScope::Gl)).is_fence());
        assert!(!EventKind::Fence(FenceScope::Cta).is_access());
    }

    #[test]
    fn labels_render() {
        let e = ev(EventKind::Write);
        assert_eq!(e.label(), "a: W.cg x=1 (T1)");
        let f = ev(EventKind::Fence(FenceScope::Sys));
        assert_eq!(f.label(), "a: F.sys (T1)");
    }

    #[test]
    fn accesses_checks_location() {
        let e = ev(EventKind::Read);
        assert!(e.accesses(&Loc::new("x")));
        assert!(!e.accesses(&Loc::new("y")));
        assert!(!ev(EventKind::Fence(FenceScope::Gl)).accesses(&Loc::new("x")));
    }
}
