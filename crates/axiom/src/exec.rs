//! Candidate executions: events plus the relations of the paper's
//! Sec. 5.1.1 (program order, dependencies, fences, scopes, read-from,
//! coherence), with the derived relations (`fr`, `rfe`, `po-loc`, …) the
//! `.cat` models consume.

use std::collections::BTreeMap;

use weakgpu_litmus::{FenceScope, Loc};

use crate::event::{Event, EventKind};
use crate::relation::{EventSet, Relation};

/// How strictly read-modify-writes exclude interfering writes.
///
/// The PTX manual "annuls the guarantees afforded to atomic operations if
/// other stores access the same location" (paper Sec. 3.2.3), so the
/// paper-faithful mode only guarantees atomicity against other *atomics*.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum RmwAtomicity {
    /// No write whatsoever may intervene between an RMW's source and its
    /// write (the classical definition; used by the SC/TSO baselines).
    Full,
    /// Only other *atomic* writes are excluded (PTX semantics).
    #[default]
    AmongAtomics,
    /// RMW pairs get no exclusivity at all.
    None,
}

/// Fills `r` with program order over `events`: intra-thread, by position.
pub(crate) fn po_into(events: &[Event], r: &mut Relation) {
    r.reset(events.len());
    for a in events {
        for b in events {
            if a.tid == b.tid && a.po_idx < b.po_idx {
                r.add(a.id, b.id);
            }
        }
    }
}

/// Fills `r` with program order restricted to same-location accesses.
pub(crate) fn po_loc_into(events: &[Event], r: &mut Relation) {
    r.reset(events.len());
    for a in events {
        for b in events {
            if a.tid == b.tid && a.po_idx < b.po_idx && a.loc.is_some() && a.loc == b.loc {
                r.add(a.id, b.id);
            }
        }
    }
}

/// Fills `r` with pairs of events from different threads.
pub(crate) fn ext_into(events: &[Event], r: &mut Relation) {
    r.reset(events.len());
    for a in events {
        for b in events {
            if a.tid != b.tid {
                r.add(a.id, b.id);
            }
        }
    }
}

/// Fills `r` with pairs of events from the same thread.
pub(crate) fn int_into(events: &[Event], r: &mut Relation) {
    r.reset(events.len());
    for a in events {
        for b in events {
            if a.tid == b.tid {
                r.add(a.id, b.id);
            }
        }
    }
}

/// Fills `r` with pairs of accesses to the same location.
pub(crate) fn same_loc_into(events: &[Event], r: &mut Relation) {
    r.reset(events.len());
    for a in events {
        for b in events {
            if a.loc.is_some() && a.loc == b.loc {
                r.add(a.id, b.id);
            }
        }
    }
}

/// Fills `r` with the fence relation for `scope`: pairs `(a, b)` with a
/// fence of exactly that scope po-between them.
pub(crate) fn fence_rel_into(events: &[Event], scope: FenceScope, r: &mut Relation) {
    r.reset(events.len());
    for f in events {
        if f.kind != EventKind::Fence(scope) {
            continue;
        }
        for a in events {
            if a.tid != f.tid || a.po_idx >= f.po_idx {
                continue;
            }
            for b in events {
                if b.tid == f.tid && b.po_idx > f.po_idx {
                    r.add(a.id, b.id);
                }
            }
        }
    }
}

/// Fills `r` with pairs of events whose threads share a CTA.
pub(crate) fn scope_cta_into(events: &[Event], thread_cta: &[usize], r: &mut Relation) {
    r.reset(events.len());
    for a in events {
        for b in events {
            if thread_cta[a.tid] == thread_cta[b.tid] {
                r.add(a.id, b.id);
            }
        }
    }
}

/// Fills `s` with the ids of the read events.
pub(crate) fn read_set_into(events: &[Event], s: &mut EventSet) {
    s.reset(events.len());
    for e in events.iter().filter(|e| e.is_read()) {
        s.insert(e.id);
    }
}

/// Fills `s` with the ids of the write events.
pub(crate) fn write_set_into(events: &[Event], s: &mut EventSet) {
    s.reset(events.len());
    for e in events.iter().filter(|e| e.is_write()) {
        s.insert(e.id);
    }
}

/// A complete candidate execution of a litmus test.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Execution {
    /// All events, with `Event::id` equal to the index.
    pub events: Vec<Event>,
    /// CTA index of each thread (from the scope tree).
    pub thread_cta: Vec<usize>,
    /// Read-from: for each read event id, its source write id (`None` =
    /// the initial state). `None` for non-read events.
    pub rf: Vec<Option<usize>>,
    /// Coherence: per location, the write event ids in coherence order
    /// (the initial state implicitly precedes all of them).
    pub co: BTreeMap<Loc, Vec<usize>>,
    /// Initial memory values.
    pub init: BTreeMap<Loc, i64>,
    /// Address dependencies (read → dependent access).
    pub addr: Relation,
    /// Data dependencies (read → dependent write).
    pub data: Relation,
    /// Control dependencies (read → dependent event).
    pub ctrl: Relation,
    /// Successful atomic read/write pairs.
    pub rmw: Relation,
}

impl Execution {
    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when there are no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Event ids of reads.
    pub fn read_set(&self) -> EventSet {
        let mut s = EventSet::default();
        self.fill_read_set(&mut s);
        s
    }

    /// In-place [`Execution::read_set`].
    pub fn fill_read_set(&self, s: &mut EventSet) {
        read_set_into(&self.events, s);
    }

    /// Event ids of writes.
    pub fn write_set(&self) -> EventSet {
        let mut s = EventSet::default();
        self.fill_write_set(&mut s);
        s
    }

    /// In-place [`Execution::write_set`].
    pub fn fill_write_set(&self, s: &mut EventSet) {
        write_set_into(&self.events, s);
    }

    /// Event ids of fences.
    pub fn fence_set(&self) -> EventSet {
        EventSet::from_iter_n(
            self.len(),
            self.events.iter().filter(|e| e.is_fence()).map(|e| e.id),
        )
    }

    /// Program order: intra-thread, by position.
    pub fn po(&self) -> Relation {
        let mut r = Relation::default();
        self.fill_po(&mut r);
        r
    }

    /// In-place [`Execution::po`].
    pub fn fill_po(&self, r: &mut Relation) {
        po_into(&self.events, r);
    }

    /// Program order restricted to accesses of the same location.
    pub fn po_loc(&self) -> Relation {
        let mut r = Relation::default();
        self.fill_po_loc(&mut r);
        r
    }

    /// In-place [`Execution::po_loc`].
    pub fn fill_po_loc(&self, r: &mut Relation) {
        po_loc_into(&self.events, r);
    }

    /// Read-from as a relation (init edges have no source, so they do not
    /// appear; `fr` accounts for them).
    pub fn rf_rel(&self) -> Relation {
        let mut r = Relation::default();
        self.fill_rf_rel(&mut r);
        r
    }

    /// In-place [`Execution::rf_rel`].
    pub fn fill_rf_rel(&self, r: &mut Relation) {
        r.reset(self.len());
        for (read, src) in self.rf.iter().enumerate() {
            if let Some(w) = src {
                r.add(*w, read);
            }
        }
    }

    /// Coherence as a relation (transitive over each location's order).
    pub fn co_rel(&self) -> Relation {
        let mut r = Relation::default();
        self.fill_co_rel(&mut r);
        r
    }

    /// In-place [`Execution::co_rel`].
    pub fn fill_co_rel(&self, r: &mut Relation) {
        r.reset(self.len());
        for order in self.co.values() {
            for i in 0..order.len() {
                for j in (i + 1)..order.len() {
                    r.add(order[i], order[j]);
                }
            }
        }
    }

    /// From-read: read `r` to every write coherence-after `r`'s source.
    pub fn fr(&self) -> Relation {
        let mut r = Relation::default();
        self.fill_fr(&mut r);
        r
    }

    /// In-place [`Execution::fr`].
    pub fn fill_fr(&self, rel: &mut Relation) {
        rel.reset(self.len());
        for e in &self.events {
            if !e.is_read() {
                continue;
            }
            let loc = e.loc.as_ref().expect("reads have locations");
            let order = match self.co.get(loc) {
                Some(o) => o,
                None => continue,
            };
            match self.rf[e.id] {
                None => {
                    // Reads from init: all writes overwrite it.
                    for &w in order {
                        rel.add(e.id, w);
                    }
                }
                Some(src) => {
                    let pos = order
                        .iter()
                        .position(|&w| w == src)
                        .expect("rf source is in co");
                    for &w in &order[pos + 1..] {
                        rel.add(e.id, w);
                    }
                }
            }
        }
    }

    /// Pairs of events from different threads.
    pub fn ext(&self) -> Relation {
        let mut r = Relation::default();
        self.fill_ext(&mut r);
        r
    }

    /// In-place [`Execution::ext`].
    pub fn fill_ext(&self, r: &mut Relation) {
        ext_into(&self.events, r);
    }

    /// Pairs of events from the same thread (including identical events).
    pub fn int(&self) -> Relation {
        let mut r = Relation::default();
        self.fill_int(&mut r);
        r
    }

    /// In-place [`Execution::int`].
    pub fn fill_int(&self, r: &mut Relation) {
        int_into(&self.events, r);
    }

    /// Pairs of accesses to the same location.
    pub fn same_loc(&self) -> Relation {
        let mut r = Relation::default();
        self.fill_same_loc(&mut r);
        r
    }

    /// In-place [`Execution::same_loc`].
    pub fn fill_same_loc(&self, r: &mut Relation) {
        same_loc_into(&self.events, r);
    }

    /// The fence relation for scope `scope`: pairs `(a, b)` with a fence of
    /// exactly that scope po-between them.
    pub fn fence_rel(&self, scope: FenceScope) -> Relation {
        let mut r = Relation::default();
        self.fill_fence_rel(scope, &mut r);
        r
    }

    /// In-place [`Execution::fence_rel`].
    pub fn fill_fence_rel(&self, scope: FenceScope, r: &mut Relation) {
        fence_rel_into(&self.events, scope, r);
    }

    /// Scope relation `cta`: pairs of events whose threads share a CTA.
    pub fn scope_cta(&self) -> Relation {
        let mut r = Relation::default();
        self.fill_scope_cta(&mut r);
        r
    }

    /// In-place [`Execution::scope_cta`].
    pub fn fill_scope_cta(&self, r: &mut Relation) {
        scope_cta_into(&self.events, &self.thread_cta, r);
    }

    /// Scope relation `gl`: a single grid, so all pairs.
    pub fn scope_gl(&self) -> Relation {
        Relation::full(self.len())
    }

    /// Scope relation `sys`: the universal relation (paper Sec. 5.1.1).
    pub fn scope_sys(&self) -> Relation {
        Relation::full(self.len())
    }

    /// All base relations by their `.cat` names, for the evaluator's
    /// environment.
    pub fn base_relations(&self) -> BTreeMap<String, Relation> {
        let rf = self.rf_rel();
        let co = self.co_rel();
        let fr = self.fr();
        let ext = self.ext();
        let int = self.int();
        let mut m = BTreeMap::new();
        m.insert("po".into(), self.po());
        m.insert("po-loc".into(), self.po_loc());
        m.insert("addr".into(), self.addr.clone());
        m.insert("data".into(), self.data.clone());
        m.insert("ctrl".into(), self.ctrl.clone());
        m.insert("rmw".into(), self.rmw.clone());
        m.insert("rfe".into(), rf.inter(&ext));
        m.insert("rfi".into(), rf.inter(&int));
        m.insert("rf".into(), rf);
        m.insert("coe".into(), co.inter(&ext));
        m.insert("coi".into(), co.inter(&int));
        m.insert("co".into(), co);
        m.insert("fre".into(), fr.inter(&ext));
        m.insert("fri".into(), fr.inter(&int));
        m.insert("fr".into(), fr);
        m.insert("ext".into(), ext);
        m.insert("int".into(), int);
        m.insert("loc".into(), self.same_loc());
        m.insert("id".into(), Relation::identity(self.len()));
        m.insert("membar.cta".into(), self.fence_rel(FenceScope::Cta));
        m.insert("membar.gl".into(), self.fence_rel(FenceScope::Gl));
        m.insert("membar.sys".into(), self.fence_rel(FenceScope::Sys));
        m.insert("cta".into(), self.scope_cta());
        m.insert("gl".into(), self.scope_gl());
        m.insert("sys".into(), self.scope_sys());
        m
    }

    /// The final value of `loc`: the coherence-last write, or the initial
    /// value if never written.
    pub fn final_memory(&self, loc: &Loc) -> i64 {
        match self.co.get(loc).and_then(|o| o.last()) {
            Some(&w) => self.events[w].value,
            None => self.init.get(loc).copied().unwrap_or(0),
        }
    }

    /// Checks RMW exclusivity under the given mode: for every `rmw` pair
    /// `(r, w)`, no (qualifying) write to the same location lies strictly
    /// coherence-between `r`'s source and `w`.
    pub fn rmw_atomicity_holds(&self, mode: RmwAtomicity) -> bool {
        if mode == RmwAtomicity::None || self.rmw.is_empty() {
            return true;
        }
        for (r, w) in self.rmw.iter_pairs() {
            let loc = self.events[r]
                .loc
                .as_ref()
                .expect("rmw reads have locations");
            let order = match self.co.get(loc) {
                Some(o) => o,
                None => continue,
            };
            let wpos = order
                .iter()
                .position(|&x| x == w)
                .expect("rmw write is in co");
            let start = match self.rf[r] {
                None => 0,
                Some(src) => match order.iter().position(|&x| x == src) {
                    Some(p) => p + 1,
                    None => continue,
                },
            };
            if start >= wpos {
                // The source is the write itself or coherence-after it;
                // nothing lies strictly between (such candidates are
                // rejected by the per-location checks anyway).
                continue;
            }
            for &mid in &order[start..wpos] {
                let interferes = match mode {
                    RmwAtomicity::Full => true,
                    RmwAtomicity::AmongAtomics => self.events[mid].atomic,
                    RmwAtomicity::None => false,
                };
                if interferes {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weakgpu_litmus::CacheOp;

    /// Hand-builds the mp execution of the paper's Fig. 14:
    /// T0: W x=1, F.cta, W y=1 — T1: R y=1, F.gl, R x=0.
    fn fig14() -> Execution {
        let mk = |id, tid, po_idx, kind, loc: Option<&str>, value| Event {
            id,
            tid,
            po_idx,
            kind,
            loc: loc.map(Loc::new),
            value,
            cache: CacheOp::Cg,
            volatile: false,
            atomic: false,
            instr_idx: po_idx,
        };
        let events = vec![
            mk(0, 0, 0, EventKind::Write, Some("x"), 1),
            mk(1, 0, 1, EventKind::Fence(FenceScope::Cta), None, 0),
            mk(2, 0, 2, EventKind::Write, Some("y"), 1),
            mk(3, 1, 0, EventKind::Read, Some("y"), 1),
            mk(4, 1, 1, EventKind::Fence(FenceScope::Gl), None, 0),
            mk(5, 1, 2, EventKind::Read, Some("x"), 0),
        ];
        let n = events.len();
        Execution {
            events,
            thread_cta: vec![0, 0], // intra-CTA
            rf: vec![None, None, None, Some(2), None, None],
            co: [(Loc::new("x"), vec![0]), (Loc::new("y"), vec![2])]
                .into_iter()
                .collect(),
            init: [(Loc::new("x"), 0), (Loc::new("y"), 0)]
                .into_iter()
                .collect(),
            addr: Relation::empty(n),
            data: Relation::empty(n),
            ctrl: Relation::empty(n),
            rmw: Relation::empty(n),
        }
    }

    #[test]
    fn sets_and_po() {
        let e = fig14();
        assert_eq!(e.read_set().len(), 2);
        assert_eq!(e.write_set().len(), 2);
        assert_eq!(e.fence_set().len(), 2);
        let po = e.po();
        assert!(po.contains(0, 2) && po.contains(3, 5));
        assert!(!po.contains(0, 3));
        assert!(!po.contains(2, 0));
    }

    #[test]
    fn rf_fr_and_co() {
        let e = fig14();
        let rf = e.rf_rel();
        assert!(rf.contains(2, 3));
        assert_eq!(rf.len(), 1);
        // R x=0 reads init, so fr to W x=1.
        let fr = e.fr();
        assert!(fr.contains(5, 0));
        assert_eq!(fr.len(), 1);
        assert!(e.co_rel().is_empty()); // one write per location
    }

    #[test]
    fn fence_relations() {
        let e = fig14();
        let cta = e.fence_rel(FenceScope::Cta);
        assert!(cta.contains(0, 2));
        assert_eq!(cta.len(), 1);
        let gl = e.fence_rel(FenceScope::Gl);
        assert!(gl.contains(3, 5));
        assert_eq!(gl.len(), 1);
        assert!(e.fence_rel(FenceScope::Sys).is_empty());
    }

    #[test]
    fn scope_relations_intra_cta() {
        let e = fig14();
        assert_eq!(e.scope_cta().len(), 36); // all pairs, same CTA
        let mut inter = fig14();
        inter.thread_cta = vec![0, 1];
        let cta = inter.scope_cta();
        assert!(cta.contains(0, 2) && !cta.contains(0, 3));
        assert_eq!(inter.scope_gl().len(), 36);
    }

    #[test]
    fn the_fig14_cycle_exists_in_rmo_cta_for_intra_cta() {
        // membar.cta ∪ membar.gl ∪ rfe ∪ fr, restricted to cta, is cyclic:
        // a →fence b →rfe c →fence d →fr a (the cycle the paper draws).
        let e = fig14();
        let rels = e.base_relations();
        let cyc = rels["membar.cta"]
            .union(&rels["membar.gl"])
            .union(&rels["rfe"])
            .union(&rels["fr"])
            .inter(&rels["cta"]);
        assert!(!cyc.is_acyclic());
    }

    #[test]
    fn final_memory_values() {
        let e = fig14();
        assert_eq!(e.final_memory(&Loc::new("x")), 1);
        assert_eq!(e.final_memory(&Loc::new("y")), 1);
        assert_eq!(e.final_memory(&Loc::new("zz")), 0);
    }

    #[test]
    fn rmw_atomicity_detects_intervening_write() {
        // T0: RMW on m (reads init, writes 1). T1: plain write m=2 that
        // sits co-between init and the RMW write.
        let mk = |id, tid, po_idx, kind, value, atomic| Event {
            id,
            tid,
            po_idx,
            kind,
            loc: Some(Loc::new("m")),
            value,
            cache: CacheOp::Cg,
            volatile: false,
            atomic,
            instr_idx: po_idx,
        };
        let events = vec![
            mk(0, 0, 0, EventKind::Read, 0, true),
            mk(1, 0, 1, EventKind::Write, 1, true),
            mk(2, 1, 0, EventKind::Write, 2, false),
        ];
        let n = events.len();
        let mut rmw = Relation::empty(n);
        rmw.add(0, 1);
        let exec = Execution {
            events,
            thread_cta: vec![0, 1],
            rf: vec![None, None, None],
            co: [(Loc::new("m"), vec![2, 1])].into_iter().collect(),
            init: [(Loc::new("m"), 0)].into_iter().collect(),
            addr: Relation::empty(n),
            data: Relation::empty(n),
            ctrl: Relation::empty(n),
            rmw,
        };
        // The intervening write is *not* atomic: PTX-style atomicity holds,
        // full atomicity does not.
        assert!(exec.rmw_atomicity_holds(RmwAtomicity::AmongAtomics));
        assert!(!exec.rmw_atomicity_holds(RmwAtomicity::Full));
        assert!(exec.rmw_atomicity_holds(RmwAtomicity::None));

        // Make the interferer atomic: both modes reject.
        let mut exec2 = exec.clone();
        exec2.events[2].atomic = true;
        assert!(!exec2.rmw_atomicity_holds(RmwAtomicity::AmongAtomics));
    }

    #[test]
    fn base_relations_complete() {
        let e = fig14();
        let rels = e.base_relations();
        for name in [
            "po",
            "po-loc",
            "addr",
            "data",
            "ctrl",
            "rmw",
            "rf",
            "rfe",
            "rfi",
            "co",
            "coe",
            "coi",
            "fr",
            "fre",
            "fri",
            "ext",
            "int",
            "loc",
            "id",
            "membar.cta",
            "membar.gl",
            "membar.sys",
            "cta",
            "gl",
            "sys",
        ] {
            assert!(rels.contains_key(name), "missing {name}");
        }
        // rfe ∪ rfi = rf.
        assert_eq!(
            rels["rfe"]
                .union(&rels["rfi"])
                .iter_pairs()
                .collect::<Vec<_>>(),
            rels["rf"].iter_pairs().collect::<Vec<_>>()
        );
    }
}
