//! Herd-style axiomatic engine for GPU litmus tests (paper Sec. 5).
//!
//! Given a [`weakgpu_litmus::LitmusTest`], this crate
//!
//! 1. **unwinds** each thread symbolically into memory [`event::Event`]s,
//!    using a read-value oracle and tracking address/data/control
//!    dependencies ([`symbolic`]);
//! 2. **streams candidate executions** — every consistent choice of
//!    read-from (`rf`) and coherence (`co`) relations, decomposed into one
//!    shared [`skeleton::ExecutionSkeleton`] per trace combination plus an
//!    in-place rf/co [`skeleton::Overlay`] per candidate
//!    ([`enumerate::for_each_execution`]);
//! 3. **evaluates a memory model** over each candidate, either written in
//!    the [`cat`] relational DSL (the format of the paper's Figs. 15–16) or
//!    implemented natively via the [`model::Model`] trait.
//!
//! The partition of candidates into *allowed* and *forbidden* executions,
//! restricted to the registers a test observes, yields the set of outcomes a
//! model permits ([`enumerate::ModelOutcomes`]) — what the paper's
//! validation compares against hardware observations (Sec. 5.4).
//!
//! # Example
//!
//! ```
//! use weakgpu_axiom::{enumerate::enumerate_executions, model::sc_model};
//! use weakgpu_litmus::{corpus, ThreadScope};
//!
//! let test = corpus::sb(ThreadScope::IntraCta, None);
//! let execs = enumerate_executions(&test, &Default::default()).unwrap();
//! let sc = sc_model();
//! let outcomes = weakgpu_axiom::enumerate::model_outcomes(&test, &sc, &Default::default()).unwrap();
//! // SC forbids the store-buffering outcome …
//! assert!(!outcomes.condition_witnessed);
//! // … but there are executions (they are just not all allowed).
//! assert!(!execs.is_empty());
//! ```

pub mod cache;
pub mod cat;
pub mod enumerate;
pub mod event;
pub mod exec;
pub mod model;
pub mod persist;
pub mod plan;
pub mod relation;
pub mod render;
pub mod skeleton;
pub mod symbolic;

pub use cache::{shape_key, VerdictCache};
pub use enumerate::{
    condition_witnessed_with, enumerate_executions, for_each_execution, for_each_execution_batched,
    for_each_execution_pruned, model_outcomes, model_outcomes_counted, model_outcomes_with,
    EnumConfig, ModelOutcomes, PruneStats, PrunedClass,
};
pub use event::{Event, EventKind};
pub use exec::Execution;
pub use model::{CatModel, Model, RmwAtomicity};
pub use plan::{EvalContext, Plan};
pub use relation::{EdgeJournal, EventSet, LaneRel, Relation};
pub use skeleton::{
    ExecutionSkeleton, ExecutionView, LaneMask, Overlay, OverlayBatch, PartialView,
};
