//! The pre-diagnostics `.cat` lexer/parser, kept verbatim so the
//! differential test suite can assert the new frontend accepts the same
//! language and builds identical ASTs. Not part of the public API.

use super::{CatError, CatProgram, CheckKind, Expr, Stmt};

#[derive(Clone, PartialEq, Eq, Debug)]
enum Tok {
    Ident(String),
    Let,
    As,
    Acyclic,
    Irreflexive,
    Empty,
    Pipe,
    Amp,
    Backslash,
    Semi,
    LParen,
    RParen,
    Eq,
    Inv,
    Plus,
    Star,
    Question,
    Zero,
}

fn lex(src: &str) -> Result<Vec<Tok>, CatError> {
    let mut toks = Vec::new();
    let b: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '/' if b.get(i + 1) == Some(&'/') => {
                while i < b.len() && b[i] != '\n' {
                    i += 1;
                }
            }
            '(' if b.get(i + 1) == Some(&'*') => {
                i += 2;
                while i + 1 < b.len() && !(b[i] == '*' && b[i + 1] == ')') {
                    i += 1;
                }
                i = (i + 2).min(b.len());
            }
            '|' => {
                toks.push(Tok::Pipe);
                i += 1;
            }
            '&' => {
                toks.push(Tok::Amp);
                i += 1;
            }
            '\\' => {
                toks.push(Tok::Backslash);
                i += 1;
            }
            ';' => {
                toks.push(Tok::Semi);
                i += 1;
            }
            '(' => {
                toks.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                toks.push(Tok::RParen);
                i += 1;
            }
            '=' => {
                toks.push(Tok::Eq);
                i += 1;
            }
            '+' => {
                toks.push(Tok::Plus);
                i += 1;
            }
            '*' => {
                toks.push(Tok::Star);
                i += 1;
            }
            '?' => {
                toks.push(Tok::Question);
                i += 1;
            }
            '^' => {
                if b.get(i + 1) == Some(&'-') && b.get(i + 2) == Some(&'1') {
                    toks.push(Tok::Inv);
                    i += 3;
                } else {
                    return Err(CatError::new(format!("stray '^' at offset {i}")));
                }
            }
            '0' if !b
                .get(i + 1)
                .is_some_and(|c| c.is_alphanumeric() || *c == '.' || *c == '-') =>
            {
                toks.push(Tok::Zero);
                i += 1;
            }
            c if c.is_alphanumeric() || c == '_' || c == '.' => {
                let start = i;
                while i < b.len()
                    && (b[i].is_alphanumeric() || b[i] == '_' || b[i] == '.' || b[i] == '-')
                {
                    i += 1;
                }
                let word: String = b[start..i].iter().collect();
                toks.push(match word.as_str() {
                    "let" => Tok::Let,
                    "as" => Tok::As,
                    "acyclic" => Tok::Acyclic,
                    "irreflexive" => Tok::Irreflexive,
                    "empty" => Tok::Empty,
                    _ => Tok::Ident(word),
                });
            }
            other => return Err(CatError::new(format!("unexpected character {other:?}"))),
        }
    }
    Ok(toks)
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String, CatError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(CatError::new(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn stmt(&mut self) -> Result<Stmt, CatError> {
        match self.next() {
            Some(Tok::Let) => {
                let name = self.expect_ident()?;
                let param = if self.eat(&Tok::LParen) {
                    let p = self.expect_ident()?;
                    if !self.eat(&Tok::RParen) {
                        return Err(CatError::new("expected ')' after parameter"));
                    }
                    Some(p)
                } else {
                    None
                };
                if !self.eat(&Tok::Eq) {
                    return Err(CatError::new(format!("expected '=' in let {name}")));
                }
                let body = self.expr()?;
                Ok(Stmt::Let { name, param, body })
            }
            Some(tok @ (Tok::Acyclic | Tok::Irreflexive | Tok::Empty)) => {
                let kind = match tok {
                    Tok::Acyclic => CheckKind::Acyclic,
                    Tok::Irreflexive => CheckKind::Irreflexive,
                    _ => CheckKind::Empty,
                };
                let expr = self.expr()?;
                if !self.eat(&Tok::As) {
                    return Err(CatError::new("expected 'as' after check expression"));
                }
                let name = self.expect_ident()?;
                Ok(Stmt::Check { kind, expr, name })
            }
            other => Err(CatError::new(format!(
                "expected statement, found {other:?}"
            ))),
        }
    }

    // Precedence (loosest→tightest): | ; ; ; \ ; & ; postfix ; atom.
    fn expr(&mut self) -> Result<Expr, CatError> {
        let mut e = self.seq_expr()?;
        while self.eat(&Tok::Pipe) {
            let rhs = self.seq_expr()?;
            e = Expr::Union(Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn seq_expr(&mut self) -> Result<Expr, CatError> {
        let mut e = self.diff_expr()?;
        while self.eat(&Tok::Semi) {
            let rhs = self.diff_expr()?;
            e = Expr::Seq(Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn diff_expr(&mut self) -> Result<Expr, CatError> {
        let mut e = self.inter_expr()?;
        while self.eat(&Tok::Backslash) {
            let rhs = self.inter_expr()?;
            e = Expr::Diff(Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn inter_expr(&mut self) -> Result<Expr, CatError> {
        let mut e = self.postfix_expr()?;
        while self.eat(&Tok::Amp) {
            let rhs = self.postfix_expr()?;
            e = Expr::Inter(Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn postfix_expr(&mut self) -> Result<Expr, CatError> {
        let mut e = self.atom()?;
        loop {
            if self.eat(&Tok::Inv) {
                e = Expr::Inverse(Box::new(e));
            } else if self.eat(&Tok::Plus) {
                e = Expr::Plus(Box::new(e));
            } else if self.eat(&Tok::Star) {
                e = Expr::Star(Box::new(e));
            } else if self.eat(&Tok::Question) {
                e = Expr::Opt(Box::new(e));
            } else {
                return Ok(e);
            }
        }
    }

    fn atom(&mut self) -> Result<Expr, CatError> {
        match self.next() {
            Some(Tok::Ident(name)) => {
                if self.eat(&Tok::LParen) {
                    let arg = self.expr()?;
                    if !self.eat(&Tok::RParen) {
                        return Err(CatError::new(format!("expected ')' after {name}(…")));
                    }
                    Ok(Expr::App(name, Box::new(arg)))
                } else {
                    Ok(Expr::Id(name))
                }
            }
            Some(Tok::LParen) => {
                let e = self.expr()?;
                if !self.eat(&Tok::RParen) {
                    return Err(CatError::new("expected ')'"));
                }
                Ok(e)
            }
            Some(Tok::Zero) => Ok(Expr::Zero),
            other => Err(CatError::new(format!(
                "expected expression, found {other:?}"
            ))),
        }
    }
}

/// Parses a `.cat` source with the original single-error parser.
///
/// # Errors
///
/// Returns a [`CatError`] on the first lexical or syntactic problem.
pub fn parse(src: &str) -> Result<CatProgram, CatError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let mut stmts = Vec::new();
    while p.peek().is_some() {
        stmts.push(p.stmt()?);
    }
    Ok(CatProgram { title: None, stmts })
}
