//! Enumeration of candidate executions (paper Sec. 5.1.2).
//!
//! A litmus test's candidate executions are generated in three stages:
//!
//! 1. **Value domains** — a small fixed point computes, per location, the
//!    values a read could possibly return (the initial value plus every
//!    value any write could produce, iterated to cover value-chained RMWs).
//! 2. **Thread traces** — each thread is unwound symbolically under every
//!    oracle drawn from the domains ([`crate::symbolic`]).
//! 3. **Communication** — for every combination of traces, every consistent
//!    read-from assignment (each read sourced from a same-location,
//!    same-value write, or the initial state) and every coherence order per
//!    location is enumerated.
//!
//! Stage 3 is **streaming**: each trace combination becomes one immutable
//! [`ExecutionSkeleton`] and each rf×co
//! choice a lightweight in-place [`Overlay`];
//! [`for_each_execution`] visits every candidate as a borrowed
//! [`ExecutionView`] without materialising a `Vec<Candidate>` — no heap
//! allocation per candidate, and visitors can stop early (first witness
//! found, forbidden outcome observed) via [`ControlFlow::Break`].
//!
//! [`model_outcomes`] runs a [`crate::model::Model`] over the stream and
//! partitions the outcomes into allowed and forbidden;
//! [`enumerate_executions`] survives as a thin materialising wrapper over
//! the visitor for rendering, diagnostics and differential testing.
//!
//! With [`EnumConfig::pruning`] set, the verdict paths switch to
//! [`for_each_execution_pruned`]: rf slots and coherence axes become the
//! levels of a decision tree, and a subtree is cut whenever the
//! partially-filled overlay already forces the model's verdict
//! ([`crate::model::Model::partial_verdict`], a three-valued interval
//! evaluation over the compiled plan). Cut subtrees are reported as one
//! [`PrunedClass`] spanning all their candidates — same outcomes, same
//! counts, exponentially fewer evaluations on conflict-heavy tests. The
//! exhaustive stream stays available as the differential oracle.
//!
//! With [`EnumConfig::batching`] set, trailing subtrees of 2–64 sibling
//! candidates — overlays differing only in their last rf slots / co
//! axes — are judged in **one bit-plane pass**: each sibling becomes a
//! lane of an [`OverlayBatch`] and every
//! relational operation of the compiled plan covers all lanes per
//! machine word ([`crate::plan::Plan::allows_batch`]). Batching applies
//! to both the exhaustive stream ([`for_each_execution_batched`]) and
//! the pruned walk, where it composes with forced-verdict cuts:
//! pruning skips subtrees, batching amortises the leaves pruning kept.
//! Verdicts are bit-identical on every path.

use std::cell::Cell;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::ops::ControlFlow;
use std::time::Instant;

use weakgpu_litmus::{FinalExpr, Instr, LitmusTest, Loc, Operand, Outcome, Reg};

use crate::exec::Execution;
use crate::model::Model;
use crate::plan::EvalContext;
use crate::skeleton::{
    ExecutionSkeleton, ExecutionView, LaneMask, Overlay, OverlayBatch, PartialView,
};
use crate::symbolic::{enumerate_thread_traces, SymError, ThreadTrace};

/// Bounds for the enumeration.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EnumConfig {
    /// Instruction budget per thread (loops unroll up to this).
    pub max_steps_per_thread: usize,
    /// Fixed-point iterations for read-value domains. 3 covers every paper
    /// test (constant stores plus one RMW increment chain).
    pub domain_iters: usize,
    /// Bound on the traces enumerated per thread.
    pub max_traces_per_thread: usize,
    /// Bound on the number of candidate executions **visited**. Under the
    /// streaming visitor this counts candidates actually handed to the
    /// callback, not candidates materialised: a visitor that exits early
    /// (via [`ControlFlow::Break`]) before the limit never trips it.
    /// Under the pruned walk ([`for_each_execution_pruned`]) it counts
    /// **visited classes** — the nodes handed to the visitor — so a
    /// budget that the exhaustive stream exceeds can still complete when
    /// pruning collapses the space.
    pub max_executions: usize,
    /// Route the verdict paths ([`model_outcomes_with`],
    /// [`condition_witnessed_with`] and everything above them) through
    /// the rf-class decision tree with conflict-driven subtree cutoffs
    /// ([`for_each_execution_pruned`]) instead of the exhaustive stream.
    /// Verdicts are bit-identical either way; pruning trades a
    /// three-valued check per tree node for skipping entire rf×co
    /// subtrees whose verdict is already forced.
    pub pruning: bool,
    /// Judge trailing rf×co subtrees of 2–64 sibling candidates in one
    /// bit-plane pass: each sibling becomes a lane of an
    /// [`OverlayBatch`] and every relational
    /// operation of the compiled plan covers all lanes per machine word
    /// ([`crate::plan::Plan::allows_batch`]). Routes the exhaustive
    /// verdict paths through [`for_each_execution_batched`] and makes
    /// the pruned walk batch the subtrees its cuts keep — the two flags
    /// compose. Verdicts are bit-identical to the scalar paths; models
    /// without a batched evaluator degrade to per-leaf judgement.
    pub batching: bool,
    /// Evaluate the pruned walk's cut attempts by delta: plan state
    /// (overlay-dependent interval registers plus a Pearce–Kelly
    /// maintained topological order per acyclicity check) is pushed and
    /// popped along the decision-tree path through a word-level undo
    /// journal instead of being refilled from scratch at every node
    /// ([`crate::plan::EvalContext::set_incremental`]). Implies the
    /// tree walk (`pruning`); composes with `batching`, whose lane
    /// cyclicity sweeps are then seeded from the same maintained order.
    /// Verdicts and [`PruneStats`] are bit-identical either way; plans
    /// with non-row-local overlay operators (e.g. sequencing under the
    /// overlay) transparently fall back to the from-scratch evaluation.
    pub incremental: bool,
}

impl Default for EnumConfig {
    fn default() -> Self {
        EnumConfig {
            max_steps_per_thread: 128,
            domain_iters: 3,
            max_traces_per_thread: 4096,
            max_executions: 1_000_000,
            pruning: false,
            batching: false,
            incremental: false,
        }
    }
}

/// Enumeration failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EnumError {
    /// Symbolic execution failed.
    Sym(SymError),
    /// More than [`EnumConfig::max_executions`] candidates visited.
    TooManyExecutions,
}

impl fmt::Display for EnumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnumError::Sym(e) => write!(f, "symbolic execution failed: {e}"),
            EnumError::TooManyExecutions => write!(f, "too many candidate executions"),
        }
    }
}

impl std::error::Error for EnumError {}

impl From<SymError> for EnumError {
    fn from(e: SymError) -> Self {
        EnumError::Sym(e)
    }
}

/// Collects the statically known write-value domains: when every store
/// in `test` writes an immediate constant to a named location
/// *unconditionally* (no read-modify-writes, no predicated stores), the
/// values memory can ever hold are the initial values plus those
/// constants — no symbolic iteration needed. Returns `None` when any
/// write's value, address or *execution* is data-dependent: a guarded
/// store only contributes its value in traces where the guard fires, a
/// reachability question only the iterated fixed point answers (adding
/// it unconditionally would let such a store justify its own guard —
/// out-of-thin-air candidates).
fn static_domains(test: &LitmusTest) -> Option<BTreeMap<Loc, BTreeSet<i64>>> {
    fn collect(instr: &Instr, domains: &mut BTreeMap<Loc, BTreeSet<i64>>) -> bool {
        match instr {
            // A guard is fine around anything that writes nothing; a
            // guarded write bails to the fixed point.
            Instr::Guard { inner, .. } => match &**inner {
                Instr::St { .. } | Instr::Cas { .. } | Instr::Exch { .. } | Instr::Inc { .. } => {
                    false
                }
                other => collect(other, domains),
            },
            Instr::St {
                addr: Operand::Sym(loc),
                src: Operand::Imm(n),
                ..
            } => {
                domains.entry(loc.clone()).or_default().insert(*n);
                true
            }
            Instr::St { .. } | Instr::Cas { .. } | Instr::Exch { .. } | Instr::Inc { .. } => false,
            _ => true,
        }
    }
    let mut domains: BTreeMap<Loc, BTreeSet<i64>> = test
        .memory()
        .iter()
        .map(|(l, mi)| (l.clone(), [mi.init].into_iter().collect()))
        .collect();
    for thread in test.threads() {
        for instr in thread {
            if !collect(instr, &mut domains) {
                return None;
            }
        }
    }
    Some(domains)
}

/// Enumerates every thread's traces at the read-value fixed point.
///
/// Immediate-store tests (the whole generated paper family) take the
/// static fast path: their domains are closed under
/// [`static_domains`], so a single enumeration pass suffices. The
/// static set can exceed the iterated one only by values of stores that
/// never execute — reads of such values have no matching write event,
/// so the candidate set is unchanged.
///
/// Otherwise the per-location read-value domains are iterated to a
/// fixed point (at most [`EnumConfig::domain_iters`] updates); the
/// traces of the first iteration that adds nothing new are already the
/// fixed-point traces, so they are returned directly instead of being
/// re-enumerated. Returns the final domains alongside for inspection.
#[allow(clippy::type_complexity)]
fn fixed_point_traces(
    test: &LitmusTest,
    cfg: &EnumConfig,
) -> Result<(BTreeMap<Loc, BTreeSet<i64>>, Vec<Vec<ThreadTrace>>), EnumError> {
    let mut domains: BTreeMap<Loc, BTreeSet<i64>> = test
        .memory()
        .iter()
        .map(|(l, mi)| (l.clone(), [mi.init].into_iter().collect()))
        .collect();
    let enumerate_all = |domains: &BTreeMap<Loc, BTreeSet<i64>>| {
        test.threads()
            .iter()
            .enumerate()
            .map(|(tid, code)| {
                let init = |r: &Reg| test.reg_init_value(tid, r);
                enumerate_thread_traces(
                    tid,
                    code,
                    &init,
                    domains,
                    cfg.max_steps_per_thread,
                    cfg.max_traces_per_thread,
                )
            })
            .collect::<Result<Vec<_>, _>>()
    };
    if cfg.domain_iters == 0 {
        let per_thread = enumerate_all(&domains)?;
        return Ok((domains, per_thread));
    }
    if let Some(domains) = static_domains(test) {
        let per_thread = enumerate_all(&domains)?;
        return Ok((domains, per_thread));
    }
    let mut iterations = 0usize;
    loop {
        // One fixed-point iteration, updating the domains thread by
        // thread (later threads see earlier threads' new writes, exactly
        // like the original two-phase computation).
        let mut per_thread = Vec::with_capacity(test.num_threads());
        let mut changed = false;
        for (tid, code) in test.threads().iter().enumerate() {
            let init = |r: &Reg| test.reg_init_value(tid, r);
            let traces = enumerate_thread_traces(
                tid,
                code,
                &init,
                &domains,
                cfg.max_steps_per_thread,
                cfg.max_traces_per_thread,
            )?;
            for tr in &traces {
                for e in &tr.events {
                    if e.kind.is_write() {
                        let loc = e.loc.clone().expect("writes have locations");
                        if domains.entry(loc).or_default().insert(e.value) {
                            changed = true;
                        }
                    }
                }
            }
            per_thread.push(traces);
        }
        iterations += 1;
        if !changed {
            // Fixed point: nothing moved this iteration, so every
            // thread's traces were enumerated at the final domains —
            // reuse them instead of enumerating again.
            return Ok((domains, per_thread));
        }
        if iterations >= cfg.domain_iters {
            // Budget spent mid-change: the collected traces are stale
            // mixtures, so enumerate once more at the final domains.
            let per_thread = enumerate_all(&domains)?;
            return Ok((domains, per_thread));
        }
    }
}

/// One candidate execution together with its observable outcome, in the
/// legacy materialised form (see [`enumerate_executions`]).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Candidate {
    /// The execution graph.
    pub execution: Execution,
    /// The values of the test's observed registers/locations.
    pub outcome: Outcome,
}

/// Streams every candidate execution of `test` through `f` as a borrowed
/// [`ExecutionView`], sharing one [`ExecutionSkeleton`] per thread-trace
/// combination and rewriting one rf/co [`Overlay`] in place per
/// candidate — the steady-state loop performs **no heap allocation per
/// candidate**.
///
/// Returning [`ControlFlow::Break`] from `f` stops the enumeration
/// immediately; the break value comes back as `Ok(Some(value))`, and
/// `Ok(None)` means the candidate space was exhausted. Candidates are
/// visited in the same deterministic order [`enumerate_executions`]
/// materialises them.
///
/// ```
/// use std::ops::ControlFlow;
/// use weakgpu_axiom::enumerate::{for_each_execution, EnumConfig};
/// use weakgpu_litmus::{corpus, ThreadScope};
///
/// let test = corpus::sb(ThreadScope::IntraCta, None);
/// // Count candidates without materialising any of them …
/// let mut count = 0usize;
/// let done = for_each_execution(&test, &EnumConfig::default(), |_view| {
///     count += 1;
///     ControlFlow::<()>::Continue(())
/// })
/// .unwrap();
/// assert!(done.is_none() && count > 0);
///
/// // … or stop at the first candidate witnessing the weak outcome.
/// let witness = for_each_execution(&test, &EnumConfig::default(), |view| {
///     if test.cond().witnessed_by(&view.outcome()) {
///         ControlFlow::Break(view.to_execution())
///     } else {
///         ControlFlow::Continue(())
///     }
/// })
/// .unwrap();
/// assert!(witness.is_some());
/// ```
///
/// # Errors
///
/// Fails if symbolic execution fails (bad addresses, unbounded loops) or
/// more than [`EnumConfig::max_executions`] candidates are visited.
pub fn for_each_execution<B, F>(
    test: &LitmusTest,
    cfg: &EnumConfig,
    mut f: F,
) -> Result<Option<B>, EnumError>
where
    F: FnMut(&ExecutionView<'_>) -> ControlFlow<B>,
{
    ENUM_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => for_each_execution_with(test, cfg, &mut scratch, &mut f),
        Err(_) => for_each_execution_with(test, cfg, &mut EnumScratch::new(), &mut f),
    })
}

// The enumeration scratch (skeleton, overlay, rf/co working set) is
// kept per thread so consecutive tests reuse one warm buffer set. A
// nested enumeration (a visitor that itself enumerates) falls back to a
// fresh scratch.
thread_local! {
    static ENUM_SCRATCH: std::cell::RefCell<EnumScratch> =
        std::cell::RefCell::new(EnumScratch::new());
}

/// One memoised [`fixed_point_traces`] result. Trace enumeration
/// depends only on the test and the enumeration caps, yet every
/// judgement pass re-derived it from scratch — in a sweep each
/// (test, model) cell pays it again, and on small-tree workloads it
/// rivals the walk itself. A single-entry cache keyed by test equality
/// covers the hot pattern (consecutive passes over one test) without
/// growing per extra test.
struct TraceCache {
    test: LitmusTest,
    max_steps: usize,
    max_traces: usize,
    domain_iters: usize,
    domains: std::rc::Rc<BTreeMap<Loc, BTreeSet<i64>>>,
    per_thread: std::rc::Rc<Vec<Vec<ThreadTrace>>>,
}

thread_local! {
    static TRACE_CACHE: std::cell::RefCell<Option<TraceCache>> =
        const { std::cell::RefCell::new(None) };
}

/// [`fixed_point_traces`] behind the thread-local single-entry cache:
/// a hit is one `LitmusTest` equality check instead of a full
/// enumeration. The caps are part of the key — a budget change must
/// re-enumerate (and re-raise any budget error).
#[allow(clippy::type_complexity)]
fn fixed_point_traces_cached(
    test: &LitmusTest,
    cfg: &EnumConfig,
) -> Result<
    (
        std::rc::Rc<BTreeMap<Loc, BTreeSet<i64>>>,
        std::rc::Rc<Vec<Vec<ThreadTrace>>>,
    ),
    EnumError,
> {
    TRACE_CACHE.with(|cell| {
        let mut cached = cell.borrow_mut();
        if let Some(e) = cached.as_ref() {
            if e.max_steps == cfg.max_steps_per_thread
                && e.max_traces == cfg.max_traces_per_thread
                && e.domain_iters == cfg.domain_iters
                && e.test == *test
            {
                return Ok((e.domains.clone(), e.per_thread.clone()));
            }
        }
        let (domains, per_thread) = fixed_point_traces(test, cfg)?;
        let domains = std::rc::Rc::new(domains);
        let per_thread = std::rc::Rc::new(per_thread);
        *cached = Some(TraceCache {
            test: test.clone(),
            max_steps: cfg.max_steps_per_thread,
            max_traces: cfg.max_traces_per_thread,
            domain_iters: cfg.domain_iters,
            domains: domains.clone(),
            per_thread: per_thread.clone(),
        });
        Ok((domains, per_thread))
    })
}

fn for_each_execution_with<B, F>(
    test: &LitmusTest,
    cfg: &EnumConfig,
    scratch: &mut EnumScratch,
    f: &mut F,
) -> Result<Option<B>, EnumError>
where
    F: FnMut(&ExecutionView<'_>) -> ControlFlow<B>,
{
    let (_domains, per_thread) = fixed_point_traces_cached(test, cfg)?;

    let thread_cta: Vec<usize> = (0..test.num_threads())
        .map(|t| test.scope_tree().placement(t).cta)
        .collect();
    let init_mem: BTreeMap<Loc, i64> = test
        .memory()
        .iter()
        .map(|(l, mi)| (l.clone(), mi.init))
        .collect();
    let observed = test.observed();

    let mut visited = 0usize;
    let mut traces: Vec<&ThreadTrace> = Vec::with_capacity(per_thread.len());
    let mut combo = vec![0usize; per_thread.len()];
    'combos: loop {
        traces.clear();
        traces.extend(combo.iter().zip(&*per_thread).map(|(&i, ts)| &ts[i]));
        if let ControlFlow::Break(b) = visit_combination(
            &traces,
            &thread_cta,
            &init_mem,
            &observed,
            cfg,
            scratch,
            &mut visited,
            f,
        )? {
            return Ok(Some(b));
        }

        // Advance the mixed-radix counter over thread traces.
        for t in (0..combo.len()).rev() {
            combo[t] += 1;
            if combo[t] < per_thread[t].len() {
                continue 'combos;
            }
            combo[t] = 0;
        }
        break;
    }
    Ok(None)
}

/// Buffers reused across a [`for_each_execution`] call's trace
/// combinations: the skeleton, the overlay, and the rf-choice /
/// coherence-permutation working set. After the first combination has
/// sized them, later combinations (and every candidate) allocate
/// nothing beyond growth to a new high-water mark.
struct EnumScratch {
    skel: ExecutionSkeleton,
    overlay: Overlay,
    /// Read event ids of the current skeleton.
    reads: Vec<usize>,
    /// Per read: its candidate rf sources. Grow-only; entries past the
    /// current read count are stale spares.
    rf_choices: Vec<Vec<Option<usize>>>,
    /// Per written location: every permutation of its writes. Grow-only
    /// nested buffers; `co_perm_counts` holds the live permutation
    /// count per location.
    co_perms: Vec<Vec<Vec<usize>>>,
    co_perm_counts: Vec<usize>,
    perm_scratch: Vec<usize>,
    perm_used: Vec<bool>,
    rf_idx: Vec<usize>,
    co_idx: Vec<usize>,
    /// Pruned-walk scratch: `suffix[d]` = candidates spanned by the
    /// subtree below tree level `d` (product of the branch factors at
    /// levels `>= d`).
    suffix: Vec<usize>,
    /// Bit-plane batch buffer for [`EnumConfig::batching`]; grow-only
    /// lane planes reused across batches and combinations.
    batch: OverlayBatch,
    /// Skeleton stamp for which `co_perms` and the overlay sizing were
    /// last built (0 = never).
    working_set_skel: u64,
}

impl EnumScratch {
    fn new() -> Self {
        EnumScratch {
            skel: ExecutionSkeleton::empty(),
            overlay: Overlay::new(),
            reads: Vec::new(),
            rf_choices: Vec::new(),
            co_perms: Vec::new(),
            co_perm_counts: Vec::new(),
            perm_scratch: Vec::new(),
            perm_used: Vec::new(),
            rf_idx: Vec::new(),
            co_idx: Vec::new(),
            suffix: Vec::new(),
            batch: OverlayBatch::new(),
            working_set_skel: 0,
        }
    }
}

/// Writes every permutation of `items` into `out`, reusing `out`'s
/// buffers (`out` is truncated to the permutation count). Emission
/// order matches the classical recursive formulation: permutations
/// starting with `items[0]` first, then `items[1]`, and so on.
/// Returns the permutation count; `out` is grow-only (entries past the
/// count are stale spares kept for their allocations).
fn fill_permutations(
    items: &[usize],
    out: &mut Vec<Vec<usize>>,
    scratch: &mut Vec<usize>,
    used: &mut Vec<bool>,
) -> usize {
    scratch.clear();
    used.clear();
    used.resize(items.len(), false);
    let mut count = 0usize;
    emit_permutations(items, scratch, used, out, &mut count);
    count
}

fn emit_permutations(
    items: &[usize],
    scratch: &mut Vec<usize>,
    used: &mut [bool],
    out: &mut Vec<Vec<usize>>,
    count: &mut usize,
) {
    if scratch.len() == items.len() {
        if *count < out.len() {
            out[*count].clear();
            out[*count].extend_from_slice(scratch);
        } else {
            out.push(scratch.clone());
        }
        *count += 1;
        return;
    }
    for i in 0..items.len() {
        if used[i] {
            continue;
        }
        used[i] = true;
        scratch.push(items[i]);
        emit_permutations(items, scratch, used, out, count);
        scratch.pop();
        used[i] = false;
    }
}

/// Fills one trace combination's skeleton and working set (rf-candidate
/// lists, coherence permutations, overlay sizing) into `scratch`.
/// Returns `false` when the combination is unrealisable — some read's
/// value matches neither the initial state nor any same-location write —
/// in which case the working set is left untouched and the combination
/// contributes no candidates. Shared prologue of the exhaustive and
/// pruned walks.
fn prepare_combination(
    traces: &[&ThreadTrace],
    thread_cta: &[usize],
    init_mem: &BTreeMap<Loc, i64>,
    observed: &[FinalExpr],
    scratch: &mut EnumScratch,
) -> bool {
    scratch.skel.fill(traces, thread_cta, init_mem, observed);
    let skel = &scratch.skel;
    let events = skel.events();

    // Read-from candidates per read.
    scratch.reads.clear();
    scratch
        .reads
        .extend(events.iter().filter(|e| e.is_read()).map(|e| e.id));
    let reads = &scratch.reads;
    if scratch.rf_choices.len() < reads.len() {
        scratch.rf_choices.resize(reads.len(), Vec::new());
    }
    for cands in &mut scratch.rf_choices[..reads.len()] {
        cands.clear();
    }
    for (k, &r) in reads.iter().enumerate() {
        let v = events[r].value;
        let cands = &mut scratch.rf_choices[k];
        let li = skel.loc_index(r);
        if li == usize::MAX {
            // The location is never written: the read can only see init.
            let loc = events[r].loc.as_ref().expect("reads have locations");
            if init_mem.get(loc).copied().unwrap_or(0) == v {
                cands.push(None);
            }
        } else {
            if skel.init_value(li) == v {
                cands.push(None);
            }
            for &w in &skel.writes_per_loc()[li] {
                if events[w].value == v {
                    cands.push(Some(w));
                }
            }
        }
        if cands.is_empty() {
            return false; // unrealisable combination
        }
    }

    // Coherence: permutations of writes per location, aligned with the
    // skeleton's written-location axes. Both the permutations and the
    // overlay sizing depend only on the skeleton's structure, so they
    // are rebuilt only when the skeleton identity changed since they
    // were last built (value-only combination changes reuse them).
    let num_locs = skel.writes_per_loc().len();
    if scratch.working_set_skel != skel.id() {
        if scratch.co_perms.len() < num_locs {
            scratch.co_perms.resize_with(num_locs, Vec::new);
        }
        scratch.co_perm_counts.clear();
        scratch.co_perm_counts.resize(num_locs, 0);
        for (li, ws) in skel.writes_per_loc().iter().enumerate() {
            scratch.co_perm_counts[li] = fill_permutations(
                ws,
                &mut scratch.co_perms[li],
                &mut scratch.perm_scratch,
                &mut scratch.perm_used,
            );
        }
        scratch.overlay.reset(skel);
        scratch.working_set_skel = skel.id();
    }
    true
}

/// Fills one trace combination's skeleton and streams its rf×co
/// overlays through `f`, reusing every buffer in `scratch`.
#[allow(clippy::too_many_arguments)]
fn visit_combination<B, F>(
    traces: &[&ThreadTrace],
    thread_cta: &[usize],
    init_mem: &BTreeMap<Loc, i64>,
    observed: &[FinalExpr],
    cfg: &EnumConfig,
    scratch: &mut EnumScratch,
    visited: &mut usize,
    f: &mut F,
) -> Result<ControlFlow<B>, EnumError>
where
    F: FnMut(&ExecutionView<'_>) -> ControlFlow<B>,
{
    if !prepare_combination(traces, thread_cta, init_mem, observed, scratch) {
        return Ok(ControlFlow::Continue(()));
    }
    let skel = &scratch.skel;
    let reads = &scratch.reads;
    let num_locs = skel.writes_per_loc().len();

    // Product: rf assignment × co choice, rewriting the overlay in place.
    scratch.rf_idx.clear();
    scratch.rf_idx.resize(reads.len(), 0);
    'rf: loop {
        for (k, &r) in reads.iter().enumerate() {
            scratch
                .overlay
                .set_rf(r, scratch.rf_choices[k][scratch.rf_idx[k]]);
        }

        scratch.co_idx.clear();
        scratch.co_idx.resize(num_locs, 0);
        for (li, perms) in scratch.co_perms[..num_locs].iter().enumerate() {
            scratch.overlay.set_co(li, &perms[0]);
        }
        'co: loop {
            scratch.overlay.stamp();

            *visited += 1;
            if *visited > cfg.max_executions {
                return Err(EnumError::TooManyExecutions);
            }
            let view = ExecutionView::new(skel, &scratch.overlay);
            if let ControlFlow::Break(b) = f(&view) {
                return Ok(ControlFlow::Break(b));
            }

            // Advance, rewriting only the coherence axes that moved.
            for i in (0..scratch.co_idx.len()).rev() {
                scratch.co_idx[i] += 1;
                if scratch.co_idx[i] < scratch.co_perm_counts[i] {
                    scratch
                        .overlay
                        .set_co(i, &scratch.co_perms[i][scratch.co_idx[i]]);
                    continue 'co;
                }
                scratch.co_idx[i] = 0;
                scratch.overlay.set_co(i, &scratch.co_perms[i][0]);
            }
            break;
        }

        for k in (0..scratch.rf_idx.len()).rev() {
            scratch.rf_idx[k] += 1;
            if scratch.rf_idx[k] < scratch.rf_choices[k].len() {
                continue 'rf;
            }
            scratch.rf_idx[k] = 0;
        }
        break;
    }
    Ok(ControlFlow::Continue(()))
}

/// Minimum subtree size (in candidates spanned) for which a tree node
/// attempts the three-valued partial check. Below this the check costs
/// more than the candidates it could skip: a partial evaluation is
/// roughly as expensive as one concrete evaluation, so cutting must
/// save at least a few leaves to pay for itself (and for the wasted
/// checks at nodes whose verdict is not yet forced).
const CUT_MIN: usize = 4;

/// Counters reported by the pruned walk: how many tree nodes were
/// handed to the visitor and how many candidate executions were skipped
/// by forced-verdict cuts. `classes_visited + candidates_pruned` equals
/// the exhaustive candidate count — cut classes and leaves partition
/// the candidate space exactly.
#[derive(Clone, Copy, Default, Debug)]
pub struct PruneStats {
    /// Tree nodes handed to the visitor (forced-cut classes + leaves).
    pub classes_visited: u64,
    /// Candidates subsumed by forced-cut classes beyond the one
    /// evaluation each cut performed.
    pub candidates_pruned: u64,
    /// Bit-plane batches formed ([`EnumConfig::batching`]); 0 when
    /// batching is off.
    pub batches_formed: u64,
    /// Lanes occupied across all formed batches —
    /// `lanes_filled / batches_formed` is the mean lane occupancy, the
    /// number CI artifacts watch to judge how well sibling leaves pack.
    pub lanes_filled: u64,
    /// Wall time spent inside the three-valued partial verdicts of the
    /// walk's cut attempts, in microseconds. A measurement, not part of
    /// the walk shape — equality (see [`PartialEq`][Self]) ignores it.
    pub cut_attempt_micros: u64,
    /// Overlay-dependent plan registers filled from scratch while
    /// judging this walk. The from-scratch walk refills its whole
    /// overlay register tier at every cut attempt and leaf; under
    /// [`EnumConfig::incremental`] only the per-combination baseline
    /// fills count — path moves are journalled delta updates, not
    /// refills — so this counter's collapse is the direct witness of
    /// the asymptotic win. Equality ignores it.
    pub registers_refilled: u64,
}

/// Equality compares only the walk-shape counters (`classes_visited`,
/// `candidates_pruned`, `batches_formed`, `lanes_filled`); the timing
/// and work measurements (`cut_attempt_micros`, `registers_refilled`)
/// legitimately differ between evaluation strategies that are
/// verdict-identical, and the differential suites assert exactly that
/// shape equality.
impl PartialEq for PruneStats {
    fn eq(&self, other: &Self) -> bool {
        self.classes_visited == other.classes_visited
            && self.candidates_pruned == other.candidates_pruned
            && self.batches_formed == other.batches_formed
            && self.lanes_filled == other.lanes_filled
    }
}

impl Eq for PruneStats {}

/// One node of the pruned walk handed to the visitor: either a **leaf**
/// (a single fully-assigned candidate, judged concretely) or a
/// **forced class** (a subtree whose verdict the three-valued partial
/// check already decided for *every* extension). Either way the node
/// spans [`PrunedClass::size`] candidates, all sharing the verdict
/// [`PrunedClass::allowed`], and its observable outcomes are spanned
/// exactly by [`PrunedClass::observed_combos`] /
/// [`PrunedClass::fill_observed`] — which is why folding classes
/// reproduces the exhaustive [`ModelOutcomes`] bit for bit.
pub struct PrunedClass<'a> {
    partial: PartialView<'a>,
    size: usize,
    allowed: bool,
    forced: bool,
}

impl<'a> PrunedClass<'a> {
    /// Number of candidate executions this class spans (1 for a leaf).
    pub fn size(&self) -> usize {
        self.size
    }

    /// The model's verdict, shared by every candidate in the class.
    pub fn allowed(&self) -> bool {
        self.allowed
    }

    /// `true` when the verdict was forced by the partial check (the
    /// subtree was cut); `false` for a concretely judged leaf.
    pub fn is_forced(&self) -> bool {
        self.forced
    }

    /// The underlying partially-assigned view.
    pub fn partial(&self) -> &PartialView<'a> {
        &self.partial
    }

    /// The trace combination's stamp (see
    /// [`ExecutionView::combination_id`]).
    pub fn combination_id(&self) -> u64 {
        self.partial.combination_id()
    }

    /// How many distinct observed-value vectors the class spans.
    pub fn observed_combos(&self) -> usize {
        self.partial.observed_combos()
    }

    /// Fills `out` with observed combination `combo`
    /// (`0..observed_combos()`), in `LitmusTest::observed` order.
    pub fn fill_observed(&self, combo: usize, out: &mut Vec<i64>) {
        self.partial.fill_observed_combo(combo, out);
    }

    /// Zips a value vector from [`PrunedClass::fill_observed`] with the
    /// observed expressions into an [`Outcome`].
    pub fn outcome_from_vals(&self, vals: &[i64]) -> Outcome {
        self.partial.outcome_from_vals(vals)
    }
}

/// Streams `test`'s candidate space through `f` as a sequence of
/// [`PrunedClass`]es — the conflict-driven pruned counterpart of
/// [`for_each_execution`].
///
/// The rf slots and coherence axes of each skeleton become the levels
/// of a decision tree (rf outer, co inner, matching the exhaustive
/// stream's lexicographic order). At each node spanning at least a few
/// candidates the model's three-valued partial verdict
/// ([`crate::model::Model::partial_verdict`]) is consulted: `Some(v)`
/// means *every* extension of the node's partially-filled overlay gets
/// verdict `v`, so the subtree is emitted as one forced class and never
/// descended. Leaves are judged concretely with
/// [`crate::model::Model::allows_view`]. Models without a partial
/// check (the trait's default returns `None`) degrade gracefully to
/// per-leaf evaluation with identical results.
///
/// Classes and leaves partition the candidate space: summing
/// [`PrunedClass::size`] over all visited nodes reproduces the
/// exhaustive candidate count, and folding each class's spanned
/// outcomes reproduces the exhaustive outcome sets —
/// [`model_outcomes_counted`] relies on exactly this.
///
/// `stats` accumulates the visited-class / pruned-candidate counters.
/// Returning [`ControlFlow::Break`] from `f` stops the walk; the break
/// value comes back as `Ok(Some(value))`.
///
/// # Errors
///
/// Fails if symbolic execution fails or more than
/// [`EnumConfig::max_executions`] **classes** are visited (the pruned
/// walk budgets visited nodes, not spanned candidates, so a budget the
/// exhaustive stream exceeds can still complete under pruning).
pub fn for_each_execution_pruned<B, F>(
    test: &LitmusTest,
    model: &dyn Model,
    cfg: &EnumConfig,
    ctx: &mut EvalContext,
    stats: &mut PruneStats,
    mut f: F,
) -> Result<Option<B>, EnumError>
where
    F: FnMut(&PrunedClass<'_>) -> ControlFlow<B>,
{
    ENUM_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => {
            for_each_execution_pruned_with(test, model, cfg, ctx, &mut scratch, stats, &mut f)
        }
        Err(_) => for_each_execution_pruned_with(
            test,
            model,
            cfg,
            ctx,
            &mut EnumScratch::new(),
            stats,
            &mut f,
        ),
    })
}

#[allow(clippy::too_many_arguments)]
fn for_each_execution_pruned_with<B, F>(
    test: &LitmusTest,
    model: &dyn Model,
    cfg: &EnumConfig,
    ctx: &mut EvalContext,
    scratch: &mut EnumScratch,
    stats: &mut PruneStats,
    f: &mut F,
) -> Result<Option<B>, EnumError>
where
    F: FnMut(&PrunedClass<'_>) -> ControlFlow<B>,
{
    let (_domains, per_thread) = fixed_point_traces_cached(test, cfg)?;
    // Refills accrued outside this walk (e.g. a prior exhaustive pass
    // over the same context) are not this walk's work.
    ctx.take_registers_refilled();

    let thread_cta: Vec<usize> = (0..test.num_threads())
        .map(|t| test.scope_tree().placement(t).cta)
        .collect();
    let init_mem: BTreeMap<Loc, i64> = test
        .memory()
        .iter()
        .map(|(l, mi)| (l.clone(), mi.init))
        .collect();
    let observed = test.observed();

    let mut visited = 0usize;
    let mut traces: Vec<&ThreadTrace> = Vec::with_capacity(per_thread.len());
    let mut combo = vec![0usize; per_thread.len()];
    'combos: loop {
        traces.clear();
        traces.extend(combo.iter().zip(&*per_thread).map(|(&i, ts)| &ts[i]));
        if prepare_combination(&traces, &thread_cta, &init_mem, &observed, scratch) {
            if let ControlFlow::Break(b) =
                visit_combination_pruned(model, ctx, cfg, scratch, &mut visited, stats, f)?
            {
                return Ok(Some(b));
            }
        }

        for t in (0..combo.len()).rev() {
            combo[t] += 1;
            if combo[t] < per_thread[t].len() {
                continue 'combos;
            }
            combo[t] = 0;
        }
        break;
    }
    Ok(None)
}

/// Adds read `r`'s fr edges for one (rf source, coherence order)
/// combination to `batch` under `mask`: with no source (reading the
/// initial state) the read precedes every write of the order; with a
/// source it precedes exactly the writes after it.
fn add_fr_axis(batch: &mut OverlayBatch, src: Option<usize>, order: &[usize], r: usize, mask: u64) {
    if mask == 0 {
        return;
    }
    match src {
        None => {
            for &w in order {
                batch.add_fr_masked(r, w, mask);
            }
        }
        Some(s) => {
            let pos = order
                .iter()
                .position(|&w| w == s)
                .expect("rf source is in co");
            for &w in &order[pos + 1..] {
                batch.add_fr_masked(r, w, mask);
            }
        }
    }
}

/// Borrowed working set of one combination's pruned walk — the
/// immutable slices [`PruneWalk::descend`] threads through the
/// recursion, leaving only the overlay and contexts mutable.
struct PruneWalk<'a, 'm> {
    skel: &'a ExecutionSkeleton,
    reads: &'a [usize],
    rf_choices: &'a [Vec<Option<usize>>],
    co_perms: &'a [Vec<Vec<usize>>],
    co_perm_counts: &'a [usize],
    /// `suffix[d]` = candidates spanned below tree level `d`.
    suffix: &'a [usize],
    model: &'m dyn Model,
    cfg: &'m EnumConfig,
    /// Nanoseconds spent inside partial verdicts, accumulated here and
    /// folded into [`PruneStats::cut_attempt_micros`] once per
    /// combination (per-attempt truncation to µs would round the
    /// sub-microsecond incremental attempts to zero).
    cut_nanos: Cell<u64>,
}

impl PruneWalk<'_, '_> {
    #[allow(clippy::too_many_arguments)]
    fn descend<B, F>(
        &self,
        overlay: &mut Overlay,
        batch: &mut OverlayBatch,
        ctx: &mut EvalContext,
        depth: usize,
        visited: &mut usize,
        stats: &mut PruneStats,
        f: &mut F,
    ) -> Result<ControlFlow<B>, EnumError>
    where
        F: FnMut(&PrunedClass<'_>) -> ControlFlow<B>,
    {
        let num_reads = self.reads.len();
        let num_levels = num_reads + self.co_perms.len();
        if depth == num_levels {
            // Leaf: every slot committed — judge the candidate
            // concretely, exactly like the exhaustive stream.
            overlay.stamp();
            *visited += 1;
            if *visited > self.cfg.max_executions {
                return Err(EnumError::TooManyExecutions);
            }
            stats.classes_visited += 1;
            let partial = PartialView::new(
                self.skel,
                overlay,
                self.reads,
                self.rf_choices,
                num_reads,
                self.co_perms.len(),
            );
            // Under incremental evaluation the maintained path state
            // already holds this leaf: at full depth the interval
            // degenerates (`lo == hi`), the partial verdict is definite
            // for every plan-backed model, and reading it off the
            // journalled state costs one level delta instead of a full
            // overlay-register refill. Models without a partial path
            // (`None`) fall back to the concrete judgement.
            let allowed = if self.cfg.incremental {
                self.model.partial_verdict(ctx, &partial)
            } else {
                None
            }
            .unwrap_or_else(|| {
                let view = ExecutionView::new(self.skel, overlay);
                self.model.allows_view(ctx, &view)
            });
            let class = PrunedClass {
                partial,
                size: 1,
                allowed,
                forced: false,
            };
            return Ok(f(&class));
        }

        if self.cfg.batching {
            let span = self.suffix[depth];
            if (2..=64).contains(&span) {
                // The trailing subtree fits the lane budget: judge all
                // of its leaves in one bit-plane pass. The parent's
                // forced-verdict cut already had its chance (cuts fire
                // before descending), so batches only see subtrees the
                // pruning kept — the two compose multiplicatively.
                return self.batch_subtree(overlay, batch, ctx, depth, visited, stats, f);
            }
        }

        let branch = if depth < num_reads {
            self.rf_choices[depth].len()
        } else {
            self.co_perm_counts[depth - num_reads]
        };
        for choice in 0..branch {
            if depth < num_reads {
                overlay.set_rf(self.reads[depth], self.rf_choices[depth][choice]);
            } else {
                let li = depth - num_reads;
                overlay.set_co(li, &self.co_perms[li][choice]);
            }
            let remaining = self.suffix[depth + 1];
            if remaining >= CUT_MIN {
                overlay.stamp();
                let partial = PartialView::new(
                    self.skel,
                    overlay,
                    self.reads,
                    self.rf_choices,
                    (depth + 1).min(num_reads),
                    (depth + 1).saturating_sub(num_reads),
                );
                let t0 = Instant::now();
                let verdict = self.model.partial_verdict(ctx, &partial);
                self.cut_nanos
                    .set(self.cut_nanos.get() + t0.elapsed().as_nanos() as u64);
                if let Some(allowed) = verdict {
                    // Forced: no extension can change the verdict — cut
                    // the subtree and report it as one class.
                    *visited += 1;
                    if *visited > self.cfg.max_executions {
                        return Err(EnumError::TooManyExecutions);
                    }
                    stats.classes_visited += 1;
                    stats.candidates_pruned += (remaining - 1) as u64;
                    let class = PrunedClass {
                        partial,
                        size: remaining,
                        allowed,
                        forced: true,
                    };
                    if let ControlFlow::Break(b) = f(&class) {
                        return Ok(ControlFlow::Break(b));
                    }
                    continue;
                }
            }
            if let ControlFlow::Break(b) =
                self.descend(overlay, batch, ctx, depth + 1, visited, stats, f)?
            {
                return Ok(ControlFlow::Break(b));
            }
        }
        Ok(ControlFlow::Continue(()))
    }

    /// Walks every leaf of the subtree rooted at tree level `depth` in
    /// lexicographic order — the exhaustive stream's order — rewriting
    /// `overlay`'s trailing slots in place and calling `g` at each
    /// leaf. Both passes of the batch protocol use this walker, so the
    /// lane order of pass 1 provably matches the report order of
    /// pass 2.
    fn for_each_leaf<T>(
        &self,
        overlay: &mut Overlay,
        depth: usize,
        g: &mut impl FnMut(&mut Overlay) -> ControlFlow<T>,
    ) -> ControlFlow<T> {
        let num_reads = self.reads.len();
        let num_levels = num_reads + self.co_perms.len();
        if depth == num_levels {
            return g(overlay);
        }
        let branch = if depth < num_reads {
            self.rf_choices[depth].len()
        } else {
            self.co_perm_counts[depth - num_reads]
        };
        for choice in 0..branch {
            if depth < num_reads {
                overlay.set_rf(self.reads[depth], self.rf_choices[depth][choice]);
            } else {
                let li = depth - num_reads;
                overlay.set_co(li, &self.co_perms[li][choice]);
            }
            if let ControlFlow::Break(b) = self.for_each_leaf(overlay, depth + 1, g) {
                return ControlFlow::Break(b);
            }
        }
        ControlFlow::Continue(())
    }

    /// Branching factor of tree level `level` (rf choices for read
    /// axes, permutation count for coherence axes).
    fn branch_count(&self, level: usize) -> usize {
        if level < self.reads.len() {
            self.rf_choices[level].len()
        } else {
            self.co_perm_counts[level - self.reads.len()]
        }
    }

    /// Axis-masked packing: fills `batch` with every leaf of the
    /// subtree rooted at tree level `depth` without walking the leaves.
    ///
    /// Lane `j` is the subtree's `j`-th leaf in lexicographic order —
    /// exactly [`PruneWalk::for_each_leaf`]'s order, so pass 2's lane
    /// counter still lines up. Because that order is a mixed-radix
    /// count over the trailing axes, the leaves sharing choice `c` of
    /// an axis form a periodic lane mask (`stride` = product of the
    /// later axes' spans): each trailing edge is added **once per
    /// (axis, choice)** under that mask, and each committed prefix edge
    /// once under the all-lanes mask, instead of once per lane. Packing
    /// cost drops from O(lanes × edges) scalar adds to O(choices ×
    /// edges) word ORs — on read-fan shapes this is the difference
    /// between packing dominating the batch pass and packing being
    /// noise.
    fn pack_axes(&self, overlay: &Overlay, batch: &mut OverlayBatch, depth: usize) {
        let span = self.suffix[depth];
        let num_reads = self.reads.len();
        debug_assert!((2..=64).contains(&span));
        debug_assert_eq!(self.suffix.len(), num_reads + self.co_perms.len() + 1);
        batch.set_lane_count(span);
        let live = LaneMask::all(span).bits();
        // The lanes taking choice `choice` at `level`: a `stride`-wide
        // block repeating with the axis's period. Both divide `span`,
        // so the blocks tile the live lanes exactly.
        let axis_mask = |level: usize, choice: usize| -> u64 {
            let stride = self.suffix[level + 1];
            let period = stride * self.branch_count(level);
            let block = if stride >= 64 {
                !0u64
            } else {
                (1u64 << stride) - 1
            };
            let mut mask = 0u64;
            let mut start = choice * stride;
            while start < span {
                mask |= block << start;
                start += period;
            }
            mask
        };
        // rf planes: prefix reads carry the overlay's committed source
        // in every lane; trailing reads one masked edge per choice.
        for (k, &r) in self.reads.iter().enumerate() {
            if k < depth {
                if let Some(w) = overlay.rf_of(r) {
                    batch.add_rf_masked(w, r, live);
                }
            } else {
                for (c, &src) in self.rf_choices[k].iter().enumerate() {
                    if let Some(w) = src {
                        batch.add_rf_masked(w, r, axis_mask(k, c));
                    }
                }
            }
        }
        // co planes: transitive pairs of the committed order (prefix
        // axes) or of each permutation (trailing axes).
        for li in 0..self.co_perms.len() {
            let level = num_reads + li;
            if level < depth {
                let order = overlay.co_order(li);
                for i in 0..order.len() {
                    for j in (i + 1)..order.len() {
                        batch.add_co_pair_masked(order[i], order[j], live);
                    }
                }
            } else {
                for p in 0..self.co_perm_counts[li] {
                    let order: &[usize] = &self.co_perms[li][p];
                    let mask = axis_mask(level, p);
                    for i in 0..order.len() {
                        for j in (i + 1)..order.len() {
                            batch.add_co_pair_masked(order[i], order[j], mask);
                        }
                    }
                }
            }
        }
        // fr planes: a read's fr edges depend on its rf choice and its
        // location's coherence order — each may be committed (prefix)
        // or a trailing axis, giving four mask combinations.
        for (k, &r) in self.reads.iter().enumerate() {
            let li = self.skel.loc_index(r);
            if li == usize::MAX {
                continue; // the location is never written: no fr edges
            }
            let lc = num_reads + li;
            match (k < depth, lc < depth) {
                (true, true) => {
                    add_fr_axis(batch, overlay.rf_of(r), overlay.co_order(li), r, live);
                }
                (true, false) => {
                    let src = overlay.rf_of(r);
                    for p in 0..self.co_perm_counts[li] {
                        add_fr_axis(batch, src, &self.co_perms[li][p], r, axis_mask(lc, p));
                    }
                }
                (false, true) => {
                    let order = overlay.co_order(li);
                    for (c, &src) in self.rf_choices[k].iter().enumerate() {
                        add_fr_axis(batch, src, order, r, axis_mask(k, c));
                    }
                }
                (false, false) => {
                    for (c, &src) in self.rf_choices[k].iter().enumerate() {
                        let rf_mask = axis_mask(k, c);
                        for p in 0..self.co_perm_counts[li] {
                            add_fr_axis(
                                batch,
                                src,
                                &self.co_perms[li][p],
                                r,
                                rf_mask & axis_mask(lc, p),
                            );
                        }
                    }
                }
            }
        }
    }

    /// Pass 1 of the two-pass batch protocol: packs every leaf of the
    /// subtree rooted at `depth` into `batch` (lexicographic order, one
    /// lane per leaf) and evaluates the model once over all lanes.
    /// Returns the per-lane verdict mask, or `None` when the model has
    /// no batched evaluator — pass 2 then judges each leaf scalar.
    fn batch_verdicts(
        &self,
        overlay: &mut Overlay,
        batch: &mut OverlayBatch,
        ctx: &mut EvalContext,
        depth: usize,
        stats: &mut PruneStats,
    ) -> Option<LaneMask> {
        batch.begin(self.skel);
        if batch.needs_lane_walk() {
            // RMW exclusivity is a per-lane verdict: pack by walking
            // the leaves (the closure always continues, so the walk
            // never breaks).
            let _ = self.for_each_leaf(overlay, depth, &mut |ov: &mut Overlay| {
                let view = ExecutionView::new(self.skel, ov);
                batch.push_lane(&view);
                ControlFlow::<()>::Continue(())
            });
        } else {
            self.pack_axes(overlay, batch, depth);
        }
        stats.batches_formed += 1;
        stats.lanes_filled += batch.lanes() as u64;
        // The view only feeds skeleton-derived queries in the batched
        // evaluator; its overlay (left at the last leaf's state) is
        // never read — lanes carry the per-leaf rf/co planes.
        let view = ExecutionView::new(self.skel, overlay);
        self.model.allows_batch(ctx, &view, batch)
    }

    /// Judges the whole subtree rooted at `depth` as one bit-plane
    /// batch. When every lane agrees the subtree is reported as a
    /// single multi-candidate [`PrunedClass`] (the shape a forced cut
    /// produces); a mixed batch reports each leaf as a size-1 class in
    /// the exact order the scalar walk would have produced, with
    /// per-leaf budget accounting so a budget exhausted mid-batch errs
    /// exactly where the scalar walk would.
    #[allow(clippy::too_many_arguments)]
    fn batch_subtree<B, F>(
        &self,
        overlay: &mut Overlay,
        batch: &mut OverlayBatch,
        ctx: &mut EvalContext,
        depth: usize,
        visited: &mut usize,
        stats: &mut PruneStats,
        f: &mut F,
    ) -> Result<ControlFlow<B>, EnumError>
    where
        F: FnMut(&PrunedClass<'_>) -> ControlFlow<B>,
    {
        let mask = self.batch_verdicts(overlay, batch, ctx, depth, stats);
        let num_reads = self.reads.len();
        let span = self.suffix[depth];
        if let Some(m) = mask {
            let live = LaneMask::all(span).bits();
            let bits = m.bits() & live;
            if bits == live || bits == 0 {
                // Every lane agrees: report the subtree as one class,
                // exactly like a forced cut would — the fold expands a
                // class's observed combinations without per-candidate
                // views, so a uniform batch skips the whole per-leaf
                // report walk. The non-representative lanes count as
                // pruned (covered without an individual visit), keeping
                // the partition invariant.
                overlay.stamp();
                *visited += 1;
                if *visited > self.cfg.max_executions {
                    return Err(EnumError::TooManyExecutions);
                }
                stats.classes_visited += 1;
                stats.candidates_pruned += (span - 1) as u64;
                let partial = PartialView::new(
                    self.skel,
                    overlay,
                    self.reads,
                    self.rf_choices,
                    depth.min(num_reads),
                    depth.saturating_sub(num_reads),
                );
                let class = PrunedClass {
                    partial,
                    size: span,
                    allowed: bits == live,
                    forced: false,
                };
                return Ok(f(&class));
            }
        }
        let mut lane = 0usize;
        let mut err = None;
        let flow = self.for_each_leaf(overlay, depth, &mut |ov: &mut Overlay| {
            ov.stamp();
            *visited += 1;
            if *visited > self.cfg.max_executions {
                err = Some(EnumError::TooManyExecutions);
                return ControlFlow::Break(None);
            }
            stats.classes_visited += 1;
            let allowed = match mask {
                Some(m) => m.contains(lane),
                None => {
                    let view = ExecutionView::new(self.skel, ov);
                    self.model.allows_view(ctx, &view)
                }
            };
            lane += 1;
            let partial = PartialView::new(
                self.skel,
                ov,
                self.reads,
                self.rf_choices,
                num_reads,
                self.co_perms.len(),
            );
            let class = PrunedClass {
                partial,
                size: 1,
                allowed,
                forced: false,
            };
            match f(&class) {
                ControlFlow::Break(b) => ControlFlow::Break(Some(b)),
                ControlFlow::Continue(()) => ControlFlow::Continue(()),
            }
        });
        if let Some(e) = err {
            return Err(e);
        }
        Ok(match flow {
            ControlFlow::Break(Some(b)) => ControlFlow::Break(b),
            _ => ControlFlow::Continue(()),
        })
    }

    /// The exhaustive batched walk: the same decision tree as
    /// [`PruneWalk::descend`] but with no partial-verdict cuts — every
    /// candidate is judged, trailing subtrees of 2–64 leaves as one
    /// bit-plane batch, the rest scalar. Visits candidates in the
    /// exhaustive stream's order with its visited-count accounting.
    #[allow(clippy::too_many_arguments)]
    fn descend_exhaustive<B, F>(
        &self,
        overlay: &mut Overlay,
        batch: &mut OverlayBatch,
        ctx: &mut EvalContext,
        depth: usize,
        visited: &mut usize,
        stats: &mut PruneStats,
        f: &mut F,
    ) -> Result<ControlFlow<B>, EnumError>
    where
        F: FnMut(&ExecutionView<'_>, bool) -> ControlFlow<B>,
    {
        let num_reads = self.reads.len();
        let num_levels = num_reads + self.co_perms.len();
        if depth == num_levels {
            overlay.stamp();
            *visited += 1;
            if *visited > self.cfg.max_executions {
                return Err(EnumError::TooManyExecutions);
            }
            stats.classes_visited += 1;
            let view = ExecutionView::new(self.skel, overlay);
            let allowed = self.model.allows_view(ctx, &view);
            return Ok(f(&view, allowed));
        }

        let span = self.suffix[depth];
        if (2..=64).contains(&span) {
            let mask = self.batch_verdicts(overlay, batch, ctx, depth, stats);
            let mut lane = 0usize;
            let mut err = None;
            let flow = self.for_each_leaf(overlay, depth, &mut |ov: &mut Overlay| {
                ov.stamp();
                *visited += 1;
                if *visited > self.cfg.max_executions {
                    err = Some(EnumError::TooManyExecutions);
                    return ControlFlow::Break(None);
                }
                stats.classes_visited += 1;
                let view = ExecutionView::new(self.skel, ov);
                let allowed = match mask {
                    Some(m) => m.contains(lane),
                    None => self.model.allows_view(ctx, &view),
                };
                lane += 1;
                match f(&view, allowed) {
                    ControlFlow::Break(b) => ControlFlow::Break(Some(b)),
                    ControlFlow::Continue(()) => ControlFlow::Continue(()),
                }
            });
            if let Some(e) = err {
                return Err(e);
            }
            return Ok(match flow {
                ControlFlow::Break(Some(b)) => ControlFlow::Break(b),
                _ => ControlFlow::Continue(()),
            });
        }

        let branch = if depth < num_reads {
            self.rf_choices[depth].len()
        } else {
            self.co_perm_counts[depth - num_reads]
        };
        for choice in 0..branch {
            if depth < num_reads {
                overlay.set_rf(self.reads[depth], self.rf_choices[depth][choice]);
            } else {
                let li = depth - num_reads;
                overlay.set_co(li, &self.co_perms[li][choice]);
            }
            if let ControlFlow::Break(b) =
                self.descend_exhaustive(overlay, batch, ctx, depth + 1, visited, stats, f)?
            {
                return Ok(ControlFlow::Break(b));
            }
        }
        Ok(ControlFlow::Continue(()))
    }
}

/// Runs the pruned decision-tree walk over one prepared combination
/// (see [`prepare_combination`]).
#[allow(clippy::too_many_arguments)]
fn visit_combination_pruned<B, F>(
    model: &dyn Model,
    ctx: &mut EvalContext,
    cfg: &EnumConfig,
    scratch: &mut EnumScratch,
    visited: &mut usize,
    stats: &mut PruneStats,
    f: &mut F,
) -> Result<ControlFlow<B>, EnumError>
where
    F: FnMut(&PrunedClass<'_>) -> ControlFlow<B>,
{
    let (num_reads, num_locs) = fill_suffix(scratch);

    let EnumScratch {
        skel,
        overlay,
        reads,
        rf_choices,
        co_perms,
        co_perm_counts,
        suffix,
        batch,
        ..
    } = scratch;
    let walk = PruneWalk {
        skel,
        reads,
        rf_choices: &rf_choices[..num_reads],
        co_perms: &co_perms[..num_locs],
        co_perm_counts: &co_perm_counts[..num_locs],
        suffix,
        model,
        cfg,
        cut_nanos: Cell::new(0),
    };
    ctx.set_incremental(cfg.incremental);

    let result = (|| {
        // Root check: the combination may be forced before anything is
        // committed (e.g. single-candidate rf slots inducing a definite
        // conflict) — then the whole combination is one class.
        if walk.suffix[0] >= CUT_MIN {
            overlay.stamp();
            let partial = PartialView::new(walk.skel, overlay, walk.reads, walk.rf_choices, 0, 0);
            let t0 = Instant::now();
            let verdict = model.partial_verdict(ctx, &partial);
            walk.cut_nanos
                .set(walk.cut_nanos.get() + t0.elapsed().as_nanos() as u64);
            if let Some(allowed) = verdict {
                *visited += 1;
                if *visited > cfg.max_executions {
                    return Err(EnumError::TooManyExecutions);
                }
                stats.classes_visited += 1;
                stats.candidates_pruned += (walk.suffix[0] - 1) as u64;
                let class = PrunedClass {
                    partial,
                    size: walk.suffix[0],
                    allowed,
                    forced: true,
                };
                return Ok(f(&class));
            }
        }
        walk.descend(overlay, batch, ctx, 0, visited, stats, f)
    })();
    // Fold the measurements on every exit path (including budget errors
    // and visitor breaks) so partially walked combinations still report
    // their work.
    stats.cut_attempt_micros += walk.cut_nanos.get() / 1000;
    stats.registers_refilled += ctx.take_registers_refilled();
    result
}

/// Computes `scratch.suffix` — subtree sizes per tree level, saturating
/// (only compared against thresholds and added into u64 counters after
/// subtraction of the one candidate actually evaluated) — for the
/// prepared combination. Returns `(num_reads, num_locs)`.
fn fill_suffix(scratch: &mut EnumScratch) -> (usize, usize) {
    let num_reads = scratch.reads.len();
    let num_locs = scratch.skel.writes_per_loc().len();
    let num_levels = num_reads + num_locs;
    scratch.suffix.clear();
    scratch.suffix.resize(num_levels + 1, 1);
    for d in (0..num_levels).rev() {
        let branch = if d < num_reads {
            scratch.rf_choices[d].len()
        } else {
            scratch.co_perm_counts[d - num_reads]
        };
        scratch.suffix[d] = scratch.suffix[d + 1].saturating_mul(branch);
    }
    (num_reads, num_locs)
}

/// Streams every candidate of `test` through `f` together with
/// `model`'s verdict, judging trailing sibling groups of 2–64
/// candidates in one bit-plane pass — the batched counterpart of
/// running [`crate::model::Model::allows_view`] inside a
/// [`for_each_execution`] visitor.
///
/// Candidates arrive in the exhaustive stream's deterministic order
/// with its visited-count accounting: each candidate handed to `f`
/// counts one visit against [`EnumConfig::max_executions`], including
/// mid-batch (a budget exhausted inside a batch errs exactly where the
/// scalar stream would). `stats` accumulates the batch counters
/// ([`PruneStats::batches_formed`] / [`PruneStats::lanes_filled`];
/// `classes_visited` counts candidates here, `candidates_pruned` stays
/// 0). Models without a batched evaluator
/// ([`crate::model::Model::allows_batch`] returning `None`) degrade to
/// per-candidate judgement with identical results.
///
/// # Errors
///
/// Fails if symbolic execution fails or more than
/// [`EnumConfig::max_executions`] candidates are visited.
pub fn for_each_execution_batched<B, F>(
    test: &LitmusTest,
    model: &dyn Model,
    cfg: &EnumConfig,
    ctx: &mut EvalContext,
    stats: &mut PruneStats,
    mut f: F,
) -> Result<Option<B>, EnumError>
where
    F: FnMut(&ExecutionView<'_>, bool) -> ControlFlow<B>,
{
    ENUM_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => {
            for_each_execution_batched_with(test, model, cfg, ctx, &mut scratch, stats, &mut f)
        }
        Err(_) => for_each_execution_batched_with(
            test,
            model,
            cfg,
            ctx,
            &mut EnumScratch::new(),
            stats,
            &mut f,
        ),
    })
}

#[allow(clippy::too_many_arguments)]
fn for_each_execution_batched_with<B, F>(
    test: &LitmusTest,
    model: &dyn Model,
    cfg: &EnumConfig,
    ctx: &mut EvalContext,
    scratch: &mut EnumScratch,
    stats: &mut PruneStats,
    f: &mut F,
) -> Result<Option<B>, EnumError>
where
    F: FnMut(&ExecutionView<'_>, bool) -> ControlFlow<B>,
{
    let (_domains, per_thread) = fixed_point_traces_cached(test, cfg)?;
    ctx.take_registers_refilled();

    let thread_cta: Vec<usize> = (0..test.num_threads())
        .map(|t| test.scope_tree().placement(t).cta)
        .collect();
    let init_mem: BTreeMap<Loc, i64> = test
        .memory()
        .iter()
        .map(|(l, mi)| (l.clone(), mi.init))
        .collect();
    let observed = test.observed();

    let mut visited = 0usize;
    let mut traces: Vec<&ThreadTrace> = Vec::with_capacity(per_thread.len());
    let mut combo = vec![0usize; per_thread.len()];
    'combos: loop {
        traces.clear();
        traces.extend(combo.iter().zip(&*per_thread).map(|(&i, ts)| &ts[i]));
        if prepare_combination(&traces, &thread_cta, &init_mem, &observed, scratch) {
            if let ControlFlow::Break(b) =
                visit_combination_batched(model, ctx, cfg, scratch, &mut visited, stats, f)?
            {
                return Ok(Some(b));
            }
        }

        for t in (0..combo.len()).rev() {
            combo[t] += 1;
            if combo[t] < per_thread[t].len() {
                continue 'combos;
            }
            combo[t] = 0;
        }
        break;
    }
    Ok(None)
}

/// Runs the batched exhaustive walk over one prepared combination.
fn visit_combination_batched<B, F>(
    model: &dyn Model,
    ctx: &mut EvalContext,
    cfg: &EnumConfig,
    scratch: &mut EnumScratch,
    visited: &mut usize,
    stats: &mut PruneStats,
    f: &mut F,
) -> Result<ControlFlow<B>, EnumError>
where
    F: FnMut(&ExecutionView<'_>, bool) -> ControlFlow<B>,
{
    let (num_reads, num_locs) = fill_suffix(scratch);

    let EnumScratch {
        skel,
        overlay,
        reads,
        rf_choices,
        co_perms,
        co_perm_counts,
        suffix,
        batch,
        ..
    } = scratch;
    let walk = PruneWalk {
        skel,
        reads,
        rf_choices: &rf_choices[..num_reads],
        co_perms: &co_perms[..num_locs],
        co_perm_counts: &co_perm_counts[..num_locs],
        suffix,
        model,
        cfg,
        cut_nanos: Cell::new(0),
    };
    let result = walk.descend_exhaustive(overlay, batch, ctx, 0, visited, stats, f);
    stats.registers_refilled += ctx.take_registers_refilled();
    result
}

/// Materialises all candidate executions of `test` — a thin wrapper over
/// [`for_each_execution`] kept for rendering, diagnostics and as the
/// differential oracle of the streaming path. Verdict code should use
/// [`model_outcomes`] (or the visitor directly) instead: this clones the
/// shared skeleton into an owned [`Execution`] per candidate.
///
/// # Errors
///
/// Fails if symbolic execution fails (bad addresses, unbounded loops) or
/// the candidate count exceeds [`EnumConfig::max_executions`].
pub fn enumerate_executions(
    test: &LitmusTest,
    cfg: &EnumConfig,
) -> Result<Vec<Candidate>, EnumError> {
    let mut out = Vec::new();
    for_each_execution(test, cfg, |view| {
        out.push(Candidate {
            execution: view.to_execution(),
            outcome: view.outcome(),
        });
        ControlFlow::<()>::Continue(())
    })?;
    Ok(out)
}

/// The model-level verdict on a litmus test.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ModelOutcomes {
    /// Every outcome of every candidate execution.
    pub all_outcomes: BTreeSet<Outcome>,
    /// Outcomes of model-allowed executions.
    pub allowed_outcomes: BTreeSet<Outcome>,
    /// Number of candidate executions examined.
    pub num_candidates: usize,
    /// Number of allowed executions.
    pub num_allowed: usize,
    /// `true` if the final condition is witnessed by some *allowed*
    /// execution (for `exists`: the model permits the listed outcome).
    pub condition_witnessed: bool,
}

impl ModelOutcomes {
    /// `true` if `outcome` is allowed by the model.
    pub fn allows(&self, outcome: &Outcome) -> bool {
        self.allowed_outcomes.contains(outcome)
    }
}

/// Runs `model` over all candidates of `test`.
///
/// # Errors
///
/// Propagates [`EnumError`]s from the enumeration.
pub fn model_outcomes(
    test: &LitmusTest,
    model: &dyn Model,
    cfg: &EnumConfig,
) -> Result<ModelOutcomes, EnumError> {
    model_outcomes_with(test, model, cfg, &mut EvalContext::new())
}

/// [`model_outcomes`] with a caller-owned [`EvalContext`], streamed over
/// the skeleton/overlay visitor: the skeleton's base relations are
/// filled once per trace combination, each candidate refills only the
/// rf/co-derived ones, and outcome dedup runs against reused value
/// buffers — for plan-backed models the whole judgement loop performs no
/// heap allocation per candidate. Sweep workers hold one context each
/// and pass it here on verdict-cache misses.
///
/// With [`EnumConfig::pruning`] set the judgement runs over
/// [`for_each_execution_pruned`] instead — same `ModelOutcomes`, bit
/// for bit, with forced subtrees folded in as classes. Callers that
/// want the pruning counters use [`model_outcomes_counted`].
///
/// # Errors
///
/// Propagates [`EnumError`]s from the enumeration.
pub fn model_outcomes_with(
    test: &LitmusTest,
    model: &dyn Model,
    cfg: &EnumConfig,
    ctx: &mut EvalContext,
) -> Result<ModelOutcomes, EnumError> {
    model_outcomes_counted(test, model, cfg, ctx).map(|(outcomes, _)| outcomes)
}

/// [`model_outcomes_with`] plus the [`PruneStats`] of the run. On the
/// exhaustive path (pruning off) the stats degenerate to
/// `classes_visited == num_candidates`, `candidates_pruned == 0`, so
/// sweep cells report comparable counters on both arms.
///
/// # Errors
///
/// Propagates [`EnumError`]s from the enumeration.
pub fn model_outcomes_counted(
    test: &LitmusTest,
    model: &dyn Model,
    cfg: &EnumConfig,
    ctx: &mut EvalContext,
) -> Result<(ModelOutcomes, PruneStats), EnumError> {
    if !cfg.pruning {
        if cfg.batching {
            return model_outcomes_batched(test, model, cfg, ctx);
        }
        let outcomes = model_outcomes_exhaustive(test, model, cfg, ctx)?;
        let stats = PruneStats {
            classes_visited: outcomes.num_candidates as u64,
            ..PruneStats::default()
        };
        return Ok((outcomes, stats));
    }
    let cond = test.cond();
    let mut all = BTreeSet::new();
    let mut allowed: BTreeSet<Outcome> = BTreeSet::new();
    let mut num_candidates = 0usize;
    let mut num_allowed = 0usize;
    let mut witnessed = false;
    let mut vals: Vec<i64> = Vec::new();
    let mut seen = SeenOutcomes::new();
    let mut allowed_seen: Vec<bool> = Vec::new();
    let mut stats = PruneStats::default();
    for_each_execution_pruned(test, model, cfg, ctx, &mut stats, |class| {
        num_candidates += class.size();
        if class.allowed() {
            num_allowed += class.size();
        }
        // Fold the class's spanned outcomes: each observed combination
        // occurs in at least one candidate of the class, and candidates
        // outside the class contribute their outcomes via their own
        // classes — the union over classes is exactly the exhaustive
        // outcome set.
        for combo in 0..class.observed_combos() {
            class.fill_observed(combo, &mut vals);
            let idx = match seen.find(&vals) {
                Some(i) => i,
                None => {
                    let outcome = class.outcome_from_vals(&vals);
                    let witnesses = cond.witnessed_by(&outcome);
                    all.insert(outcome.clone());
                    allowed_seen.push(false);
                    seen.insert(&vals, outcome, witnesses)
                }
            };
            if class.allowed() {
                if seen.witnesses(idx) {
                    witnessed = true;
                }
                if !allowed_seen[idx] {
                    allowed_seen[idx] = true;
                    allowed.insert(seen.get(idx).0.clone());
                }
            }
        }
        ControlFlow::<()>::Continue(())
    })?;
    Ok((
        ModelOutcomes {
            all_outcomes: all,
            allowed_outcomes: allowed,
            num_candidates,
            num_allowed,
            condition_witnessed: witnessed,
        },
        stats,
    ))
}

/// The exhaustive-stream judgement loop backing
/// [`model_outcomes_counted`] — and the differential oracle the pruned
/// arm is tested against.
fn model_outcomes_exhaustive(
    test: &LitmusTest,
    model: &dyn Model,
    cfg: &EnumConfig,
    ctx: &mut EvalContext,
) -> Result<ModelOutcomes, EnumError> {
    let mut fold = OutcomeFold::new(test.cond());
    for_each_execution(test, cfg, |view| {
        let allowed = model.allows_view(ctx, view);
        fold.candidate(view, allowed);
        ControlFlow::<()>::Continue(())
    })?;
    Ok(fold.finish())
}

/// The batched exhaustive judgement loop: the same fold as
/// [`model_outcomes_exhaustive`] fed by [`for_each_execution_batched`],
/// which delivers each candidate's verdict precomputed — lane-parallel
/// for trailing sibling groups. Same `ModelOutcomes`, bit for bit.
fn model_outcomes_batched(
    test: &LitmusTest,
    model: &dyn Model,
    cfg: &EnumConfig,
    ctx: &mut EvalContext,
) -> Result<(ModelOutcomes, PruneStats), EnumError> {
    let mut fold = OutcomeFold::new(test.cond());
    let mut stats = PruneStats::default();
    for_each_execution_batched(test, model, cfg, ctx, &mut stats, |view, allowed| {
        fold.candidate(view, allowed);
        ControlFlow::<()>::Continue(())
    })?;
    Ok((fold.finish(), stats))
}

/// The exhaustive fold shared by the scalar and batched judgement
/// loops: accumulates a [`ModelOutcomes`] one `(candidate, verdict)`
/// pair at a time.
///
/// Dedup is by observed-value vector: `vals` is refilled per candidate
/// and matched against the distinct vectors seen so far (a handful per
/// test, so a sorted probe beats hashing). Two memos keep the
/// steady-state loop allocation-free: when a test observes only
/// registers the outcome is fixed per trace combination (`fixed`
/// answers with one stamp comparison), and for memory-observing tests a
/// single-entry memo (`last`) still answers most probes — consecutive
/// candidates usually share their outcome.
struct OutcomeFold<'t> {
    cond: &'t weakgpu_litmus::FinalCond,
    all: BTreeSet<Outcome>,
    allowed: BTreeSet<Outcome>,
    num_candidates: usize,
    num_allowed: usize,
    witnessed: bool,
    vals: Vec<i64>,
    seen: SeenOutcomes,
    allowed_seen: Vec<bool>,
    fixed: Option<(u64, usize)>,
    last: Option<(Vec<i64>, usize)>,
}

impl<'t> OutcomeFold<'t> {
    fn new(cond: &'t weakgpu_litmus::FinalCond) -> Self {
        OutcomeFold {
            cond,
            all: BTreeSet::new(),
            allowed: BTreeSet::new(),
            num_candidates: 0,
            num_allowed: 0,
            witnessed: false,
            vals: Vec::new(),
            seen: SeenOutcomes::new(),
            allowed_seen: Vec::new(),
            fixed: None,
            last: None,
        }
    }

    /// Folds one candidate with its verdict into the running totals.
    fn candidate(&mut self, view: &ExecutionView<'_>, is_allowed: bool) {
        self.num_candidates += 1;
        let idx = match self.fixed {
            Some((combo, i)) if combo == view.combination_id() => i,
            _ => {
                view.fill_observed(&mut self.vals);
                let i = match &self.last {
                    Some((lv, li)) if *lv == self.vals => *li,
                    _ => {
                        let i = match self.seen.find(&self.vals) {
                            Some(i) => i,
                            None => {
                                let outcome = view.outcome();
                                let witnesses = self.cond.witnessed_by(&outcome);
                                self.all.insert(outcome.clone());
                                self.allowed_seen.push(false);
                                self.seen.insert(&self.vals, outcome, witnesses)
                            }
                        };
                        match &mut self.last {
                            Some((lv, li)) => {
                                lv.clear();
                                lv.extend_from_slice(&self.vals);
                                *li = i;
                            }
                            None => self.last = Some((self.vals.clone(), i)),
                        }
                        i
                    }
                };
                if view.observed_is_skeleton_fixed() {
                    self.fixed = Some((view.combination_id(), i));
                }
                i
            }
        };
        if is_allowed {
            self.num_allowed += 1;
            let (outcome, witnesses) = self.seen.get(idx);
            if witnesses {
                self.witnessed = true;
            }
            if !self.allowed_seen[idx] {
                self.allowed_seen[idx] = true;
                let outcome = outcome.clone();
                self.allowed.insert(outcome);
            }
        }
    }

    fn finish(self) -> ModelOutcomes {
        ModelOutcomes {
            all_outcomes: self.all,
            allowed_outcomes: self.allowed,
            num_candidates: self.num_candidates,
            num_allowed: self.num_allowed,
            condition_witnessed: self.witnessed,
        }
    }
}

/// Interner over observed-value vectors: entries are kept sorted by
/// value vector, so the per-candidate probe is a binary search (a
/// test's distinct outcomes number at most a few dozen — cheaper than
/// hashing, log-cost on the RMW-heavy tests with many outcomes).
struct SeenOutcomes {
    /// `(values, entry index)` sorted by values.
    order: Vec<(Vec<i64>, usize)>,
    entries: Vec<(Outcome, bool)>,
}

impl SeenOutcomes {
    fn new() -> Self {
        SeenOutcomes {
            order: Vec::new(),
            entries: Vec::new(),
        }
    }

    fn find(&self, vals: &[i64]) -> Option<usize> {
        self.order
            .binary_search_by(|(v, _)| v.as_slice().cmp(vals))
            .ok()
            .map(|pos| self.order[pos].1)
    }

    fn insert(&mut self, vals: &[i64], outcome: Outcome, witnesses: bool) -> usize {
        let idx = self.entries.len();
        self.entries.push((outcome, witnesses));
        let pos = self
            .order
            .binary_search_by(|(v, _)| v.as_slice().cmp(vals))
            .unwrap_err();
        self.order.insert(pos, (vals.to_vec(), idx));
        idx
    }

    fn get(&self, idx: usize) -> (&Outcome, bool) {
        let (outcome, witnesses) = &self.entries[idx];
        (outcome, *witnesses)
    }

    fn witnesses(&self, idx: usize) -> bool {
        self.entries[idx].1
    }
}

/// `true` iff some model-allowed candidate witnesses the test's final
/// condition — the early-exit form of
/// [`ModelOutcomes::condition_witnessed`]: the stream stops at the first
/// allowed witness instead of enumerating the full candidate space.
///
/// # Errors
///
/// Propagates [`EnumError`]s from the enumeration. Because the visit
/// count stops at the first witness, this can succeed where
/// [`model_outcomes`] exceeds [`EnumConfig::max_executions`].
pub fn condition_witnessed_with(
    test: &LitmusTest,
    model: &dyn Model,
    cfg: &EnumConfig,
    ctx: &mut EvalContext,
) -> Result<bool, EnumError> {
    let cond = test.cond();
    if cfg.pruning {
        // Pruned arm: an allowed class witnesses the condition iff one
        // of its spanned observed combinations does — stop at the first.
        let mut vals: Vec<i64> = Vec::new();
        let mut stats = PruneStats::default();
        let hit = for_each_execution_pruned(test, model, cfg, ctx, &mut stats, |class| {
            if class.allowed() {
                for combo in 0..class.observed_combos() {
                    class.fill_observed(combo, &mut vals);
                    if cond.witnessed_by(&class.outcome_from_vals(&vals)) {
                        return ControlFlow::Break(());
                    }
                }
            }
            ControlFlow::Continue(())
        })?;
        return Ok(hit.is_some());
    }
    if cfg.batching {
        // Batched exhaustive arm: verdicts arrive precomputed (lane-
        // parallel for sibling groups), so the witness probe only runs
        // on allowed candidates — the walk breaks at the same first
        // allowed witness the scalar stream would.
        let mut vals: Vec<i64> = Vec::new();
        let mut seen = SeenOutcomes::new();
        let mut stats = PruneStats::default();
        let hit =
            for_each_execution_batched(test, model, cfg, ctx, &mut stats, |view, allowed| {
                if !allowed {
                    return ControlFlow::Continue(());
                }
                view.fill_observed(&mut vals);
                let idx = match seen.find(&vals) {
                    Some(i) => i,
                    None => {
                        let outcome = view.outcome();
                        let witnesses = cond.witnessed_by(&outcome);
                        seen.insert(&vals, outcome, witnesses)
                    }
                };
                if seen.witnesses(idx) {
                    ControlFlow::Break(())
                } else {
                    ControlFlow::Continue(())
                }
            })?;
        return Ok(hit.is_some());
    }
    let mut vals: Vec<i64> = Vec::new();
    let mut seen = SeenOutcomes::new();
    let mut fixed: Option<(u64, usize)> = None;
    let hit = for_each_execution(test, cfg, |view| {
        let idx = match fixed {
            Some((combo, i)) if combo == view.combination_id() => i,
            _ => {
                view.fill_observed(&mut vals);
                let i = match seen.find(&vals) {
                    Some(i) => i,
                    None => {
                        let outcome = view.outcome();
                        let witnesses = cond.witnessed_by(&outcome);
                        seen.insert(&vals, outcome, witnesses)
                    }
                };
                if view.observed_is_skeleton_fixed() {
                    fixed = Some((view.combination_id(), i));
                }
                i
            }
        };
        if seen.witnesses(idx) && model.allows_view(ctx, view) {
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    })?;
    Ok(hit.is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use weakgpu_litmus::corpus;
    use weakgpu_litmus::ThreadScope;

    fn permutations(items: &[usize]) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        let count = fill_permutations(items, &mut out, &mut Vec::new(), &mut Vec::new());
        out.truncate(count);
        out
    }

    #[test]
    fn permutations_count() {
        assert_eq!(permutations(&[]).len(), 1);
        assert_eq!(permutations(&[1]).len(), 1);
        assert_eq!(permutations(&[1, 2, 3]).len(), 6);
        let ps = permutations(&[1, 2]);
        assert!(ps.contains(&vec![1, 2]) && ps.contains(&vec![2, 1]));
    }

    #[test]
    fn fill_permutations_reuses_buffers_and_keeps_order() {
        // Buffer reuse across calls must not leak stale entries into the
        // live prefix, and the emission order must stay the classical
        // recursive one (first element varies slowest).
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        let mut used = Vec::new();
        assert_eq!(
            fill_permutations(&[1, 2, 3], &mut out, &mut scratch, &mut used),
            6
        );
        assert_eq!(out[0], vec![1, 2, 3]);
        assert_eq!(out[1], vec![1, 3, 2]);
        assert_eq!(out[5], vec![3, 2, 1]);
        // A smaller follow-up call reports a smaller live count while
        // keeping the spare buffers (and their allocations) behind it.
        assert_eq!(
            fill_permutations(&[7], &mut out, &mut scratch, &mut used),
            1
        );
        assert_eq!(out[0], vec![7]);
        assert_eq!(out.len(), 6, "spares are kept, not dropped");
        assert_eq!(fill_permutations(&[], &mut out, &mut scratch, &mut used), 1);
        assert_eq!(out[0], Vec::<usize>::new());
    }

    #[test]
    fn corr_candidates_include_weak_outcome() {
        let test = corpus::corr();
        let cands = enumerate_executions(&test, &EnumConfig::default()).unwrap();
        assert!(!cands.is_empty());
        // The weak outcome r1=1, r2=0 appears among candidates.
        let weak = cands.iter().any(|c| test.cond().witnessed_by(&c.outcome));
        assert!(weak);
        // And the SC outcome r1=1, r2=1 too.
        let mut sc = Outcome::new();
        sc.set(FinalExpr::reg(1, "r1"), 1);
        sc.set(FinalExpr::reg(1, "r2"), 1);
        assert!(cands.iter().any(|c| c.outcome == sc));
    }

    #[test]
    fn domains_cover_increment_chains() {
        // dlb-mp has `t := load t + 1`, needing iterated domains.
        let test = corpus::dlb_mp(false);
        let cfg = EnumConfig::default();
        let (domains, per_thread) = fixed_point_traces(&test, &cfg).unwrap();
        let t = domains.get(&Loc::new("t")).unwrap();
        assert!(t.contains(&0) && t.contains(&1));
        assert_eq!(per_thread.len(), test.num_threads());
        assert!(per_thread.iter().all(|ts| !ts.is_empty()));
    }

    #[test]
    fn unrealisable_reads_prune_candidates() {
        // sb: reads of x/y can only be 0 or 1; no candidate gives r2=7.
        let test = corpus::sb(ThreadScope::InterCta, None);
        let cands = enumerate_executions(&test, &EnumConfig::default()).unwrap();
        assert!(cands
            .iter()
            .all(|c| c.outcome.iter().all(|(_, v)| v == 0 || v == 1)));
    }

    #[test]
    fn rf_sources_match_location_and_value() {
        let test = corpus::corr();
        for c in enumerate_executions(&test, &EnumConfig::default()).unwrap() {
            let ex = &c.execution;
            for (r, src) in ex.rf.iter().enumerate() {
                if let Some(w) = src {
                    assert!(ex.events[*w].is_write());
                    assert_eq!(ex.events[*w].loc, ex.events[r].loc);
                    assert_eq!(ex.events[*w].value, ex.events[r].value);
                }
            }
        }
    }

    #[test]
    fn execution_count_is_bounded_and_deterministic() {
        let test = corpus::corr();
        let a = enumerate_executions(&test, &EnumConfig::default()).unwrap();
        let b = enumerate_executions(&test, &EnumConfig::default()).unwrap();
        assert_eq!(a.len(), b.len());
        let tiny = EnumConfig {
            max_executions: 1,
            ..EnumConfig::default()
        };
        assert_eq!(
            enumerate_executions(&test, &tiny).unwrap_err(),
            EnumError::TooManyExecutions
        );
    }

    #[test]
    fn visitor_counts_match_materialised_candidates() {
        for test in [
            corpus::corr(),
            corpus::mp(ThreadScope::InterCta, None),
            corpus::dlb_lb(false),
        ] {
            let cands = enumerate_executions(&test, &EnumConfig::default()).unwrap();
            let mut visits = 0usize;
            for_each_execution(&test, &EnumConfig::default(), |_| {
                visits += 1;
                ControlFlow::<()>::Continue(())
            })
            .unwrap();
            assert_eq!(visits, cands.len(), "{}", test.name());
        }
    }

    #[test]
    fn candidate_limit_counts_visits_not_materialisations() {
        let test = corpus::corr();
        let total = enumerate_executions(&test, &EnumConfig::default())
            .unwrap()
            .len();
        assert!(total > 2);
        let tight = EnumConfig {
            max_executions: 2,
            ..EnumConfig::default()
        };
        // Visiting everything trips the limit …
        let err = for_each_execution(&test, &tight, |_| ControlFlow::<()>::Continue(()));
        assert_eq!(err.unwrap_err(), EnumError::TooManyExecutions);
        // … but an early-exiting visitor stays under it.
        let broke = for_each_execution(&test, &tight, |_| ControlFlow::Break(42)).unwrap();
        assert_eq!(broke, Some(42));
        // Breaking exactly at the limit is still within bounds.
        let mut visits = 0usize;
        let broke = for_each_execution(&test, &tight, |_| {
            visits += 1;
            if visits == 2 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        })
        .unwrap();
        assert!(broke.is_some() && visits == 2);
    }

    #[test]
    fn pruned_classes_partition_the_candidate_space() {
        let model = crate::model::sc_model();
        for test in [
            corpus::corr(),
            corpus::mp(ThreadScope::InterCta, None),
            corpus::sb(ThreadScope::IntraCta, None),
            corpus::dlb_lb(false),
        ] {
            let cfg = EnumConfig {
                pruning: true,
                ..EnumConfig::default()
            };
            let exhaustive = enumerate_executions(&test, &EnumConfig::default())
                .unwrap()
                .len();
            let mut ctx = EvalContext::new();
            let mut stats = PruneStats::default();
            let mut spanned = 0usize;
            let mut classes = 0u64;
            for_each_execution_pruned(&test, &model, &cfg, &mut ctx, &mut stats, |class| {
                spanned += class.size();
                classes += 1;
                // Cuts only fire on subtrees of at least CUT_MIN
                // candidates; leaves span exactly one.
                assert!(class.size() == 1 || class.size() >= CUT_MIN);
                assert_eq!(class.is_forced(), class.size() > 1);
                ControlFlow::<()>::Continue(())
            })
            .unwrap();
            assert_eq!(
                spanned,
                exhaustive,
                "{}: classes must partition",
                test.name()
            );
            assert_eq!(classes, stats.classes_visited, "{}", test.name());
            assert_eq!(
                stats.classes_visited + stats.candidates_pruned,
                exhaustive as u64,
                "{}: counters must account for every candidate",
                test.name()
            );
        }
    }

    #[test]
    fn pruned_outcomes_match_exhaustive() {
        let model = crate::model::sc_model();
        for test in [
            corpus::corr(),
            corpus::mp(ThreadScope::InterCta, None),
            corpus::dlb_mp(false),
        ] {
            let mut ctx = EvalContext::new();
            let exhaustive =
                model_outcomes_with(&test, &model, &EnumConfig::default(), &mut ctx).unwrap();
            let pruned_cfg = EnumConfig {
                pruning: true,
                ..EnumConfig::default()
            };
            let (pruned, stats) =
                model_outcomes_counted(&test, &model, &pruned_cfg, &mut ctx).unwrap();
            assert_eq!(pruned, exhaustive, "{}", test.name());
            assert_eq!(
                stats.classes_visited + stats.candidates_pruned,
                exhaustive.num_candidates as u64,
                "{}",
                test.name()
            );
            assert!(
                condition_witnessed_with(&test, &model, &pruned_cfg, &mut ctx).unwrap()
                    == exhaustive.condition_witnessed,
                "{}",
                test.name()
            );
        }
    }

    #[test]
    fn pruned_limit_counts_classes_not_candidates() {
        // The read-fan shape under SC prunes heavily: most value
        // patterns embed a forbidden new-then-old read pair, so the
        // class count falls far below the candidate count and a budget
        // the exhaustive stream exceeds still completes under pruning.
        let model = crate::model::sc_model();
        let test = weakgpu_litmus::corpus_extra::corr_fan(2, 6);
        let candidates = enumerate_executions(&test, &EnumConfig::default())
            .unwrap()
            .len();
        let mut ctx = EvalContext::new();
        let mut stats = PruneStats::default();
        let cfg = EnumConfig {
            pruning: true,
            ..EnumConfig::default()
        };
        for_each_execution_pruned(&test, &model, &cfg, &mut ctx, &mut stats, |_| {
            ControlFlow::<()>::Continue(())
        })
        .unwrap();
        let classes = stats.classes_visited;
        assert!(
            (classes as usize) < candidates,
            "pruning must collapse sb's candidate space ({classes} vs {candidates})"
        );
        // A budget between the two completes pruned but trips exhaustive.
        let between = EnumConfig {
            max_executions: classes as usize,
            pruning: true,
            ..EnumConfig::default()
        };
        let mut stats = PruneStats::default();
        assert!(
            for_each_execution_pruned(&test, &model, &between, &mut ctx, &mut stats, |_| {
                ControlFlow::<()>::Continue(())
            })
            .is_ok()
        );
        let exhaustive_budget = EnumConfig {
            max_executions: classes as usize,
            ..EnumConfig::default()
        };
        assert_eq!(
            for_each_execution(&test, &exhaustive_budget, |_| ControlFlow::<()>::Continue(
                ()
            ))
            .unwrap_err(),
            EnumError::TooManyExecutions
        );
        // One class fewer trips the pruned limit too …
        let tight = EnumConfig {
            max_executions: classes as usize - 1,
            pruning: true,
            ..EnumConfig::default()
        };
        let mut stats = PruneStats::default();
        assert_eq!(
            for_each_execution_pruned(&test, &model, &tight, &mut ctx, &mut stats, |_| {
                ControlFlow::<()>::Continue(())
            })
            .unwrap_err(),
            EnumError::TooManyExecutions
        );
        // … unless the visitor exits before reaching it.
        let mut stats = PruneStats::default();
        let broke = for_each_execution_pruned(&test, &model, &tight, &mut ctx, &mut stats, |_| {
            ControlFlow::Break(7)
        })
        .unwrap();
        assert_eq!(broke, Some(7));
    }

    #[test]
    fn batched_outcomes_match_exhaustive() {
        let model = crate::model::sc_model();
        for test in [
            corpus::corr(),
            corpus::mp(ThreadScope::InterCta, None),
            corpus::dlb_mp(false),
        ] {
            let mut ctx = EvalContext::new();
            let exhaustive =
                model_outcomes_with(&test, &model, &EnumConfig::default(), &mut ctx).unwrap();
            for pruning in [false, true] {
                let cfg = EnumConfig {
                    pruning,
                    batching: true,
                    ..EnumConfig::default()
                };
                let (got, stats) = model_outcomes_counted(&test, &model, &cfg, &mut ctx).unwrap();
                assert_eq!(got, exhaustive, "{} pruning={pruning}", test.name());
                assert_eq!(
                    stats.classes_visited + stats.candidates_pruned,
                    exhaustive.num_candidates as u64,
                    "{} pruning={pruning}",
                    test.name()
                );
                assert_eq!(
                    condition_witnessed_with(&test, &model, &cfg, &mut ctx).unwrap(),
                    exhaustive.condition_witnessed,
                    "{} pruning={pruning}",
                    test.name()
                );
            }
        }
    }

    #[test]
    fn batched_limit_counts_visits_including_mid_batch() {
        // `max_executions` under batching follows the pruned-walk
        // convention: every node handed to the visitor counts one
        // visit, and a budget exhausted mid-batch errs on the exact
        // leaf the scalar walk would have erred on.
        let model = crate::model::sc_model();
        let test = weakgpu_litmus::corpus_extra::corr_fan(2, 6);
        let candidates = enumerate_executions(&test, &EnumConfig::default())
            .unwrap()
            .len();
        let mut ctx = EvalContext::new();

        // The batched exhaustive stream visits every candidate once.
        let cfg = EnumConfig {
            batching: true,
            ..EnumConfig::default()
        };
        let mut stats = PruneStats::default();
        let mut visits = 0usize;
        for_each_execution_batched(&test, &model, &cfg, &mut ctx, &mut stats, |_, _| {
            visits += 1;
            ControlFlow::<()>::Continue(())
        })
        .unwrap();
        assert_eq!(visits, candidates);
        assert_eq!(stats.classes_visited, candidates as u64);
        assert!(stats.batches_formed > 0, "fan tests must form batches");
        assert!(stats.lanes_filled >= 2 * stats.batches_formed);

        // A budget one short trips mid-walk — inside a batch …
        let tight = EnumConfig {
            max_executions: candidates - 1,
            batching: true,
            ..EnumConfig::default()
        };
        let mut stats = PruneStats::default();
        assert_eq!(
            for_each_execution_batched(&test, &model, &tight, &mut ctx, &mut stats, |_, _| {
                ControlFlow::<()>::Continue(())
            })
            .unwrap_err(),
            EnumError::TooManyExecutions
        );
        // … unless the visitor breaks mid-batch first.
        let mut stats = PruneStats::default();
        let mut visits = 0usize;
        let broke = for_each_execution_batched(&test, &model, &tight, &mut ctx, &mut stats, {
            let visits = &mut visits;
            move |_, _| {
                *visits += 1;
                if *visits == 3 {
                    ControlFlow::Break(9)
                } else {
                    ControlFlow::Continue(())
                }
            }
        })
        .unwrap();
        assert_eq!(broke, Some(9));
        assert_eq!(visits, 3);

        // Pruned + batched: visited nodes (cut classes + batch leaves)
        // still partition the candidate space, and the budget counts
        // exactly those nodes.
        let pcfg = EnumConfig {
            pruning: true,
            batching: true,
            ..EnumConfig::default()
        };
        let mut stats = PruneStats::default();
        let mut spanned = 0usize;
        for_each_execution_pruned(&test, &model, &pcfg, &mut ctx, &mut stats, |class| {
            spanned += class.size();
            ControlFlow::<()>::Continue(())
        })
        .unwrap();
        assert_eq!(spanned, candidates);
        assert_eq!(
            stats.classes_visited + stats.candidates_pruned,
            candidates as u64
        );
        assert!(stats.batches_formed > 0);
        let nodes = stats.classes_visited as usize;
        let tight = EnumConfig {
            max_executions: nodes - 1,
            pruning: true,
            batching: true,
            ..EnumConfig::default()
        };
        let mut stats = PruneStats::default();
        assert_eq!(
            for_each_execution_pruned(&test, &model, &tight, &mut ctx, &mut stats, |_| {
                ControlFlow::<()>::Continue(())
            })
            .unwrap_err(),
            EnumError::TooManyExecutions
        );
        let exact = EnumConfig {
            max_executions: nodes,
            pruning: true,
            batching: true,
            ..EnumConfig::default()
        };
        let mut stats = PruneStats::default();
        assert!(
            for_each_execution_pruned(
                &test,
                &model,
                &exact,
                &mut ctx,
                &mut stats,
                |_| ControlFlow::<()>::Continue(())
            )
            .is_ok()
        );
    }
}
