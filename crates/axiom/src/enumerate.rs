//! Enumeration of candidate executions (paper Sec. 5.1.2).
//!
//! A litmus test's candidate executions are generated in three stages:
//!
//! 1. **Value domains** — a small fixed point computes, per location, the
//!    values a read could possibly return (the initial value plus every
//!    value any write could produce, iterated to cover value-chained RMWs).
//! 2. **Thread traces** — each thread is unwound symbolically under every
//!    oracle drawn from the domains ([`crate::symbolic`]).
//! 3. **Communication** — for every combination of traces, every consistent
//!    read-from assignment (each read sourced from a same-location,
//!    same-value write, or the initial state) and every coherence order per
//!    location is enumerated.
//!
//! The result is the complete set of candidate [`Execution`]s with their
//! observable [`Outcome`]s; a [`crate::model::Model`] implementation then partitions
//! them into allowed and forbidden.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use weakgpu_litmus::{FinalExpr, LitmusTest, Loc, Outcome, Reg};

use crate::event::Event;
use crate::exec::Execution;
use crate::model::Model;
use crate::plan::EvalContext;
use crate::relation::Relation;
use crate::symbolic::{enumerate_thread_traces, SymError, ThreadTrace};

/// Bounds for the enumeration.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EnumConfig {
    /// Instruction budget per thread (loops unroll up to this).
    pub max_steps_per_thread: usize,
    /// Fixed-point iterations for read-value domains. 3 covers every paper
    /// test (constant stores plus one RMW increment chain).
    pub domain_iters: usize,
    /// Bound on the traces enumerated per thread.
    pub max_traces_per_thread: usize,
    /// Bound on the total number of candidate executions.
    pub max_executions: usize,
}

impl Default for EnumConfig {
    fn default() -> Self {
        EnumConfig {
            max_steps_per_thread: 128,
            domain_iters: 3,
            max_traces_per_thread: 4096,
            max_executions: 1_000_000,
        }
    }
}

/// Enumeration failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EnumError {
    /// Symbolic execution failed.
    Sym(SymError),
    /// More than [`EnumConfig::max_executions`] candidates.
    TooManyExecutions,
}

impl fmt::Display for EnumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnumError::Sym(e) => write!(f, "symbolic execution failed: {e}"),
            EnumError::TooManyExecutions => write!(f, "too many candidate executions"),
        }
    }
}

impl std::error::Error for EnumError {}

impl From<SymError> for EnumError {
    fn from(e: SymError) -> Self {
        EnumError::Sym(e)
    }
}

/// Computes the per-location read-value domains by fixed point.
fn value_domains(
    test: &LitmusTest,
    cfg: &EnumConfig,
) -> Result<BTreeMap<Loc, BTreeSet<i64>>, EnumError> {
    let mut domains: BTreeMap<Loc, BTreeSet<i64>> = test
        .memory()
        .iter()
        .map(|(l, mi)| (l.clone(), [mi.init].into_iter().collect()))
        .collect();
    for _ in 0..cfg.domain_iters {
        let mut changed = false;
        for (tid, code) in test.threads().iter().enumerate() {
            let init = |r: &Reg| test.reg_init_value(tid, r);
            let traces = enumerate_thread_traces(
                tid,
                code,
                &init,
                &domains,
                cfg.max_steps_per_thread,
                cfg.max_traces_per_thread,
            )?;
            for tr in &traces {
                for e in &tr.events {
                    if e.kind.is_write() {
                        let loc = e.loc.clone().expect("writes have locations");
                        if domains.entry(loc).or_default().insert(e.value) {
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    Ok(domains)
}

/// One candidate execution together with its observable outcome.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Candidate {
    /// The execution graph.
    pub execution: Execution,
    /// The values of the test's observed registers/locations.
    pub outcome: Outcome,
}

/// Enumerates all candidate executions of `test`.
///
/// # Errors
///
/// Fails if symbolic execution fails (bad addresses, unbounded loops) or the
/// candidate count exceeds [`EnumConfig::max_executions`].
pub fn enumerate_executions(
    test: &LitmusTest,
    cfg: &EnumConfig,
) -> Result<Vec<Candidate>, EnumError> {
    let domains = value_domains(test, cfg)?;
    let mut per_thread: Vec<Vec<ThreadTrace>> = Vec::new();
    for (tid, code) in test.threads().iter().enumerate() {
        let init = |r: &Reg| test.reg_init_value(tid, r);
        per_thread.push(enumerate_thread_traces(
            tid,
            code,
            &init,
            &domains,
            cfg.max_steps_per_thread,
            cfg.max_traces_per_thread,
        )?);
    }

    let thread_cta: Vec<usize> = (0..test.num_threads())
        .map(|t| test.scope_tree().placement(t).cta)
        .collect();
    let init_mem: BTreeMap<Loc, i64> = test
        .memory()
        .iter()
        .map(|(l, mi)| (l.clone(), mi.init))
        .collect();
    let observed = test.observed();

    let mut out = Vec::new();
    let mut combo = vec![0usize; per_thread.len()];
    'combos: loop {
        let traces: Vec<&ThreadTrace> = combo
            .iter()
            .zip(&per_thread)
            .map(|(&i, ts)| &ts[i])
            .collect();
        expand_communications(
            test,
            &traces,
            &thread_cta,
            &init_mem,
            &observed,
            cfg,
            &mut out,
        )?;

        // Advance the mixed-radix counter over thread traces.
        for t in (0..combo.len()).rev() {
            combo[t] += 1;
            if combo[t] < per_thread[t].len() {
                continue 'combos;
            }
            combo[t] = 0;
        }
        break;
    }
    Ok(out)
}

/// Builds the global event list for one trace combination and enumerates
/// rf/co choices.
fn expand_communications(
    test: &LitmusTest,
    traces: &[&ThreadTrace],
    thread_cta: &[usize],
    init_mem: &BTreeMap<Loc, i64>,
    observed: &[FinalExpr],
    cfg: &EnumConfig,
    out: &mut Vec<Candidate>,
) -> Result<(), EnumError> {
    // Global event ids: thread events concatenated.
    let mut events: Vec<Event> = Vec::new();
    let mut offsets = Vec::with_capacity(traces.len());
    for tr in traces {
        offsets.push(events.len());
        for (i, e) in tr.events.iter().enumerate() {
            events.push(Event {
                id: events.len(),
                tid: tr.tid,
                po_idx: i,
                kind: e.kind,
                loc: e.loc.clone(),
                value: e.value,
                cache: e.cache,
                volatile: e.volatile,
                atomic: e.atomic,
                instr_idx: e.instr_idx,
            });
        }
    }
    let n = events.len();

    let mut addr = Relation::empty(n);
    let mut data = Relation::empty(n);
    let mut ctrl = Relation::empty(n);
    let mut rmw = Relation::empty(n);
    for (tr, &off) in traces.iter().zip(&offsets) {
        for (i, e) in tr.events.iter().enumerate() {
            for &d in &e.addr_deps {
                addr.add(off + d, off + i);
            }
            for &d in &e.data_deps {
                data.add(off + d, off + i);
            }
            for &d in &e.ctrl_deps {
                ctrl.add(off + d, off + i);
            }
        }
        for &(r, w) in &tr.rmw_pairs {
            rmw.add(off + r, off + w);
        }
    }

    // Read-from candidates per read.
    let reads: Vec<usize> = events
        .iter()
        .filter(|e| e.is_read())
        .map(|e| e.id)
        .collect();
    let mut rf_choices: Vec<Vec<Option<usize>>> = Vec::with_capacity(reads.len());
    for &r in &reads {
        let loc = events[r].loc.as_ref().expect("reads have locations");
        let v = events[r].value;
        let mut cands: Vec<Option<usize>> = Vec::new();
        if init_mem.get(loc).copied().unwrap_or(0) == v {
            cands.push(None);
        }
        for e in &events {
            if e.is_write() && e.accesses(loc) && e.value == v {
                cands.push(Some(e.id));
            }
        }
        if cands.is_empty() {
            return Ok(()); // this trace combination is unrealisable
        }
        rf_choices.push(cands);
    }

    // Coherence: permutations of writes per location.
    let mut writes_by_loc: BTreeMap<Loc, Vec<usize>> = BTreeMap::new();
    for e in &events {
        if e.is_write() {
            writes_by_loc
                .entry(e.loc.clone().expect("writes have locations"))
                .or_default()
                .push(e.id);
        }
    }
    let co_orders: Vec<(Loc, Vec<Vec<usize>>)> = writes_by_loc
        .into_iter()
        .map(|(l, ws)| (l, permutations(&ws)))
        .collect();

    // Product: rf assignment × co choice.
    let mut rf_idx = vec![0usize; reads.len()];
    'rf: loop {
        let mut rf = vec![None; n];
        for (k, &r) in reads.iter().enumerate() {
            rf[r] = rf_choices[k][rf_idx[k]];
        }

        let mut co_idx = vec![0usize; co_orders.len()];
        'co: loop {
            let co: BTreeMap<Loc, Vec<usize>> = co_orders
                .iter()
                .zip(&co_idx)
                .map(|((l, perms), &i)| (l.clone(), perms[i].clone()))
                .collect();

            let execution = Execution {
                events: events.clone(),
                thread_cta: thread_cta.to_vec(),
                rf: rf.clone(),
                co,
                init: init_mem.clone(),
                addr: addr.clone(),
                data: data.clone(),
                ctrl: ctrl.clone(),
                rmw: rmw.clone(),
            };
            let outcome = outcome_of(test, traces, &execution, observed);
            out.push(Candidate { execution, outcome });
            if out.len() > cfg.max_executions {
                return Err(EnumError::TooManyExecutions);
            }

            for i in (0..co_idx.len()).rev() {
                co_idx[i] += 1;
                if co_idx[i] < co_orders[i].1.len() {
                    continue 'co;
                }
                co_idx[i] = 0;
            }
            break;
        }

        for k in (0..rf_idx.len()).rev() {
            rf_idx[k] += 1;
            if rf_idx[k] < rf_choices[k].len() {
                continue 'rf;
            }
            rf_idx[k] = 0;
        }
        break;
    }
    Ok(())
}

fn outcome_of(
    _test: &LitmusTest,
    traces: &[&ThreadTrace],
    execution: &Execution,
    observed: &[FinalExpr],
) -> Outcome {
    let mut o = Outcome::new();
    for expr in observed {
        let v = match expr {
            FinalExpr::Reg(tid, reg) => traces.get(*tid).map(|tr| tr.final_int(reg)).unwrap_or(0),
            FinalExpr::Mem(loc) => execution.final_memory(loc),
        };
        o.set(expr.clone(), v);
    }
    o
}

fn permutations(items: &[usize]) -> Vec<Vec<usize>> {
    if items.is_empty() {
        return vec![Vec::new()];
    }
    let mut out = Vec::new();
    for (i, &x) in items.iter().enumerate() {
        let mut rest: Vec<usize> = items.to_vec();
        rest.remove(i);
        for mut tail in permutations(&rest) {
            tail.insert(0, x);
            out.push(tail);
        }
    }
    out
}

/// The model-level verdict on a litmus test.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ModelOutcomes {
    /// Every outcome of every candidate execution.
    pub all_outcomes: BTreeSet<Outcome>,
    /// Outcomes of model-allowed executions.
    pub allowed_outcomes: BTreeSet<Outcome>,
    /// Number of candidate executions examined.
    pub num_candidates: usize,
    /// Number of allowed executions.
    pub num_allowed: usize,
    /// `true` if the final condition is witnessed by some *allowed*
    /// execution (for `exists`: the model permits the listed outcome).
    pub condition_witnessed: bool,
}

impl ModelOutcomes {
    /// `true` if `outcome` is allowed by the model.
    pub fn allows(&self, outcome: &Outcome) -> bool {
        self.allowed_outcomes.contains(outcome)
    }
}

/// Runs `model` over all candidates of `test`.
///
/// # Errors
///
/// Propagates [`EnumError`]s from the enumeration.
pub fn model_outcomes(
    test: &LitmusTest,
    model: &dyn Model,
    cfg: &EnumConfig,
) -> Result<ModelOutcomes, EnumError> {
    model_outcomes_with(test, model, cfg, &mut EvalContext::new())
}

/// [`model_outcomes`] with a caller-owned [`EvalContext`], threaded
/// through every candidate's verdict — for plan-backed models the whole
/// judgement loop then runs without heap allocation per execution. Sweep
/// workers hold one context each and pass it here on verdict-cache
/// misses.
///
/// # Errors
///
/// Propagates [`EnumError`]s from the enumeration.
pub fn model_outcomes_with(
    test: &LitmusTest,
    model: &dyn Model,
    cfg: &EnumConfig,
    ctx: &mut EvalContext,
) -> Result<ModelOutcomes, EnumError> {
    let candidates = enumerate_executions(test, cfg)?;
    let mut all = BTreeSet::new();
    let mut allowed = BTreeSet::new();
    let mut num_allowed = 0;
    let mut witnessed = false;
    for c in &candidates {
        all.insert(c.outcome.clone());
        if model.allows_with(ctx, &c.execution) {
            num_allowed += 1;
            if test.cond().witnessed_by(&c.outcome) {
                witnessed = true;
            }
            allowed.insert(c.outcome.clone());
        }
    }
    Ok(ModelOutcomes {
        all_outcomes: all,
        allowed_outcomes: allowed,
        num_candidates: candidates.len(),
        num_allowed,
        condition_witnessed: witnessed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use weakgpu_litmus::corpus;
    use weakgpu_litmus::ThreadScope;

    #[test]
    fn permutations_count() {
        assert_eq!(permutations(&[]).len(), 1);
        assert_eq!(permutations(&[1]).len(), 1);
        assert_eq!(permutations(&[1, 2, 3]).len(), 6);
        let ps = permutations(&[1, 2]);
        assert!(ps.contains(&vec![1, 2]) && ps.contains(&vec![2, 1]));
    }

    #[test]
    fn corr_candidates_include_weak_outcome() {
        let test = corpus::corr();
        let cands = enumerate_executions(&test, &EnumConfig::default()).unwrap();
        assert!(!cands.is_empty());
        // The weak outcome r1=1, r2=0 appears among candidates.
        let weak = cands.iter().any(|c| test.cond().witnessed_by(&c.outcome));
        assert!(weak);
        // And the SC outcome r1=1, r2=1 too.
        let mut sc = Outcome::new();
        sc.set(FinalExpr::reg(1, "r1"), 1);
        sc.set(FinalExpr::reg(1, "r2"), 1);
        assert!(cands.iter().any(|c| c.outcome == sc));
    }

    #[test]
    fn domains_cover_increment_chains() {
        // dlb-mp has `t := load t + 1`, needing iterated domains.
        let test = corpus::dlb_mp(false);
        let cfg = EnumConfig::default();
        let domains = value_domains(&test, &cfg).unwrap();
        let t = domains.get(&Loc::new("t")).unwrap();
        assert!(t.contains(&0) && t.contains(&1));
    }

    #[test]
    fn unrealisable_reads_prune_candidates() {
        // sb: reads of x/y can only be 0 or 1; no candidate gives r2=7.
        let test = corpus::sb(ThreadScope::InterCta, None);
        let cands = enumerate_executions(&test, &EnumConfig::default()).unwrap();
        assert!(cands
            .iter()
            .all(|c| c.outcome.iter().all(|(_, v)| v == 0 || v == 1)));
    }

    #[test]
    fn rf_sources_match_location_and_value() {
        let test = corpus::corr();
        for c in enumerate_executions(&test, &EnumConfig::default()).unwrap() {
            let ex = &c.execution;
            for (r, src) in ex.rf.iter().enumerate() {
                if let Some(w) = src {
                    assert!(ex.events[*w].is_write());
                    assert_eq!(ex.events[*w].loc, ex.events[r].loc);
                    assert_eq!(ex.events[*w].value, ex.events[r].value);
                }
            }
        }
    }

    #[test]
    fn execution_count_is_bounded_and_deterministic() {
        let test = corpus::corr();
        let a = enumerate_executions(&test, &EnumConfig::default()).unwrap();
        let b = enumerate_executions(&test, &EnumConfig::default()).unwrap();
        assert_eq!(a.len(), b.len());
        let tiny = EnumConfig {
            max_executions: 1,
            ..EnumConfig::default()
        };
        assert_eq!(
            enumerate_executions(&test, &tiny).unwrap_err(),
            EnumError::TooManyExecutions
        );
    }
}
