//! A `.cat` relational DSL, sufficient for the paper's model files
//! (Figs. 15 and 16) and widened toward the herd7 surface syntax.
//!
//! Supported statements:
//!
//! ```text
//! "Model title"                    (optional leading title, herd7-style;
//! PTX                               a bare identifier works too)
//! let name = expr                  (relation definition)
//! let name(param) = expr           (parameterised definition)
//! acyclic expr as name             (acyclicity check)
//! irreflexive expr as name         (irreflexivity check)
//! empty expr as name               (emptiness check)
//! acyclic expr                     (unnamed check — auto-named check-N)
//! show expr / unshow expr          (parsed and ignored, with a warning)
//! ```
//!
//! Expressions combine identifiers with union `|`, intersection `&`,
//! difference `\`, sequence `;`, inverse `^-1`, closures `+` `*` `?`,
//! function application `f(e)`, and the sort filters `WW(e)`, `WR(e)`,
//! `RW(e)`, `RR(e)` which restrict a relation to write→write, write→read,
//! read→write and read→read pairs respectively. Line comments start with
//! `//`; `(* … *)` block comments nest and are accepted anywhere.
//!
//! herd7 syntax this subset deliberately rejects — each with a targeted
//! diagnostic rather than a generic parse error: `include "…"` (the
//! compiler is include-free), `let rec` (no fixpoints), and the
//! complement operator `~`.
//!
//! Parsing is built on [`weakgpu_front`]: a spanned lexer feeds a token
//! [`Cursor`] with expected-set accumulation and a packrat [`Memo`] on the
//! atom rule, and statement-level recovery reports every error in one
//! pass ([`CatProgram::parse_with_diagnostics`]).
//!
//! A model *allows* an execution iff every check passes
//! ([`CatProgram::check`]).

use std::collections::BTreeMap;
use std::fmt;

use weakgpu_front::{
    Cursor, Diagnostic, LineCol, Memo, Parsed, SourceFile, Span, Token, TokenKind,
};

use crate::relation::{EventSet, Relation};

#[doc(hidden)]
pub mod legacy;

/// Expressions of the `.cat` language.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Expr {
    /// A named relation (base or `let`-bound).
    Id(String),
    /// `f(e)` — user function or builtin filter application.
    App(String, Box<Expr>),
    /// `a | b`.
    Union(Box<Expr>, Box<Expr>),
    /// `a & b`.
    Inter(Box<Expr>, Box<Expr>),
    /// `a \ b`.
    Diff(Box<Expr>, Box<Expr>),
    /// `a ; b`.
    Seq(Box<Expr>, Box<Expr>),
    /// `e^-1`.
    Inverse(Box<Expr>),
    /// `e+`.
    Plus(Box<Expr>),
    /// `e*`.
    Star(Box<Expr>),
    /// `e?`.
    Opt(Box<Expr>),
    /// `0` — the empty relation.
    Zero,
}

/// The three check forms.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CheckKind {
    /// `acyclic e as n` — `e` must have no cycles.
    Acyclic,
    /// `irreflexive e as n` — `e` must have no self-pairs.
    Irreflexive,
    /// `empty e as n` — `e` must have no pairs.
    Empty,
}

impl fmt::Display for CheckKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckKind::Acyclic => write!(f, "acyclic"),
            CheckKind::Irreflexive => write!(f, "irreflexive"),
            CheckKind::Empty => write!(f, "empty"),
        }
    }
}

/// One statement.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Stmt {
    /// `let name[(param)] = body`.
    Let {
        /// Bound name.
        name: String,
        /// Parameter, for function definitions.
        param: Option<String>,
        /// Right-hand side.
        body: Expr,
    },
    /// A named check.
    Check {
        /// Which property.
        kind: CheckKind,
        /// The relation expression checked.
        expr: Expr,
        /// The check's name (after `as`).
        name: String,
    },
}

/// A parsed `.cat` program.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CatProgram {
    title: Option<String>,
    stmts: Vec<Stmt>,
}

/// Result of one named check on one execution.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CheckOutcome {
    /// The check's name.
    pub name: String,
    /// Which property was checked.
    pub kind: CheckKind,
    /// Whether the execution satisfied it.
    pub passed: bool,
}

/// `.cat` parse or evaluation failure.
///
/// The compact error of the original API, now carrying the source
/// position when one is attributable. The diagnostics-first entry point
/// [`CatProgram::parse_with_diagnostics`] reports rich spanned
/// [`Diagnostic`]s instead; this type is the projection of the first
/// error for callers that only want a one-liner.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CatError {
    /// What went wrong.
    pub message: String,
    /// 1-based `line:col`, when attributable.
    pub pos: Option<LineCol>,
}

impl CatError {
    /// An error with no position.
    pub fn new(message: impl Into<String>) -> Self {
        CatError {
            message: message.into(),
            pos: None,
        }
    }

    /// An error at a 1-based `line:col`.
    pub fn at(message: impl Into<String>, pos: LineCol) -> Self {
        CatError {
            message: message.into(),
            pos: Some(pos),
        }
    }
}

impl fmt::Display for CatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.pos {
            Some(p) => write!(f, "cat error at {p}: {}", self.message),
            None => write!(f, "cat error: {}", self.message),
        }
    }
}

impl std::error::Error for CatError {}

// ---------------------------------------------------------------- lexing

#[derive(Clone, PartialEq, Eq, Debug)]
enum CatK {
    Ident(String),
    Str(String),
    Let,
    As,
    Acyclic,
    Irreflexive,
    Empty,
    Pipe,
    Amp,
    Backslash,
    Semi,
    Comma,
    LParen,
    RParen,
    Eq,
    Inv,
    Plus,
    Star,
    Question,
    Zero,
    Tilde,
}

impl TokenKind for CatK {
    fn describe(&self) -> String {
        match self {
            CatK::Ident(s) => format!("`{s}`"),
            CatK::Str(_) => "string literal".into(),
            CatK::Let => "`let`".into(),
            CatK::As => "`as`".into(),
            CatK::Acyclic => "`acyclic`".into(),
            CatK::Irreflexive => "`irreflexive`".into(),
            CatK::Empty => "`empty`".into(),
            CatK::Pipe => "`|`".into(),
            CatK::Amp => "`&`".into(),
            CatK::Backslash => "`\\`".into(),
            CatK::Semi => "`;`".into(),
            CatK::Comma => "`,`".into(),
            CatK::LParen => "`(`".into(),
            CatK::RParen => "`)`".into(),
            CatK::Eq => "`=`".into(),
            CatK::Inv => "`^-1`".into(),
            CatK::Plus => "`+`".into(),
            CatK::Star => "`*`".into(),
            CatK::Question => "`?`".into(),
            CatK::Zero => "`0`".into(),
            CatK::Tilde => "`~`".into(),
        }
    }
}

/// Lexes with spans, recovering from bad characters (each is reported
/// once and skipped). Block comments `(* … *)` nest, herd7-style.
fn lex(file: &SourceFile) -> (Vec<Token<CatK>>, Vec<Diagnostic>) {
    let src = file.text();
    let mut toks = Vec::new();
    let mut diags = Vec::new();
    let b: Vec<(usize, char)> = src.char_indices().collect();
    let len = src.len();
    let mut i = 0;
    let mut push = |kind: CatK, a: usize, e: usize| toks.push(Token::new(kind, Span::new(a, e)));
    while i < b.len() {
        let (at, c) = b[i];
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '/' if b.get(i + 1).map(|t| t.1) == Some('/') => {
                while i < b.len() && b[i].1 != '\n' {
                    i += 1;
                }
            }
            '(' if b.get(i + 1).map(|t| t.1) == Some('*') => {
                let open = at;
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i].1 == '(' && b.get(i + 1).map(|t| t.1) == Some('*') {
                        depth += 1;
                        i += 2;
                    } else if b[i].1 == '*' && b.get(i + 1).map(|t| t.1) == Some(')') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                if depth > 0 {
                    diags.push(
                        Diagnostic::error("unterminated block comment")
                            .with_span(Span::new(open, open + 2)),
                    );
                }
            }
            '"' => {
                let open = at;
                i += 1;
                let start = i;
                while i < b.len() && b[i].1 != '"' && b[i].1 != '\n' {
                    i += 1;
                }
                if i < b.len() && b[i].1 == '"' {
                    let text: String = b[start..i].iter().map(|t| t.1).collect();
                    push(CatK::Str(text), open, b[i].0 + 1);
                    i += 1;
                } else {
                    diags.push(
                        Diagnostic::error("unterminated string literal")
                            .with_span(Span::new(open, open + 1)),
                    );
                }
            }
            '|' | '&' | '\\' | ';' | ',' | '(' | ')' | '=' | '+' | '*' | '?' | '~' => {
                let kind = match c {
                    '|' => CatK::Pipe,
                    '&' => CatK::Amp,
                    '\\' => CatK::Backslash,
                    ';' => CatK::Semi,
                    ',' => CatK::Comma,
                    '(' => CatK::LParen,
                    ')' => CatK::RParen,
                    '=' => CatK::Eq,
                    '+' => CatK::Plus,
                    '*' => CatK::Star,
                    '?' => CatK::Question,
                    _ => CatK::Tilde,
                };
                push(kind, at, at + c.len_utf8());
                i += 1;
            }
            '^' => {
                if b.get(i + 1).map(|t| t.1) == Some('-') && b.get(i + 2).map(|t| t.1) == Some('1')
                {
                    push(CatK::Inv, at, at + 3);
                    i += 3;
                } else {
                    diags.push(
                        Diagnostic::error("stray '^' (the inverse operator is written `^-1`)")
                            .with_span(Span::new(at, at + 1)),
                    );
                    i += 1;
                }
            }
            '0' if !b
                .get(i + 1)
                .is_some_and(|t| t.1.is_alphanumeric() || t.1 == '.' || t.1 == '-') =>
            {
                push(CatK::Zero, at, at + 1);
                i += 1;
            }
            c if c.is_alphanumeric() || c == '_' || c == '.' => {
                let start = i;
                while i < b.len()
                    && (b[i].1.is_alphanumeric() || b[i].1 == '_' || b[i].1 == '.' || b[i].1 == '-')
                {
                    i += 1;
                }
                let end = b.get(i).map_or(len, |t| t.0);
                let word: String = b[start..i].iter().map(|t| t.1).collect();
                let kind = match word.as_str() {
                    "let" => CatK::Let,
                    "as" => CatK::As,
                    "acyclic" => CatK::Acyclic,
                    "irreflexive" => CatK::Irreflexive,
                    "empty" => CatK::Empty,
                    _ => CatK::Ident(word),
                };
                push(kind, at, end);
            }
            other => {
                diags.push(
                    Diagnostic::error(format!("unexpected character {other:?}"))
                        .with_span(Span::new(at, at + other.len_utf8())),
                );
                i += 1;
            }
        }
    }
    (toks, diags)
}

// ---------------------------------------------------------------- parsing

type PCur<'t> = Cursor<'t, CatK>;
type PMemo = Memo<Result<Expr, Diagnostic>>;

/// Rule id for the packrat memo on the atom rule.
const RULE_ATOM: u32 = 0;

fn is_stmt_start(k: &CatK) -> bool {
    matches!(
        k,
        CatK::Let | CatK::Acyclic | CatK::Irreflexive | CatK::Empty
    ) || matches!(k, CatK::Ident(w) if w == "include" || w == "show" || w == "unshow")
}

fn eat_ident(cur: &mut PCur<'_>) -> Option<(String, Span)> {
    cur.eat_map("identifier", |k| match k {
        CatK::Ident(s) => Some(s.clone()),
        _ => None,
    })
}

fn expect_ident(cur: &mut PCur<'_>) -> Result<(String, Span), Diagnostic> {
    eat_ident(cur).ok_or_else(|| cur.expected_error())
}

fn expr(cur: &mut PCur<'_>, memo: &mut PMemo) -> Result<Expr, Diagnostic> {
    let mut e = seq_expr(cur, memo)?;
    while cur.eat(&CatK::Pipe).is_some() {
        let rhs = seq_expr(cur, memo)?;
        e = Expr::Union(Box::new(e), Box::new(rhs));
    }
    Ok(e)
}

fn seq_expr(cur: &mut PCur<'_>, memo: &mut PMemo) -> Result<Expr, Diagnostic> {
    let mut e = diff_expr(cur, memo)?;
    while cur.eat(&CatK::Semi).is_some() {
        let rhs = diff_expr(cur, memo)?;
        e = Expr::Seq(Box::new(e), Box::new(rhs));
    }
    Ok(e)
}

fn diff_expr(cur: &mut PCur<'_>, memo: &mut PMemo) -> Result<Expr, Diagnostic> {
    let mut e = inter_expr(cur, memo)?;
    while cur.eat(&CatK::Backslash).is_some() {
        let rhs = inter_expr(cur, memo)?;
        e = Expr::Diff(Box::new(e), Box::new(rhs));
    }
    Ok(e)
}

fn inter_expr(cur: &mut PCur<'_>, memo: &mut PMemo) -> Result<Expr, Diagnostic> {
    let mut e = postfix_expr(cur, memo)?;
    while cur.eat(&CatK::Amp).is_some() {
        let rhs = postfix_expr(cur, memo)?;
        e = Expr::Inter(Box::new(e), Box::new(rhs));
    }
    Ok(e)
}

fn postfix_expr(cur: &mut PCur<'_>, memo: &mut PMemo) -> Result<Expr, Diagnostic> {
    let mut e = atom(cur, memo)?;
    loop {
        if cur.eat(&CatK::Inv).is_some() {
            e = Expr::Inverse(Box::new(e));
        } else if cur.eat(&CatK::Plus).is_some() {
            e = Expr::Plus(Box::new(e));
        } else if cur.eat(&CatK::Star).is_some() {
            e = Expr::Star(Box::new(e));
        } else if cur.eat(&CatK::Question).is_some() {
            e = Expr::Opt(Box::new(e));
        } else {
            return Ok(e);
        }
    }
}

/// The atom rule, memoised packrat-style under [`RULE_ATOM`] so repeated
/// descents over the same position (the grammar is PEG-shaped) stay
/// linear.
fn atom(cur: &mut PCur<'_>, memo: &mut PMemo) -> Result<Expr, Diagnostic> {
    memo.apply(RULE_ATOM, cur, |cur, memo| Some(atom_inner(cur, memo)))
        .unwrap_or_else(|| Err(Diagnostic::error("expected expression")))
}

fn atom_inner(cur: &mut PCur<'_>, memo: &mut PMemo) -> Result<Expr, Diagnostic> {
    if let Some((name, _)) = eat_ident(cur) {
        if cur.eat(&CatK::LParen).is_some() {
            let arg = expr(cur, memo)?;
            cur.expect(&CatK::RParen)?;
            return Ok(Expr::App(name, Box::new(arg)));
        }
        return Ok(Expr::Id(name));
    }
    if cur.eat(&CatK::LParen).is_some() {
        let e = expr(cur, memo)?;
        cur.expect(&CatK::RParen)?;
        return Ok(e);
    }
    if cur.eat(&CatK::Zero).is_some() {
        return Ok(Expr::Zero);
    }
    if let Some(t) = cur.eat(&CatK::Tilde) {
        return Err(
            Diagnostic::error("the complement operator `~` is not supported")
                .with_span(t.span)
                .with_note("this .cat subset has no complement; rewrite with `\\` set difference"),
        );
    }
    Err(cur.expected_error())
}

/// One statement, or `None` for directives that are consumed without
/// producing a statement (`show` / `unshow`).
fn stmt(
    cur: &mut PCur<'_>,
    memo: &mut PMemo,
    diags: &mut Vec<Diagnostic>,
    auto_checks: &mut usize,
) -> Result<Option<Stmt>, Diagnostic> {
    // herd7 directives this subset rejects or ignores, with targeted
    // diagnostics.
    if let Some(CatK::Ident(w)) = cur.peek_kind() {
        match w.as_str() {
            "include" => {
                let t = cur.bump().expect("peeked");
                let span = match cur.peek_kind() {
                    Some(CatK::Str(_)) => cur.bump().expect("peeked").span.join(t.span),
                    _ => t.span,
                };
                return Err(Diagnostic::error(
                    "`include` is not supported: this .cat subset is include-free",
                )
                .with_span(span)
                .with_note("inline the included definitions instead"));
            }
            "show" | "unshow" => {
                let directive = w.clone();
                let t = cur.bump().expect("peeked");
                diags.push(
                    Diagnostic::warning(format!(
                        "`{directive}` is a display directive; parsed and ignored"
                    ))
                    .with_span(t.span),
                );
                // Swallow the directive's operands: idents, commas and
                // `as` renames up to the next statement.
                while let Some(k) = cur.peek_kind() {
                    if is_stmt_start(k) {
                        break;
                    }
                    match k {
                        CatK::Ident(_) | CatK::Comma | CatK::As => {
                            cur.bump();
                        }
                        _ => break,
                    }
                }
                return Ok(None);
            }
            _ => {}
        }
    }
    if let Some(t) = cur.eat(&CatK::Let) {
        // `let rec` fixpoints are out of scope — report them clearly
        // rather than parsing `rec` as the bound name.
        let mark = cur.mark();
        if let Some((w, span)) = eat_ident(cur) {
            if w == "rec" && matches!(cur.peek_kind(), Some(CatK::Ident(_))) {
                return Err(Diagnostic::error(
                    "`let rec` is not supported: no recursive definitions",
                )
                .with_span(span.join(t.span))
                .with_note("unfold the recursion or use `+`/`*` closures"));
            }
            cur.rewind(mark);
        }
        let (name, _) = expect_ident(cur)?;
        let param = if cur.eat(&CatK::LParen).is_some() {
            let (p, _) = expect_ident(cur)?;
            cur.expect(&CatK::RParen)?;
            Some(p)
        } else {
            None
        };
        cur.expect(&CatK::Eq)?;
        let body = expr(cur, memo)?;
        return Ok(Some(Stmt::Let { name, param, body }));
    }
    for (tok, kind) in [
        (CatK::Acyclic, CheckKind::Acyclic),
        (CatK::Irreflexive, CheckKind::Irreflexive),
        (CatK::Empty, CheckKind::Empty),
    ] {
        if cur.eat(&tok).is_some() {
            let e = expr(cur, memo)?;
            let name = if cur.eat(&CatK::As).is_some() {
                expect_ident(cur)?.0
            } else {
                // herd7 allows unnamed checks; give them stable names.
                *auto_checks += 1;
                format!("check-{auto_checks}")
            };
            return Ok(Some(Stmt::Check {
                kind,
                expr: e,
                name,
            }));
        }
    }
    let found = cur
        .peek_kind()
        .map_or("end of input".to_string(), CatK::describe);
    Err(Diagnostic::error(format!(
        "expected a statement (`let`, `acyclic`, `irreflexive` or `empty`), found {found}"
    ))
    .with_span(cur.here()))
}

impl CatProgram {
    /// Parses a `.cat` source text.
    ///
    /// Compatibility wrapper over [`CatProgram::parse_with_diagnostics`]:
    /// reports only the first error, as a [`CatError`] with its
    /// `line:col` preserved.
    ///
    /// # Errors
    ///
    /// Returns a [`CatError`] on lexical or syntactic problems.
    pub fn parse(src: &str) -> Result<Self, CatError> {
        let file = SourceFile::new("<cat>", src);
        match Self::parse_with_diagnostics(&file).into_result() {
            Ok(p) => Ok(p),
            Err(diags) => {
                let first = diags
                    .iter()
                    .find(|d| d.is_error())
                    .cloned()
                    .unwrap_or_else(|| Diagnostic::error("parse failed"));
                Err(CatError {
                    pos: first.span.map(|s| file.pos(s)),
                    message: first.message,
                })
            }
        }
    }

    /// Parses a `.cat` source, collecting *all* diagnostics in one pass.
    ///
    /// Recovery is statement-level: after an error the parser
    /// resynchronises on the next statement keyword, so a file with three
    /// broken statements yields three diagnostics. The value is `Some`
    /// when at least the well-formed statements could be kept, but
    /// [`Parsed::into_result`] still fails if any *error* was reported.
    pub fn parse_with_diagnostics(file: &SourceFile) -> Parsed<CatProgram> {
        let (toks, mut diags) = lex(file);
        let mut cur = Cursor::new(&toks, file.text().len());
        let mut memo = Memo::new();
        // Optional herd7-style model title: a leading string literal or a
        // bare identifier (anything a statement cannot start with).
        let title = match cur.peek_kind() {
            Some(CatK::Str(s)) => {
                let s = s.clone();
                cur.bump();
                Some(s)
            }
            Some(CatK::Ident(w)) if !is_stmt_start(&CatK::Ident(w.clone())) => {
                let s = w.clone();
                cur.bump();
                Some(s)
            }
            _ => None,
        };
        let mut stmts = Vec::new();
        let mut auto_checks = 0usize;
        while !cur.at_end() {
            let start = cur.pos();
            match stmt(&mut cur, &mut memo, &mut diags, &mut auto_checks) {
                Ok(Some(s)) => stmts.push(s),
                Ok(None) => {}
                Err(d) => {
                    diags.push(d);
                    // Resynchronise on the next statement keyword.
                    if cur.pos() == start {
                        cur.bump();
                    }
                    cur.skip_until(is_stmt_start);
                }
            }
        }
        // Lexer diagnostics were collected up front; interleave them with
        // the parser's in source order.
        diags.sort_by_key(|d| d.span.map_or(u32::MAX, |s| s.start));
        Parsed {
            value: Some(CatProgram { title, stmts }),
            diagnostics: diags,
        }
    }

    /// The model's title, when the source carried one.
    pub fn title(&self) -> Option<&str> {
        self.title.as_deref()
    }

    /// The parsed statements.
    pub fn stmts(&self) -> &[Stmt] {
        &self.stmts
    }

    /// Names of all checks, in order.
    pub fn check_names(&self) -> Vec<&str> {
        self.stmts
            .iter()
            .filter_map(|s| match s {
                Stmt::Check { name, .. } => Some(name.as_str()),
                _ => None,
            })
            .collect()
    }

    /// Evaluates every check against the given base relations and event
    /// sorts.
    ///
    /// # Errors
    ///
    /// Returns a [`CatError`] for unbound identifiers, applying a
    /// non-function, or using a function where a relation is expected.
    pub fn check(
        &self,
        base: &BTreeMap<String, Relation>,
        reads: &EventSet,
        writes: &EventSet,
    ) -> Result<Vec<CheckOutcome>, CatError> {
        let n = base.values().next().map(Relation::universe).unwrap_or(0);
        let mut env = Env {
            base,
            lets: BTreeMap::new(),
            reads,
            writes,
            n,
        };
        let mut outcomes = Vec::new();
        for stmt in &self.stmts {
            match stmt {
                Stmt::Let { name, param, body } => {
                    let v = match param {
                        None => Binding::Rel(env.eval(body)?),
                        Some(p) => Binding::Fun {
                            param: p.clone(),
                            body: body.clone(),
                        },
                    };
                    env.lets.insert(name.clone(), v);
                }
                Stmt::Check { kind, expr, name } => {
                    let rel = env.eval(expr)?;
                    let passed = match kind {
                        CheckKind::Acyclic => rel.is_acyclic(),
                        CheckKind::Irreflexive => rel.is_irreflexive(),
                        CheckKind::Empty => rel.is_empty(),
                    };
                    outcomes.push(CheckOutcome {
                        name: name.clone(),
                        kind: *kind,
                        passed,
                    });
                }
            }
        }
        Ok(outcomes)
    }

    /// `true` iff every check passes.
    ///
    /// # Errors
    ///
    /// See [`CatProgram::check`].
    pub fn allows(
        &self,
        base: &BTreeMap<String, Relation>,
        reads: &EventSet,
        writes: &EventSet,
    ) -> Result<bool, CatError> {
        Ok(self.check(base, reads, writes)?.iter().all(|c| c.passed))
    }
}

#[derive(Clone)]
enum Binding {
    Rel(Relation),
    Fun { param: String, body: Expr },
}

struct Env<'a> {
    base: &'a BTreeMap<String, Relation>,
    lets: BTreeMap<String, Binding>,
    reads: &'a EventSet,
    writes: &'a EventSet,
    n: usize,
}

impl Env<'_> {
    fn lookup(&self, name: &str) -> Result<Binding, CatError> {
        if let Some(b) = self.lets.get(name) {
            return Ok(b.clone());
        }
        if let Some(r) = self.base.get(name) {
            return Ok(Binding::Rel(r.clone()));
        }
        Err(CatError::new(format!("unbound identifier {name:?}")))
    }

    fn eval(&mut self, e: &Expr) -> Result<Relation, CatError> {
        match e {
            Expr::Zero => Ok(Relation::empty(self.n)),
            Expr::Id(name) => match self.lookup(name)? {
                Binding::Rel(r) => Ok(r),
                Binding::Fun { .. } => Err(CatError::new(format!(
                    "{name:?} is a function, not a relation"
                ))),
            },
            Expr::App(name, arg) => {
                let argv = self.eval(arg)?;
                match name.as_str() {
                    // Sort filters.
                    "WW" => Ok(argv.restrict(self.writes, self.writes)),
                    "WR" => Ok(argv.restrict(self.writes, self.reads)),
                    "RW" => Ok(argv.restrict(self.reads, self.writes)),
                    "RR" => Ok(argv.restrict(self.reads, self.reads)),
                    _ => match self.lookup(name)? {
                        Binding::Fun { param, body } => {
                            // Bind the parameter, evaluate, restore.
                            let saved = self.lets.insert(param.clone(), Binding::Rel(argv));
                            let result = self.eval(&body);
                            match saved {
                                Some(v) => {
                                    self.lets.insert(param, v);
                                }
                                None => {
                                    self.lets.remove(&param);
                                }
                            }
                            result
                        }
                        Binding::Rel(_) => Err(CatError::new(format!(
                            "{name:?} is a relation, cannot be applied"
                        ))),
                    },
                }
            }
            Expr::Union(a, b) => Ok(self.eval(a)?.union(&self.eval(b)?)),
            Expr::Inter(a, b) => Ok(self.eval(a)?.inter(&self.eval(b)?)),
            Expr::Diff(a, b) => Ok(self.eval(a)?.diff(&self.eval(b)?)),
            Expr::Seq(a, b) => Ok(self.eval(a)?.seq(&self.eval(b)?)),
            Expr::Inverse(a) => Ok(self.eval(a)?.inverse()),
            Expr::Plus(a) => Ok(self.eval(a)?.transitive_closure()),
            Expr::Star(a) => Ok(self.eval(a)?.reflexive_transitive_closure()),
            Expr::Opt(a) => Ok(self.eval(a)?.optional()),
        }
    }
}

impl fmt::Display for Expr {
    /// Pretty-prints with explicit parentheses around every binary
    /// operation, so output re-parses to the same tree regardless of
    /// precedence.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Zero => write!(f, "0"),
            Expr::Id(name) => write!(f, "{name}"),
            Expr::App(name, arg) => write!(f, "{name}({arg})"),
            Expr::Union(a, b) => write!(f, "({a} | {b})"),
            Expr::Inter(a, b) => write!(f, "({a} & {b})"),
            Expr::Diff(a, b) => write!(f, "({a} \\ {b})"),
            Expr::Seq(a, b) => write!(f, "({a} ; {b})"),
            Expr::Inverse(a) => write!(f, "({a})^-1"),
            Expr::Plus(a) => write!(f, "({a})+"),
            Expr::Star(a) => write!(f, "({a})*"),
            Expr::Opt(a) => write!(f, "({a})?"),
        }
    }
}

impl fmt::Display for Stmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stmt::Let {
                name,
                param: None,
                body,
            } => write!(f, "let {name} = {body}"),
            Stmt::Let {
                name,
                param: Some(p),
                body,
            } => write!(f, "let {name}({p}) = {body}"),
            Stmt::Check { kind, expr, name } => write!(f, "{kind} {expr} as {name}"),
        }
    }
}

impl fmt::Display for CatProgram {
    /// Renders the program one statement per line (with its title first,
    /// when present); the output re-parses to an equal program.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(t) = &self.title {
            writeln!(f, "\"{t}\"")?;
        }
        for stmt in &self.stmts {
            writeln!(f, "{stmt}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weakgpu_front::render_all;

    fn base3() -> (BTreeMap<String, Relation>, EventSet, EventSet) {
        // Universe {0,1,2}: 0 is a write, 1 a read, 2 a write.
        let mut m = BTreeMap::new();
        m.insert(
            "po".to_string(),
            Relation::from_pairs(3, [(0, 1), (1, 2), (0, 2)]),
        );
        m.insert("rf".to_string(), Relation::from_pairs(3, [(2, 1)]));
        let writes = EventSet::from_iter_n(3, [0, 2]);
        let reads = EventSet::from_iter_n(3, [1]);
        (m, reads, writes)
    }

    #[test]
    fn parses_paper_fig15() {
        let src = "
let com = rf | co | fr
let po-loc-llh = WW(po-loc) | WR(po-loc) | RW(po-loc)
acyclic (po-loc-llh | com) as sc-per-loc-llh
let dp = addr | data | ctrl
acyclic (dp | rf) as no-thin-air
let rmo(fence) = dp | fence | rfe | co | fr
";
        let p = CatProgram::parse(src).unwrap();
        assert_eq!(p.stmts().len(), 6);
        assert_eq!(p.check_names(), vec!["sc-per-loc-llh", "no-thin-air"]);
        // `rmo` is a function definition.
        assert!(matches!(
            &p.stmts()[5],
            Stmt::Let {
                name,
                param: Some(param),
                ..
            } if name == "rmo" && param == "fence"
        ));
    }

    #[test]
    fn comments_are_skipped() {
        let src = "// line comment\n(* block *) let x = po\nacyclic x as c1";
        let p = CatProgram::parse(src).unwrap();
        assert_eq!(p.stmts().len(), 2);
    }

    #[test]
    fn block_comments_nest_and_appear_anywhere() {
        let src = "let x = po (* outer (* inner *) still out *) | rf\nacyclic x as c";
        let p = CatProgram::parse(src).unwrap();
        assert_eq!(p.stmts().len(), 2);
        assert!(matches!(
            &p.stmts()[0],
            Stmt::Let {
                body: Expr::Union(..),
                ..
            }
        ));
    }

    #[test]
    fn model_titles_are_accepted() {
        let p = CatProgram::parse("\"PTX model\"\nacyclic po as c").unwrap();
        assert_eq!(p.title(), Some("PTX model"));
        assert_eq!(p.stmts().len(), 1);
        let p2 = CatProgram::parse("PTX\nacyclic po as c").unwrap();
        assert_eq!(p2.title(), Some("PTX"));
        // Round trip through Display keeps the title.
        let p3 = CatProgram::parse(&p.to_string()).unwrap();
        assert_eq!(p3, p);
    }

    #[test]
    fn unnamed_checks_are_auto_named() {
        let p = CatProgram::parse("acyclic po\nempty rf\nacyclic co as named").unwrap();
        assert_eq!(p.check_names(), vec!["check-1", "check-2", "named"]);
    }

    #[test]
    fn show_is_ignored_with_warning() {
        let file = SourceFile::new("m.cat", "show po, rf\nlet x = po\nacyclic x as c\n");
        let parsed = CatProgram::parse_with_diagnostics(&file);
        assert!(!parsed.has_errors());
        assert_eq!(parsed.diagnostics.len(), 1);
        assert!(parsed.diagnostics[0].message.contains("ignored"));
        assert_eq!(parsed.value.unwrap().stmts().len(), 2);
    }

    #[test]
    fn include_and_let_rec_and_complement_are_clearly_rejected() {
        let file = SourceFile::new(
            "m.cat",
            "include \"cos.cat\"\nlet rec r = po\nlet y = ~po\nacyclic y as c\n",
        );
        let parsed = CatProgram::parse_with_diagnostics(&file);
        let msgs: Vec<_> = parsed
            .diagnostics
            .iter()
            .filter(|d| d.is_error())
            .map(|d| d.message.as_str())
            .collect();
        assert_eq!(msgs.len(), 3, "{msgs:?}");
        assert!(msgs[0].contains("`include` is not supported"), "{msgs:?}");
        assert!(msgs[1].contains("`let rec` is not supported"), "{msgs:?}");
        assert!(msgs[2].contains("`~` is not supported"), "{msgs:?}");
    }

    #[test]
    fn recovery_reports_every_broken_statement() {
        let file = SourceFile::new(
            "m.cat",
            "let = po\nlet good = rf\nacyclic po rf as c\nempty good as ok\n",
        );
        let parsed = CatProgram::parse_with_diagnostics(&file);
        let errors: Vec<_> = parsed.diagnostics.iter().filter(|d| d.is_error()).collect();
        assert!(errors.len() >= 2, "{:?}", parsed.diagnostics);
        // The good statements survived recovery.
        let p = parsed.value.unwrap();
        assert!(p
            .stmts()
            .iter()
            .any(|s| matches!(s, Stmt::Let { name, .. } if name == "good")));
        assert!(p.check_names().contains(&"ok"));
    }

    #[test]
    fn diagnostics_carry_line_and_col() {
        let file = SourceFile::new("m.cat", "let x = po\nlet y = po ^ 2\n");
        let parsed = CatProgram::parse_with_diagnostics(&file);
        assert!(parsed.has_errors());
        let rendered = render_all(&parsed.diagnostics, &file);
        assert!(rendered.contains("m.cat:2:12"), "{rendered}");
        assert!(rendered.contains("^ 2"), "{rendered}");
        // And the compact CatError keeps the position.
        let err = CatProgram::parse(file.text()).unwrap_err();
        assert_eq!(err.pos.map(|p| (p.line, p.col)), Some((2, 12)));
    }

    #[test]
    fn expected_sets_accumulate() {
        let err = CatProgram::parse("let x po").unwrap_err();
        // After `let x` either `(`, `=` would continue the statement.
        assert!(err.message.contains("expected"), "{err}");
        assert!(err.message.contains("`=`"), "{err}");
    }

    #[test]
    fn filters_restrict_by_sort() {
        let (base, reads, writes) = base3();
        let p = CatProgram::parse("empty WW(po) as onlyww").unwrap();
        // po pairs: (0,1) W→R, (1,2) R→W, (0,2) W→W ⇒ WW(po) nonempty.
        let out = p.check(&base, &reads, &writes).unwrap();
        assert!(!out[0].passed);
        let p2 = CatProgram::parse("empty RR(po) as onlyrr").unwrap();
        assert!(p2.check(&base, &reads, &writes).unwrap()[0].passed);
    }

    #[test]
    fn function_application_substitutes() {
        let (base, reads, writes) = base3();
        let src = "
let f(x) = x | rf
acyclic f(po) as c
";
        let p = CatProgram::parse(src).unwrap();
        // po ∪ rf has cycle 1→2→1.
        let out = p.check(&base, &reads, &writes).unwrap();
        assert!(!out[0].passed);
    }

    #[test]
    fn operators_and_postfix() {
        let (base, reads, writes) = base3();
        let checks = [
            ("empty po & rf as c", true),    // disjoint
            ("empty po \\ po as c", true),   // difference with self
            ("empty (po ; rf) as c", false), // (0,1);(… ) — po;rf has (1,1)? po(1,2), rf(2,1) ⇒ (1,1)
            ("irreflexive (po ; rf) as c", false),
            ("empty rf^-1 as c", false),
            ("acyclic po+ as c", true),
            ("irreflexive po* as c", false), // reflexive closure has self-pairs
            ("empty 0 as c", true),
            ("acyclic po? as c", false), // id pairs are self-loops
        ];
        for (src, expect) in checks {
            let p = CatProgram::parse(src).unwrap();
            let out = p.check(&base, &reads, &writes).unwrap();
            assert_eq!(out[0].passed, expect, "{src}");
        }
    }

    #[test]
    fn unbound_identifier_reported() {
        let (base, reads, writes) = base3();
        let p = CatProgram::parse("acyclic nosuch as c").unwrap();
        let err = p.check(&base, &reads, &writes).unwrap_err();
        assert!(err.message.contains("unbound"), "{err}");
    }

    #[test]
    fn applying_relation_is_an_error() {
        let (base, reads, writes) = base3();
        let p = CatProgram::parse("acyclic po(rf) as c").unwrap();
        assert!(p.check(&base, &reads, &writes).is_err());
    }

    #[test]
    fn function_as_relation_is_an_error() {
        let (base, reads, writes) = base3();
        let p = CatProgram::parse("let f(x) = x\nacyclic f as c").unwrap();
        assert!(p.check(&base, &reads, &writes).is_err());
    }

    #[test]
    fn hyphenated_and_dotted_identifiers() {
        let src = "let cta-fence = membar.cta | membar.gl\nacyclic cta-fence as c";
        let p = CatProgram::parse(src).unwrap();
        let mut base = BTreeMap::new();
        base.insert("membar.cta".to_string(), Relation::from_pairs(2, [(0, 1)]));
        base.insert("membar.gl".to_string(), Relation::empty(2));
        let out = p
            .check(&base, &EventSet::empty(2), &EventSet::empty(2))
            .unwrap();
        assert!(out[0].passed);
    }

    #[test]
    fn allows_requires_all_checks() {
        let (base, reads, writes) = base3();
        let src = "acyclic po as good\nacyclic (po | rf) as bad";
        let p = CatProgram::parse(src).unwrap();
        assert!(!p.allows(&base, &reads, &writes).unwrap());
        let out = p.check(&base, &reads, &writes).unwrap();
        assert!(out[0].passed && !out[1].passed);
    }

    #[test]
    fn parse_errors() {
        assert!(CatProgram::parse("let = po").is_err());
        assert!(CatProgram::parse("let f(x = x").is_err());
        assert!(CatProgram::parse("bogus po as c").is_err());
        assert!(CatProgram::parse("let x = po ^ 2").is_err()); // stray ^
    }

    #[test]
    fn agrees_with_legacy_on_paper_models() {
        let src = "
let com = rf | co | fr
let po-loc-llh = WW(po-loc) | WR(po-loc) | RW(po-loc)
acyclic (po-loc-llh | com) as sc-per-loc-llh
let rmo(fence) = dp | fence | rfe | co | fr
empty rmo(membar.gl) \\ hb as dead
irreflexive (po ; rf)^-1+ as twisted
";
        let new = CatProgram::parse(src).unwrap();
        let old = legacy::parse(src).unwrap();
        assert_eq!(new, old);
    }
}
