//! A `.cat` relational DSL, sufficient for the paper's model files
//! (Figs. 15 and 16).
//!
//! Supported statements:
//!
//! ```text
//! let name = expr                  (relation definition)
//! let name(param) = expr           (parameterised definition)
//! acyclic expr as name             (acyclicity check)
//! irreflexive expr as name         (irreflexivity check)
//! empty expr as name               (emptiness check)
//! ```
//!
//! Expressions combine identifiers with union `|`, intersection `&`,
//! difference `\`, sequence `;`, inverse `^-1`, closures `+` `*` `?`,
//! function application `f(e)`, and the sort filters `WW(e)`, `WR(e)`,
//! `RW(e)`, `RR(e)` which restrict a relation to write→write, write→read,
//! read→write and read→read pairs respectively. Line comments start with
//! `//`; `(* … *)` block comments are also accepted.
//!
//! A model *allows* an execution iff every check passes
//! ([`CatProgram::check`]).

use std::collections::BTreeMap;
use std::fmt;

use crate::relation::{EventSet, Relation};

/// Expressions of the `.cat` language.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Expr {
    /// A named relation (base or `let`-bound).
    Id(String),
    /// `f(e)` — user function or builtin filter application.
    App(String, Box<Expr>),
    /// `a | b`.
    Union(Box<Expr>, Box<Expr>),
    /// `a & b`.
    Inter(Box<Expr>, Box<Expr>),
    /// `a \ b`.
    Diff(Box<Expr>, Box<Expr>),
    /// `a ; b`.
    Seq(Box<Expr>, Box<Expr>),
    /// `e^-1`.
    Inverse(Box<Expr>),
    /// `e+`.
    Plus(Box<Expr>),
    /// `e*`.
    Star(Box<Expr>),
    /// `e?`.
    Opt(Box<Expr>),
    /// `0` — the empty relation.
    Zero,
}

/// The three check forms.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CheckKind {
    /// `acyclic e as n` — `e` must have no cycles.
    Acyclic,
    /// `irreflexive e as n` — `e` must have no self-pairs.
    Irreflexive,
    /// `empty e as n` — `e` must have no pairs.
    Empty,
}

impl fmt::Display for CheckKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckKind::Acyclic => write!(f, "acyclic"),
            CheckKind::Irreflexive => write!(f, "irreflexive"),
            CheckKind::Empty => write!(f, "empty"),
        }
    }
}

/// One statement.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Stmt {
    /// `let name[(param)] = body`.
    Let {
        /// Bound name.
        name: String,
        /// Parameter, for function definitions.
        param: Option<String>,
        /// Right-hand side.
        body: Expr,
    },
    /// A named check.
    Check {
        /// Which property.
        kind: CheckKind,
        /// The relation expression checked.
        expr: Expr,
        /// The check's name (after `as`).
        name: String,
    },
}

/// A parsed `.cat` program.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CatProgram {
    stmts: Vec<Stmt>,
}

/// Result of one named check on one execution.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CheckOutcome {
    /// The check's name.
    pub name: String,
    /// Which property was checked.
    pub kind: CheckKind,
    /// Whether the execution satisfied it.
    pub passed: bool,
}

/// `.cat` parse or evaluation failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CatError(pub String);

impl fmt::Display for CatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cat error: {}", self.0)
    }
}

impl std::error::Error for CatError {}

// ---------------------------------------------------------------- lexing

#[derive(Clone, PartialEq, Eq, Debug)]
enum Tok {
    Ident(String),
    Let,
    As,
    Acyclic,
    Irreflexive,
    Empty,
    Pipe,
    Amp,
    Backslash,
    Semi,
    LParen,
    RParen,
    Eq,
    Inv,
    Plus,
    Star,
    Question,
    Zero,
}

fn lex(src: &str) -> Result<Vec<Tok>, CatError> {
    let mut toks = Vec::new();
    let b: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '/' if b.get(i + 1) == Some(&'/') => {
                while i < b.len() && b[i] != '\n' {
                    i += 1;
                }
            }
            '(' if b.get(i + 1) == Some(&'*') => {
                i += 2;
                while i + 1 < b.len() && !(b[i] == '*' && b[i + 1] == ')') {
                    i += 1;
                }
                i = (i + 2).min(b.len());
            }
            '|' => {
                toks.push(Tok::Pipe);
                i += 1;
            }
            '&' => {
                toks.push(Tok::Amp);
                i += 1;
            }
            '\\' => {
                toks.push(Tok::Backslash);
                i += 1;
            }
            ';' => {
                toks.push(Tok::Semi);
                i += 1;
            }
            '(' => {
                toks.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                toks.push(Tok::RParen);
                i += 1;
            }
            '=' => {
                toks.push(Tok::Eq);
                i += 1;
            }
            '+' => {
                toks.push(Tok::Plus);
                i += 1;
            }
            '*' => {
                toks.push(Tok::Star);
                i += 1;
            }
            '?' => {
                toks.push(Tok::Question);
                i += 1;
            }
            '^' => {
                if b.get(i + 1) == Some(&'-') && b.get(i + 2) == Some(&'1') {
                    toks.push(Tok::Inv);
                    i += 3;
                } else {
                    return Err(CatError(format!("stray '^' at offset {i}")));
                }
            }
            '0' if !b
                .get(i + 1)
                .is_some_and(|c| c.is_alphanumeric() || *c == '.' || *c == '-') =>
            {
                toks.push(Tok::Zero);
                i += 1;
            }
            c if c.is_alphanumeric() || c == '_' || c == '.' => {
                let start = i;
                while i < b.len()
                    && (b[i].is_alphanumeric() || b[i] == '_' || b[i] == '.' || b[i] == '-')
                {
                    i += 1;
                }
                let word: String = b[start..i].iter().collect();
                toks.push(match word.as_str() {
                    "let" => Tok::Let,
                    "as" => Tok::As,
                    "acyclic" => Tok::Acyclic,
                    "irreflexive" => Tok::Irreflexive,
                    "empty" => Tok::Empty,
                    _ => Tok::Ident(word),
                });
            }
            other => return Err(CatError(format!("unexpected character {other:?}"))),
        }
    }
    Ok(toks)
}

// ---------------------------------------------------------------- parsing

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String, CatError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(CatError(format!("expected identifier, found {other:?}"))),
        }
    }

    fn stmt(&mut self) -> Result<Stmt, CatError> {
        match self.next() {
            Some(Tok::Let) => {
                let name = self.expect_ident()?;
                let param = if self.eat(&Tok::LParen) {
                    let p = self.expect_ident()?;
                    if !self.eat(&Tok::RParen) {
                        return Err(CatError("expected ')' after parameter".into()));
                    }
                    Some(p)
                } else {
                    None
                };
                if !self.eat(&Tok::Eq) {
                    return Err(CatError(format!("expected '=' in let {name}")));
                }
                let body = self.expr()?;
                Ok(Stmt::Let { name, param, body })
            }
            Some(tok @ (Tok::Acyclic | Tok::Irreflexive | Tok::Empty)) => {
                let kind = match tok {
                    Tok::Acyclic => CheckKind::Acyclic,
                    Tok::Irreflexive => CheckKind::Irreflexive,
                    _ => CheckKind::Empty,
                };
                let expr = self.expr()?;
                if !self.eat(&Tok::As) {
                    return Err(CatError("expected 'as' after check expression".into()));
                }
                let name = self.expect_ident()?;
                Ok(Stmt::Check { kind, expr, name })
            }
            other => Err(CatError(format!("expected statement, found {other:?}"))),
        }
    }

    // Precedence (loosest→tightest): | ; ; ; \ ; & ; postfix ; atom.
    fn expr(&mut self) -> Result<Expr, CatError> {
        let mut e = self.seq_expr()?;
        while self.eat(&Tok::Pipe) {
            let rhs = self.seq_expr()?;
            e = Expr::Union(Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn seq_expr(&mut self) -> Result<Expr, CatError> {
        let mut e = self.diff_expr()?;
        while self.eat(&Tok::Semi) {
            let rhs = self.diff_expr()?;
            e = Expr::Seq(Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn diff_expr(&mut self) -> Result<Expr, CatError> {
        let mut e = self.inter_expr()?;
        while self.eat(&Tok::Backslash) {
            let rhs = self.inter_expr()?;
            e = Expr::Diff(Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn inter_expr(&mut self) -> Result<Expr, CatError> {
        let mut e = self.postfix_expr()?;
        while self.eat(&Tok::Amp) {
            let rhs = self.postfix_expr()?;
            e = Expr::Inter(Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn postfix_expr(&mut self) -> Result<Expr, CatError> {
        let mut e = self.atom()?;
        loop {
            if self.eat(&Tok::Inv) {
                e = Expr::Inverse(Box::new(e));
            } else if self.eat(&Tok::Plus) {
                e = Expr::Plus(Box::new(e));
            } else if self.eat(&Tok::Star) {
                e = Expr::Star(Box::new(e));
            } else if self.eat(&Tok::Question) {
                e = Expr::Opt(Box::new(e));
            } else {
                return Ok(e);
            }
        }
    }

    fn atom(&mut self) -> Result<Expr, CatError> {
        match self.next() {
            Some(Tok::Ident(name)) => {
                if self.eat(&Tok::LParen) {
                    let arg = self.expr()?;
                    if !self.eat(&Tok::RParen) {
                        return Err(CatError(format!("expected ')' after {name}(…")));
                    }
                    Ok(Expr::App(name, Box::new(arg)))
                } else {
                    Ok(Expr::Id(name))
                }
            }
            Some(Tok::LParen) => {
                let e = self.expr()?;
                if !self.eat(&Tok::RParen) {
                    return Err(CatError("expected ')'".into()));
                }
                Ok(e)
            }
            Some(Tok::Zero) => Ok(Expr::Zero),
            other => Err(CatError(format!("expected expression, found {other:?}"))),
        }
    }
}

impl CatProgram {
    /// Parses a `.cat` source text.
    ///
    /// # Errors
    ///
    /// Returns a [`CatError`] on lexical or syntactic problems.
    pub fn parse(src: &str) -> Result<Self, CatError> {
        let toks = lex(src)?;
        let mut p = Parser { toks, pos: 0 };
        let mut stmts = Vec::new();
        while p.peek().is_some() {
            stmts.push(p.stmt()?);
        }
        Ok(CatProgram { stmts })
    }

    /// The parsed statements.
    pub fn stmts(&self) -> &[Stmt] {
        &self.stmts
    }

    /// Names of all checks, in order.
    pub fn check_names(&self) -> Vec<&str> {
        self.stmts
            .iter()
            .filter_map(|s| match s {
                Stmt::Check { name, .. } => Some(name.as_str()),
                _ => None,
            })
            .collect()
    }

    /// Evaluates every check against the given base relations and event
    /// sorts.
    ///
    /// # Errors
    ///
    /// Returns a [`CatError`] for unbound identifiers, applying a
    /// non-function, or using a function where a relation is expected.
    pub fn check(
        &self,
        base: &BTreeMap<String, Relation>,
        reads: &EventSet,
        writes: &EventSet,
    ) -> Result<Vec<CheckOutcome>, CatError> {
        let n = base.values().next().map(Relation::universe).unwrap_or(0);
        let mut env = Env {
            base,
            lets: BTreeMap::new(),
            reads,
            writes,
            n,
        };
        let mut outcomes = Vec::new();
        for stmt in &self.stmts {
            match stmt {
                Stmt::Let { name, param, body } => {
                    let v = match param {
                        None => Binding::Rel(env.eval(body)?),
                        Some(p) => Binding::Fun {
                            param: p.clone(),
                            body: body.clone(),
                        },
                    };
                    env.lets.insert(name.clone(), v);
                }
                Stmt::Check { kind, expr, name } => {
                    let rel = env.eval(expr)?;
                    let passed = match kind {
                        CheckKind::Acyclic => rel.is_acyclic(),
                        CheckKind::Irreflexive => rel.is_irreflexive(),
                        CheckKind::Empty => rel.is_empty(),
                    };
                    outcomes.push(CheckOutcome {
                        name: name.clone(),
                        kind: *kind,
                        passed,
                    });
                }
            }
        }
        Ok(outcomes)
    }

    /// `true` iff every check passes.
    ///
    /// # Errors
    ///
    /// See [`CatProgram::check`].
    pub fn allows(
        &self,
        base: &BTreeMap<String, Relation>,
        reads: &EventSet,
        writes: &EventSet,
    ) -> Result<bool, CatError> {
        Ok(self.check(base, reads, writes)?.iter().all(|c| c.passed))
    }
}

#[derive(Clone)]
enum Binding {
    Rel(Relation),
    Fun { param: String, body: Expr },
}

struct Env<'a> {
    base: &'a BTreeMap<String, Relation>,
    lets: BTreeMap<String, Binding>,
    reads: &'a EventSet,
    writes: &'a EventSet,
    n: usize,
}

impl Env<'_> {
    fn lookup(&self, name: &str) -> Result<Binding, CatError> {
        if let Some(b) = self.lets.get(name) {
            return Ok(b.clone());
        }
        if let Some(r) = self.base.get(name) {
            return Ok(Binding::Rel(r.clone()));
        }
        Err(CatError(format!("unbound identifier {name:?}")))
    }

    fn eval(&mut self, e: &Expr) -> Result<Relation, CatError> {
        match e {
            Expr::Zero => Ok(Relation::empty(self.n)),
            Expr::Id(name) => match self.lookup(name)? {
                Binding::Rel(r) => Ok(r),
                Binding::Fun { .. } => {
                    Err(CatError(format!("{name:?} is a function, not a relation")))
                }
            },
            Expr::App(name, arg) => {
                let argv = self.eval(arg)?;
                match name.as_str() {
                    // Sort filters.
                    "WW" => Ok(argv.restrict(self.writes, self.writes)),
                    "WR" => Ok(argv.restrict(self.writes, self.reads)),
                    "RW" => Ok(argv.restrict(self.reads, self.writes)),
                    "RR" => Ok(argv.restrict(self.reads, self.reads)),
                    _ => match self.lookup(name)? {
                        Binding::Fun { param, body } => {
                            // Bind the parameter, evaluate, restore.
                            let saved = self.lets.insert(param.clone(), Binding::Rel(argv));
                            let result = self.eval(&body);
                            match saved {
                                Some(v) => {
                                    self.lets.insert(param, v);
                                }
                                None => {
                                    self.lets.remove(&param);
                                }
                            }
                            result
                        }
                        Binding::Rel(_) => Err(CatError(format!(
                            "{name:?} is a relation, cannot be applied"
                        ))),
                    },
                }
            }
            Expr::Union(a, b) => Ok(self.eval(a)?.union(&self.eval(b)?)),
            Expr::Inter(a, b) => Ok(self.eval(a)?.inter(&self.eval(b)?)),
            Expr::Diff(a, b) => Ok(self.eval(a)?.diff(&self.eval(b)?)),
            Expr::Seq(a, b) => Ok(self.eval(a)?.seq(&self.eval(b)?)),
            Expr::Inverse(a) => Ok(self.eval(a)?.inverse()),
            Expr::Plus(a) => Ok(self.eval(a)?.transitive_closure()),
            Expr::Star(a) => Ok(self.eval(a)?.reflexive_transitive_closure()),
            Expr::Opt(a) => Ok(self.eval(a)?.optional()),
        }
    }
}

impl fmt::Display for Expr {
    /// Pretty-prints with explicit parentheses around every binary
    /// operation, so output re-parses to the same tree regardless of
    /// precedence.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Zero => write!(f, "0"),
            Expr::Id(name) => write!(f, "{name}"),
            Expr::App(name, arg) => write!(f, "{name}({arg})"),
            Expr::Union(a, b) => write!(f, "({a} | {b})"),
            Expr::Inter(a, b) => write!(f, "({a} & {b})"),
            Expr::Diff(a, b) => write!(f, "({a} \\ {b})"),
            Expr::Seq(a, b) => write!(f, "({a} ; {b})"),
            Expr::Inverse(a) => write!(f, "({a})^-1"),
            Expr::Plus(a) => write!(f, "({a})+"),
            Expr::Star(a) => write!(f, "({a})*"),
            Expr::Opt(a) => write!(f, "({a})?"),
        }
    }
}

impl fmt::Display for Stmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stmt::Let {
                name,
                param: None,
                body,
            } => write!(f, "let {name} = {body}"),
            Stmt::Let {
                name,
                param: Some(p),
                body,
            } => write!(f, "let {name}({p}) = {body}"),
            Stmt::Check { kind, expr, name } => write!(f, "{kind} {expr} as {name}"),
        }
    }
}

impl fmt::Display for CatProgram {
    /// Renders the program one statement per line; the output re-parses
    /// to an equal program.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for stmt in &self.stmts {
            writeln!(f, "{stmt}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base3() -> (BTreeMap<String, Relation>, EventSet, EventSet) {
        // Universe {0,1,2}: 0 is a write, 1 a read, 2 a write.
        let mut m = BTreeMap::new();
        m.insert(
            "po".to_string(),
            Relation::from_pairs(3, [(0, 1), (1, 2), (0, 2)]),
        );
        m.insert("rf".to_string(), Relation::from_pairs(3, [(2, 1)]));
        let writes = EventSet::from_iter_n(3, [0, 2]);
        let reads = EventSet::from_iter_n(3, [1]);
        (m, reads, writes)
    }

    #[test]
    fn parses_paper_fig15() {
        let src = "
let com = rf | co | fr
let po-loc-llh = WW(po-loc) | WR(po-loc) | RW(po-loc)
acyclic (po-loc-llh | com) as sc-per-loc-llh
let dp = addr | data | ctrl
acyclic (dp | rf) as no-thin-air
let rmo(fence) = dp | fence | rfe | co | fr
";
        let p = CatProgram::parse(src).unwrap();
        assert_eq!(p.stmts().len(), 6);
        assert_eq!(p.check_names(), vec!["sc-per-loc-llh", "no-thin-air"]);
        // `rmo` is a function definition.
        assert!(matches!(
            &p.stmts()[5],
            Stmt::Let {
                name,
                param: Some(param),
                ..
            } if name == "rmo" && param == "fence"
        ));
    }

    #[test]
    fn comments_are_skipped() {
        let src = "// line comment\n(* block *) let x = po\nacyclic x as c1";
        let p = CatProgram::parse(src).unwrap();
        assert_eq!(p.stmts().len(), 2);
    }

    #[test]
    fn filters_restrict_by_sort() {
        let (base, reads, writes) = base3();
        let p = CatProgram::parse("empty WW(po) as onlyww").unwrap();
        // po pairs: (0,1) W→R, (1,2) R→W, (0,2) W→W ⇒ WW(po) nonempty.
        let out = p.check(&base, &reads, &writes).unwrap();
        assert!(!out[0].passed);
        let p2 = CatProgram::parse("empty RR(po) as onlyrr").unwrap();
        assert!(p2.check(&base, &reads, &writes).unwrap()[0].passed);
    }

    #[test]
    fn function_application_substitutes() {
        let (base, reads, writes) = base3();
        let src = "
let f(x) = x | rf
acyclic f(po) as c
";
        let p = CatProgram::parse(src).unwrap();
        // po ∪ rf has cycle 1→2→1.
        let out = p.check(&base, &reads, &writes).unwrap();
        assert!(!out[0].passed);
    }

    #[test]
    fn operators_and_postfix() {
        let (base, reads, writes) = base3();
        let checks = [
            ("empty po & rf as c", true),    // disjoint
            ("empty po \\ po as c", true),   // difference with self
            ("empty (po ; rf) as c", false), // (0,1);(… ) — po;rf has (1,1)? po(1,2), rf(2,1) ⇒ (1,1)
            ("irreflexive (po ; rf) as c", false),
            ("empty rf^-1 as c", false),
            ("acyclic po+ as c", true),
            ("irreflexive po* as c", false), // reflexive closure has self-pairs
            ("empty 0 as c", true),
            ("acyclic po? as c", false), // id pairs are self-loops
        ];
        for (src, expect) in checks {
            let p = CatProgram::parse(src).unwrap();
            let out = p.check(&base, &reads, &writes).unwrap();
            assert_eq!(out[0].passed, expect, "{src}");
        }
    }

    #[test]
    fn unbound_identifier_reported() {
        let (base, reads, writes) = base3();
        let p = CatProgram::parse("acyclic nosuch as c").unwrap();
        let err = p.check(&base, &reads, &writes).unwrap_err();
        assert!(err.0.contains("unbound"), "{err}");
    }

    #[test]
    fn applying_relation_is_an_error() {
        let (base, reads, writes) = base3();
        let p = CatProgram::parse("acyclic po(rf) as c").unwrap();
        assert!(p.check(&base, &reads, &writes).is_err());
    }

    #[test]
    fn function_as_relation_is_an_error() {
        let (base, reads, writes) = base3();
        let p = CatProgram::parse("let f(x) = x\nacyclic f as c").unwrap();
        assert!(p.check(&base, &reads, &writes).is_err());
    }

    #[test]
    fn hyphenated_and_dotted_identifiers() {
        let src = "let cta-fence = membar.cta | membar.gl\nacyclic cta-fence as c";
        let p = CatProgram::parse(src).unwrap();
        let mut base = BTreeMap::new();
        base.insert("membar.cta".to_string(), Relation::from_pairs(2, [(0, 1)]));
        base.insert("membar.gl".to_string(), Relation::empty(2));
        let out = p
            .check(&base, &EventSet::empty(2), &EventSet::empty(2))
            .unwrap();
        assert!(out[0].passed);
    }

    #[test]
    fn allows_requires_all_checks() {
        let (base, reads, writes) = base3();
        let src = "acyclic po as good\nacyclic (po | rf) as bad";
        let p = CatProgram::parse(src).unwrap();
        assert!(!p.allows(&base, &reads, &writes).unwrap());
        let out = p.check(&base, &reads, &writes).unwrap();
        assert!(out[0].passed && !out[1].passed);
    }

    #[test]
    fn parse_errors() {
        assert!(CatProgram::parse("let = po").is_err());
        assert!(CatProgram::parse("acyclic po").is_err()); // missing as
        assert!(CatProgram::parse("let f(x = x").is_err());
        assert!(CatProgram::parse("bogus po as c").is_err());
        assert!(CatProgram::parse("let x = po ^ 2").is_err()); // stray ^
    }
}
