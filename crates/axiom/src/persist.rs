//! Persistent, shareable verdict caches (the `weakgpu-cache/1` format).
//!
//! A [`VerdictCache`] pays the cache-miss
//! enumeration cost once per process — and then throws the result away
//! at exit. This module serialises the cache to a versioned on-disk
//! format so the *next* process (another CI shard, tomorrow's sweep, a
//! long-running `weakgpu serve` daemon) starts warm:
//!
//! * **Versioned** — the first line is the schema tag
//!   [`SCHEMA`] (`weakgpu-cache/1`); a loader that meets any other tag
//!   refuses with a diagnostic instead of misreading the records.
//! * **Line-oriented and append-friendly** — after the header, each
//!   line is one complete `key → ModelOutcomes` record, so a writer can
//!   append new judgements to an existing file ([`CacheWriter`]) and a
//!   truncated tail invalidates only itself (and is *detected*: every
//!   record carries its own field and outcome counts).
//! * **Deterministic** — [`save`] writes records sorted by key, so two
//!   caches with the same entries produce byte-identical files, and
//!   [`merge`] unions caches with a first-wins rule that does not depend
//!   on hash order.
//!
//! Records are keyed by the full
//! [`VerdictCache::entry_key`](crate::cache::VerdictCache::entry_key)
//! (model name, enumeration config, test shape), so one file can hold
//! verdicts for several models and configs side by side. The key is an
//! opaque string to this module: a format change upstream (say a new
//! `EnumConfig` field) simply stops old entries from being hit — it can
//! never make them answer the wrong question.
//!
//! ```
//! use weakgpu_axiom::cache::VerdictCache;
//! use weakgpu_axiom::enumerate::EnumConfig;
//! use weakgpu_axiom::model::sc_model;
//! use weakgpu_axiom::persist;
//! use weakgpu_litmus::{corpus, ThreadScope};
//!
//! let mp = corpus::mp(ThreadScope::InterCta, None);
//! let model = sc_model();
//! let cfg = EnumConfig::default();
//! let mut cache = VerdictCache::new();
//! cache.outcomes(&mp, &model, &cfg).unwrap();
//!
//! // Serialise, restore, and the warm cache answers without enumerating.
//! let file = persist::render(&cache);
//! let mut warm = persist::parse(&file).unwrap();
//! let verdict = warm.outcomes(&mp, &model, &cfg).unwrap();
//! assert_eq!((warm.hits(), warm.warm_hits(), warm.misses()), (1, 1, 0));
//! assert!(!verdict.condition_witnessed);
//! ```

use std::collections::BTreeSet;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read as _, Write as _};
use std::path::Path;

use weakgpu_litmus::{FinalExpr, Outcome};

use crate::cache::VerdictCache;
use crate::enumerate::ModelOutcomes;

/// Version tag of the on-disk cache format; the file's first line.
pub const SCHEMA: &str = "weakgpu-cache/1";

/// Why a cache file could not be written or restored.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PersistError {
    /// The underlying file operation failed.
    Io(String),
    /// The file's schema tag is not [`SCHEMA`].
    Version(String),
    /// A record is malformed (wrong field count, bad number, truncated
    /// outcome list, …). Carries the 1-based line number.
    Format(usize, String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(msg) => write!(f, "cache file: {msg}"),
            PersistError::Version(found) => write!(
                f,
                "cache file has schema {found:?}, expected {SCHEMA:?} — refusing to load"
            ),
            PersistError::Format(line, msg) => {
                write!(f, "cache file line {line}: {msg}")
            }
        }
    }
}

impl std::error::Error for PersistError {}

fn io_err(path: &Path, e: std::io::Error) -> PersistError {
    PersistError::Io(format!("{}: {e}", path.display()))
}

/// Escapes the characters that would break the line/tab framing.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\u{0}' => out.push_str("\\0"),
            c => out.push(c),
        }
    }
    out
}

fn unesc(s: &str, line: usize) -> Result<String, PersistError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('0') => out.push('\u{0}'),
            other => {
                return Err(PersistError::Format(
                    line,
                    format!("bad escape {other:?} (truncated or corrupt record)"),
                ))
            }
        }
    }
    Ok(out)
}

/// Renders one outcome in its canonical display form (`0:r1=1; x=2; `),
/// which [`parse_outcome`] inverts exactly: register and location names
/// exclude `:`, `=` and `;`, so the rendering is unambiguous.
fn render_outcome(o: &Outcome) -> String {
    o.to_string()
}

fn parse_outcome(s: &str, line: usize) -> Result<Outcome, PersistError> {
    let mut out = Outcome::new();
    for binding in s.split_terminator("; ") {
        let (expr, value) = binding.split_once('=').ok_or_else(|| {
            PersistError::Format(line, format!("outcome binding {binding:?} has no '='"))
        })?;
        let value: i64 = value.parse().map_err(|_| {
            PersistError::Format(line, format!("outcome value {value:?} is not an integer"))
        })?;
        let expr = match expr.split_once(':') {
            // `t:r` — locations cannot contain ':', so this form is
            // always a register.
            Some((tid, reg)) if !reg.is_empty() => {
                let tid: usize = tid.parse().map_err(|_| {
                    PersistError::Format(line, format!("bad thread id in {expr:?}"))
                })?;
                FinalExpr::reg(tid, reg)
            }
            Some(_) => {
                return Err(PersistError::Format(
                    line,
                    format!("bad final expression {expr:?}"),
                ))
            }
            None => {
                if expr.is_empty() {
                    return Err(PersistError::Format(line, "empty final expression".into()));
                }
                FinalExpr::mem(expr)
            }
        };
        out.set(expr, value);
    }
    Ok(out)
}

/// Renders one `key → verdict` record as a single line (no trailing
/// newline): tab-separated `key`, `num_candidates`, `num_allowed`,
/// `condition_witnessed`, `outcome count`, then one field per outcome in
/// `all_outcomes` order, `*`-prefixed when the outcome is also allowed.
pub fn render_record(key: &str, v: &ModelOutcomes) -> String {
    let mut line = format!(
        "{}\t{}\t{}\t{}\t{}",
        esc(key),
        v.num_candidates,
        v.num_allowed,
        u8::from(v.condition_witnessed),
        v.all_outcomes.len()
    );
    for o in &v.all_outcomes {
        line.push('\t');
        if v.allowed_outcomes.contains(o) {
            line.push('*');
        }
        line.push_str(&esc(&render_outcome(o)));
    }
    line
}

fn parse_record(text: &str, line: usize) -> Result<(String, ModelOutcomes), PersistError> {
    let fields: Vec<&str> = text.split('\t').collect();
    if fields.len() < 5 {
        return Err(PersistError::Format(
            line,
            format!(
                "record has {} fields, expected at least 5 (truncated?)",
                fields.len()
            ),
        ));
    }
    let key = unesc(fields[0], line)?;
    let parse_count = |s: &str, what: &str| -> Result<usize, PersistError> {
        s.parse().map_err(|_| {
            PersistError::Format(line, format!("{what} {s:?} is not a non-negative integer"))
        })
    };
    let num_candidates = parse_count(fields[1], "candidate count")?;
    let num_allowed = parse_count(fields[2], "allowed count")?;
    let condition_witnessed = match fields[3] {
        "0" => false,
        "1" => true,
        other => {
            return Err(PersistError::Format(
                line,
                format!("witness flag {other:?} is neither 0 nor 1"),
            ))
        }
    };
    let n_outcomes = parse_count(fields[4], "outcome count")?;
    if fields.len() != 5 + n_outcomes {
        return Err(PersistError::Format(
            line,
            format!(
                "record declares {n_outcomes} outcomes but carries {} (truncated?)",
                fields.len() - 5
            ),
        ));
    }
    let mut all_outcomes = BTreeSet::new();
    let mut allowed_outcomes = BTreeSet::new();
    for field in &fields[5..] {
        let (allowed, text) = match field.strip_prefix('*') {
            Some(rest) => (true, rest),
            None => (false, *field),
        };
        let outcome = parse_outcome(&unesc(text, line)?, line)?;
        if allowed {
            allowed_outcomes.insert(outcome.clone());
        }
        all_outcomes.insert(outcome);
    }
    Ok((
        key,
        ModelOutcomes {
            all_outcomes,
            allowed_outcomes,
            num_candidates,
            num_allowed,
            condition_witnessed,
        },
    ))
}

/// Serialises `cache` to the `weakgpu-cache/1` text format: the schema
/// header, then one record per entry, sorted by key so equal caches
/// render byte-identically.
pub fn render(cache: &VerdictCache) -> String {
    let mut entries: Vec<(&str, &ModelOutcomes)> = cache.entries().collect();
    entries.sort_by_key(|(k, _)| *k);
    let mut out = String::with_capacity(64 * (entries.len() + 1));
    out.push_str(SCHEMA);
    out.push('\n');
    for (key, v) in entries {
        out.push_str(&render_record(key, v));
        out.push('\n');
    }
    out
}

/// Parses a `weakgpu-cache/1` document into a cache of warm entries.
///
/// Duplicate keys are allowed (they arise from appending): the **last**
/// record wins, matching append semantics. Restored entries count as
/// warm — see [`VerdictCache::warm_hits`](crate::cache::VerdictCache::warm_hits).
///
/// # Errors
///
/// [`PersistError::Version`] when the header is not [`SCHEMA`];
/// [`PersistError::Format`] (with the line number) for any malformed or
/// truncated record. Never panics on corrupt input.
pub fn parse(src: &str) -> Result<VerdictCache, PersistError> {
    let mut lines = src.lines();
    let header = lines.next().unwrap_or("").trim_end();
    if header != SCHEMA {
        return Err(PersistError::Version(
            header.chars().take(64).collect::<String>(),
        ));
    }
    // Later duplicates must win, but `insert_warm` keeps the first
    // occupant — so collect last-wins into a map first.
    let mut records: std::collections::BTreeMap<String, ModelOutcomes> = Default::default();
    for (i, text) in lines.enumerate() {
        if text.is_empty() {
            continue;
        }
        let (key, outcomes) = parse_record(text, i + 2)?;
        records.insert(key, outcomes);
    }
    let mut cache = VerdictCache::new();
    for (key, outcomes) in records {
        cache.insert_warm(key, outcomes);
    }
    Ok(cache)
}

/// Writes `cache` to `path` (atomically: a temp file in the same
/// directory, then rename), replacing any previous contents.
///
/// # Errors
///
/// [`PersistError::Io`] with the failing path.
pub fn save(path: &Path, cache: &VerdictCache) -> Result<(), PersistError> {
    let tmp = path.with_extension("wgc.tmp");
    std::fs::write(&tmp, render(cache)).map_err(|e| io_err(&tmp, e))?;
    std::fs::rename(&tmp, path).map_err(|e| io_err(path, e))
}

/// Loads a cache file written by [`save`] (or grown by [`CacheWriter`]).
///
/// # Errors
///
/// [`PersistError::Io`] when the file cannot be read, otherwise as
/// [`parse`].
pub fn load(path: &Path) -> Result<VerdictCache, PersistError> {
    let mut src = String::new();
    File::open(path)
        .and_then(|mut f| f.read_to_string(&mut src))
        .map_err(|e| io_err(path, e))?;
    parse(&src)
}

/// Unions `caches` into one, deterministically: entries are taken in
/// argument order and the **first** cache holding a key wins (for equal
/// keys the verdicts are equal anyway — enumeration is deterministic —
/// so the rule only fixes which warm flag survives). Merging the same
/// inputs in the same order always yields the same cache, and
/// [`render`] of the result is byte-stable.
pub fn merge(caches: impl IntoIterator<Item = VerdictCache>) -> VerdictCache {
    let mut out = VerdictCache::new();
    for cache in caches {
        out.absorb(cache);
    }
    out
}

/// An append-friendly incremental writer: create (or reopen) a cache
/// file and stream records to it as judgements complete, without
/// rewriting earlier entries. A reader sees every fully-written record;
/// a torn final line is rejected by [`load`] with a line diagnostic
/// rather than silently dropped.
pub struct CacheWriter {
    out: BufWriter<File>,
}

impl CacheWriter {
    /// Creates `path` fresh (truncating any previous file) and writes
    /// the schema header.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] with the failing path.
    pub fn create(path: &Path) -> Result<CacheWriter, PersistError> {
        let mut out = BufWriter::new(File::create(path).map_err(|e| io_err(path, e))?);
        writeln!(out, "{SCHEMA}").map_err(|e| io_err(path, e))?;
        Ok(CacheWriter { out })
    }

    /// Reopens an existing cache file for appending, after checking its
    /// header really is [`SCHEMA`] — appending records to a file some
    /// other tool owns would corrupt both.
    ///
    /// # Errors
    ///
    /// [`PersistError::Version`] on a foreign header, [`PersistError::Io`]
    /// on file errors.
    pub fn append(path: &Path) -> Result<CacheWriter, PersistError> {
        let mut header = String::new();
        File::open(path)
            .and_then(|f| {
                let mut r = std::io::BufReader::new(f);
                std::io::BufRead::read_line(&mut r, &mut header).map(|_| ())
            })
            .map_err(|e| io_err(path, e))?;
        if header.trim_end() != SCHEMA {
            return Err(PersistError::Version(
                header.trim_end().chars().take(64).collect(),
            ));
        }
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| io_err(path, e))?;
        Ok(CacheWriter {
            out: BufWriter::new(file),
        })
    }

    /// Appends one record.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] on write failure.
    pub fn write_entry(&mut self, key: &str, verdict: &ModelOutcomes) -> Result<(), PersistError> {
        writeln!(self.out, "{}", render_record(key, verdict))
            .map_err(|e| PersistError::Io(e.to_string()))
    }

    /// Flushes buffered records to the file.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] on flush failure.
    pub fn flush(&mut self) -> Result<(), PersistError> {
        self.out
            .flush()
            .map_err(|e| PersistError::Io(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::EnumConfig;
    use crate::model::sc_model;
    use weakgpu_litmus::{corpus, ThreadScope};

    fn judged_cache() -> VerdictCache {
        let mut cache = VerdictCache::new();
        let model = sc_model();
        let cfg = EnumConfig::default();
        for test in [
            corpus::mp(ThreadScope::InterCta, None),
            corpus::sb(ThreadScope::InterCta, None),
            corpus::corr(),
        ] {
            cache.outcomes(&test, &model, &cfg).unwrap();
        }
        cache
    }

    #[test]
    fn outcome_rendering_roundtrips() {
        let o: Outcome = [
            (FinalExpr::reg(0, "r1"), 1),
            (FinalExpr::reg(10, "r2"), -7),
            (FinalExpr::mem("x"), 42),
        ]
        .into_iter()
        .collect();
        assert_eq!(parse_outcome(&render_outcome(&o), 1).unwrap(), o);
        assert_eq!(parse_outcome("", 1).unwrap(), Outcome::new());
    }

    #[test]
    fn render_is_deterministic_and_parses_back() {
        let cache = judged_cache();
        let a = render(&cache);
        let b = render(&judged_cache());
        assert_eq!(a, b, "equal caches must render byte-identically");
        let restored = parse(&a).unwrap();
        assert_eq!(restored.len(), cache.len());
        assert_eq!(restored.warm_entries(), cache.len() as u64);
        // Re-rendering the restored cache is a fixed point.
        assert_eq!(render(&restored), a);
    }

    #[test]
    fn wrong_version_is_rejected() {
        let err = parse("weakgpu-cache/9\n").unwrap_err();
        assert!(matches!(err, PersistError::Version(_)), "{err}");
        assert!(err.to_string().contains("weakgpu-cache/1"), "{err}");
        assert!(parse("").is_err());
        assert!(parse("garbage").is_err());
    }

    #[test]
    fn truncated_records_are_rejected_with_a_line_number() {
        let full = render(&judged_cache());
        // Cut the file mid-record: drop the last 10 bytes.
        let cut = &full[..full.len() - 10];
        let err = parse(cut).unwrap_err();
        match &err {
            PersistError::Format(line, msg) => {
                assert!(*line >= 2, "line {line}");
                assert!(!msg.is_empty());
            }
            other => panic!("expected Format, got {other:?}"),
        }
        // A record claiming more outcomes than it carries is caught.
        let lying = format!("{SCHEMA}\nkey\t4\t2\t1\t3\t*0:r1=1; \n");
        let err = parse(&lying).unwrap_err();
        assert!(err.to_string().contains("declares 3 outcomes"), "{err}");
    }

    #[test]
    fn merge_is_deterministic_first_wins() {
        let mut a = VerdictCache::new();
        let mut b = VerdictCache::new();
        let v1 = ModelOutcomes {
            all_outcomes: BTreeSet::new(),
            allowed_outcomes: BTreeSet::new(),
            num_candidates: 1,
            num_allowed: 1,
            condition_witnessed: false,
        };
        let v2 = ModelOutcomes {
            num_candidates: 2,
            ..v1.clone()
        };
        a.insert_warm("shared".into(), v1.clone());
        a.insert_warm("only-a".into(), v1.clone());
        b.insert_warm("shared".into(), v2.clone());
        b.insert_warm("only-b".into(), v2.clone());
        let ab = merge([a, b]);
        assert_eq!(ab.len(), 3);
        let shared = ab
            .entries()
            .find(|(k, _)| *k == "shared")
            .map(|(_, v)| v.num_candidates);
        assert_eq!(shared, Some(1), "first cache must win on conflicts");
        // Determinism: same inputs, same render.
        let mut a2 = VerdictCache::new();
        let mut b2 = VerdictCache::new();
        a2.insert_warm("shared".into(), v1.clone());
        a2.insert_warm("only-a".into(), v1);
        b2.insert_warm("shared".into(), v2.clone());
        b2.insert_warm("only-b".into(), v2);
        assert_eq!(render(&ab), render(&merge([a2, b2])));
    }

    #[test]
    fn appended_records_load_and_last_wins() {
        let dir = std::env::temp_dir().join(format!("weakgpu-persist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("append.wgc");
        let v1 = ModelOutcomes {
            all_outcomes: BTreeSet::new(),
            allowed_outcomes: BTreeSet::new(),
            num_candidates: 1,
            num_allowed: 0,
            condition_witnessed: false,
        };
        let v2 = ModelOutcomes {
            num_candidates: 9,
            ..v1.clone()
        };
        let mut w = CacheWriter::create(&path).unwrap();
        w.write_entry("k1", &v1).unwrap();
        w.flush().unwrap();
        drop(w);
        let mut w = CacheWriter::append(&path).unwrap();
        w.write_entry("k2", &v1).unwrap();
        w.write_entry("k1", &v2).unwrap();
        w.flush().unwrap();
        drop(w);
        let cache = load(&path).unwrap();
        assert_eq!(cache.len(), 2);
        let k1 = cache
            .entries()
            .find(|(k, _)| *k == "k1")
            .map(|(_, v)| v.num_candidates);
        assert_eq!(k1, Some(9), "later appended record must win");
        // Appending to a foreign file is refused.
        let alien = dir.join("alien.txt");
        std::fs::write(&alien, "something else\n").unwrap();
        assert!(matches!(
            CacheWriter::append(&alien),
            Err(PersistError::Version(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
