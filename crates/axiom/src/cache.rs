//! Model-verdict caching for large test families.
//!
//! A paper-scale validation sweep judges ~18k generated tests against a
//! model, and each test is run on several chips — but the axiomatic
//! verdict depends only on the test's *shape* (instructions, register
//! initialisation, scope tree, memory regions and condition), never on
//! the chip. [`shape_key`] extracts a canonical serialisation of exactly
//! the inputs [`model_outcomes`](crate::enumerate::model_outcomes) consumes, and [`VerdictCache`] memoises
//! enumeration results by that key, so re-judging the same shape — the
//! same test on another chip, or structurally identical tests under
//! different names — is a hash lookup instead of a fresh enumeration.
//!
//! ```
//! use weakgpu_axiom::cache::{shape_key, VerdictCache};
//! use weakgpu_axiom::enumerate::EnumConfig;
//! use weakgpu_axiom::model::sc_model;
//! use weakgpu_litmus::{corpus, ThreadScope};
//!
//! let mp = corpus::mp(ThreadScope::InterCta, None);
//! // The key ignores name and doc: a renamed copy shares the verdict.
//! let renamed = mp.clone().with_name("mp-renamed").with_doc("other");
//! assert_eq!(shape_key(&mp), shape_key(&renamed));
//!
//! let mut cache = VerdictCache::new();
//! let model = sc_model();
//! let a = cache.outcomes(&mp, &model, &EnumConfig::default()).unwrap();
//! let b = cache.outcomes(&renamed, &model, &EnumConfig::default()).unwrap();
//! assert_eq!(cache.hits(), 1);
//! assert!(std::sync::Arc::ptr_eq(&a, &b));
//! ```

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;

use weakgpu_litmus::{printer, LitmusTest};

use crate::enumerate::{model_outcomes_with, EnumConfig, EnumError, ModelOutcomes};
use crate::model::Model;
use crate::plan::EvalContext;

/// A canonical serialisation of everything that determines a test's
/// axiomatic verdict: per-thread instructions, register initialisations,
/// the scope tree, the memory map (locations, regions, initial values)
/// and the final condition. The test's name and doc string are excluded,
/// so structurally identical tests share a key.
pub fn shape_key(test: &LitmusTest) -> String {
    let mut key = String::new();
    for (tid, thread) in test.threads().iter().enumerate() {
        let _ = write!(key, "T{tid}:");
        for instr in thread {
            let _ = write!(key, "{};", printer::render_instr(instr));
        }
        key.push('|');
    }
    for (tid, reg, value) in test.reg_init() {
        let _ = write!(key, "{tid}:{reg}={value:?};");
    }
    let _ = write!(
        key,
        "|{}|{}|{}",
        test.scope_tree(),
        test.memory(),
        test.cond()
    );
    key
}

/// A memoising wrapper around [`model_outcomes`](crate::enumerate::model_outcomes), keyed by
/// `(model name, enumeration config, shape_key)`.
///
/// The key covers the **whole** `EnumConfig` debug form — including
/// [`EnumConfig::pruning`](crate::enumerate::EnumConfig::pruning) — so
/// the pruned and exhaustive arms keep separate entries and can never
/// serve each other's verdicts (they are bit-identical by construction,
/// but the cache does not rely on that).
///
/// The model contributes only its **name** to the key: the cache assumes
/// distinct model semantics carry distinct names (true of every model in
/// `weakgpu-models`). Do not share one cache across two differently-built
/// models that answer to the same name — they would share verdicts.
///
/// Verdicts are returned as [`Arc`]s so callers can hold them without
/// cloning the (potentially large) allowed-outcome sets, and so the cache
/// can be used behind a short-lived lock: clone the `Arc` out, drop the
/// lock, then inspect the verdict. For concurrent fill, pair
/// [`VerdictCache::lookup`] (under the lock) with [`model_outcomes`](crate::enumerate::model_outcomes)
/// outside it and [`VerdictCache::publish`] to store the result — the
/// enumeration itself then never blocks other threads.
#[derive(Default, Debug)]
pub struct VerdictCache {
    map: HashMap<String, Entry>,
    hits: u64,
    misses: u64,
    warm_entries: u64,
    warm_hits: u64,
}

/// One cached verdict plus its provenance: entries judged in this
/// process are *fresh*; entries restored from a persisted cache file
/// ([`crate::persist`]) are *warm*, and hits on them are counted
/// separately so a warm-started run can prove the preloaded cache
/// actually paid off.
#[derive(Debug)]
struct Entry {
    verdict: Arc<ModelOutcomes>,
    warm: bool,
}

impl VerdictCache {
    /// An empty cache.
    pub fn new() -> Self {
        VerdictCache::default()
    }

    /// The full cache key of one judgement: model name, the whole
    /// [`EnumConfig`] debug form, and the test's [`shape_key`]. This is
    /// also the key persisted by [`crate::persist`] — it contains no
    /// process-specific state, so a key computed in one process answers
    /// lookups in another.
    pub fn entry_key(test: &LitmusTest, model: &dyn Model, cfg: &EnumConfig) -> String {
        format!("{}\u{0}{cfg:?}\u{0}{}", model.name(), shape_key(test))
    }

    fn key(test: &LitmusTest, model: &dyn Model, cfg: &EnumConfig) -> String {
        Self::entry_key(test, model, cfg)
    }

    /// The verdict of `model` on `test`, enumerating executions only if
    /// no structurally identical test has been judged before.
    ///
    /// # Errors
    ///
    /// Propagates [`EnumError`]s from the enumeration; failures are not
    /// cached.
    pub fn outcomes(
        &mut self,
        test: &LitmusTest,
        model: &dyn Model,
        cfg: &EnumConfig,
    ) -> Result<Arc<ModelOutcomes>, EnumError> {
        self.outcomes_with(test, model, cfg, &mut EvalContext::new())
    }

    /// [`VerdictCache::outcomes`] with a caller-owned [`EvalContext`] for
    /// the miss path, so repeated misses (the first judgement of each
    /// shape in a sweep) reuse one evaluation arena. Misses stream the
    /// candidate space through the skeleton/overlay visitor — no
    /// `Vec<Candidate>` is ever materialised.
    ///
    /// # Errors
    ///
    /// Propagates [`EnumError`]s from the enumeration; failures are not
    /// cached.
    pub fn outcomes_with(
        &mut self,
        test: &LitmusTest,
        model: &dyn Model,
        cfg: &EnumConfig,
        ctx: &mut EvalContext,
    ) -> Result<Arc<ModelOutcomes>, EnumError> {
        let key = Self::key(test, model, cfg);
        if let Some(hit) = self.map.get(&key) {
            self.hits += 1;
            if hit.warm {
                self.warm_hits += 1;
            }
            return Ok(Arc::clone(&hit.verdict));
        }
        let verdict = Arc::new(model_outcomes_with(test, model, cfg, ctx)?);
        self.misses += 1;
        self.map.insert(
            key,
            Entry {
                verdict: Arc::clone(&verdict),
                warm: false,
            },
        );
        Ok(verdict)
    }

    /// Probe half of the concurrent protocol: the cached verdict, if this
    /// shape has been judged (counts a hit). A miss counts nothing — the
    /// caller is expected to enumerate (outside any lock) and
    /// [`publish`](VerdictCache::publish) the result, which records the
    /// miss.
    pub fn lookup(
        &mut self,
        test: &LitmusTest,
        model: &dyn Model,
        cfg: &EnumConfig,
    ) -> Option<Arc<ModelOutcomes>> {
        let hit = self.map.get(&Self::key(test, model, cfg));
        if let Some(entry) = hit {
            self.hits += 1;
            if entry.warm {
                self.warm_hits += 1;
            }
        }
        hit.map(|e| Arc::clone(&e.verdict))
    }

    /// Publish half of the concurrent protocol: stores `verdict` for this
    /// shape and counts a miss (the caller did the enumeration work). If
    /// another thread published the same shape in the meantime the first
    /// entry wins and is returned — so two racing threads may both count
    /// a miss for one entry, which is why `misses >= len` under
    /// concurrent fill.
    pub fn publish(
        &mut self,
        test: &LitmusTest,
        model: &dyn Model,
        cfg: &EnumConfig,
        verdict: ModelOutcomes,
    ) -> Arc<ModelOutcomes> {
        self.misses += 1;
        Arc::clone(
            &self
                .map
                .entry(Self::key(test, model, cfg))
                .or_insert_with(|| Entry {
                    verdict: Arc::new(verdict),
                    warm: false,
                })
                .verdict,
        )
    }

    /// Installs a verdict restored from a persisted cache
    /// ([`crate::persist`]) under its full [`VerdictCache::entry_key`].
    /// Warm entries count neither a hit nor a miss at insertion; later
    /// lookups that they answer are tallied in
    /// [`VerdictCache::warm_hits`] as well as [`VerdictCache::hits`].
    /// An already-present key is left untouched (a fresh judgement or an
    /// earlier restore wins), so absorbing the same file twice is
    /// idempotent.
    pub fn insert_warm(&mut self, key: String, verdict: ModelOutcomes) {
        if let std::collections::hash_map::Entry::Vacant(slot) = self.map.entry(key) {
            slot.insert(Entry {
                verdict: Arc::new(verdict),
                warm: true,
            });
            self.warm_entries += 1;
        }
    }

    /// Every cached entry as `(full key, verdict)`, in hash order — the
    /// persistence layer sorts before writing, so file output stays
    /// deterministic regardless.
    pub fn entries(&self) -> impl Iterator<Item = (&str, &ModelOutcomes)> {
        self.map.iter().map(|(k, e)| (k.as_str(), &*e.verdict))
    }

    /// Number of distinct shapes judged so far.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` if nothing has been judged yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Number of lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of lookups that had to enumerate.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of entries restored from a persisted cache file (via
    /// [`VerdictCache::insert_warm`]) rather than judged in this
    /// process.
    pub fn warm_entries(&self) -> u64 {
        self.warm_entries
    }

    /// Number of hits answered by a warm (restored) entry — the measure
    /// of what preloading the cache actually saved.
    pub fn warm_hits(&self) -> u64 {
        self.warm_hits
    }

    /// Unions `other` into `self`: entries already present in `self`
    /// win (for identical keys the verdicts are identical anyway — the
    /// enumeration is deterministic — so which side wins only matters
    /// for the warm flag). Counters other than the warm-entry count are
    /// not transferred: hits and misses describe a run, not a cache.
    pub fn absorb(&mut self, other: VerdictCache) {
        for (key, entry) in other.map {
            if let std::collections::hash_map::Entry::Vacant(slot) = self.map.entry(key) {
                if entry.warm {
                    self.warm_entries += 1;
                }
                slot.insert(entry);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::model_outcomes;
    use crate::model::sc_model as sc;
    use crate::CatModel;
    use weakgpu_litmus::{corpus, ThreadScope};

    #[test]
    fn shape_key_ignores_name_and_doc() {
        let t = corpus::sb(ThreadScope::InterCta, None);
        let renamed = t.clone().with_name("other").with_doc("different doc");
        assert_eq!(shape_key(&t), shape_key(&renamed));
    }

    #[test]
    fn shape_key_distinguishes_structure() {
        let inter = corpus::sb(ThreadScope::InterCta, None);
        let intra = corpus::sb(ThreadScope::IntraCta, None);
        assert_ne!(
            shape_key(&inter),
            shape_key(&intra),
            "scope tree must matter"
        );
        let mp = corpus::mp(ThreadScope::InterCta, None);
        assert_ne!(shape_key(&inter), shape_key(&mp));
    }

    #[test]
    fn cached_verdict_matches_uncached() {
        let t = corpus::mp(ThreadScope::InterCta, None);
        let model = sc();
        let cfg = EnumConfig::default();
        let fresh = model_outcomes(&t, &model, &cfg).unwrap();
        let mut cache = VerdictCache::new();
        let cached = cache.outcomes(&t, &model, &cfg).unwrap();
        assert_eq!(*cached, fresh);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        // Second lookup hits and returns the same allocation.
        let again = cache.outcomes(&t, &model, &cfg).unwrap();
        assert!(Arc::ptr_eq(&cached, &again));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn lookup_publish_protocol_matches_outcomes() {
        let t = corpus::mp(ThreadScope::InterCta, None);
        let model = sc();
        let cfg = EnumConfig::default();
        let mut cache = VerdictCache::new();
        assert!(cache.lookup(&t, &model, &cfg).is_none());
        assert_eq!((cache.hits(), cache.misses()), (0, 0), "probe miss is free");
        let fresh = model_outcomes(&t, &model, &cfg).unwrap();
        let published = cache.publish(&t, &model, &cfg, fresh.clone());
        assert_eq!(*published, fresh);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        // A racing publish loses: the first entry wins, the miss is
        // still counted.
        let racing = cache.publish(&t, &model, &cfg, fresh);
        assert!(Arc::ptr_eq(&published, &racing));
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (0, 2, 1));
        let hit = cache.lookup(&t, &model, &cfg).expect("now cached");
        assert!(Arc::ptr_eq(&published, &hit));
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn enum_config_is_part_of_the_key() {
        let t = corpus::sb(ThreadScope::InterCta, None);
        let model = sc();
        let mut cache = VerdictCache::new();
        let a = EnumConfig::default();
        let b = EnumConfig {
            max_traces_per_thread: 2048,
            ..EnumConfig::default()
        };
        cache.outcomes(&t, &model, &a).unwrap();
        cache.outcomes(&t, &model, &b).unwrap();
        assert_eq!(cache.len(), 2, "different bounds must not share verdicts");
        // The pruning flag splits entries too — and the arms agree bit
        // for bit, so either entry answers the same verdict.
        let pruned = EnumConfig {
            pruning: true,
            ..EnumConfig::default()
        };
        let p = cache.outcomes(&t, &model, &pruned).unwrap();
        assert_eq!(cache.len(), 3, "the pruning flag must split the key");
        let e = cache.outcomes(&t, &model, &a).unwrap();
        assert_eq!(*p, *e);
    }

    #[test]
    fn different_models_do_not_share_entries() {
        let t = corpus::sb(ThreadScope::InterCta, None);
        let cfg = EnumConfig::default();
        let mut cache = VerdictCache::new();
        // A model with no axioms: everything is allowed.
        let weak = CatModel::new("weak", "").unwrap();
        let a = cache.outcomes(&t, &sc(), &cfg).unwrap();
        let b = cache.outcomes(&t, &weak, &cfg).unwrap();
        assert_eq!(cache.len(), 2, "sc and weak verdicts must not collide");
        // sb's weak outcome: forbidden under SC, allowed with no axioms.
        assert!(!a.condition_witnessed);
        assert!(b.condition_witnessed);
    }
}
