//! Compiled relational evaluation plans for `.cat` programs.
//!
//! [`CatProgram::check`](crate::cat::CatProgram::check) interprets the
//! `.cat` AST afresh for every execution: every identifier goes through a
//! `String`-keyed map, every `let` binding is cloned at each use, and
//! every operator allocates a new bit matrix. That is fine for a single
//! verdict and ruinous for the paper's Sec. 5.4 workload, where one model
//! is evaluated over thousands of candidate executions per test.
//!
//! [`Plan::compile`] lowers a parsed program into a register machine
//! once:
//!
//! * **Names become slots.** Base relations (`po`, `rf`, …) are interned
//!   into dense base slots; `let` bindings and subexpressions become
//!   numbered registers. No string lookup survives to evaluation time.
//! * **Bindings are shared.** Every `let` is compiled exactly once, and
//!   common subexpressions are eliminated across the *whole* program
//!   (union/intersection operands are order-normalised first), so a
//!   binding referenced by three checks is computed once per execution.
//! * **Functions are inlined.** `f(e)` applications are expanded at
//!   compile time with the parameter bound to the argument's register,
//!   mirroring the interpreter's dynamic scoping.
//! * **Checks are scheduled cheapest-first.** Each check records the
//!   registers it transitively needs and a cost estimate;
//!   [`Plan::allows_exec`] evaluates checks in ascending cost order,
//!   materialising only the registers (and base relations) the next check
//!   needs, and short-circuits on the first failure. The full-outcome
//!   mode ([`Plan::check_exec`]) keeps the program's own order and
//!   evaluates everything, matching the interpreter statement for
//!   statement.
//!
//! Evaluation happens inside an [`EvalContext`]: an arena of
//! [`Relation`]/[`EventSet`] buffers (plus DFS scratch for acyclicity)
//! that is reused across executions. After the first execution of a given
//! universe size has warmed the arena, evaluating the next execution
//! performs **zero heap allocation**.
//!
//! ```
//! use weakgpu_axiom::plan::{EvalContext, Plan};
//! use weakgpu_axiom::cat::CatProgram;
//! use weakgpu_axiom::enumerate::{enumerate_executions, EnumConfig};
//! use weakgpu_litmus::{corpus, ThreadScope};
//!
//! let program = CatProgram::parse("let com = rf | co | fr\nacyclic (po | com) as sc").unwrap();
//! let plan = Plan::compile(&program).unwrap();
//! let mut ctx = EvalContext::new();
//! let test = corpus::sb(ThreadScope::IntraCta, None);
//! let execs = enumerate_executions(&test, &EnumConfig::default()).unwrap();
//! let allowed = execs
//!     .iter()
//!     .filter(|c| plan.allows_exec(&mut ctx, &c.execution).unwrap())
//!     .count();
//! assert!(allowed > 0 && allowed < execs.len());
//! ```

use std::collections::{BTreeMap, HashMap};
use std::mem;

use weakgpu_litmus::FenceScope;

use crate::cat::{CatError, CatProgram, CheckKind, CheckOutcome, Expr, Stmt};
use crate::exec::Execution;
use crate::relation::{EdgeJournal, EventSet, LaneRel, Relation};
use crate::skeleton::{next_stamp, ExecutionView, LaneMask, OverlayBatch, PartialView};

/// Maximum function-inlining depth; beyond this the program is assumed to
/// be (mutually) recursive, which the interpreter cannot evaluate either.
const MAX_INLINE_DEPTH: usize = 64;

/// An operand: a base-relation slot or the result register of an op.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
enum Src {
    /// An interned base relation, filled from the execution (or
    /// environment) once per evaluation.
    Base(usize),
    /// The result of `ops[i]`.
    Reg(usize),
}

/// Event sorts for the `WW`/`WR`/`RW`/`RR` filters.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Sort {
    Reads,
    Writes,
}

/// One register-machine instruction; instruction `i` writes register `i`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Op {
    /// The empty relation.
    Zero,
    /// `a ∪ b` (operands order-normalised at compile time).
    Union(Src, Src),
    /// An n-ary union: `len` operands starting at `start` in the plan's
    /// operand table (sorted and deduplicated, so structurally equal
    /// unions intern to the same table slice and CSE applies). Union
    /// *trees* (`a | b | c | …`) fuse into one instruction instead of a
    /// chain of intermediate registers.
    UnionN { start: u32, len: u32 },
    /// `a ∩ b` (operands order-normalised at compile time).
    Inter(Src, Src),
    /// `a \ b`.
    Diff(Src, Src),
    /// `a ; b`.
    Seq(Src, Src),
    /// `a^-1`.
    Inverse(Src),
    /// `a+`.
    Plus(Src),
    /// `a*`.
    Star(Src),
    /// `a?`.
    Opt(Src),
    /// Sort filter: pairs of `a` from `dom`-events to `rng`-events.
    Restrict(Src, Sort, Sort),
}

impl Op {
    /// Rough per-evaluation cost, used to order checks cheapest-first.
    fn cost(self) -> u64 {
        match self {
            Op::Zero => 0,
            Op::Union(..) | Op::Inter(..) | Op::Diff(..) | Op::Opt(_) | Op::Restrict(..) => 1,
            Op::UnionN { len, .. } => u64::from(len.saturating_sub(1)).max(1),
            Op::Inverse(_) => 2,
            Op::Seq(..) => 4,
            Op::Plus(_) | Op::Star(_) => 16,
        }
    }

    /// Calls `f` for every operand source. `operands` is the plan's
    /// n-ary operand table.
    fn for_each_src(self, operands: &[Src], mut f: impl FnMut(Src)) {
        match self {
            Op::Zero => {}
            Op::Union(a, b) | Op::Inter(a, b) | Op::Diff(a, b) | Op::Seq(a, b) => {
                f(a);
                f(b);
            }
            Op::UnionN { start, len } => {
                for &s in &operands[start as usize..(start + len) as usize] {
                    f(s);
                }
            }
            Op::Inverse(a) | Op::Plus(a) | Op::Star(a) | Op::Opt(a) | Op::Restrict(a, ..) => {
                f(a);
            }
        }
    }
}

/// One compiled check.
#[derive(Clone, Debug)]
struct PlanCheck {
    name: String,
    kind: CheckKind,
    src: Src,
    /// Registers this check transitively needs, ascending (= topological)
    /// order.
    deps: Vec<usize>,
    /// Estimated evaluation cost (see [`Op::cost`]).
    cost: u64,
}

/// A `.cat` program compiled to a reusable evaluation plan.
///
/// Compile once per model (e.g. in [`CatModel::new`](crate::CatModel)),
/// then evaluate over any number of executions through a shared
/// [`EvalContext`].
#[derive(Clone, Debug)]
pub struct Plan {
    /// Process-unique plan identity, for [`EvalContext`] cache keying
    /// (cloned plans share semantics, so they share the id).
    id: u64,
    /// Interned base-relation names, indexed by slot.
    base_names: Vec<String>,
    ops: Vec<Op>,
    /// Operand table for n-ary instructions ([`Op::UnionN`]).
    operands: Vec<Src>,
    checks: Vec<PlanCheck>,
    /// Check indices in ascending cost order (the `allows` schedule).
    fast_order: Vec<usize>,
    /// Per base slot: `true` iff the relation depends on the rf/co
    /// overlay (and must be refilled per candidate); `false` for
    /// skeleton-derived relations reused across a skeleton's overlays.
    base_overlay: Vec<bool>,
    /// Per op: `true` iff it transitively reads an overlay base.
    op_overlay: Vec<bool>,
    /// For an `rfe`/`rfi`/`coe`/`coi`/`fre`/`fri` slot: the slot of the
    /// plain `rf`/`co`/`fr` base, when the plan also reads it. On the
    /// view path the variant is then one intersection off the plain
    /// relation instead of a fresh fill.
    plain_slot: Vec<Option<usize>>,
    /// Per base slot: which overlay family ([`FAM_RF_M`]/[`FAM_CO_M`]/
    /// [`FAM_FR_M`]) it derives from; 0 for skeleton-derived bases.
    base_fam: Vec<u8>,
    /// Per op: the overlay families it transitively reads (OR of the
    /// operand masks; nonzero exactly when `op_overlay` holds).
    op_fam: Vec<u8>,
    /// OR of `base_fam` — the families the incremental evaluator must
    /// maintain for this plan.
    fam_used: u8,
    /// Overlay ops reachable from some check, ascending — the ops the
    /// incremental evaluator maintains (dead bindings are skipped; their
    /// operands may never be materialised).
    inc_ops: Vec<u32>,
    /// `true` iff every (live) overlay op is row-local (union /
    /// intersection / difference / `?` / sort filters): a changed
    /// operand row changes only the same row downstream, which is what
    /// lets an axis commit update `O(dirty rows)` instead of the whole
    /// register tier. Plans using `;`/`^-1`/`+`/`*` on overlay operands
    /// fall back to the from-scratch partial evaluation.
    incremental_ok: bool,
}

/// `true` for base relations derived from the rf/co overlay, which every
/// candidate of a skeleton redefines.
fn is_overlay_base(name: &str) -> bool {
    matches!(
        name,
        "rf" | "rfe" | "rfi" | "co" | "coe" | "coi" | "fr" | "fre" | "fri"
    )
}

/// Family indices of the maintained incremental base intervals.
const FAM_RF: usize = 0;
const FAM_CO: usize = 1;
const FAM_FR: usize = 2;
/// Family bit masks (`1 << FAM_*`).
const FAM_RF_M: u8 = 1 << FAM_RF;
const FAM_CO_M: u8 = 1 << FAM_CO;
const FAM_FR_M: u8 = 1 << FAM_FR;

/// The overlay family of a base-relation name (`None` for
/// skeleton-derived bases).
fn base_family(name: &str) -> Option<usize> {
    match name {
        "rf" | "rfe" | "rfi" => Some(FAM_RF),
        "co" | "coe" | "coi" => Some(FAM_CO),
        "fr" | "fre" | "fri" => Some(FAM_FR),
        _ => None,
    }
}

/// Journal-tag kinds identifying which maintained relation a word-undo
/// record belongs to; the tag is `kind << 28 | index`.
const KIND_FAM_LO: u32 = 0;
const KIND_FAM_HI: u32 = 1;
const KIND_VAR_LO: u32 = 2;
const KIND_VAR_HI: u32 = 3;
const KIND_REG_LO: u32 = 4;
const KIND_REG_HI: u32 = 5;

const fn inc_tag(kind: u32, idx: usize) -> u32 {
    (kind << 28) | idx as u32
}

/// `rf_choice` encoding of an [`IncLevel`]: the chosen write, or
/// `u32::MAX` for a read from the initial state.
fn enc_rf(choice: Option<usize>) -> u32 {
    match choice {
        Some(w) => w as u32,
        None => u32::MAX,
    }
}

/// Where base relations come from during one evaluation.
enum EnvSource<'a> {
    /// Fill from an [`Execution`]'s event structure.
    Exec(&'a Execution),
    /// Copy from a name-keyed environment (the interpreter's input
    /// format; used by the differential tests).
    Map(&'a BTreeMap<String, Relation>),
    /// Fill from a streamed skeleton/overlay view: skeleton-derived
    /// bases are borrowed from the shared skeleton (and survive overlay
    /// changes), rf/co-derived ones are refilled per candidate.
    View(&'a ExecutionView<'a>),
}

/// One committed tree level of the incremental evaluator's path. Levels
/// `0..reads.len()` are rf slots (in read order), the rest are coherence
/// axes (in location order) — the same canonical order the pruned walk
/// descends, so a path is always "all rf levels, then a co prefix".
#[derive(Clone, Copy, Default, Debug)]
struct IncLevel {
    /// Journal length when this level was pushed; popping replays the
    /// records from here on, reversed.
    jmark: usize,
    /// `ord_journal` length when this level was pushed.
    omark: usize,
    /// `co_arena` length when this level was pushed (doubles as the
    /// slice start for co levels).
    co_start: usize,
    /// Committed co order length (0 for rf levels).
    co_len: usize,
    /// The committed rf choice (see [`enc_rf`]; unused for co levels).
    rf_choice: u32,
}

/// The maintained `[lo, hi]` interval relations of the incremental
/// evaluator — separate from the epoch-gated arena so interleaved
/// non-incremental evaluations never clobber path state.
#[derive(Default, Debug)]
struct IncRels {
    /// Plain rf/co/fr bounds, indexed by family ([`FAM_RF`]…).
    fam_lo: Vec<Relation>,
    fam_hi: Vec<Relation>,
    /// Internal/external variant bounds, indexed by base slot (only
    /// `rfe`-style slots are used: `fam ∩ ext/int`).
    var_lo: Vec<Relation>,
    var_hi: Vec<Relation>,
    /// Overlay register bounds, indexed by op.
    reg_lo: Vec<Relation>,
    reg_hi: Vec<Relation>,
}

/// Per-check incremental state: the maintained topological order of the
/// `lo` bound (Pearce–Kelly, Acyclic checks only) and monotone verdict
/// memos. Along a path `lo` only grows and `hi` only shrinks, so "lo
/// cyclic", "hi acyclic/empty/irreflexive" and "lo nonempty/reflexive"
/// are all monotone: once established at some depth they hold at every
/// deeper node, and popping above that depth resets them.
#[derive(Default, Debug)]
struct IncCheck {
    /// Maintained topological order of the `lo` bound (Acyclic only).
    order: Vec<u32>,
    /// Inverse of `order`.
    pos: Vec<u32>,
    /// `lo` known cyclic (⇒ definite fail) from this path depth on;
    /// `usize::MAX` = not known. While set, Pearce–Kelly updates pause
    /// (the order is stale until the path pops back above it).
    cyclic_since: usize,
    /// `hi` known passing (⇒ definite pass) from this depth on.
    pass_since: usize,
    /// `lo` known failing (Empty/Irreflexive) from this depth on.
    fail_since: usize,
    /// Last cycle found in `hi`, as edges: while every edge persists in
    /// `hi`, the check is still indefinite and the DFS is skipped.
    witness: Vec<(u32, u32)>,
    /// 0 = overlay-dependent; 1/2 = skeleton-derived check that passed /
    /// failed (judged once per combination at reset).
    fixed: u8,
}

/// Maintained state of the incremental (path-delta) partial evaluator:
/// every overlay-dependent interval relation, one tagged word-level
/// undo journal across all of them, the committed path levels, and
/// per-check cycle state. Keyed on (plan, skeleton, trace combination);
/// a mismatch rebuilds from the root, and within a key the state
/// self-syncs to whatever node the walk asks about by popping to the
/// divergence level and pushing the missing commitments.
#[derive(Default, Debug)]
struct IncState {
    plan_id: u64,
    skel_id: u64,
    combo_id: u64,
    /// Last `(plan, skeleton, skel_epoch)` whose non-overlay operands
    /// were ensured resident; lets steady-state calls skip the
    /// deps walk entirely.
    ensured_plan: u64,
    ensured_skel: u64,
    ensured_epoch: u64,
    journal: EdgeJournal,
    /// Undo log of topological-order slot writes: `(check, idx, old)`.
    ord_journal: Vec<(u32, u32, u32)>,
    levels: Vec<IncLevel>,
    /// Flattened committed co orders (indexed by
    /// [`IncLevel::co_start`]/[`IncLevel::co_len`]), kept to detect
    /// sibling moves on a co axis.
    co_arena: Vec<u32>,
    rels: IncRels,
    checks: Vec<IncCheck>,
    /// A skeleton-derived check failed: every node of this combination
    /// is definite-false.
    fixed_failed: bool,
    // Scratch buffers (persistent so steady-state pushes are
    // allocation-free).
    dirty_rf: Vec<u32>,
    dirty_co: Vec<u32>,
    dirty_fr: Vec<u32>,
    row_lo: Vec<u64>,
    row_hi: Vec<u64>,
    row_mark: Vec<u64>,
    rows_buf: Vec<u32>,
    seen_words: Vec<u32>,
    pk_visited: Vec<u64>,
    pk_found: Vec<u32>,
    pk_stack: Vec<(u32, u32)>,
    pk_window: Vec<u32>,
}

/// Resolves a journal tag back to its maintained relation (the pop
/// dispatch).
fn inc_rel_mut(rels: &mut IncRels, tag: u32) -> &mut Relation {
    let idx = (tag & 0x0FFF_FFFF) as usize;
    match tag >> 28 {
        KIND_FAM_LO => &mut rels.fam_lo[idx],
        KIND_FAM_HI => &mut rels.fam_hi[idx],
        KIND_VAR_LO => &mut rels.var_lo[idx],
        KIND_VAR_HI => &mut rels.var_hi[idx],
        KIND_REG_LO => &mut rels.reg_lo[idx],
        _ => &mut rels.reg_hi[idx],
    }
}

// TEMP ablation switches (perf attribution; remove before commit)
/// Pops maintained state back to `keep` levels: journalled relation
/// words and topological-order slots replay in reverse, the coherence
/// arena truncates, and any verdict memo taken below `keep` is voided.
fn inc_pop_to(inc: &mut IncState, keep: usize) {
    let lvl = inc.levels[keep];
    let IncState {
        journal,
        ord_journal,
        rels,
        levels,
        co_arena,
        checks,
        ..
    } = inc;
    // Word-level undo, newest first. Entries record the value *before*
    // the mutation, so replaying in reverse lands every word back on its
    // state at the level's mark.
    for &(tag, word, old) in journal.entries_from(lvl.jmark).iter().rev() {
        inc_rel_mut(rels, tag).set_word(word as usize, old);
    }
    journal.truncate(lvl.jmark);
    // Topological-order undo. For each node the earliest surviving entry
    // restores its pre-pop slot; replaying newest-first applies that one
    // last, so `order`/`pos` land mutually consistent.
    while ord_journal.len() > lvl.omark {
        let (ci, idx, old) = ord_journal.pop().unwrap();
        let st = &mut checks[ci as usize];
        st.order[idx as usize] = old;
        st.pos[old as usize] = idx;
    }
    co_arena.truncate(lvl.co_start);
    levels.truncate(keep);
    for st in checks.iter_mut() {
        if st.cyclic_since != usize::MAX && st.cyclic_since > keep {
            st.cyclic_since = usize::MAX;
        }
        if st.pass_since != usize::MAX && st.pass_since > keep {
            st.pass_since = usize::MAX;
        }
        if st.fail_since != usize::MAX && st.fail_since > keep {
            st.fail_since = usize::MAX;
        }
        // Witness cycles are *not* invalidated: they are re-verified
        // edge-by-edge against the current `hi` before being trusted.
    }
}

/// Seeds an acyclicity check's maintained topological order from its
/// root `lo` bound (iterative DFS, reverse postorder). Returns `true`
/// when `lo` is already cyclic; the order is then an arbitrary
/// permutation, which is fine — it is never consulted for insertions
/// while `cyclic_since` is set.
fn pk_topo_init(
    lo: &Relation,
    n: usize,
    st: &mut IncCheck,
    colour: &mut Vec<u8>,
    stack: &mut Vec<(usize, usize)>,
) -> bool {
    st.order.clear();
    st.order.resize(n, 0);
    st.pos.clear();
    st.pos.resize(n, 0);
    colour.clear();
    colour.resize(n, 0);
    stack.clear();
    let mut cyclic = false;
    let mut next = n;
    for root in 0..n {
        if colour[root] != 0 {
            continue;
        }
        colour[root] = 1;
        stack.push((root, 0));
        while let Some(&mut (node, ref mut from)) = stack.last_mut() {
            if let Some(succ) = lo.next_succ(node, *from) {
                *from = succ + 1;
                match colour[succ] {
                    0 => {
                        colour[succ] = 1;
                        stack.push((succ, 0));
                    }
                    1 => cyclic = true,
                    _ => {}
                }
            } else {
                colour[node] = 2;
                stack.pop();
                next -= 1;
                st.order[next] = node as u32;
                st.pos[node] = next as u32;
            }
        }
    }
    debug_assert_eq!(next, 0);
    cyclic
}

/// Pearce–Kelly single-edge insertion `x -> y` into the maintained
/// order. Returns `true` when the edge closes a cycle (the order is
/// left valid for the graph *without* the offending reachability, and
/// the caller freezes further maintenance via `cyclic_since`).
///
/// One-way variant: only the affected region `[pos[y], pos[x]]` is
/// searched forward from `y`; nodes found reachable (the set `F`) are
/// compacted to the back of the window, preserving relative order —
/// which keeps every constraint, since non-`F` in-window nodes cannot
/// be forward-reachable from any `F` node without `x` itself being
/// reachable.
#[allow(clippy::too_many_arguments)]
fn pk_insert(
    lo: &Relation,
    st: &mut IncCheck,
    ord_journal: &mut Vec<(u32, u32, u32)>,
    ci: u32,
    x: usize,
    y: usize,
    visited: &mut Vec<u64>,
    found: &mut Vec<u32>,
    stack: &mut Vec<(u32, u32)>,
    window: &mut Vec<u32>,
) -> bool {
    if x == y {
        return true;
    }
    let px = st.pos[x];
    let py = st.pos[y];
    if px < py {
        return false; // already consistent
    }
    let words = st.order.len().div_ceil(64);
    visited.clear();
    visited.resize(words, 0);
    found.clear();
    stack.clear();
    visited[y / 64] |= 1 << (y % 64);
    found.push(y as u32);
    stack.push((y as u32, 0));
    while let Some(&mut (node, ref mut from)) = stack.last_mut() {
        match lo.next_succ(node as usize, *from as usize) {
            Some(succ) => {
                *from = succ as u32 + 1;
                if succ == x {
                    return true; // y reaches x: the new edge closes a cycle
                }
                if (st.pos[succ] as u32) < px && visited[succ / 64] & (1 << (succ % 64)) == 0 {
                    visited[succ / 64] |= 1 << (succ % 64);
                    found.push(succ as u32);
                    stack.push((succ as u32, 0));
                }
            }
            None => {
                stack.pop();
            }
        }
    }
    // Reorder the window [py, px]: non-F nodes first (relative order
    // kept), then the F set, preserving its relative order. Collect F
    // up-front — the write cursor trails the read cursor, so reading
    // `order` in place stays safe for the non-F pass.
    window.clear();
    for idx in py..=px {
        let node = st.order[idx as usize];
        if visited[node as usize / 64] & (1 << (node % 64)) != 0 {
            window.push(node);
        }
    }
    let mut w = py;
    for idx in py..=px {
        let node = st.order[idx as usize];
        if visited[node as usize / 64] & (1 << (node % 64)) == 0 {
            if w != idx {
                ord_journal.push((ci, w, st.order[w as usize]));
                st.order[w as usize] = node;
                st.pos[node as usize] = w;
            }
            w += 1;
        }
    }
    for &node in window.iter() {
        if st.order[w as usize] != node {
            ord_journal.push((ci, w, st.order[w as usize]));
            st.order[w as usize] = node;
            st.pos[node as usize] = w;
        }
        w += 1;
    }
    debug_assert_eq!(w, px + 1);
    false
}

/// Collects the deduplicated union of the dirty family rows selected by
/// `need` into `rows`. `mark` is a reusable bitset.
fn mark_rows(
    mark: &mut Vec<u64>,
    rows: &mut Vec<u32>,
    n: usize,
    need: u8,
    dirty_rf: &[u32],
    dirty_co: &[u32],
    dirty_fr: &[u32],
) {
    mark.clear();
    mark.resize(n.div_ceil(64), 0);
    let mut take = |list: &[u32]| {
        for &row in list {
            let (w, b) = (row as usize / 64, 1u64 << (row % 64));
            if mark[w] & b == 0 {
                mark[w] |= b;
                rows.push(row);
            }
        }
    };
    if need & FAM_RF_M != 0 {
        take(dirty_rf);
    }
    if need & FAM_CO_M != 0 {
        take(dirty_co);
    }
    if need & FAM_FR_M != 0 {
        take(dirty_fr);
    }
}

/// Journaled single-word store: the `words_per_row() == 1` fast path's
/// replacement for [`Relation::set_row_journaled`] (flat index == row).
#[inline]
fn store_word(journal: &mut EdgeJournal, rel: &mut Relation, tag: u32, idx: u32, val: u64) -> bool {
    let old = rel.word_at(idx as usize);
    if old != val {
        journal.record(tag, idx, old);
        rel.set_word(idx as usize, val);
        true
    } else {
        false
    }
}

/// Single-word variant of [`fr_row_fill`] (`n <= 64`): the `[lo, hi]`
/// fr bound of rf slot `k`'s read row as a pair of words.
#[inline]
fn fr_row_word(partial: &PartialView<'_>, k: usize, rf_depth: usize, co_depth: usize) -> (u64, u64) {
    let (mut lo, mut hi) = (0u64, 0u64);
    partial.fr_slot_each(k, rf_depth, co_depth, |w, definite| {
        let bit = 1u64 << w;
        hi |= bit;
        if definite {
            lo |= bit;
        }
    });
    (lo, hi)
}

/// Fills the `[lo, hi]` fr bound words of rf slot `k`'s read row at the
/// given explicit depths into `out_lo`/`out_hi`.
fn fr_row_fill(
    partial: &PartialView<'_>,
    k: usize,
    rf_depth: usize,
    co_depth: usize,
    words: usize,
    out_lo: &mut Vec<u64>,
    out_hi: &mut Vec<u64>,
) {
    out_lo.clear();
    out_lo.resize(words, 0);
    out_hi.clear();
    out_hi.resize(words, 0);
    partial.fr_slot_each(k, rf_depth, co_depth, |w, definite| {
        let (wi, bit) = (w / 64, 1u64 << (w % 64));
        out_hi[wi] |= bit;
        if definite {
            out_lo[wi] |= bit;
        }
    });
}

/// The reusable evaluation arena: registers, base-relation buffers, the
/// read/write event sets and DFS scratch. One context serves any number
/// of plans and executions; buffers grow to the high-water mark and are
/// then reused, so steady-state evaluation allocates nothing.
#[derive(Default, Debug)]
pub struct EvalContext {
    /// Evaluation generation, bumped per candidate; an overlay-dependent
    /// register/base is valid iff its recorded epoch equals this.
    epoch: u64,
    /// The epoch at which the current skeleton was entered;
    /// skeleton-derived registers/bases are valid iff their recorded
    /// epoch is `>= skel_epoch`, so they survive overlay changes.
    skel_epoch: u64,
    /// Identity of the plan whose slots currently populate the arena
    /// (slot numbering is per-plan); 0 = none.
    plan_id: u64,
    /// Stamp of the skeleton currently materialised; 0 = none.
    skel_id: u64,
    /// Stamp of the overlay last evaluated; 0 = none.
    overlay_gen: u64,
    /// Universe size of the current evaluation.
    n: usize,
    bases: Vec<Relation>,
    base_epoch: Vec<u64>,
    regs: Vec<Relation>,
    reg_epoch: Vec<u64>,
    /// Upper-bound companions of `bases`/`regs` for three-valued partial
    /// evaluation ([`Plan::check_partial_view`]): overlay-dependent slots
    /// hold `[lo, hi]` intervals there (`lo` lives in the regular
    /// buffer), sized lazily on the first partial evaluation. One epoch
    /// vector covers both halves — every tree node stamps its overlay,
    /// so partial and concrete evaluations never share an epoch.
    bases_hi: Vec<Relation>,
    regs_hi: Vec<Relation>,
    /// Bit-plane companions of `bases`/`regs` for batched evaluation
    /// ([`Plan::allows_batch`]): overlay-dependent slots hold one lane
    /// per batched candidate, skeleton-derived ones hold the scalar
    /// relation broadcast into all lanes (filled once per skeleton and
    /// shared by every batch of it). Sized lazily on the first batched
    /// evaluation; separate epoch vectors because the scalar and lane
    /// fills of one slot are independent.
    lane_bases: Vec<LaneRel>,
    lane_base_epoch: Vec<u64>,
    lane_regs: Vec<LaneRel>,
    lane_reg_epoch: Vec<u64>,
    lane_scratch: LaneRel,
    /// Per-node active-lane masks for the lane-parallel acyclicity check.
    lane_active: Vec<u64>,
    /// Stamp of the overlay batch last evaluated; 0 = none.
    batch_gen: u64,
    reads: EventSet,
    writes: EventSet,
    scratch_a: Relation,
    scratch_b: Relation,
    colour: Vec<u8>,
    stack: Vec<(usize, usize)>,
    /// Adaptive check schedule for the fast path: starts as the plan's
    /// static cheapest-first order, then failing checks move to the
    /// front — the check that forbids one candidate of a test usually
    /// forbids the next one too, so it is tried first.
    fast_order: Vec<usize>,
    /// The plan `fast_order` belongs to (0 = none).
    fast_order_plan: u64,
    /// Route [`Plan::check_partial_view`] through the maintained
    /// path-delta state (set by the pruned walk under
    /// [`EnumConfig::incremental`](crate::enumerate::EnumConfig)). Plans
    /// with non-row-local overlay operators ignore the flag and evaluate
    /// from scratch — verdicts are identical either way.
    incremental: bool,
    /// Overlay-dependent register/base (re)fills since the last
    /// [`EvalContext::take_registers_refilled`] drain — the counter
    /// that shows what the incremental path saves.
    registers_refilled: u64,
    /// Maintained path-indexed state of the incremental evaluator.
    inc: IncState,
}

impl EvalContext {
    /// An empty context; buffers are allocated lazily on first use.
    pub fn new() -> Self {
        EvalContext::default()
    }

    /// Enables (or disables) the incremental path-delta mode of
    /// [`Plan::check_partial_view`]. Off by default; the pruned walk
    /// sets it from
    /// [`EnumConfig::incremental`](crate::enumerate::EnumConfig).
    pub fn set_incremental(&mut self, on: bool) {
        self.incremental = on;
    }

    /// Whether the incremental mode is currently enabled.
    pub fn incremental(&self) -> bool {
        self.incremental
    }

    /// Drains the overlay register/base refill counter (see
    /// [`crate::enumerate::PruneStats::registers_refilled`]).
    pub fn take_registers_refilled(&mut self) -> u64 {
        mem::take(&mut self.registers_refilled)
    }

    /// Starts a fresh evaluation: bumps the epoch (invalidating all
    /// cached registers and bases, skeleton-derived ones included) and
    /// sizes the arena for `plan` and universe `n`.
    fn begin(&mut self, plan: &Plan, n: usize) {
        self.epoch += 1;
        self.skel_epoch = self.epoch;
        self.plan_id = 0;
        self.skel_id = 0;
        self.overlay_gen = 0;
        self.batch_gen = 0;
        self.n = n;
        if self.bases.len() < plan.base_names.len() {
            self.bases
                .resize_with(plan.base_names.len(), Relation::default);
        }
        self.base_epoch.resize(self.bases.len(), 0);
        if self.regs.len() < plan.ops.len() {
            self.regs.resize_with(plan.ops.len(), Relation::default);
        }
        self.reg_epoch.resize(self.regs.len(), 0);
    }

    fn src_rel(&self, s: Src) -> &Relation {
        match s {
            Src::Base(i) => &self.bases[i],
            Src::Reg(i) => &self.regs[i],
        }
    }

    /// Grows the upper-bound buffers to `plan`'s slot counts (no-op once
    /// warm).
    fn size_hi(&mut self, plan: &Plan) {
        if self.bases_hi.len() < plan.base_names.len() {
            self.bases_hi
                .resize_with(plan.base_names.len(), Relation::default);
        }
        if self.regs_hi.len() < plan.ops.len() {
            self.regs_hi.resize_with(plan.ops.len(), Relation::default);
        }
    }

    /// Grows the bit-plane buffers to `plan`'s slot counts (no-op once
    /// warm).
    fn size_lanes(&mut self, plan: &Plan) {
        if self.lane_bases.len() < plan.base_names.len() {
            self.lane_bases
                .resize_with(plan.base_names.len(), LaneRel::default);
        }
        self.lane_base_epoch.resize(self.lane_bases.len(), 0);
        if self.lane_regs.len() < plan.ops.len() {
            self.lane_regs.resize_with(plan.ops.len(), LaneRel::default);
        }
        self.lane_reg_epoch.resize(self.lane_regs.len(), 0);
    }

    /// The bit-plane operand buffer of `s` (valid only after the slot's
    /// lane fill or broadcast this batch/skeleton).
    fn lane_src(&self, s: Src) -> &LaneRel {
        match s {
            Src::Base(i) => &self.lane_bases[i],
            Src::Reg(i) => &self.lane_regs[i],
        }
    }
}

// ---------------------------------------------------------------- compile

#[derive(Clone)]
enum Binding {
    Rel(Src),
    Fun { param: String, body: Expr },
}

struct Compiler {
    base_names: Vec<String>,
    base_slots: HashMap<String, usize>,
    ops: Vec<Op>,
    operands: Vec<Src>,
    /// Interns sorted n-ary operand lists, so structurally equal unions
    /// share one table slice (and therefore CSE to one register).
    operand_intern: HashMap<Vec<Src>, (u32, u32)>,
    cse: HashMap<Op, usize>,
    lets: HashMap<String, Binding>,
    depth: usize,
}

impl Compiler {
    fn base(&mut self, name: &str) -> Src {
        if let Some(&slot) = self.base_slots.get(name) {
            return Src::Base(slot);
        }
        let slot = self.base_names.len();
        self.base_names.push(name.to_owned());
        self.base_slots.insert(name.to_owned(), slot);
        Src::Base(slot)
    }

    /// Emits `op`, reusing an existing register for a structurally
    /// identical instruction (common-subexpression elimination).
    fn emit(&mut self, op: Op) -> Src {
        if let Some(&reg) = self.cse.get(&op) {
            return Src::Reg(reg);
        }
        self.ops.push(op);
        let reg = self.ops.len() - 1;
        self.cse.insert(op, reg);
        Src::Reg(reg)
    }

    /// Emits a commutative op with order-normalised operands, so `a | b`
    /// and `b | a` share one register.
    fn emit_comm(&mut self, mk: fn(Src, Src) -> Op, a: Src, b: Src) -> Src {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        self.emit(mk(lo, hi))
    }

    /// Compiles the leaves of a union tree (`a | b | c | …`) in source
    /// order.
    fn union_leaves(&mut self, e: &Expr, out: &mut Vec<Src>) -> Result<(), CatError> {
        if let Expr::Union(a, b) = e {
            self.union_leaves(a, out)?;
            self.union_leaves(b, out)?;
        } else {
            out.push(self.expr(e)?);
        }
        Ok(())
    }

    /// Emits a fused union over `leaves` (sorted and deduplicated): one
    /// [`Op::UnionN`] instruction instead of a chain of binary unions
    /// and intermediate registers. Two-operand unions keep the binary
    /// form.
    fn emit_union(&mut self, mut leaves: Vec<Src>) -> Src {
        leaves.sort_unstable();
        leaves.dedup();
        match leaves.len() {
            0 => self.emit(Op::Zero),
            1 => leaves[0],
            2 => self.emit(Op::Union(leaves[0], leaves[1])),
            _ => {
                let (start, len) = match self.operand_intern.get(&leaves) {
                    Some(&slice) => slice,
                    None => {
                        let slice = (self.operands.len() as u32, leaves.len() as u32);
                        self.operands.extend_from_slice(&leaves);
                        self.operand_intern.insert(leaves, slice);
                        slice
                    }
                };
                self.emit(Op::UnionN { start, len })
            }
        }
    }

    fn expr(&mut self, e: &Expr) -> Result<Src, CatError> {
        match e {
            Expr::Zero => Ok(self.emit(Op::Zero)),
            Expr::Id(name) => match self.lets.get(name.as_str()) {
                Some(Binding::Rel(src)) => Ok(*src),
                Some(Binding::Fun { .. }) => Err(CatError::new(format!(
                    "{name:?} is a function, not a relation"
                ))),
                None => Ok(self.base(name)),
            },
            Expr::App(name, arg) => {
                let argv = self.expr(arg)?;
                match name.as_str() {
                    "WW" => Ok(self.emit(Op::Restrict(argv, Sort::Writes, Sort::Writes))),
                    "WR" => Ok(self.emit(Op::Restrict(argv, Sort::Writes, Sort::Reads))),
                    "RW" => Ok(self.emit(Op::Restrict(argv, Sort::Reads, Sort::Writes))),
                    "RR" => Ok(self.emit(Op::Restrict(argv, Sort::Reads, Sort::Reads))),
                    _ => match self.lets.get(name.as_str()).cloned() {
                        Some(Binding::Fun { param, body }) => {
                            if self.depth >= MAX_INLINE_DEPTH {
                                return Err(CatError::new(format!(
                                    "function {name:?} recurses deeper than {MAX_INLINE_DEPTH}"
                                )));
                            }
                            self.depth += 1;
                            // Bind the parameter, compile the body at this
                            // application site, restore — the compile-time
                            // image of the interpreter's dynamic scoping.
                            let saved = self.lets.insert(param.clone(), Binding::Rel(argv));
                            let result = self.expr(&body);
                            match saved {
                                Some(v) => {
                                    self.lets.insert(param, v);
                                }
                                None => {
                                    self.lets.remove(&param);
                                }
                            }
                            self.depth -= 1;
                            result
                        }
                        Some(Binding::Rel(_)) => Err(CatError::new(format!(
                            "{name:?} is a relation, cannot be applied"
                        ))),
                        // A base relation can never be a function, so an
                        // application of an unknown name is an error
                        // either way; report it like the interpreter
                        // would on a missing base.
                        None => Err(CatError::new(format!(
                            "{name:?} is not a function, cannot be applied"
                        ))),
                    },
                }
            }
            Expr::Union(..) => {
                let mut leaves = Vec::new();
                self.union_leaves(e, &mut leaves)?;
                Ok(self.emit_union(leaves))
            }
            Expr::Inter(a, b) => {
                let (sa, sb) = (self.expr(a)?, self.expr(b)?);
                Ok(self.emit_comm(Op::Inter, sa, sb))
            }
            Expr::Diff(a, b) => {
                let (sa, sb) = (self.expr(a)?, self.expr(b)?);
                Ok(self.emit(Op::Diff(sa, sb)))
            }
            Expr::Seq(a, b) => {
                let (sa, sb) = (self.expr(a)?, self.expr(b)?);
                Ok(self.emit(Op::Seq(sa, sb)))
            }
            Expr::Inverse(a) => {
                let s = self.expr(a)?;
                Ok(self.emit(Op::Inverse(s)))
            }
            Expr::Plus(a) => {
                let s = self.expr(a)?;
                Ok(self.emit(Op::Plus(s)))
            }
            Expr::Star(a) => {
                let s = self.expr(a)?;
                Ok(self.emit(Op::Star(s)))
            }
            Expr::Opt(a) => {
                let s = self.expr(a)?;
                Ok(self.emit(Op::Opt(s)))
            }
        }
    }
}

impl Plan {
    /// Compiles `program` into a plan.
    ///
    /// # Errors
    ///
    /// Returns a [`CatError`] for programs the interpreter could not
    /// evaluate either: applying a non-function, using a function as a
    /// relation, or unboundedly recursive function definitions.
    pub fn compile(program: &CatProgram) -> Result<Plan, CatError> {
        let mut c = Compiler {
            base_names: Vec::new(),
            base_slots: HashMap::new(),
            ops: Vec::new(),
            operands: Vec::new(),
            operand_intern: HashMap::new(),
            cse: HashMap::new(),
            lets: HashMap::new(),
            depth: 0,
        };
        let mut checks = Vec::new();
        for stmt in program.stmts() {
            match stmt {
                Stmt::Let {
                    name,
                    param: None,
                    body,
                } => {
                    let src = c.expr(body)?;
                    c.lets.insert(name.clone(), Binding::Rel(src));
                }
                Stmt::Let {
                    name,
                    param: Some(p),
                    body,
                } => {
                    c.lets.insert(
                        name.clone(),
                        Binding::Fun {
                            param: p.clone(),
                            body: body.clone(),
                        },
                    );
                }
                Stmt::Check { kind, expr, name } => {
                    let src = c.expr(expr)?;
                    checks.push(PlanCheck {
                        name: name.clone(),
                        kind: *kind,
                        src,
                        deps: Vec::new(),
                        cost: 0,
                    });
                }
            }
        }

        // Dependency closure and cost per check. Operand registers are
        // always lower-numbered, so a reverse sweep over a seen-set
        // yields the deps in topological (ascending) order.
        for check in &mut checks {
            let mut need = vec![false; c.ops.len()];
            let mut bases = vec![false; c.base_names.len()];
            let mark = |s: Src, need: &mut Vec<bool>, bases: &mut Vec<bool>| match s {
                Src::Reg(i) => need[i] = true,
                Src::Base(i) => bases[i] = true,
            };
            mark(check.src, &mut need, &mut bases);
            for i in (0..c.ops.len()).rev() {
                if !need[i] {
                    continue;
                }
                c.ops[i].for_each_src(&c.operands, |s| mark(s, &mut need, &mut bases));
            }
            check.deps = (0..c.ops.len()).filter(|&i| need[i]).collect();
            let kind_cost = match check.kind {
                CheckKind::Acyclic => 4,
                CheckKind::Irreflexive | CheckKind::Empty => 1,
            };
            check.cost = kind_cost
                + check.deps.iter().map(|&i| c.ops[i].cost()).sum::<u64>()
                + bases.iter().filter(|&&b| b).count() as u64;
        }

        let mut fast_order: Vec<usize> = (0..checks.len()).collect();
        fast_order.sort_by_key(|&i| checks[i].cost);

        // Overlay classification: an op is overlay-dependent iff it
        // transitively reads an rf/co-derived base. Operand registers
        // are always lower-numbered, so one forward sweep suffices.
        let base_overlay: Vec<bool> = c.base_names.iter().map(|n| is_overlay_base(n)).collect();
        let mut op_overlay = vec![false; c.ops.len()];
        for i in 0..c.ops.len() {
            let mut overlay = false;
            c.ops[i].for_each_src(&c.operands, |s| {
                overlay |= match s {
                    Src::Base(b) => base_overlay[b],
                    Src::Reg(r) => op_overlay[r],
                };
            });
            op_overlay[i] = overlay;
        }
        let plain_slot: Vec<Option<usize>> = c
            .base_names
            .iter()
            .map(|n| match n.as_str() {
                "rfe" | "rfi" | "coe" | "coi" | "fre" | "fri" => c.base_slots.get(&n[..2]).copied(),
                _ => None,
            })
            .collect();

        // Family masks and row-locality for the incremental evaluator:
        // another forward sweep, plus the set of overlay ops some check
        // actually reaches (dead bindings are never maintained — their
        // scalar operands may never be materialised).
        let base_fam: Vec<u8> = c
            .base_names
            .iter()
            .map(|n| base_family(n).map_or(0, |f| 1 << f))
            .collect();
        let mut op_fam = vec![0u8; c.ops.len()];
        for i in 0..c.ops.len() {
            let mut fam = 0u8;
            c.ops[i].for_each_src(&c.operands, |s| {
                fam |= match s {
                    Src::Base(b) => base_fam[b],
                    Src::Reg(r) => op_fam[r],
                };
            });
            op_fam[i] = fam;
        }
        let fam_used = base_fam.iter().fold(0, |m, &f| m | f);
        let mut live = vec![false; c.ops.len()];
        for check in &checks {
            for &op in &check.deps {
                live[op] = true;
            }
        }
        let inc_ops: Vec<u32> = (0..c.ops.len())
            .filter(|&i| live[i] && op_fam[i] != 0)
            .map(|i| i as u32)
            .collect();
        let incremental_ok = inc_ops.iter().all(|&i| {
            matches!(
                c.ops[i as usize],
                Op::Zero
                    | Op::Union(..)
                    | Op::UnionN { .. }
                    | Op::Inter(..)
                    | Op::Diff(..)
                    | Op::Opt(_)
                    | Op::Restrict(..)
            )
        });

        Ok(Plan {
            id: next_stamp(),
            base_names: c.base_names,
            ops: c.ops,
            operands: c.operands,
            checks,
            fast_order,
            base_overlay,
            op_overlay,
            plain_slot,
            base_fam,
            op_fam,
            fam_used,
            inc_ops,
            incremental_ok,
        })
    }

    /// Number of compiled instructions (after CSE).
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Names of the base relations the plan reads.
    pub fn base_names(&self) -> impl Iterator<Item = &str> {
        self.base_names.iter().map(String::as_str)
    }

    // ------------------------------------------------------------- eval

    /// Materialises base slot `i` unless still valid: overlay-dependent
    /// bases are valid for the current candidate only, skeleton-derived
    /// ones for the whole skeleton.
    fn ensure_base(
        &self,
        ctx: &mut EvalContext,
        slot: usize,
        env: &EnvSource<'_>,
    ) -> Result<(), CatError> {
        let required = if self.base_overlay[slot] {
            ctx.epoch
        } else {
            ctx.skel_epoch
        };
        if ctx.base_epoch[slot] >= required {
            return Ok(());
        }
        if self.base_overlay[slot] {
            ctx.registers_refilled += 1;
        }
        let name = self.base_names[slot].as_str();
        let mut dst = mem::take(&mut ctx.bases[slot]);
        let filled = match env {
            EnvSource::Map(map) => match map.get(name) {
                Some(r) => {
                    dst.copy_from(r);
                    true
                }
                None => false,
            },
            EnvSource::Exec(exec) => fill_base_from_exec(exec, name, &mut dst, ctx),
            // On the view path (and only there — a map environment may
            // bind `rfe` to anything) an internal/external variant is
            // one intersection off the plain relation, when the plan
            // also reads that plain base.
            EnvSource::View(view) => match self.plain_slot[slot] {
                Some(plain) => {
                    self.ensure_base(ctx, plain, env)?;
                    let other = if name.ends_with('e') {
                        view.ext()
                    } else {
                        view.int()
                    };
                    dst.inter_from(&ctx.bases[plain], other);
                    true
                }
                None => fill_base_from_view(view, name, &mut dst, ctx),
            },
        };
        ctx.bases[slot] = dst;
        if !filled {
            return Err(CatError::new(format!("unbound identifier {name:?}")));
        }
        ctx.base_epoch[slot] = ctx.epoch;
        Ok(())
    }

    fn ensure_src(
        &self,
        ctx: &mut EvalContext,
        s: Src,
        env: &EnvSource<'_>,
    ) -> Result<(), CatError> {
        if let Src::Base(slot) = s {
            self.ensure_base(ctx, slot, env)?;
        }
        Ok(())
    }

    /// Executes instruction `i` unless its register is still valid —
    /// for the current candidate if overlay-dependent, for the current
    /// skeleton otherwise. Register operands must have been executed
    /// earlier (deps are topologically ordered); base operands are
    /// materialised on demand.
    fn run_op(&self, ctx: &mut EvalContext, i: usize, env: &EnvSource<'_>) -> Result<(), CatError> {
        let required = if self.op_overlay[i] {
            ctx.epoch
        } else {
            ctx.skel_epoch
        };
        if ctx.reg_epoch[i] >= required {
            return Ok(());
        }
        if self.op_overlay[i] {
            ctx.registers_refilled += 1;
        }
        let op = self.ops[i];
        let mut src_err = Ok(());
        op.for_each_src(&self.operands, |s| {
            if src_err.is_ok() {
                src_err = self.ensure_src(ctx, s, env);
            }
        });
        src_err?;
        let mut dst = mem::take(&mut ctx.regs[i]);
        match op {
            Op::Zero => dst.reset(ctx.n),
            Op::Union(a, b) => dst.union_from(ctx.src_rel(a), ctx.src_rel(b)),
            Op::UnionN { start, len } => {
                let operands = &self.operands[start as usize..(start + len) as usize];
                dst.copy_from(ctx.src_rel(operands[0]));
                for &s in &operands[1..] {
                    dst.or_in_place(ctx.src_rel(s));
                }
            }
            Op::Inter(a, b) => dst.inter_from(ctx.src_rel(a), ctx.src_rel(b)),
            Op::Diff(a, b) => dst.diff_from(ctx.src_rel(a), ctx.src_rel(b)),
            Op::Seq(a, b) => dst.seq_from(ctx.src_rel(a), ctx.src_rel(b)),
            Op::Inverse(a) => dst.inverse_from(ctx.src_rel(a)),
            Op::Opt(a) => dst.opt_from(ctx.src_rel(a)),
            Op::Plus(a) => {
                let mut scratch = mem::take(&mut ctx.scratch_a);
                dst.plus_from(ctx.src_rel(a), &mut scratch);
                ctx.scratch_a = scratch;
            }
            Op::Star(a) => {
                let mut scratch = mem::take(&mut ctx.scratch_a);
                dst.star_from(ctx.src_rel(a), &mut scratch);
                ctx.scratch_a = scratch;
            }
            Op::Restrict(a, dom, rng) => {
                let dom = match dom {
                    Sort::Reads => &ctx.reads,
                    Sort::Writes => &ctx.writes,
                };
                let rng = match rng {
                    Sort::Reads => &ctx.reads,
                    Sort::Writes => &ctx.writes,
                };
                dst.restrict_from(ctx.src_rel(a), dom, rng);
            }
        }
        ctx.regs[i] = dst;
        ctx.reg_epoch[i] = ctx.epoch;
        Ok(())
    }

    fn check_passes(&self, ctx: &mut EvalContext, check: &PlanCheck) -> bool {
        let mut colour = mem::take(&mut ctx.colour);
        let mut stack = mem::take(&mut ctx.stack);
        let rel = ctx.src_rel(check.src);
        let passed = match check.kind {
            CheckKind::Acyclic => rel.is_acyclic_with(&mut colour, &mut stack),
            CheckKind::Irreflexive => rel.is_irreflexive(),
            CheckKind::Empty => rel.is_empty(),
        };
        ctx.colour = colour;
        ctx.stack = stack;
        passed
    }

    /// The fast path: `true` iff every check passes on `exec`, evaluating
    /// checks cheapest-first and stopping at the first failure. Only the
    /// base relations and registers the verdict actually needs are
    /// materialised.
    ///
    /// # Errors
    ///
    /// Returns a [`CatError`] if the program references a base relation
    /// the execution does not define. (Unlike the interpreter, bindings
    /// no check depends on are never evaluated here, so errors confined
    /// to dead bindings do not surface.)
    pub fn allows_exec(&self, ctx: &mut EvalContext, exec: &Execution) -> Result<bool, CatError> {
        ctx.begin(self, exec.len());
        exec.fill_read_set(&mut ctx.reads);
        exec.fill_write_set(&mut ctx.writes);
        let env = EnvSource::Exec(exec);
        self.allows_inner(ctx, &env)
    }

    /// Full-outcome mode: evaluates every statement (in program order,
    /// like the interpreter — including bindings no check uses) and
    /// reports each named check.
    ///
    /// # Errors
    ///
    /// Returns a [`CatError`] for unbound base relations, even in unused
    /// bindings.
    pub fn check_exec(
        &self,
        ctx: &mut EvalContext,
        exec: &Execution,
    ) -> Result<Vec<CheckOutcome>, CatError> {
        ctx.begin(self, exec.len());
        exec.fill_read_set(&mut ctx.reads);
        exec.fill_write_set(&mut ctx.writes);
        let env = EnvSource::Exec(exec);
        self.check_inner(ctx, &env)
    }

    /// [`Plan::allows_exec`] over a streamed [`ExecutionView`] — the
    /// cache-miss hot path of the skeleton/overlay enumerator. The
    /// context keys its arena on (plan, skeleton, overlay) stamps:
    /// moving to the next overlay of the same skeleton invalidates only
    /// the rf/co-derived bases and the registers that transitively read
    /// them; everything skeleton-derived is evaluated once per skeleton.
    ///
    /// A context interleaving *different* plans over one skeleton falls
    /// back to full invalidation per call (slot numbering is per-plan);
    /// use one context per model to keep skeleton sharing effective.
    ///
    /// # Errors
    ///
    /// See [`Plan::allows_exec`].
    pub fn allows_view(
        &self,
        ctx: &mut EvalContext,
        view: &ExecutionView<'_>,
    ) -> Result<bool, CatError> {
        self.begin_view(ctx, view);
        self.allows_inner(ctx, &EnvSource::View(view))
    }

    /// [`Plan::check_exec`] over a streamed [`ExecutionView`].
    ///
    /// # Errors
    ///
    /// See [`Plan::check_exec`].
    pub fn check_view(
        &self,
        ctx: &mut EvalContext,
        view: &ExecutionView<'_>,
    ) -> Result<Vec<CheckOutcome>, CatError> {
        self.begin_view(ctx, view);
        self.check_inner(ctx, &EnvSource::View(view))
    }

    /// Three-valued evaluation over a partially committed candidate:
    /// `Ok(Some(v))` when every concrete extension of `partial`'s open
    /// rf slots and coherence axes yields verdict `v`, `Ok(None)` when
    /// extensions may disagree (or the bounds are too loose to tell) —
    /// the conflict-driven cutoff of
    /// [`crate::enumerate::for_each_execution_pruned`].
    ///
    /// Every overlay-dependent base relation and register is evaluated
    /// as an interval `[lo, hi]` with `lo ⊆ R ⊆ hi` for every extension
    /// `R` (`PartialView::fill_rf_bounds` and friends supply the base
    /// intervals). All operators are monotone in both operands except
    /// difference, which is antitone in its right operand and swaps
    /// bounds there (`lo = a.lo \ b.hi`, `hi = a.hi \ b.lo`). A check is
    /// definite when the bound that could still change it already
    /// cannot: `empty`/`irreflexive`/`acyclic` pass for every extension
    /// when `hi` passes, and fail for every extension when `lo` fails.
    /// A definite failure short-circuits (any failing check forbids the
    /// whole subtree); `Some(true)` requires every check definite-true.
    ///
    /// # Errors
    ///
    /// See [`Plan::allows_exec`].
    pub fn check_partial_view(
        &self,
        ctx: &mut EvalContext,
        partial: &PartialView<'_>,
    ) -> Result<Option<bool>, CatError> {
        let view = partial.as_view();
        self.begin_view(ctx, &view);
        if ctx.incremental && self.incremental_ok {
            return self.check_partial_incremental(ctx, partial, &view);
        }
        ctx.size_hi(self);
        let mut all_definite = true;
        for &ci in &self.fast_order {
            let check = &self.checks[ci];
            for &op in &check.deps {
                self.run_op_partial(ctx, op, partial, &view)?;
            }
            self.ensure_src_partial(ctx, check.src, partial, &view)?;
            match self.check_passes_partial(ctx, check) {
                Some(true) => {}
                Some(false) => return Ok(Some(false)),
                None => all_definite = false,
            }
        }
        Ok(if all_definite { Some(true) } else { None })
    }

    /// The upper-bound companion of [`EvalContext::src_rel`]: for
    /// overlay-dependent slots the `hi` half of the interval, for
    /// skeleton-derived ones the exact relation (`lo == hi`).
    fn src_hi<'c>(&self, ctx: &'c EvalContext, s: Src) -> &'c Relation {
        match s {
            Src::Base(i) => {
                if self.base_overlay[i] {
                    &ctx.bases_hi[i]
                } else {
                    &ctx.bases[i]
                }
            }
            Src::Reg(i) => {
                if self.op_overlay[i] {
                    &ctx.regs_hi[i]
                } else {
                    &ctx.regs[i]
                }
            }
        }
    }

    /// Interval variant of [`Plan::ensure_base`]: overlay bases get
    /// `[lo, hi]` bounds from the partial view, skeleton-derived ones
    /// fall through to the exact fill.
    fn ensure_base_partial(
        &self,
        ctx: &mut EvalContext,
        slot: usize,
        partial: &PartialView<'_>,
        view: &ExecutionView<'_>,
    ) -> Result<(), CatError> {
        if !self.base_overlay[slot] {
            return self.ensure_base(ctx, slot, &EnvSource::View(view));
        }
        if ctx.base_epoch[slot] >= ctx.epoch {
            return Ok(());
        }
        ctx.registers_refilled += 1;
        let name = self.base_names[slot].as_str();
        let mut lo = mem::take(&mut ctx.bases[slot]);
        let mut hi = mem::take(&mut ctx.bases_hi[slot]);
        match name {
            "rf" => partial.fill_rf_bounds(&mut lo, &mut hi),
            "co" => partial.fill_co_bounds(&mut lo, &mut hi),
            "fr" => partial.fill_fr_bounds(&mut lo, &mut hi),
            "rfe" | "rfi" | "coe" | "coi" | "fre" | "fri" => {
                // An internal/external variant is the plain interval
                // intersected with the (exact, skeleton-derived)
                // ext/int relation — intersection is monotone, so the
                // bounds intersect componentwise.
                match &name[..2] {
                    "rf" => partial.fill_rf_bounds(&mut ctx.scratch_a, &mut ctx.scratch_b),
                    "co" => partial.fill_co_bounds(&mut ctx.scratch_a, &mut ctx.scratch_b),
                    _ => partial.fill_fr_bounds(&mut ctx.scratch_a, &mut ctx.scratch_b),
                }
                let other = if name.ends_with('e') {
                    view.ext()
                } else {
                    view.int()
                };
                lo.inter_from(&ctx.scratch_a, other);
                hi.inter_from(&ctx.scratch_b, other);
            }
            _ => unreachable!("overlay bases are rf/co/fr and their variants"),
        }
        ctx.bases[slot] = lo;
        ctx.bases_hi[slot] = hi;
        ctx.base_epoch[slot] = ctx.epoch;
        Ok(())
    }

    fn ensure_src_partial(
        &self,
        ctx: &mut EvalContext,
        s: Src,
        partial: &PartialView<'_>,
        view: &ExecutionView<'_>,
    ) -> Result<(), CatError> {
        if let Src::Base(slot) = s {
            self.ensure_base_partial(ctx, slot, partial, view)?;
        }
        Ok(())
    }

    /// Interval variant of [`Plan::run_op`]: overlay-dependent
    /// instructions compute both interval halves (into `regs`/`regs_hi`),
    /// skeleton-derived ones run exactly once per skeleton as usual.
    fn run_op_partial(
        &self,
        ctx: &mut EvalContext,
        i: usize,
        partial: &PartialView<'_>,
        view: &ExecutionView<'_>,
    ) -> Result<(), CatError> {
        if !self.op_overlay[i] {
            return self.run_op(ctx, i, &EnvSource::View(view));
        }
        if ctx.reg_epoch[i] >= ctx.epoch {
            return Ok(());
        }
        ctx.registers_refilled += 1;
        let op = self.ops[i];
        let mut src_err = Ok(());
        op.for_each_src(&self.operands, |s| {
            if src_err.is_ok() {
                src_err = self.ensure_src_partial(ctx, s, partial, view);
            }
        });
        src_err?;
        let mut lo = mem::take(&mut ctx.regs[i]);
        let mut hi = mem::take(&mut ctx.regs_hi[i]);
        match op {
            Op::Zero => {
                lo.reset(ctx.n);
                hi.reset(ctx.n);
            }
            Op::Union(a, b) => {
                lo.union_from(ctx.src_rel(a), ctx.src_rel(b));
                hi.union_from(self.src_hi(ctx, a), self.src_hi(ctx, b));
            }
            Op::UnionN { start, len } => {
                let operands = &self.operands[start as usize..(start + len) as usize];
                lo.copy_from(ctx.src_rel(operands[0]));
                hi.copy_from(self.src_hi(ctx, operands[0]));
                for &s in &operands[1..] {
                    lo.or_in_place(ctx.src_rel(s));
                    hi.or_in_place(self.src_hi(ctx, s));
                }
            }
            Op::Inter(a, b) => {
                lo.inter_from(ctx.src_rel(a), ctx.src_rel(b));
                hi.inter_from(self.src_hi(ctx, a), self.src_hi(ctx, b));
            }
            Op::Diff(a, b) => {
                // Antitone right operand: the tightest lower bound
                // removes the most (`b.hi`), the loosest upper bound
                // removes the least (`b.lo`).
                lo.diff_from(ctx.src_rel(a), self.src_hi(ctx, b));
                hi.diff_from(self.src_hi(ctx, a), ctx.src_rel(b));
            }
            Op::Seq(a, b) => {
                lo.seq_from(ctx.src_rel(a), ctx.src_rel(b));
                hi.seq_from(self.src_hi(ctx, a), self.src_hi(ctx, b));
            }
            Op::Inverse(a) => {
                lo.inverse_from(ctx.src_rel(a));
                hi.inverse_from(self.src_hi(ctx, a));
            }
            Op::Opt(a) => {
                lo.opt_from(ctx.src_rel(a));
                hi.opt_from(self.src_hi(ctx, a));
            }
            Op::Plus(a) => {
                let mut scratch = mem::take(&mut ctx.scratch_a);
                lo.plus_from(ctx.src_rel(a), &mut scratch);
                hi.plus_from(self.src_hi(ctx, a), &mut scratch);
                ctx.scratch_a = scratch;
            }
            Op::Star(a) => {
                let mut scratch = mem::take(&mut ctx.scratch_a);
                lo.star_from(ctx.src_rel(a), &mut scratch);
                hi.star_from(self.src_hi(ctx, a), &mut scratch);
                ctx.scratch_a = scratch;
            }
            Op::Restrict(a, dom, rng) => {
                let dom = match dom {
                    Sort::Reads => &ctx.reads,
                    Sort::Writes => &ctx.writes,
                };
                let rng = match rng {
                    Sort::Reads => &ctx.reads,
                    Sort::Writes => &ctx.writes,
                };
                lo.restrict_from(ctx.src_rel(a), dom, rng);
                hi.restrict_from(self.src_hi(ctx, a), dom, rng);
            }
        }
        ctx.regs[i] = lo;
        ctx.regs_hi[i] = hi;
        ctx.reg_epoch[i] = ctx.epoch;
        Ok(())
    }

    /// Three-valued check over an interval: passing on `hi` proves every
    /// extension passes, failing on `lo` proves every extension fails.
    fn check_passes_partial(&self, ctx: &mut EvalContext, check: &PlanCheck) -> Option<bool> {
        let mut colour = mem::take(&mut ctx.colour);
        let mut stack = mem::take(&mut ctx.stack);
        let lo = ctx.src_rel(check.src);
        let hi = self.src_hi(ctx, check.src);
        let verdict = match check.kind {
            CheckKind::Empty => {
                if hi.is_empty() {
                    Some(true)
                } else if !lo.is_empty() {
                    Some(false)
                } else {
                    None
                }
            }
            CheckKind::Irreflexive => {
                if hi.is_irreflexive() {
                    Some(true)
                } else if !lo.is_irreflexive() {
                    Some(false)
                } else {
                    None
                }
            }
            CheckKind::Acyclic => {
                if hi.is_acyclic_with(&mut colour, &mut stack) {
                    Some(true)
                } else if !lo.is_acyclic_with(&mut colour, &mut stack) {
                    Some(false)
                } else {
                    None
                }
            }
        };
        ctx.colour = colour;
        ctx.stack = stack;
        verdict
    }

    // -------------------------------------------------- incremental eval
    //
    // The path-delta variant of `check_partial_view`. The pruned walk
    // asks for a verdict at every tree node; consecutive nodes share
    // all but the deepest committed axis, so instead of refilling the
    // whole overlay register tier the evaluator keeps the interval
    // relations of the *path* alive in `IncState` and moves between
    // nodes by popping to the divergence level (word-level undo
    // journal) and pushing the newly committed axes (O(delta) edge
    // updates, row-local register recomputes, Pearce–Kelly order
    // maintenance for acyclicity). Along a path `lo` only grows and
    // `hi` only shrinks — every verdict memo below leans on that
    // monotonicity. Verdicts are bit-identical to the from-scratch
    // partial evaluation; `incremental_diff.rs` proves it differentially.

    /// The incremental body of [`Plan::check_partial_view`]
    /// (`ctx.incremental && self.incremental_ok` only).
    fn check_partial_incremental(
        &self,
        ctx: &mut EvalContext,
        partial: &PartialView<'_>,
        view: &ExecutionView<'_>,
    ) -> Result<Option<bool>, CatError> {
        // Skeleton-derived operands first: epoch-gated, so once warm
        // this is a few integer compares per node. (The maintained
        // relations read scalar rows of non-overlay operands during row
        // recomputes, and an interleaved foreign plan may have evicted
        // them.)
        // `EvalContext::begin` bumps `skel_epoch` whenever the plan or
        // skeleton switches, so a matching triple means nothing could
        // have evicted the scalar slots since the last ensure.
        if ctx.inc.ensured_plan != self.id
            || ctx.inc.ensured_skel != view.skeleton_id()
            || ctx.inc.ensured_epoch != ctx.skel_epoch
        {
            let env = EnvSource::View(view);
            for check in &self.checks {
                for &op in &check.deps {
                    if self.op_overlay[op] {
                        let mut src_err = Ok(());
                        self.ops[op].for_each_src(&self.operands, |s| {
                            if src_err.is_ok() {
                                if let Src::Base(b) = s {
                                    if !self.base_overlay[b] {
                                        src_err = self.ensure_base(ctx, b, &env);
                                    }
                                }
                            }
                        });
                        src_err?;
                    } else {
                        self.run_op(ctx, op, &env)?;
                    }
                }
                if let Src::Base(b) = check.src {
                    if !self.base_overlay[b] {
                        self.ensure_base(ctx, b, &env)?;
                    }
                }
            }
            ctx.inc.ensured_plan = self.id;
            ctx.inc.ensured_skel = view.skeleton_id();
            ctx.inc.ensured_epoch = ctx.skel_epoch;
        }
        if ctx.inc.plan_id != self.id
            || ctx.inc.skel_id != view.skeleton_id()
            || ctx.inc.combo_id != partial.combination_id()
        {
            self.inc_reset(ctx, partial, view)?;
        }
        let full = partial.rf_depth() == partial.reads_list().len()
            && partial.co_depth() == partial.skel().writes_per_loc().len();
        self.inc_sync(ctx, partial, view, full);
        Ok(self.inc_verdict(ctx, full))
    }

    /// Rebuilds the maintained state at the root of a new (plan,
    /// skeleton, combination): baseline interval fills at depths
    /// `(0, 0)`, one scalar verdict per skeleton-derived check, and a
    /// topological order per overlay acyclicity check.
    fn inc_reset(
        &self,
        ctx: &mut EvalContext,
        partial: &PartialView<'_>,
        view: &ExecutionView<'_>,
    ) -> Result<(), CatError> {
        let n = ctx.n;
        {
            let inc = &mut ctx.inc;
            inc.plan_id = 0; // invalid until fully built
            inc.journal.clear();
            inc.ord_journal.clear();
            inc.levels.clear();
            inc.co_arena.clear();
            inc.fixed_failed = false;
            if inc.rels.fam_lo.len() < 3 {
                inc.rels.fam_lo.resize_with(3, Relation::default);
                inc.rels.fam_hi.resize_with(3, Relation::default);
            }
            if inc.rels.var_lo.len() < self.base_names.len() {
                inc.rels.var_lo.resize_with(self.base_names.len(), Relation::default);
                inc.rels.var_hi.resize_with(self.base_names.len(), Relation::default);
            }
            if inc.rels.reg_lo.len() < self.ops.len() {
                inc.rels.reg_lo.resize_with(self.ops.len(), Relation::default);
                inc.rels.reg_hi.resize_with(self.ops.len(), Relation::default);
            }
            if inc.checks.len() < self.checks.len() {
                inc.checks.resize_with(self.checks.len(), IncCheck::default);
            }
        }
        // Family bounds at the root.
        let root = partial.at_depth(0, 0);
        {
            let inc = &mut ctx.inc;
            if self.fam_used & FAM_RF_M != 0 {
                root.fill_rf_bounds(&mut inc.rels.fam_lo[FAM_RF], &mut inc.rels.fam_hi[FAM_RF]);
                ctx.registers_refilled += 1;
            }
            if self.fam_used & FAM_CO_M != 0 {
                root.fill_co_bounds(&mut ctx.inc.rels.fam_lo[FAM_CO], &mut ctx.inc.rels.fam_hi[FAM_CO]);
                ctx.registers_refilled += 1;
            }
            if self.fam_used & FAM_FR_M != 0 {
                root.fill_fr_bounds(&mut ctx.inc.rels.fam_lo[FAM_FR], &mut ctx.inc.rels.fam_hi[FAM_FR]);
                ctx.registers_refilled += 1;
            }
        }
        // Variant bounds: `fam ∩ ext/int`, componentwise.
        for slot in 0..self.base_names.len() {
            let fam = self.base_fam[slot];
            if fam == 0 || self.base_names[slot].len() == 2 {
                continue;
            }
            let f = fam.trailing_zeros() as usize;
            let other = if self.base_names[slot].ends_with('e') {
                view.ext()
            } else {
                view.int()
            };
            let rels = &mut ctx.inc.rels;
            let mut lo = mem::take(&mut rels.var_lo[slot]);
            let mut hi = mem::take(&mut rels.var_hi[slot]);
            lo.inter_from(&rels.fam_lo[f], other);
            hi.inter_from(&rels.fam_hi[f], other);
            rels.var_lo[slot] = lo;
            rels.var_hi[slot] = hi;
            ctx.registers_refilled += 1;
        }
        // Overlay registers: full row-by-row compute through the same
        // row kernel the pushes use.
        for idx in 0..self.inc_ops.len() {
            let i = self.inc_ops[idx] as usize;
            let EvalContext {
                inc,
                bases,
                regs,
                reads,
                writes,
                registers_refilled,
                ..
            } = ctx;
            let IncState {
                rels,
                row_lo,
                row_hi,
                rows_buf,
                journal,
                ..
            } = inc;
            let mut lo = mem::take(&mut rels.reg_lo[i]);
            let mut hi = mem::take(&mut rels.reg_hi[i]);
            lo.reset(n);
            hi.reset(n);
            let words = lo.words_per_row();
            if words == 1 {
                // Same single-word kernel the pushes use; the handful
                // of journal entries it records sit below the first
                // level's mark and are never replayed.
                rows_buf.clear();
                rows_buf.extend(0..n as u32);
                self.inc_op_rows_1(
                    rels, bases, regs, reads, writes, i, rows_buf, journal, &mut lo, &mut hi,
                    false,
                );
            } else {
                for row in 0..n {
                    self.inc_op_row(
                        rels, bases, regs, reads, writes, i, row, words, row_lo, row_hi,
                    );
                    lo.set_row(row, row_lo);
                    hi.set_row(row, row_hi);
                }
            }
            rels.reg_lo[i] = lo;
            rels.reg_hi[i] = hi;
            *registers_refilled += 1;
        }
        // Checks: skeleton-derived ones get one scalar verdict for the
        // whole combination; overlay acyclicity checks get a maintained
        // topological order of their root `lo` bound.
        let env = EnvSource::View(view);
        for ci in 0..self.checks.len() {
            let check = &self.checks[ci];
            if !self.src_is_overlay(check.src) {
                for &op in &check.deps {
                    self.run_op(ctx, op, &env)?;
                }
                self.ensure_src(ctx, check.src, &env)?;
                let passed = self.check_passes(ctx, check);
                let inc = &mut ctx.inc;
                inc.checks[ci].fixed = if passed { 1 } else { 2 };
                if !passed {
                    inc.fixed_failed = true;
                }
                continue;
            }
            let mut colour = mem::take(&mut ctx.colour);
            let mut stack = mem::take(&mut ctx.stack);
            {
                let EvalContext {
                    inc, bases, regs, ..
                } = &mut *ctx;
                let IncState {
                    rels,
                    checks: states,
                    ..
                } = inc;
                let st = &mut states[ci];
                st.fixed = 0;
                st.cyclic_since = usize::MAX;
                st.pass_since = usize::MAX;
                st.fail_since = usize::MAX;
                st.witness.clear();
                if check.kind == CheckKind::Acyclic {
                    let lo = self.inc_src_lo(rels, bases, regs, check.src);
                    if pk_topo_init(lo, n, st, &mut colour, &mut stack) {
                        // Cyclic already at the root: every node of the
                        // combination is definite-false, and the order
                        // (an arbitrary permutation) is never consulted
                        // for insertions.
                        st.cyclic_since = 0;
                    }
                }
            }
            ctx.colour = colour;
            ctx.stack = stack;
        }
        let inc = &mut ctx.inc;
        inc.plan_id = self.id;
        inc.skel_id = view.skeleton_id();
        inc.combo_id = partial.combination_id();
        Ok(())
    }

    /// Moves the maintained path to `partial`'s node: finds the longest
    /// recorded level prefix still matching the overlay's commitments,
    /// pops everything deeper, and pushes the missing levels. Keying on
    /// the *commitments* (not on walk callbacks) makes the state robust
    /// to any visit order.
    fn inc_sync(
        &self,
        ctx: &mut EvalContext,
        partial: &PartialView<'_>,
        view: &ExecutionView<'_>,
        full: bool,
    ) {
        let reads = partial.reads_list();
        let rl = reads.len();
        let target = partial.rf_depth() + partial.co_depth();
        let overlay = partial.overlay();
        let keep = {
            let inc = &ctx.inc;
            let mut keep = 0;
            while keep < inc.levels.len() && keep < target {
                let ok = if keep < rl {
                    inc.levels[keep].rf_choice == enc_rf(overlay.rf_of(reads[keep]))
                } else {
                    let lvl = &inc.levels[keep];
                    let stored = &inc.co_arena[lvl.co_start..lvl.co_start + lvl.co_len];
                    let cur = overlay.co_order(keep - rl);
                    stored.len() == cur.len()
                        && stored.iter().zip(cur).all(|(&a, &b)| a as usize == b)
                };
                if !ok {
                    break;
                }
                keep += 1;
            }
            keep
        };
        if ctx.inc.levels.len() > keep {
            inc_pop_to(&mut ctx.inc, keep);
        }
        for d in keep..target {
            // The final push of a full-depth sync commits the last open
            // axis: every interval collapses (`lo == hi`), so the level
            // can skip `hi` maintenance entirely — nothing reads the
            // overlay `hi` tier at a fully-definite node, and the undo
            // journal replays exactly the words that were written.
            self.inc_push_level(ctx, partial, view, d, full && d + 1 == target);
        }
        debug_assert_eq!(ctx.inc.levels.len(), target);
    }

    /// Pushes tree level `d`: applies the newly committed axis's edge
    /// deltas to the family bounds, recomputes exactly the dirty rows of
    /// the variant and register intervals, and feeds the `lo` insertions
    /// to each acyclicity check's maintained topological order.
    fn inc_push_level(
        &self,
        ctx: &mut EvalContext,
        partial: &PartialView<'_>,
        view: &ExecutionView<'_>,
        d: usize,
        definite: bool,
    ) {
        let reads = partial.reads_list();
        let rl = reads.len();
        let skel = partial.skel();
        let overlay = partial.overlay();

        let EvalContext {
            inc,
            bases,
            regs,
            reads: read_set,
            writes: write_set,
            n,
            ..
        } = ctx;
        let n = *n;
        let IncState {
            journal,
            ord_journal,
            rels,
            levels,
            co_arena,
            checks,
            dirty_rf,
            dirty_co,
            dirty_fr,
            row_lo,
            row_hi,
            row_mark,
            rows_buf,
            seen_words,
            pk_visited,
            pk_found,
            pk_stack,
            pk_window,
            ..
        } = inc;

        let words = n.div_ceil(64);
        let skip_hi = definite && words == 1;
        dirty_rf.clear();
        dirty_co.clear();
        dirty_fr.clear();
        let mut lvl = IncLevel {
            jmark: journal.mark(),
            omark: ord_journal.len(),
            co_start: co_arena.len(),
            co_len: 0,
            rf_choice: u32::MAX,
        };

        if d < rl {
            // An rf slot commits. Paths are canonical (rf levels before
            // co levels), so no co axis is committed yet and the fr row
            // is recomputed at depths `(d + 1, 0)`.
            let r = reads[d];
            let cands = partial.rf_candidates(d);
            let choice = overlay.rf_of(r);
            lvl.rf_choice = enc_rf(choice);
            if cands.len() > 1 {
                if self.fam_used & FAM_RF_M != 0 {
                    if let Some(w) = choice {
                        rels.fam_lo[FAM_RF].push_edges(
                            journal,
                            inc_tag(KIND_FAM_LO, FAM_RF),
                            std::iter::once((w, r)),
                        );
                    }
                    if !skip_hi {
                        rels.fam_hi[FAM_RF].clear_edges(
                            journal,
                            inc_tag(KIND_FAM_HI, FAM_RF),
                            cands
                                .iter()
                                .flatten()
                                .filter(|&&w| Some(w) != choice)
                                .map(|&w| (w, r)),
                        );
                    }
                    // Exactly the rows whose bounds moved: the chosen
                    // source's `lo` row, and (unless `hi` is skipped)
                    // each non-chosen candidate's `hi` row.
                    if let Some(w) = choice {
                        dirty_rf.push(w as u32);
                    }
                    if !skip_hi {
                        dirty_rf.extend(
                            cands
                                .iter()
                                .flatten()
                                .filter(|&&w| Some(w) != choice)
                                .map(|&w| w as u32),
                        );
                    }
                }
                if self.fam_used & FAM_FR_M != 0 && skel.loc_index(r) != usize::MAX {
                    let changed = if words == 1 {
                        let (lw, hw) = fr_row_word(partial, d, d + 1, 0);
                        let mut ch = store_word(
                            journal,
                            &mut rels.fam_lo[FAM_FR],
                            inc_tag(KIND_FAM_LO, FAM_FR),
                            r as u32,
                            lw,
                        );
                        if !skip_hi {
                            ch |= store_word(
                                journal,
                                &mut rels.fam_hi[FAM_FR],
                                inc_tag(KIND_FAM_HI, FAM_FR),
                                r as u32,
                                hw,
                            );
                        }
                        ch
                    } else {
                        fr_row_fill(partial, d, d + 1, 0, words, row_lo, row_hi);
                        rels.fam_lo[FAM_FR].set_row_journaled(
                            journal,
                            inc_tag(KIND_FAM_LO, FAM_FR),
                            r,
                            row_lo,
                        ) | rels.fam_hi[FAM_FR].set_row_journaled(
                            journal,
                            inc_tag(KIND_FAM_HI, FAM_FR),
                            r,
                            row_hi,
                        )
                    };
                    if changed {
                        dirty_fr.push(r as u32);
                    }
                }
            }
        } else {
            // A coherence axis commits (every rf slot is already
            // committed: `rf_depth == rl` here).
            let li = d - rl;
            let order = overlay.co_order(li);
            lvl.co_len = order.len();
            co_arena.extend(order.iter().map(|&w| w as u32));
            let ws = &skel.writes_per_loc()[li];
            if ws.len() > 1 {
                if self.fam_used & FAM_CO_M != 0 {
                    // Open axis held every ordered pair both ways in
                    // `hi`; committing keeps the forward transitive
                    // pairs (into `lo` too) and drops the anti-pairs.
                    rels.fam_lo[FAM_CO].push_edges(
                        journal,
                        inc_tag(KIND_FAM_LO, FAM_CO),
                        (0..order.len()).flat_map(|i| {
                            ((i + 1)..order.len()).map(move |j| (order[i], order[j]))
                        }),
                    );
                    if !skip_hi {
                        rels.fam_hi[FAM_CO].clear_edges(
                            journal,
                            inc_tag(KIND_FAM_HI, FAM_CO),
                            (0..order.len()).flat_map(|i| {
                                ((i + 1)..order.len()).map(move |j| (order[j], order[i]))
                            }),
                        );
                    }
                    dirty_co.extend(ws.iter().map(|&w| w as u32));
                }
                if self.fam_used & FAM_FR_M != 0 {
                    if words == 1 {
                        // Every rf slot is committed here (canonical
                        // paths), so a read's fr row is exactly the
                        // order's suffix after its source — read off
                        // per-write suffix masks instead of per-read
                        // candidate scans.
                        let mut after = [0u64; 64];
                        let mut all_ws = 0u64;
                        for &w in order.iter().rev() {
                            after[w] = all_ws;
                            all_ws |= 1 << w;
                        }
                        for &r in reads {
                            if skel.loc_index(r) != li {
                                continue;
                            }
                            let row = match overlay.rf_of(r) {
                                None => all_ws,
                                Some(src) => after[src],
                            };
                            let mut ch = store_word(
                                journal,
                                &mut rels.fam_lo[FAM_FR],
                                inc_tag(KIND_FAM_LO, FAM_FR),
                                r as u32,
                                row,
                            );
                            if !skip_hi {
                                ch |= store_word(
                                    journal,
                                    &mut rels.fam_hi[FAM_FR],
                                    inc_tag(KIND_FAM_HI, FAM_FR),
                                    r as u32,
                                    row,
                                );
                            }
                            if ch {
                                dirty_fr.push(r as u32);
                            }
                        }
                    } else {
                        for (k, &r) in reads.iter().enumerate() {
                            if skel.loc_index(r) != li {
                                continue;
                            }
                            fr_row_fill(partial, k, rl, li + 1, words, row_lo, row_hi);
                            let changed = rels.fam_lo[FAM_FR].set_row_journaled(
                                journal,
                                inc_tag(KIND_FAM_LO, FAM_FR),
                                r,
                                row_lo,
                            ) | rels.fam_hi[FAM_FR].set_row_journaled(
                                journal,
                                inc_tag(KIND_FAM_HI, FAM_FR),
                                r,
                                row_hi,
                            );
                            if changed {
                                dirty_fr.push(r as u32);
                            }
                        }
                    }
                }
            }
        }
        levels.push(lvl);
        let depth = levels.len();

        let mut dirty_mask = 0u8;
        if !dirty_rf.is_empty() {
            dirty_mask |= FAM_RF_M;
        }
        if !dirty_co.is_empty() {
            dirty_mask |= FAM_CO_M;
        }
        if !dirty_fr.is_empty() {
            dirty_mask |= FAM_FR_M;
        }
        if dirty_mask != 0 {
            // Variants riding the dirty families.
            for slot in 0..self.base_names.len() {
                let fam = self.base_fam[slot];
                if fam & dirty_mask == 0 || self.base_names[slot].len() == 2 {
                    continue;
                }
                let f = fam.trailing_zeros() as usize;
                let other = if self.base_names[slot].ends_with('e') {
                    view.ext()
                } else {
                    view.int()
                };
                let rows: &[u32] = match f {
                    FAM_RF => dirty_rf,
                    FAM_CO => dirty_co,
                    _ => dirty_fr,
                };
                let mut lo = mem::take(&mut rels.var_lo[slot]);
                let mut hi = mem::take(&mut rels.var_hi[slot]);
                if words == 1 {
                    for &row in rows {
                        let o = other.word_at(row as usize);
                        store_word(
                            journal,
                            &mut lo,
                            inc_tag(KIND_VAR_LO, slot),
                            row,
                            rels.fam_lo[f].word_at(row as usize) & o,
                        );
                        if !skip_hi {
                            store_word(
                                journal,
                                &mut hi,
                                inc_tag(KIND_VAR_HI, slot),
                                row,
                                rels.fam_hi[f].word_at(row as usize) & o,
                            );
                        }
                    }
                } else {
                    for &row in rows {
                        let row = row as usize;
                        row_lo.clear();
                        row_lo.extend(
                            rels.fam_lo[f]
                                .row(row)
                                .iter()
                                .zip(other.row(row))
                                .map(|(&a, &b)| a & b),
                        );
                        row_hi.clear();
                        row_hi.extend(
                            rels.fam_hi[f]
                                .row(row)
                                .iter()
                                .zip(other.row(row))
                                .map(|(&a, &b)| a & b),
                        );
                        lo.set_row_journaled(journal, inc_tag(KIND_VAR_LO, slot), row, row_lo);
                        hi.set_row_journaled(journal, inc_tag(KIND_VAR_HI, slot), row, row_hi);
                    }
                }
                rels.var_lo[slot] = lo;
                rels.var_hi[slot] = hi;
            }
            // Row-local register recomputes, in instruction order
            // (operand registers are always lower-numbered). Consecutive
            // ops often share a dirty-family mask, so the deduplicated
            // row list is memoized per mask.
            let mut rows_for: u8 = 0;
            for &i in &self.inc_ops {
                let i = i as usize;
                let need = self.op_fam[i] & dirty_mask;
                if need == 0 {
                    continue;
                }
                if rows_for != need {
                    rows_buf.clear();
                    mark_rows(row_mark, rows_buf, n, need, dirty_rf, dirty_co, dirty_fr);
                    rows_for = need;
                }
                let mut lo = mem::take(&mut rels.reg_lo[i]);
                let mut hi = mem::take(&mut rels.reg_hi[i]);
                if words == 1 {
                    self.inc_op_rows_1(
                        rels, bases, regs, read_set, write_set, i, rows_buf, journal, &mut lo,
                        &mut hi, skip_hi,
                    );
                } else {
                    for ri in 0..rows_buf.len() {
                        let row = rows_buf[ri] as usize;
                        self.inc_op_row(
                            rels, bases, regs, read_set, write_set, i, row, words, row_lo, row_hi,
                        );
                        lo.set_row_journaled(journal, inc_tag(KIND_REG_LO, i), row, row_lo);
                        hi.set_row_journaled(journal, inc_tag(KIND_REG_HI, i), row, row_hi);
                    }
                }
                rels.reg_lo[i] = lo;
                rels.reg_hi[i] = hi;
            }
        }

        // Pearce–Kelly maintenance: feed this level's `lo` insertions of
        // each acyclicity check's source to its topological order. The
        // insertions are read straight off the journal (first record per
        // word holds the pre-level value).
        for ci in 0..self.checks.len() {
            let check = &self.checks[ci];
            if check.kind != CheckKind::Acyclic || !self.src_is_overlay(check.src) {
                continue;
            }
            let st = &mut checks[ci];
            if st.cyclic_since != usize::MAX {
                continue;
            }
            let want = self.src_lo_tag(check.src);
            let lo = self.inc_src_lo(rels, bases, regs, check.src);
            seen_words.clear();
            let mut cyclic = false;
            'edges: for &(tag, word, old) in journal.entries_from(lvl.jmark) {
                if tag != want || seen_words.contains(&word) {
                    continue;
                }
                seen_words.push(word);
                let mut ins = lo.word_at(word as usize) & !old;
                let wpr = lo.words_per_row();
                let row = word as usize / wpr;
                let base_col = (word as usize % wpr) * 64;
                while ins != 0 {
                    let col = base_col + ins.trailing_zeros() as usize;
                    ins &= ins - 1;
                    if pk_insert(
                        lo,
                        st,
                        ord_journal,
                        ci as u32,
                        row,
                        col,
                        pk_visited,
                        pk_found,
                        pk_stack,
                        pk_window,
                    ) {
                        cyclic = true;
                        break 'edges;
                    }
                }
            }
            if cyclic {
                st.cyclic_since = depth;
            }
        }
    }

    /// The verdict at the synced node, combining fixed memos, the
    /// maintained cycle state and direct interval probes. Equivalent to
    /// the scalar combine: any definite failure forces `Some(false)`,
    /// all-definite-pass forces `Some(true)`.
    fn inc_verdict(&self, ctx: &mut EvalContext, definite: bool) -> Option<bool> {
        let EvalContext {
            inc,
            bases,
            regs,
            colour,
            stack,
            ..
        } = ctx;
        let IncState {
            rels,
            checks,
            levels,
            fixed_failed,
            ..
        } = inc;
        if *fixed_failed {
            return Some(false);
        }
        let depth = levels.len();
        let mut all_definite = true;
        for ci in 0..self.checks.len() {
            let check = &self.checks[ci];
            let st = &mut checks[ci];
            let verdict = match st.fixed {
                1 => Some(true),
                2 => Some(false),
                _ => match check.kind {
                    CheckKind::Acyclic => {
                        if st.cyclic_since <= depth {
                            Some(false)
                        } else if st.pass_since <= depth {
                            Some(true)
                        } else if definite {
                            // Every axis is committed: the source is
                            // exactly its `lo`, which Pearce–Kelly
                            // certifies acyclic (a cycle would have set
                            // `cyclic_since`) — no search, and the
                            // (possibly unmaintained) `hi` is not read.
                            Some(true)
                        } else {
                            // `lo` is acyclic (Pearce–Kelly would have
                            // flagged it); the verdict hangs on `hi`.
                            // A cached witness cycle whose edges all
                            // survive proves `hi` still cyclic without
                            // a search — `hi` only shrinks, so the
                            // probe is sound at any depth.
                            let hi = self.inc_src_hi(rels, bases, regs, check.src);
                            let witness_holds = !st.witness.is_empty()
                                && st
                                    .witness
                                    .iter()
                                    .all(|&(a, b)| hi.contains(a as usize, b as usize));
                            if witness_holds {
                                None
                            } else if hi.find_cycle_with(colour, stack, &mut st.witness) {
                                None
                            } else {
                                st.pass_since = depth;
                                Some(true)
                            }
                        }
                    }
                    CheckKind::Empty => {
                        if st.fail_since <= depth {
                            Some(false)
                        } else if st.pass_since <= depth {
                            Some(true)
                        } else if definite {
                            // `lo` is the whole (definite) source here.
                            let lo = self.inc_src_lo(rels, bases, regs, check.src);
                            Some(lo.is_empty())
                        } else {
                            let lo = self.inc_src_lo(rels, bases, regs, check.src);
                            let hi = self.inc_src_hi(rels, bases, regs, check.src);
                            if hi.is_empty() {
                                st.pass_since = depth;
                                Some(true)
                            } else if !lo.is_empty() {
                                st.fail_since = depth;
                                Some(false)
                            } else {
                                None
                            }
                        }
                    }
                    CheckKind::Irreflexive => {
                        if st.fail_since <= depth {
                            Some(false)
                        } else if st.pass_since <= depth {
                            Some(true)
                        } else if definite {
                            let lo = self.inc_src_lo(rels, bases, regs, check.src);
                            Some(lo.is_irreflexive())
                        } else {
                            let lo = self.inc_src_lo(rels, bases, regs, check.src);
                            let hi = self.inc_src_hi(rels, bases, regs, check.src);
                            if hi.is_irreflexive() {
                                st.pass_since = depth;
                                Some(true)
                            } else if !lo.is_irreflexive() {
                                st.fail_since = depth;
                                Some(false)
                            } else {
                                None
                            }
                        }
                    }
                },
            };
            match verdict {
                Some(false) => return Some(false),
                Some(true) => {}
                None => all_definite = false,
            }
        }
        if all_definite {
            Some(true)
        } else {
            None
        }
    }

    /// The maintained `lo` bound of `s` (scalar buffers for
    /// skeleton-derived operands, where `lo == hi`).
    fn inc_src_lo<'a>(
        &self,
        rels: &'a IncRels,
        bases: &'a [Relation],
        regs: &'a [Relation],
        s: Src,
    ) -> &'a Relation {
        match s {
            Src::Base(i) => {
                if self.base_fam[i] == 0 {
                    &bases[i]
                } else if self.base_names[i].len() == 2 {
                    &rels.fam_lo[self.base_fam[i].trailing_zeros() as usize]
                } else {
                    &rels.var_lo[i]
                }
            }
            Src::Reg(i) => {
                if self.op_fam[i] == 0 {
                    &regs[i]
                } else {
                    &rels.reg_lo[i]
                }
            }
        }
    }

    /// The maintained `hi` bound of `s`.
    fn inc_src_hi<'a>(
        &self,
        rels: &'a IncRels,
        bases: &'a [Relation],
        regs: &'a [Relation],
        s: Src,
    ) -> &'a Relation {
        match s {
            Src::Base(i) => {
                if self.base_fam[i] == 0 {
                    &bases[i]
                } else if self.base_names[i].len() == 2 {
                    &rels.fam_hi[self.base_fam[i].trailing_zeros() as usize]
                } else {
                    &rels.var_hi[i]
                }
            }
            Src::Reg(i) => {
                if self.op_fam[i] == 0 {
                    &regs[i]
                } else {
                    &rels.reg_hi[i]
                }
            }
        }
    }

    /// The journal tag of the `lo` relation behind overlay source `s`
    /// (what Pearce–Kelly scans the journal for).
    fn src_lo_tag(&self, s: Src) -> u32 {
        match s {
            Src::Base(i) => {
                if self.base_names[i].len() == 2 {
                    inc_tag(KIND_FAM_LO, self.base_fam[i].trailing_zeros() as usize)
                } else {
                    inc_tag(KIND_VAR_LO, i)
                }
            }
            Src::Reg(i) => inc_tag(KIND_REG_LO, i),
        }
    }

    /// Recomputes one row of overlay op `i`'s `[lo, hi]` interval into
    /// `out_lo`/`out_hi`. Every op here is row-local (guaranteed by
    /// `incremental_ok`): the row depends only on the same row of the
    /// operands, with `Diff` swapping bounds on its antitone side —
    /// exactly the componentwise formulas of `run_op_partial`.
    #[allow(clippy::too_many_arguments)]
    fn inc_op_row(
        &self,
        rels: &IncRels,
        bases: &[Relation],
        regs: &[Relation],
        reads: &EventSet,
        writes: &EventSet,
        i: usize,
        row: usize,
        words: usize,
        out_lo: &mut Vec<u64>,
        out_hi: &mut Vec<u64>,
    ) {
        out_lo.clear();
        out_lo.resize(words, 0);
        out_hi.clear();
        out_hi.resize(words, 0);
        let or_row = |s: Src, out_lo: &mut Vec<u64>, out_hi: &mut Vec<u64>| {
            let lo = self.inc_src_lo(rels, bases, regs, s);
            let hi = self.inc_src_hi(rels, bases, regs, s);
            for (o, &w) in out_lo.iter_mut().zip(lo.row(row)) {
                *o |= w;
            }
            for (o, &w) in out_hi.iter_mut().zip(hi.row(row)) {
                *o |= w;
            }
        };
        match self.ops[i] {
            Op::Union(a, b) => {
                or_row(a, out_lo, out_hi);
                or_row(b, out_lo, out_hi);
            }
            Op::UnionN { start, len } => {
                for &s in &self.operands[start as usize..(start + len) as usize] {
                    or_row(s, out_lo, out_hi);
                }
            }
            Op::Inter(a, b) => {
                let (al, ah) = (
                    self.inc_src_lo(rels, bases, regs, a).row(row),
                    self.inc_src_hi(rels, bases, regs, a).row(row),
                );
                let (bl, bh) = (
                    self.inc_src_lo(rels, bases, regs, b).row(row),
                    self.inc_src_hi(rels, bases, regs, b).row(row),
                );
                for w in 0..words {
                    out_lo[w] = al[w] & bl[w];
                    out_hi[w] = ah[w] & bh[w];
                }
            }
            Op::Diff(a, b) => {
                let (al, ah) = (
                    self.inc_src_lo(rels, bases, regs, a).row(row),
                    self.inc_src_hi(rels, bases, regs, a).row(row),
                );
                let (bl, bh) = (
                    self.inc_src_lo(rels, bases, regs, b).row(row),
                    self.inc_src_hi(rels, bases, regs, b).row(row),
                );
                for w in 0..words {
                    out_lo[w] = al[w] & !bh[w];
                    out_hi[w] = ah[w] & !bl[w];
                }
            }
            Op::Opt(a) => {
                or_row(a, out_lo, out_hi);
                let bit = 1u64 << (row % 64);
                out_lo[row / 64] |= bit;
                out_hi[row / 64] |= bit;
            }
            Op::Restrict(a, dom, rng) => {
                let dom = match dom {
                    Sort::Reads => reads,
                    Sort::Writes => writes,
                };
                let rng = match rng {
                    Sort::Reads => reads,
                    Sort::Writes => writes,
                };
                if dom.contains(row) {
                    let (al, ah) = (
                        self.inc_src_lo(rels, bases, regs, a).row(row),
                        self.inc_src_hi(rels, bases, regs, a).row(row),
                    );
                    for w in 0..words {
                        out_lo[w] = al[w] & rng.word(w);
                        out_hi[w] = ah[w] & rng.word(w);
                    }
                }
            }
            Op::Zero | Op::Seq(..) | Op::Inverse(_) | Op::Plus(_) | Op::Star(_) => {
                unreachable!("incremental plans maintain row-local overlay ops only")
            }
        }
    }

    /// Single-word-universe (`n <= 64`) batch variant of
    /// [`Plan::inc_op_row`]: operand bounds resolve once per op instead
    /// of once per row, each dirty row is one `u64`, and changed words
    /// are journaled in place with no row buffers. With `skip_hi` (the
    /// final fully-definite level of a full-depth sync) only `lo` is
    /// maintained, and `Diff`'s antitone side reads the operand's `lo`
    /// — equal to its true upper bound once every axis is committed.
    #[allow(clippy::too_many_arguments)]
    fn inc_op_rows_1(
        &self,
        rels: &IncRels,
        bases: &[Relation],
        regs: &[Relation],
        reads: &EventSet,
        writes: &EventSet,
        i: usize,
        rows: &[u32],
        journal: &mut EdgeJournal,
        lo: &mut Relation,
        hi: &mut Relation,
        skip_hi: bool,
    ) {
        debug_assert!(rows.len() <= 64);
        let (tlo, thi) = (inc_tag(KIND_REG_LO, i), inc_tag(KIND_REG_HI, i));
        let mut acc_lo = [0u64; 64];
        let mut acc_hi = [0u64; 64];
        match self.ops[i] {
            Op::Union(..) | Op::UnionN { .. } | Op::Opt(_) => {
                let mut each = |s: Src| {
                    let sl = self.inc_src_lo(rels, bases, regs, s);
                    for (k, &row) in rows.iter().enumerate() {
                        acc_lo[k] |= sl.word_at(row as usize);
                    }
                    if !skip_hi {
                        let sh = self.inc_src_hi(rels, bases, regs, s);
                        for (k, &row) in rows.iter().enumerate() {
                            acc_hi[k] |= sh.word_at(row as usize);
                        }
                    }
                };
                match self.ops[i] {
                    Op::Union(a, b) => {
                        each(a);
                        each(b);
                    }
                    Op::UnionN { start, len } => {
                        for &s in &self.operands[start as usize..(start + len) as usize] {
                            each(s);
                        }
                    }
                    Op::Opt(a) => {
                        each(a);
                        drop(each);
                        for (k, &row) in rows.iter().enumerate() {
                            let bit = 1u64 << row;
                            acc_lo[k] |= bit;
                            acc_hi[k] |= bit;
                        }
                    }
                    _ => unreachable!(),
                }
            }
            Op::Inter(a, b) => {
                let al = self.inc_src_lo(rels, bases, regs, a);
                let bl = self.inc_src_lo(rels, bases, regs, b);
                for (k, &row) in rows.iter().enumerate() {
                    acc_lo[k] = al.word_at(row as usize) & bl.word_at(row as usize);
                }
                if !skip_hi {
                    let ah = self.inc_src_hi(rels, bases, regs, a);
                    let bh = self.inc_src_hi(rels, bases, regs, b);
                    for (k, &row) in rows.iter().enumerate() {
                        acc_hi[k] = ah.word_at(row as usize) & bh.word_at(row as usize);
                    }
                }
            }
            Op::Diff(a, b) => {
                let al = self.inc_src_lo(rels, bases, regs, a);
                let banti = if skip_hi {
                    self.inc_src_lo(rels, bases, regs, b)
                } else {
                    self.inc_src_hi(rels, bases, regs, b)
                };
                for (k, &row) in rows.iter().enumerate() {
                    acc_lo[k] = al.word_at(row as usize) & !banti.word_at(row as usize);
                }
                if !skip_hi {
                    let ah = self.inc_src_hi(rels, bases, regs, a);
                    let bl = self.inc_src_lo(rels, bases, regs, b);
                    for (k, &row) in rows.iter().enumerate() {
                        acc_hi[k] = ah.word_at(row as usize) & !bl.word_at(row as usize);
                    }
                }
            }
            Op::Restrict(a, dom, rng) => {
                let dom = match dom {
                    Sort::Reads => reads,
                    Sort::Writes => writes,
                };
                let rng = match rng {
                    Sort::Reads => reads,
                    Sort::Writes => writes,
                };
                let rw = rng.word(0);
                let al = self.inc_src_lo(rels, bases, regs, a);
                let ah = self.inc_src_hi(rels, bases, regs, a);
                for (k, &row) in rows.iter().enumerate() {
                    if dom.contains(row as usize) {
                        acc_lo[k] = al.word_at(row as usize) & rw;
                        if !skip_hi {
                            acc_hi[k] = ah.word_at(row as usize) & rw;
                        }
                    }
                }
            }
            Op::Zero | Op::Seq(..) | Op::Inverse(_) | Op::Plus(_) | Op::Star(_) => {
                unreachable!("incremental plans maintain row-local overlay ops only")
            }
        }
        for (k, &row) in rows.iter().enumerate() {
            store_word(journal, lo, tlo, row, acc_lo[k]);
        }
        if !skip_hi {
            for (k, &row) in rows.iter().enumerate() {
                store_word(journal, hi, thi, row, acc_hi[k]);
            }
        }
    }

    /// `true` when `s` depends on the rf/co overlay (and therefore
    /// varies across a batch's lanes).
    fn src_is_overlay(&self, s: Src) -> bool {
        match s {
            Src::Base(i) => self.base_overlay[i],
            Src::Reg(i) => self.op_overlay[i],
        }
    }

    /// Bit-plane variant of [`Plan::ensure_base`]: overlay bases copy
    /// (or derive) their lane planes from the batch, skeleton-derived
    /// ones are evaluated scalar once per skeleton and broadcast into
    /// all lanes (the broadcast itself is also reused across batches of
    /// one skeleton).
    fn ensure_lane_base(
        &self,
        ctx: &mut EvalContext,
        slot: usize,
        batch: &OverlayBatch,
        view: &ExecutionView<'_>,
    ) -> Result<(), CatError> {
        let required = if self.base_overlay[slot] {
            ctx.epoch
        } else {
            ctx.skel_epoch
        };
        if ctx.lane_base_epoch[slot] >= required {
            return Ok(());
        }
        if self.base_overlay[slot] {
            ctx.registers_refilled += 1;
        }
        let name = self.base_names[slot].as_str();
        let mut dst = mem::take(&mut ctx.lane_bases[slot]);
        if self.base_overlay[slot] {
            match name {
                "rf" => dst.copy_from(batch.rf_planes()),
                "co" => dst.copy_from(batch.co_planes()),
                "fr" => dst.copy_from(batch.fr_planes()),
                "rfe" | "rfi" | "coe" | "coi" | "fre" | "fri" => {
                    let planes = match &name[..2] {
                        "rf" => batch.rf_planes(),
                        "co" => batch.co_planes(),
                        _ => batch.fr_planes(),
                    };
                    let other = if name.ends_with('e') {
                        view.ext()
                    } else {
                        view.int()
                    };
                    dst.inter_rel_from(planes, other);
                }
                _ => unreachable!("overlay bases are rf/co/fr and their variants"),
            }
        } else {
            self.ensure_base(ctx, slot, &EnvSource::View(view))?;
            dst.broadcast_from(&ctx.bases[slot]);
        }
        ctx.lane_bases[slot] = dst;
        ctx.lane_base_epoch[slot] = ctx.epoch;
        Ok(())
    }

    /// Makes operand `s` available as bit-planes: overlay registers must
    /// already have been run through [`Plan::run_op_batch`] (deps are
    /// topologically ordered); skeleton-derived registers are broadcast
    /// from their (already computed) scalar value on first lane use.
    fn ensure_lane_operand(
        &self,
        ctx: &mut EvalContext,
        s: Src,
        batch: &OverlayBatch,
        view: &ExecutionView<'_>,
    ) -> Result<(), CatError> {
        match s {
            Src::Base(slot) => self.ensure_lane_base(ctx, slot, batch, view),
            Src::Reg(r) => {
                if self.op_overlay[r] {
                    debug_assert!(ctx.lane_reg_epoch[r] >= ctx.epoch, "deps run in topo order");
                } else if ctx.lane_reg_epoch[r] < ctx.skel_epoch {
                    self.run_op(ctx, r, &EnvSource::View(view))?;
                    let mut dst = mem::take(&mut ctx.lane_regs[r]);
                    dst.broadcast_from(&ctx.regs[r]);
                    ctx.lane_regs[r] = dst;
                    ctx.lane_reg_epoch[r] = ctx.epoch;
                }
                Ok(())
            }
        }
    }

    /// Bit-plane variant of [`Plan::run_op`], for overlay-dependent
    /// instructions only: computes register `i` in every lane at once.
    /// Skeleton-derived instructions keep their scalar evaluation (one
    /// run per skeleton serves all lanes of all batches).
    fn run_op_batch(
        &self,
        ctx: &mut EvalContext,
        i: usize,
        batch: &OverlayBatch,
        view: &ExecutionView<'_>,
    ) -> Result<(), CatError> {
        debug_assert!(self.op_overlay[i], "scalar ops run through run_op");
        if ctx.lane_reg_epoch[i] >= ctx.epoch {
            return Ok(());
        }
        ctx.registers_refilled += 1;
        let op = self.ops[i];
        let mut src_err = Ok(());
        op.for_each_src(&self.operands, |s| {
            if src_err.is_ok() {
                src_err = self.ensure_lane_operand(ctx, s, batch, view);
            }
        });
        src_err?;
        let mut dst = mem::take(&mut ctx.lane_regs[i]);
        match op {
            Op::Zero => dst.reset(ctx.n),
            Op::Union(a, b) => dst.union_from(ctx.lane_src(a), ctx.lane_src(b)),
            Op::UnionN { start, len } => {
                let operands = &self.operands[start as usize..(start + len) as usize];
                dst.copy_from(ctx.lane_src(operands[0]));
                for &s in &operands[1..] {
                    dst.or_in_place(ctx.lane_src(s));
                }
            }
            Op::Inter(a, b) => dst.inter_from(ctx.lane_src(a), ctx.lane_src(b)),
            Op::Diff(a, b) => dst.diff_from(ctx.lane_src(a), ctx.lane_src(b)),
            Op::Seq(a, b) => dst.seq_from(ctx.lane_src(a), ctx.lane_src(b)),
            Op::Inverse(a) => dst.inverse_from(ctx.lane_src(a)),
            Op::Opt(a) => dst.opt_from(ctx.lane_src(a)),
            Op::Plus(a) => {
                let mut scratch = mem::take(&mut ctx.lane_scratch);
                dst.plus_from(ctx.lane_src(a), &mut scratch);
                ctx.lane_scratch = scratch;
            }
            Op::Star(a) => {
                let mut scratch = mem::take(&mut ctx.lane_scratch);
                dst.star_from(ctx.lane_src(a), &mut scratch);
                ctx.lane_scratch = scratch;
            }
            Op::Restrict(a, dom, rng) => {
                let dom = match dom {
                    Sort::Reads => &ctx.reads,
                    Sort::Writes => &ctx.writes,
                };
                let rng = match rng {
                    Sort::Reads => &ctx.reads,
                    Sort::Writes => &ctx.writes,
                };
                dst.restrict_from(ctx.lane_src(a), dom, rng);
            }
        }
        ctx.lane_regs[i] = dst;
        ctx.lane_reg_epoch[i] = ctx.epoch;
        Ok(())
    }

    /// Per-lane check verdict: bit `i` set iff lane `i` passes `check`.
    /// Bits of dead lanes are garbage (broadcasts fill all 64 lanes);
    /// the caller masks with the live mask.
    fn check_passes_batch(&self, ctx: &mut EvalContext, ci: usize, live: u64) -> u64 {
        let check = &self.checks[ci];
        match check.kind {
            CheckKind::Empty => !self.lane_src_ctx(ctx, check.src).nonempty_lanes(),
            CheckKind::Irreflexive => !self.lane_src_ctx(ctx, check.src).reflexive_lanes(),
            CheckKind::Acyclic => {
                let mut active = mem::take(&mut ctx.lane_active);
                // When the incremental walk already maintains a
                // topological order for this check at this skeleton,
                // seed the per-lane elimination sweep with it — the
                // fixpoint converges in one pass on the (common) lanes
                // whose extra edges respect the maintained order. The
                // fixpoint itself is order-independent, so the verdict
                // is identical either way.
                let seeded = ctx.incremental
                    && ctx.inc.plan_id == self.id
                    && ctx.inc.skel_id == ctx.skel_id
                    && ci < ctx.inc.checks.len()
                    && ctx.inc.checks[ci].order.len() == ctx.n;
                let cyclic = if seeded {
                    let lanes = self.lane_src_ctx(ctx, check.src);
                    let order = &ctx.inc.checks[ci].order;
                    lanes.cyclic_lanes_seeded(live, &mut active, order)
                } else {
                    self.lane_src_ctx(ctx, check.src)
                        .cyclic_lanes(live, &mut active)
                };
                ctx.lane_active = active;
                !cyclic
            }
        }
    }

    /// [`EvalContext::lane_src`] spelled as a plan method (keeps the
    /// call sites symmetric with `src_rel`/`src_hi`).
    fn lane_src_ctx<'c>(&self, ctx: &'c EvalContext, s: Src) -> &'c LaneRel {
        ctx.lane_src(s)
    }

    /// Prologue of the batch entry point, mirroring [`Plan::begin_view`]:
    /// full invalidation on a new plan or skeleton, epoch-only bump on a
    /// new batch of the same skeleton (batches and overlays share one
    /// stamp space, so the generations never collide).
    fn begin_batch(&self, ctx: &mut EvalContext, view: &ExecutionView<'_>, batch: &OverlayBatch) {
        if ctx.plan_id != self.id || ctx.skel_id != view.skeleton_id() {
            ctx.begin(self, view.len());
            ctx.plan_id = self.id;
            ctx.skel_id = view.skeleton_id();
            ctx.reads.copy_from(view.read_set());
            ctx.writes.copy_from(view.write_set());
        } else if ctx.batch_gen != batch.gen() {
            ctx.epoch += 1;
        }
        ctx.batch_gen = batch.gen();
        ctx.overlay_gen = 0;
        ctx.size_lanes(self);
    }

    /// Judges up to 64 sibling candidates in one pass: bit `i` of the
    /// returned mask is set iff lane `i` of `batch` passes every check.
    ///
    /// Skeleton-derived registers are evaluated scalar (once per
    /// skeleton, exactly as on the view path) and broadcast into lanes
    /// only where an overlay-dependent instruction consumes them;
    /// checks that do not depend on the overlay at all are judged
    /// scalar, one verdict covering every lane. Overlay-dependent
    /// registers are computed as bit-planes, one word op covering all
    /// 64 lanes. The check schedule is the plan's static cheapest-first
    /// order (the adaptive rotation of the scalar path buys nothing
    /// when one evaluation already covers the whole sibling set), and
    /// evaluation stops as soon as every live lane has failed some
    /// check.
    ///
    /// `view` must borrow the same skeleton the batch was
    /// [`begun`](OverlayBatch::begin) on; its overlay contents are only
    /// read by skeleton-derived queries, so any lane's (or a stale)
    /// overlay is fine.
    ///
    /// # Errors
    ///
    /// See [`Plan::allows_exec`].
    pub fn allows_batch(
        &self,
        ctx: &mut EvalContext,
        view: &ExecutionView<'_>,
        batch: &OverlayBatch,
    ) -> Result<LaneMask, CatError> {
        self.begin_batch(ctx, view, batch);
        let live = batch.live_mask().bits();
        let mut allowed = live;
        let env = EnvSource::View(view);
        for &ci in &self.fast_order {
            let check = &self.checks[ci];
            if !self.src_is_overlay(check.src) {
                // A communication-independent check: one scalar verdict
                // covers every lane of every batch of this skeleton.
                for &op in &check.deps {
                    self.run_op(ctx, op, &env)?;
                }
                self.ensure_src(ctx, check.src, &env)?;
                if !self.check_passes(ctx, check) {
                    return Ok(LaneMask::EMPTY);
                }
                continue;
            }
            for &op in &check.deps {
                if self.op_overlay[op] {
                    self.run_op_batch(ctx, op, batch, view)?;
                } else {
                    self.run_op(ctx, op, &env)?;
                }
            }
            self.ensure_lane_operand(ctx, check.src, batch, view)?;
            allowed &= self.check_passes_batch(ctx, ci, live);
            if allowed == 0 {
                return Ok(LaneMask::EMPTY);
            }
        }
        Ok(LaneMask::from_bits(allowed))
    }

    /// Prologue of the view entry points: full invalidation on a new
    /// plan or skeleton, epoch-only bump on a new overlay of the same
    /// skeleton, nothing when re-evaluating the same candidate.
    fn begin_view(&self, ctx: &mut EvalContext, view: &ExecutionView<'_>) {
        if ctx.plan_id != self.id || ctx.skel_id != view.skeleton_id() {
            ctx.begin(self, view.len());
            ctx.plan_id = self.id;
            ctx.skel_id = view.skeleton_id();
            ctx.reads.copy_from(view.read_set());
            ctx.writes.copy_from(view.write_set());
        } else if ctx.overlay_gen != view.overlay_gen() {
            ctx.epoch += 1;
        }
        ctx.overlay_gen = view.overlay_gen();
    }

    /// [`Plan::allows_exec`] over a name-keyed environment — the same
    /// inputs [`CatProgram::check`] takes, for differential testing. The
    /// universe is taken from the environment's first relation.
    ///
    /// # Errors
    ///
    /// See [`Plan::allows_exec`].
    pub fn allows_in_env(
        &self,
        ctx: &mut EvalContext,
        base: &BTreeMap<String, Relation>,
        reads: &EventSet,
        writes: &EventSet,
    ) -> Result<bool, CatError> {
        self.begin_env(ctx, base, reads, writes);
        self.allows_inner(ctx, &EnvSource::Map(base))
    }

    /// [`Plan::check_exec`] over a name-keyed environment.
    ///
    /// # Errors
    ///
    /// See [`Plan::check_exec`].
    pub fn check_in_env(
        &self,
        ctx: &mut EvalContext,
        base: &BTreeMap<String, Relation>,
        reads: &EventSet,
        writes: &EventSet,
    ) -> Result<Vec<CheckOutcome>, CatError> {
        self.begin_env(ctx, base, reads, writes);
        self.check_inner(ctx, &EnvSource::Map(base))
    }

    /// Shared prologue of the `*_in_env` entry points: universe from the
    /// environment's first relation (the interpreter's rule), then the
    /// event sorts copied into the arena.
    fn begin_env(
        &self,
        ctx: &mut EvalContext,
        base: &BTreeMap<String, Relation>,
        reads: &EventSet,
        writes: &EventSet,
    ) {
        let n = base.values().next().map(Relation::universe).unwrap_or(0);
        ctx.begin(self, n);
        ctx.reads.copy_from(reads);
        ctx.writes.copy_from(writes);
    }

    fn allows_inner(&self, ctx: &mut EvalContext, env: &EnvSource<'_>) -> Result<bool, CatError> {
        if ctx.fast_order_plan != self.id {
            ctx.fast_order.clear();
            ctx.fast_order.extend_from_slice(&self.fast_order);
            ctx.fast_order_plan = self.id;
        }
        for pos in 0..ctx.fast_order.len() {
            let ci = ctx.fast_order[pos];
            let check = &self.checks[ci];
            for &op in &check.deps {
                self.run_op(ctx, op, env)?;
            }
            self.ensure_src(ctx, check.src, env)?;
            if !self.check_passes(ctx, check) {
                // Move the failing check to the front of the adaptive
                // schedule: the next candidate of this test will most
                // likely fail the same axiom.
                ctx.fast_order[..=pos].rotate_right(1);
                return Ok(false);
            }
        }
        Ok(true)
    }

    fn check_inner(
        &self,
        ctx: &mut EvalContext,
        env: &EnvSource<'_>,
    ) -> Result<Vec<CheckOutcome>, CatError> {
        for i in 0..self.ops.len() {
            self.run_op(ctx, i, env)?;
        }
        let mut out = Vec::with_capacity(self.checks.len());
        for check in &self.checks {
            self.ensure_src(ctx, check.src, env)?;
            out.push(CheckOutcome {
                name: check.name.clone(),
                kind: check.kind,
                passed: self.check_passes(ctx, check),
            });
        }
        Ok(out)
    }
}

/// Fills `dst` with the base relation `name` of `exec`; returns `false`
/// for names [`Execution::base_relations`] does not define.
fn fill_base_from_exec(
    exec: &Execution,
    name: &str,
    dst: &mut Relation,
    ctx: &mut EvalContext,
) -> bool {
    match name {
        "po" => exec.fill_po(dst),
        "po-loc" => exec.fill_po_loc(dst),
        "addr" => dst.copy_from(&exec.addr),
        "data" => dst.copy_from(&exec.data),
        "ctrl" => dst.copy_from(&exec.ctrl),
        "rmw" => dst.copy_from(&exec.rmw),
        "rf" => exec.fill_rf_rel(dst),
        "co" => exec.fill_co_rel(dst),
        "fr" => exec.fill_fr(dst),
        "ext" => exec.fill_ext(dst),
        "int" => exec.fill_int(dst),
        "loc" => exec.fill_same_loc(dst),
        "id" => {
            dst.reset(exec.len());
            dst.add_identity();
        }
        "membar.cta" => exec.fill_fence_rel(FenceScope::Cta, dst),
        "membar.gl" => exec.fill_fence_rel(FenceScope::Gl, dst),
        "membar.sys" => exec.fill_fence_rel(FenceScope::Sys, dst),
        "cta" => exec.fill_scope_cta(dst),
        "gl" | "sys" => {
            dst.reset(exec.len());
            dst.fill_full();
        }
        "rfe" | "rfi" | "coe" | "coi" | "fre" | "fri" => {
            match &name[..2] {
                "rf" => exec.fill_rf_rel(&mut ctx.scratch_a),
                "co" => exec.fill_co_rel(&mut ctx.scratch_a),
                _ => exec.fill_fr(&mut ctx.scratch_a),
            }
            if name.ends_with('e') {
                exec.fill_ext(&mut ctx.scratch_b);
            } else {
                exec.fill_int(&mut ctx.scratch_b);
            }
            dst.inter_from(&ctx.scratch_a, &ctx.scratch_b);
        }
        _ => return false,
    }
    true
}

/// Fills `dst` with the base relation `name` of a skeleton/overlay
/// `view`; returns `false` for names the execution layer does not
/// define. Skeleton-derived relations are copied from the (already
/// built) skeleton; only rf/co-derived ones compute anything.
fn fill_base_from_view(
    view: &ExecutionView<'_>,
    name: &str,
    dst: &mut Relation,
    ctx: &mut EvalContext,
) -> bool {
    match name {
        "po" => dst.copy_from(view.po()),
        "po-loc" => dst.copy_from(view.po_loc()),
        "addr" => dst.copy_from(view.addr()),
        "data" => dst.copy_from(view.data()),
        "ctrl" => dst.copy_from(view.ctrl()),
        "rmw" => dst.copy_from(view.rmw()),
        "rf" => view.fill_rf_rel(dst),
        "co" => view.fill_co_rel(dst),
        "fr" => view.fill_fr(dst),
        "ext" => dst.copy_from(view.ext()),
        "int" => dst.copy_from(view.int()),
        "loc" => dst.copy_from(view.same_loc()),
        "id" => {
            dst.reset(view.len());
            dst.add_identity();
        }
        "membar.cta" => dst.copy_from(view.fence(FenceScope::Cta)),
        "membar.gl" => dst.copy_from(view.fence(FenceScope::Gl)),
        "membar.sys" => dst.copy_from(view.fence(FenceScope::Sys)),
        "cta" => dst.copy_from(view.scope_cta()),
        "gl" | "sys" => {
            dst.reset(view.len());
            dst.fill_full();
        }
        "rfe" | "rfi" | "coe" | "coi" | "fre" | "fri" => {
            match &name[..2] {
                "rf" => view.fill_rf_rel(&mut ctx.scratch_a),
                "co" => view.fill_co_rel(&mut ctx.scratch_a),
                _ => view.fill_fr(&mut ctx.scratch_a),
            }
            let other = if name.ends_with('e') {
                view.ext()
            } else {
                view.int()
            };
            dst.inter_from(&ctx.scratch_a, other);
        }
        _ => return false,
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::{enumerate_executions, EnumConfig};
    use weakgpu_litmus::{corpus, ThreadScope};

    fn env3() -> (BTreeMap<String, Relation>, EventSet, EventSet) {
        let mut m = BTreeMap::new();
        m.insert(
            "po".to_string(),
            Relation::from_pairs(3, [(0, 1), (1, 2), (0, 2)]),
        );
        m.insert("rf".to_string(), Relation::from_pairs(3, [(2, 1)]));
        let writes = EventSet::from_iter_n(3, [0, 2]);
        let reads = EventSet::from_iter_n(3, [1]);
        (m, reads, writes)
    }

    fn plan_of(src: &str) -> Plan {
        Plan::compile(&CatProgram::parse(src).unwrap()).unwrap()
    }

    #[test]
    fn cse_shares_lets_across_checks() {
        // `com` is referenced by both checks; the rf|co|fr union tree
        // must fuse into ONE n-ary instruction, compiled once, and the
        // second check must alias its register.
        let p =
            plan_of("let com = rf | co | fr\nacyclic (po | com) as a\nirreflexive (com ; po) as b");
        // UnionN[rf,co,fr], po|com, com;po — and nothing duplicated.
        assert_eq!(p.num_ops(), 3, "{:?}", p.ops);
    }

    #[test]
    fn union_trees_fuse_and_intern() {
        // Structurally equal union trees (any association/order) fuse to
        // one shared n-ary instruction; a subset union is a separate op.
        let p = plan_of("empty (rf | (co | fr)) as a\nempty ((fr | co) | rf) as b");
        assert_eq!(p.num_ops(), 1, "{:?}", p.ops);
        let q = plan_of("empty (rf | co | fr) as a\nempty (rf | co) as b");
        assert_eq!(q.num_ops(), 2, "{:?}", q.ops);
        // Duplicate operands collapse: `rf | rf` is just `rf`.
        let r = plan_of("empty (rf | rf) as a");
        assert_eq!(r.num_ops(), 0, "{:?}", r.ops);
    }

    #[test]
    fn commutative_operands_are_normalised() {
        let p = plan_of("empty (po | rf) as a\nempty (rf | po) as b");
        assert_eq!(p.num_ops(), 1);
        let q = plan_of("empty (po & rf) as a\nempty (rf & po) as b");
        assert_eq!(q.num_ops(), 1);
        // Difference is NOT commutative.
        let r = plan_of("empty (po \\ rf) as a\nempty (rf \\ po) as b");
        assert_eq!(r.num_ops(), 2);
    }

    #[test]
    fn function_inlining_matches_interpreter() {
        let (base, reads, writes) = env3();
        let src = "let f(x) = x | rf\nacyclic f(po) as c";
        let prog = CatProgram::parse(src).unwrap();
        let plan = Plan::compile(&prog).unwrap();
        let mut ctx = EvalContext::new();
        let ours = plan.check_in_env(&mut ctx, &base, &reads, &writes).unwrap();
        let theirs = prog.check(&base, &reads, &writes).unwrap();
        assert_eq!(ours, theirs);
        assert!(!ours[0].passed);
    }

    #[test]
    fn compile_rejects_bad_applications() {
        let parse = |s| CatProgram::parse(s).unwrap();
        assert!(Plan::compile(&parse("let f(x) = x\nacyclic f as c")).is_err());
        assert!(Plan::compile(&parse("let r = po\nacyclic r(rf) as c")).is_err());
        assert!(Plan::compile(&parse("acyclic po(rf) as c")).is_err());
        assert!(Plan::compile(&parse("let f(x) = f(x)\nacyclic f(po) as c")).is_err());
    }

    #[test]
    fn unbound_base_is_an_eval_error() {
        let (base, reads, writes) = env3();
        let plan = plan_of("acyclic nosuch as c");
        let mut ctx = EvalContext::new();
        let err = plan
            .check_in_env(&mut ctx, &base, &reads, &writes)
            .unwrap_err();
        assert!(err.message.contains("unbound"), "{err}");
        assert!(plan
            .allows_in_env(&mut ctx, &base, &reads, &writes)
            .is_err());
    }

    #[test]
    fn fast_order_puts_cheap_checks_first() {
        let p = plan_of("acyclic (po ; rf)+ as expensive\nempty 0 as cheap");
        assert_eq!(p.fast_order, vec![1, 0]);
    }

    #[test]
    fn env_eval_matches_interpreter_on_operators() {
        let (base, reads, writes) = env3();
        let mut ctx = EvalContext::new();
        for src in [
            "empty po & rf as c",
            "empty po \\ po as c",
            "empty (po ; rf) as c",
            "irreflexive (po ; rf) as c",
            "empty rf^-1 as c",
            "acyclic po+ as c",
            "irreflexive po* as c",
            "empty 0 as c",
            "acyclic po? as c",
            "empty WW(po) as c",
            "empty RR(po) as c",
            "irreflexive RW(po) | WR(rf) as c",
        ] {
            let prog = CatProgram::parse(src).unwrap();
            let plan = Plan::compile(&prog).unwrap();
            assert_eq!(
                plan.check_in_env(&mut ctx, &base, &reads, &writes).unwrap(),
                prog.check(&base, &reads, &writes).unwrap(),
                "{src}"
            );
        }
    }

    #[test]
    fn exec_eval_matches_env_eval_on_candidates() {
        // The execution fast path must agree with evaluating the same
        // program over `base_relations()` through the interpreter.
        let src = "\
let com = rf | co | fr
let po-loc-llh = WW(po-loc) | WR(po-loc) | RW(po-loc)
acyclic (po-loc-llh | com) as sc-per-loc-llh
acyclic (po | com) as sc
irreflexive (fre ; coe) as aux
";
        let prog = CatProgram::parse(src).unwrap();
        let plan = Plan::compile(&prog).unwrap();
        let mut ctx = EvalContext::new();
        let test = corpus::sb(ThreadScope::IntraCta, None);
        for cand in enumerate_executions(&test, &EnumConfig::default()).unwrap() {
            let exec = &cand.execution;
            let interp = prog
                .check(&exec.base_relations(), &exec.read_set(), &exec.write_set())
                .unwrap();
            assert_eq!(plan.check_exec(&mut ctx, exec).unwrap(), interp);
            assert_eq!(
                plan.allows_exec(&mut ctx, exec).unwrap(),
                interp.iter().all(|c| c.passed)
            );
        }
    }

    #[test]
    fn context_survives_plan_and_universe_changes() {
        let (base, reads, writes) = env3();
        let p1 = plan_of("acyclic po as c");
        let p2 = plan_of("let com = rf | co | fr\nacyclic (po | com) as sc");
        let mut ctx = EvalContext::new();
        let test = corpus::mp(ThreadScope::InterCta, None);
        let cands = enumerate_executions(&test, &EnumConfig::default()).unwrap();
        for _ in 0..2 {
            // Alternate between a 3-event map environment and a larger
            // execution, and between two different plans, through one
            // context: epoch bumps must prevent any stale-buffer reuse.
            assert!(p1.allows_in_env(&mut ctx, &base, &reads, &writes).unwrap());
            let _ = p2.allows_exec(&mut ctx, &cands[0].execution).unwrap();
            let _ = p1.allows_exec(&mut ctx, &cands[0].execution).unwrap();
        }
    }

    #[test]
    fn let_shadowing_matches_interpreter() {
        // A let can shadow a base relation for subsequent statements.
        let (base, reads, writes) = env3();
        let src = "empty po & rf as before\nlet po = 0\nempty po as after";
        let prog = CatProgram::parse(src).unwrap();
        let plan = Plan::compile(&prog).unwrap();
        let mut ctx = EvalContext::new();
        let ours = plan.check_in_env(&mut ctx, &base, &reads, &writes).unwrap();
        assert_eq!(ours, prog.check(&base, &reads, &writes).unwrap());
        assert!(ours[1].passed, "shadowed po is empty");
    }
}
