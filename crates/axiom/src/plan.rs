//! Compiled relational evaluation plans for `.cat` programs.
//!
//! [`CatProgram::check`](crate::cat::CatProgram::check) interprets the
//! `.cat` AST afresh for every execution: every identifier goes through a
//! `String`-keyed map, every `let` binding is cloned at each use, and
//! every operator allocates a new bit matrix. That is fine for a single
//! verdict and ruinous for the paper's Sec. 5.4 workload, where one model
//! is evaluated over thousands of candidate executions per test.
//!
//! [`Plan::compile`] lowers a parsed program into a register machine
//! once:
//!
//! * **Names become slots.** Base relations (`po`, `rf`, …) are interned
//!   into dense base slots; `let` bindings and subexpressions become
//!   numbered registers. No string lookup survives to evaluation time.
//! * **Bindings are shared.** Every `let` is compiled exactly once, and
//!   common subexpressions are eliminated across the *whole* program
//!   (union/intersection operands are order-normalised first), so a
//!   binding referenced by three checks is computed once per execution.
//! * **Functions are inlined.** `f(e)` applications are expanded at
//!   compile time with the parameter bound to the argument's register,
//!   mirroring the interpreter's dynamic scoping.
//! * **Checks are scheduled cheapest-first.** Each check records the
//!   registers it transitively needs and a cost estimate;
//!   [`Plan::allows_exec`] evaluates checks in ascending cost order,
//!   materialising only the registers (and base relations) the next check
//!   needs, and short-circuits on the first failure. The full-outcome
//!   mode ([`Plan::check_exec`]) keeps the program's own order and
//!   evaluates everything, matching the interpreter statement for
//!   statement.
//!
//! Evaluation happens inside an [`EvalContext`]: an arena of
//! [`Relation`]/[`EventSet`] buffers (plus DFS scratch for acyclicity)
//! that is reused across executions. After the first execution of a given
//! universe size has warmed the arena, evaluating the next execution
//! performs **zero heap allocation**.
//!
//! ```
//! use weakgpu_axiom::plan::{EvalContext, Plan};
//! use weakgpu_axiom::cat::CatProgram;
//! use weakgpu_axiom::enumerate::{enumerate_executions, EnumConfig};
//! use weakgpu_litmus::{corpus, ThreadScope};
//!
//! let program = CatProgram::parse("let com = rf | co | fr\nacyclic (po | com) as sc").unwrap();
//! let plan = Plan::compile(&program).unwrap();
//! let mut ctx = EvalContext::new();
//! let test = corpus::sb(ThreadScope::IntraCta, None);
//! let execs = enumerate_executions(&test, &EnumConfig::default()).unwrap();
//! let allowed = execs
//!     .iter()
//!     .filter(|c| plan.allows_exec(&mut ctx, &c.execution).unwrap())
//!     .count();
//! assert!(allowed > 0 && allowed < execs.len());
//! ```

use std::collections::{BTreeMap, HashMap};
use std::mem;

use weakgpu_litmus::FenceScope;

use crate::cat::{CatError, CatProgram, CheckKind, CheckOutcome, Expr, Stmt};
use crate::exec::Execution;
use crate::relation::{EventSet, Relation};

/// Maximum function-inlining depth; beyond this the program is assumed to
/// be (mutually) recursive, which the interpreter cannot evaluate either.
const MAX_INLINE_DEPTH: usize = 64;

/// An operand: a base-relation slot or the result register of an op.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
enum Src {
    /// An interned base relation, filled from the execution (or
    /// environment) once per evaluation.
    Base(usize),
    /// The result of `ops[i]`.
    Reg(usize),
}

/// Event sorts for the `WW`/`WR`/`RW`/`RR` filters.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Sort {
    Reads,
    Writes,
}

/// One register-machine instruction; instruction `i` writes register `i`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Op {
    /// The empty relation.
    Zero,
    /// `a ∪ b` (operands order-normalised at compile time).
    Union(Src, Src),
    /// `a ∩ b` (operands order-normalised at compile time).
    Inter(Src, Src),
    /// `a \ b`.
    Diff(Src, Src),
    /// `a ; b`.
    Seq(Src, Src),
    /// `a^-1`.
    Inverse(Src),
    /// `a+`.
    Plus(Src),
    /// `a*`.
    Star(Src),
    /// `a?`.
    Opt(Src),
    /// Sort filter: pairs of `a` from `dom`-events to `rng`-events.
    Restrict(Src, Sort, Sort),
}

impl Op {
    /// Rough per-evaluation cost, used to order checks cheapest-first.
    fn cost(self) -> u64 {
        match self {
            Op::Zero => 0,
            Op::Union(..) | Op::Inter(..) | Op::Diff(..) | Op::Opt(_) | Op::Restrict(..) => 1,
            Op::Inverse(_) => 2,
            Op::Seq(..) => 4,
            Op::Plus(_) | Op::Star(_) => 16,
        }
    }

    /// The operand sources.
    fn srcs(self) -> [Option<Src>; 2] {
        match self {
            Op::Zero => [None, None],
            Op::Union(a, b) | Op::Inter(a, b) | Op::Diff(a, b) | Op::Seq(a, b) => {
                [Some(a), Some(b)]
            }
            Op::Inverse(a) | Op::Plus(a) | Op::Star(a) | Op::Opt(a) | Op::Restrict(a, ..) => {
                [Some(a), None]
            }
        }
    }
}

/// One compiled check.
#[derive(Clone, Debug)]
struct PlanCheck {
    name: String,
    kind: CheckKind,
    src: Src,
    /// Registers this check transitively needs, ascending (= topological)
    /// order.
    deps: Vec<usize>,
    /// Estimated evaluation cost (see [`Op::cost`]).
    cost: u64,
}

/// A `.cat` program compiled to a reusable evaluation plan.
///
/// Compile once per model (e.g. in [`CatModel::new`](crate::CatModel)),
/// then evaluate over any number of executions through a shared
/// [`EvalContext`].
#[derive(Clone, Debug)]
pub struct Plan {
    /// Interned base-relation names, indexed by slot.
    base_names: Vec<String>,
    ops: Vec<Op>,
    checks: Vec<PlanCheck>,
    /// Check indices in ascending cost order (the `allows` schedule).
    fast_order: Vec<usize>,
}

/// Where base relations come from during one evaluation.
enum EnvSource<'a> {
    /// Fill from an [`Execution`]'s event structure.
    Exec(&'a Execution),
    /// Copy from a name-keyed environment (the interpreter's input
    /// format; used by the differential tests).
    Map(&'a BTreeMap<String, Relation>),
}

/// The reusable evaluation arena: registers, base-relation buffers, the
/// read/write event sets and DFS scratch. One context serves any number
/// of plans and executions; buffers grow to the high-water mark and are
/// then reused, so steady-state evaluation allocates nothing.
#[derive(Default, Debug)]
pub struct EvalContext {
    /// Evaluation generation; a register/base is valid iff its epoch
    /// matches.
    epoch: u64,
    /// Universe size of the current evaluation.
    n: usize,
    bases: Vec<Relation>,
    base_epoch: Vec<u64>,
    regs: Vec<Relation>,
    reg_epoch: Vec<u64>,
    reads: EventSet,
    writes: EventSet,
    scratch_a: Relation,
    scratch_b: Relation,
    colour: Vec<u8>,
    stack: Vec<(usize, usize)>,
}

impl EvalContext {
    /// An empty context; buffers are allocated lazily on first use.
    pub fn new() -> Self {
        EvalContext::default()
    }

    /// Starts a new evaluation: bumps the epoch (invalidating all cached
    /// registers and bases) and sizes the arena for `plan` and universe
    /// `n`.
    fn begin(&mut self, plan: &Plan, n: usize) {
        self.epoch += 1;
        self.n = n;
        if self.bases.len() < plan.base_names.len() {
            self.bases
                .resize_with(plan.base_names.len(), Relation::default);
        }
        self.base_epoch.resize(self.bases.len(), 0);
        if self.regs.len() < plan.ops.len() {
            self.regs.resize_with(plan.ops.len(), Relation::default);
        }
        self.reg_epoch.resize(self.regs.len(), 0);
    }

    fn src_rel(&self, s: Src) -> &Relation {
        match s {
            Src::Base(i) => &self.bases[i],
            Src::Reg(i) => &self.regs[i],
        }
    }
}

// ---------------------------------------------------------------- compile

#[derive(Clone)]
enum Binding {
    Rel(Src),
    Fun { param: String, body: Expr },
}

struct Compiler {
    base_names: Vec<String>,
    base_slots: HashMap<String, usize>,
    ops: Vec<Op>,
    cse: HashMap<Op, usize>,
    lets: HashMap<String, Binding>,
    depth: usize,
}

impl Compiler {
    fn base(&mut self, name: &str) -> Src {
        if let Some(&slot) = self.base_slots.get(name) {
            return Src::Base(slot);
        }
        let slot = self.base_names.len();
        self.base_names.push(name.to_owned());
        self.base_slots.insert(name.to_owned(), slot);
        Src::Base(slot)
    }

    /// Emits `op`, reusing an existing register for a structurally
    /// identical instruction (common-subexpression elimination).
    fn emit(&mut self, op: Op) -> Src {
        if let Some(&reg) = self.cse.get(&op) {
            return Src::Reg(reg);
        }
        self.ops.push(op);
        let reg = self.ops.len() - 1;
        self.cse.insert(op, reg);
        Src::Reg(reg)
    }

    /// Emits a commutative op with order-normalised operands, so `a | b`
    /// and `b | a` share one register.
    fn emit_comm(&mut self, mk: fn(Src, Src) -> Op, a: Src, b: Src) -> Src {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        self.emit(mk(lo, hi))
    }

    fn expr(&mut self, e: &Expr) -> Result<Src, CatError> {
        match e {
            Expr::Zero => Ok(self.emit(Op::Zero)),
            Expr::Id(name) => match self.lets.get(name.as_str()) {
                Some(Binding::Rel(src)) => Ok(*src),
                Some(Binding::Fun { .. }) => {
                    Err(CatError(format!("{name:?} is a function, not a relation")))
                }
                None => Ok(self.base(name)),
            },
            Expr::App(name, arg) => {
                let argv = self.expr(arg)?;
                match name.as_str() {
                    "WW" => Ok(self.emit(Op::Restrict(argv, Sort::Writes, Sort::Writes))),
                    "WR" => Ok(self.emit(Op::Restrict(argv, Sort::Writes, Sort::Reads))),
                    "RW" => Ok(self.emit(Op::Restrict(argv, Sort::Reads, Sort::Writes))),
                    "RR" => Ok(self.emit(Op::Restrict(argv, Sort::Reads, Sort::Reads))),
                    _ => match self.lets.get(name.as_str()).cloned() {
                        Some(Binding::Fun { param, body }) => {
                            if self.depth >= MAX_INLINE_DEPTH {
                                return Err(CatError(format!(
                                    "function {name:?} recurses deeper than {MAX_INLINE_DEPTH}"
                                )));
                            }
                            self.depth += 1;
                            // Bind the parameter, compile the body at this
                            // application site, restore — the compile-time
                            // image of the interpreter's dynamic scoping.
                            let saved = self.lets.insert(param.clone(), Binding::Rel(argv));
                            let result = self.expr(&body);
                            match saved {
                                Some(v) => {
                                    self.lets.insert(param, v);
                                }
                                None => {
                                    self.lets.remove(&param);
                                }
                            }
                            self.depth -= 1;
                            result
                        }
                        Some(Binding::Rel(_)) => Err(CatError(format!(
                            "{name:?} is a relation, cannot be applied"
                        ))),
                        // A base relation can never be a function, so an
                        // application of an unknown name is an error
                        // either way; report it like the interpreter
                        // would on a missing base.
                        None => Err(CatError(format!(
                            "{name:?} is not a function, cannot be applied"
                        ))),
                    },
                }
            }
            Expr::Union(a, b) => {
                let (sa, sb) = (self.expr(a)?, self.expr(b)?);
                Ok(self.emit_comm(Op::Union, sa, sb))
            }
            Expr::Inter(a, b) => {
                let (sa, sb) = (self.expr(a)?, self.expr(b)?);
                Ok(self.emit_comm(Op::Inter, sa, sb))
            }
            Expr::Diff(a, b) => {
                let (sa, sb) = (self.expr(a)?, self.expr(b)?);
                Ok(self.emit(Op::Diff(sa, sb)))
            }
            Expr::Seq(a, b) => {
                let (sa, sb) = (self.expr(a)?, self.expr(b)?);
                Ok(self.emit(Op::Seq(sa, sb)))
            }
            Expr::Inverse(a) => {
                let s = self.expr(a)?;
                Ok(self.emit(Op::Inverse(s)))
            }
            Expr::Plus(a) => {
                let s = self.expr(a)?;
                Ok(self.emit(Op::Plus(s)))
            }
            Expr::Star(a) => {
                let s = self.expr(a)?;
                Ok(self.emit(Op::Star(s)))
            }
            Expr::Opt(a) => {
                let s = self.expr(a)?;
                Ok(self.emit(Op::Opt(s)))
            }
        }
    }
}

impl Plan {
    /// Compiles `program` into a plan.
    ///
    /// # Errors
    ///
    /// Returns a [`CatError`] for programs the interpreter could not
    /// evaluate either: applying a non-function, using a function as a
    /// relation, or unboundedly recursive function definitions.
    pub fn compile(program: &CatProgram) -> Result<Plan, CatError> {
        let mut c = Compiler {
            base_names: Vec::new(),
            base_slots: HashMap::new(),
            ops: Vec::new(),
            cse: HashMap::new(),
            lets: HashMap::new(),
            depth: 0,
        };
        let mut checks = Vec::new();
        for stmt in program.stmts() {
            match stmt {
                Stmt::Let {
                    name,
                    param: None,
                    body,
                } => {
                    let src = c.expr(body)?;
                    c.lets.insert(name.clone(), Binding::Rel(src));
                }
                Stmt::Let {
                    name,
                    param: Some(p),
                    body,
                } => {
                    c.lets.insert(
                        name.clone(),
                        Binding::Fun {
                            param: p.clone(),
                            body: body.clone(),
                        },
                    );
                }
                Stmt::Check { kind, expr, name } => {
                    let src = c.expr(expr)?;
                    checks.push(PlanCheck {
                        name: name.clone(),
                        kind: *kind,
                        src,
                        deps: Vec::new(),
                        cost: 0,
                    });
                }
            }
        }

        // Dependency closure and cost per check. Operand registers are
        // always lower-numbered, so a reverse sweep over a seen-set
        // yields the deps in topological (ascending) order.
        for check in &mut checks {
            let mut need = vec![false; c.ops.len()];
            let mut bases = vec![false; c.base_names.len()];
            let mark = |s: Src, need: &mut Vec<bool>, bases: &mut Vec<bool>| match s {
                Src::Reg(i) => need[i] = true,
                Src::Base(i) => bases[i] = true,
            };
            mark(check.src, &mut need, &mut bases);
            for i in (0..c.ops.len()).rev() {
                if !need[i] {
                    continue;
                }
                for s in c.ops[i].srcs().into_iter().flatten() {
                    mark(s, &mut need, &mut bases);
                }
            }
            check.deps = (0..c.ops.len()).filter(|&i| need[i]).collect();
            let kind_cost = match check.kind {
                CheckKind::Acyclic => 4,
                CheckKind::Irreflexive | CheckKind::Empty => 1,
            };
            check.cost = kind_cost
                + check.deps.iter().map(|&i| c.ops[i].cost()).sum::<u64>()
                + bases.iter().filter(|&&b| b).count() as u64;
        }

        let mut fast_order: Vec<usize> = (0..checks.len()).collect();
        fast_order.sort_by_key(|&i| checks[i].cost);

        Ok(Plan {
            base_names: c.base_names,
            ops: c.ops,
            checks,
            fast_order,
        })
    }

    /// Number of compiled instructions (after CSE).
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Names of the base relations the plan reads.
    pub fn base_names(&self) -> impl Iterator<Item = &str> {
        self.base_names.iter().map(String::as_str)
    }

    // ------------------------------------------------------------- eval

    /// Materialises base slot `i` for the current epoch.
    fn ensure_base(
        &self,
        ctx: &mut EvalContext,
        slot: usize,
        env: &EnvSource<'_>,
    ) -> Result<(), CatError> {
        if ctx.base_epoch[slot] == ctx.epoch {
            return Ok(());
        }
        let name = self.base_names[slot].as_str();
        let mut dst = mem::take(&mut ctx.bases[slot]);
        let filled = match env {
            EnvSource::Map(map) => match map.get(name) {
                Some(r) => {
                    dst.copy_from(r);
                    true
                }
                None => false,
            },
            EnvSource::Exec(exec) => fill_base_from_exec(exec, name, &mut dst, ctx),
        };
        ctx.bases[slot] = dst;
        if !filled {
            return Err(CatError(format!("unbound identifier {name:?}")));
        }
        ctx.base_epoch[slot] = ctx.epoch;
        Ok(())
    }

    fn ensure_src(
        &self,
        ctx: &mut EvalContext,
        s: Src,
        env: &EnvSource<'_>,
    ) -> Result<(), CatError> {
        if let Src::Base(slot) = s {
            self.ensure_base(ctx, slot, env)?;
        }
        Ok(())
    }

    /// Executes instruction `i` unless its register is already valid this
    /// epoch. Register operands must have been executed earlier (deps are
    /// topologically ordered); base operands are materialised on demand.
    fn run_op(&self, ctx: &mut EvalContext, i: usize, env: &EnvSource<'_>) -> Result<(), CatError> {
        if ctx.reg_epoch[i] == ctx.epoch {
            return Ok(());
        }
        let op = self.ops[i];
        for s in op.srcs().into_iter().flatten() {
            self.ensure_src(ctx, s, env)?;
        }
        let mut dst = mem::take(&mut ctx.regs[i]);
        match op {
            Op::Zero => dst.reset(ctx.n),
            Op::Union(a, b) => dst.union_from(ctx.src_rel(a), ctx.src_rel(b)),
            Op::Inter(a, b) => dst.inter_from(ctx.src_rel(a), ctx.src_rel(b)),
            Op::Diff(a, b) => dst.diff_from(ctx.src_rel(a), ctx.src_rel(b)),
            Op::Seq(a, b) => dst.seq_from(ctx.src_rel(a), ctx.src_rel(b)),
            Op::Inverse(a) => dst.inverse_from(ctx.src_rel(a)),
            Op::Opt(a) => dst.opt_from(ctx.src_rel(a)),
            Op::Plus(a) => {
                let mut scratch = mem::take(&mut ctx.scratch_a);
                dst.plus_from(ctx.src_rel(a), &mut scratch);
                ctx.scratch_a = scratch;
            }
            Op::Star(a) => {
                let mut scratch = mem::take(&mut ctx.scratch_a);
                dst.star_from(ctx.src_rel(a), &mut scratch);
                ctx.scratch_a = scratch;
            }
            Op::Restrict(a, dom, rng) => {
                let dom = match dom {
                    Sort::Reads => &ctx.reads,
                    Sort::Writes => &ctx.writes,
                };
                let rng = match rng {
                    Sort::Reads => &ctx.reads,
                    Sort::Writes => &ctx.writes,
                };
                dst.restrict_from(ctx.src_rel(a), dom, rng);
            }
        }
        ctx.regs[i] = dst;
        ctx.reg_epoch[i] = ctx.epoch;
        Ok(())
    }

    fn check_passes(&self, ctx: &mut EvalContext, check: &PlanCheck) -> bool {
        let mut colour = mem::take(&mut ctx.colour);
        let mut stack = mem::take(&mut ctx.stack);
        let rel = ctx.src_rel(check.src);
        let passed = match check.kind {
            CheckKind::Acyclic => rel.is_acyclic_with(&mut colour, &mut stack),
            CheckKind::Irreflexive => rel.is_irreflexive(),
            CheckKind::Empty => rel.is_empty(),
        };
        ctx.colour = colour;
        ctx.stack = stack;
        passed
    }

    /// The fast path: `true` iff every check passes on `exec`, evaluating
    /// checks cheapest-first and stopping at the first failure. Only the
    /// base relations and registers the verdict actually needs are
    /// materialised.
    ///
    /// # Errors
    ///
    /// Returns a [`CatError`] if the program references a base relation
    /// the execution does not define. (Unlike the interpreter, bindings
    /// no check depends on are never evaluated here, so errors confined
    /// to dead bindings do not surface.)
    pub fn allows_exec(&self, ctx: &mut EvalContext, exec: &Execution) -> Result<bool, CatError> {
        ctx.begin(self, exec.len());
        exec.fill_read_set(&mut ctx.reads);
        exec.fill_write_set(&mut ctx.writes);
        let env = EnvSource::Exec(exec);
        self.allows_inner(ctx, &env)
    }

    /// Full-outcome mode: evaluates every statement (in program order,
    /// like the interpreter — including bindings no check uses) and
    /// reports each named check.
    ///
    /// # Errors
    ///
    /// Returns a [`CatError`] for unbound base relations, even in unused
    /// bindings.
    pub fn check_exec(
        &self,
        ctx: &mut EvalContext,
        exec: &Execution,
    ) -> Result<Vec<CheckOutcome>, CatError> {
        ctx.begin(self, exec.len());
        exec.fill_read_set(&mut ctx.reads);
        exec.fill_write_set(&mut ctx.writes);
        let env = EnvSource::Exec(exec);
        self.check_inner(ctx, &env)
    }

    /// [`Plan::allows_exec`] over a name-keyed environment — the same
    /// inputs [`CatProgram::check`] takes, for differential testing. The
    /// universe is taken from the environment's first relation.
    ///
    /// # Errors
    ///
    /// See [`Plan::allows_exec`].
    pub fn allows_in_env(
        &self,
        ctx: &mut EvalContext,
        base: &BTreeMap<String, Relation>,
        reads: &EventSet,
        writes: &EventSet,
    ) -> Result<bool, CatError> {
        self.begin_env(ctx, base, reads, writes);
        self.allows_inner(ctx, &EnvSource::Map(base))
    }

    /// [`Plan::check_exec`] over a name-keyed environment.
    ///
    /// # Errors
    ///
    /// See [`Plan::check_exec`].
    pub fn check_in_env(
        &self,
        ctx: &mut EvalContext,
        base: &BTreeMap<String, Relation>,
        reads: &EventSet,
        writes: &EventSet,
    ) -> Result<Vec<CheckOutcome>, CatError> {
        self.begin_env(ctx, base, reads, writes);
        self.check_inner(ctx, &EnvSource::Map(base))
    }

    /// Shared prologue of the `*_in_env` entry points: universe from the
    /// environment's first relation (the interpreter's rule), then the
    /// event sorts copied into the arena.
    fn begin_env(
        &self,
        ctx: &mut EvalContext,
        base: &BTreeMap<String, Relation>,
        reads: &EventSet,
        writes: &EventSet,
    ) {
        let n = base.values().next().map(Relation::universe).unwrap_or(0);
        ctx.begin(self, n);
        ctx.reads.copy_from(reads);
        ctx.writes.copy_from(writes);
    }

    fn allows_inner(&self, ctx: &mut EvalContext, env: &EnvSource<'_>) -> Result<bool, CatError> {
        for &ci in &self.fast_order {
            let check = &self.checks[ci];
            for &op in &check.deps {
                self.run_op(ctx, op, env)?;
            }
            self.ensure_src(ctx, check.src, env)?;
            if !self.check_passes(ctx, check) {
                return Ok(false);
            }
        }
        Ok(true)
    }

    fn check_inner(
        &self,
        ctx: &mut EvalContext,
        env: &EnvSource<'_>,
    ) -> Result<Vec<CheckOutcome>, CatError> {
        for i in 0..self.ops.len() {
            self.run_op(ctx, i, env)?;
        }
        let mut out = Vec::with_capacity(self.checks.len());
        for check in &self.checks {
            self.ensure_src(ctx, check.src, env)?;
            out.push(CheckOutcome {
                name: check.name.clone(),
                kind: check.kind,
                passed: self.check_passes(ctx, check),
            });
        }
        Ok(out)
    }
}

/// Fills `dst` with the base relation `name` of `exec`; returns `false`
/// for names [`Execution::base_relations`] does not define.
fn fill_base_from_exec(
    exec: &Execution,
    name: &str,
    dst: &mut Relation,
    ctx: &mut EvalContext,
) -> bool {
    match name {
        "po" => exec.fill_po(dst),
        "po-loc" => exec.fill_po_loc(dst),
        "addr" => dst.copy_from(&exec.addr),
        "data" => dst.copy_from(&exec.data),
        "ctrl" => dst.copy_from(&exec.ctrl),
        "rmw" => dst.copy_from(&exec.rmw),
        "rf" => exec.fill_rf_rel(dst),
        "co" => exec.fill_co_rel(dst),
        "fr" => exec.fill_fr(dst),
        "ext" => exec.fill_ext(dst),
        "int" => exec.fill_int(dst),
        "loc" => exec.fill_same_loc(dst),
        "id" => {
            dst.reset(exec.len());
            dst.add_identity();
        }
        "membar.cta" => exec.fill_fence_rel(FenceScope::Cta, dst),
        "membar.gl" => exec.fill_fence_rel(FenceScope::Gl, dst),
        "membar.sys" => exec.fill_fence_rel(FenceScope::Sys, dst),
        "cta" => exec.fill_scope_cta(dst),
        "gl" | "sys" => {
            dst.reset(exec.len());
            dst.fill_full();
        }
        "rfe" | "rfi" | "coe" | "coi" | "fre" | "fri" => {
            match &name[..2] {
                "rf" => exec.fill_rf_rel(&mut ctx.scratch_a),
                "co" => exec.fill_co_rel(&mut ctx.scratch_a),
                _ => exec.fill_fr(&mut ctx.scratch_a),
            }
            if name.ends_with('e') {
                exec.fill_ext(&mut ctx.scratch_b);
            } else {
                exec.fill_int(&mut ctx.scratch_b);
            }
            dst.inter_from(&ctx.scratch_a, &ctx.scratch_b);
        }
        _ => return false,
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::{enumerate_executions, EnumConfig};
    use weakgpu_litmus::{corpus, ThreadScope};

    fn env3() -> (BTreeMap<String, Relation>, EventSet, EventSet) {
        let mut m = BTreeMap::new();
        m.insert(
            "po".to_string(),
            Relation::from_pairs(3, [(0, 1), (1, 2), (0, 2)]),
        );
        m.insert("rf".to_string(), Relation::from_pairs(3, [(2, 1)]));
        let writes = EventSet::from_iter_n(3, [0, 2]);
        let reads = EventSet::from_iter_n(3, [1]);
        (m, reads, writes)
    }

    fn plan_of(src: &str) -> Plan {
        Plan::compile(&CatProgram::parse(src).unwrap()).unwrap()
    }

    #[test]
    fn cse_shares_lets_across_checks() {
        // `com` is referenced by both checks; the (rf|co)|fr chain must be
        // compiled once, and the identical union in the second check must
        // alias it.
        let p =
            plan_of("let com = rf | co | fr\nacyclic (po | com) as a\nirreflexive (com ; po) as b");
        // rf|co, (rf|co)|fr, po|com, com;po — and nothing duplicated.
        assert_eq!(p.num_ops(), 4, "{:?}", p.ops);
    }

    #[test]
    fn commutative_operands_are_normalised() {
        let p = plan_of("empty (po | rf) as a\nempty (rf | po) as b");
        assert_eq!(p.num_ops(), 1);
        let q = plan_of("empty (po & rf) as a\nempty (rf & po) as b");
        assert_eq!(q.num_ops(), 1);
        // Difference is NOT commutative.
        let r = plan_of("empty (po \\ rf) as a\nempty (rf \\ po) as b");
        assert_eq!(r.num_ops(), 2);
    }

    #[test]
    fn function_inlining_matches_interpreter() {
        let (base, reads, writes) = env3();
        let src = "let f(x) = x | rf\nacyclic f(po) as c";
        let prog = CatProgram::parse(src).unwrap();
        let plan = Plan::compile(&prog).unwrap();
        let mut ctx = EvalContext::new();
        let ours = plan.check_in_env(&mut ctx, &base, &reads, &writes).unwrap();
        let theirs = prog.check(&base, &reads, &writes).unwrap();
        assert_eq!(ours, theirs);
        assert!(!ours[0].passed);
    }

    #[test]
    fn compile_rejects_bad_applications() {
        let parse = |s| CatProgram::parse(s).unwrap();
        assert!(Plan::compile(&parse("let f(x) = x\nacyclic f as c")).is_err());
        assert!(Plan::compile(&parse("let r = po\nacyclic r(rf) as c")).is_err());
        assert!(Plan::compile(&parse("acyclic po(rf) as c")).is_err());
        assert!(Plan::compile(&parse("let f(x) = f(x)\nacyclic f(po) as c")).is_err());
    }

    #[test]
    fn unbound_base_is_an_eval_error() {
        let (base, reads, writes) = env3();
        let plan = plan_of("acyclic nosuch as c");
        let mut ctx = EvalContext::new();
        let err = plan
            .check_in_env(&mut ctx, &base, &reads, &writes)
            .unwrap_err();
        assert!(err.0.contains("unbound"), "{err}");
        assert!(plan
            .allows_in_env(&mut ctx, &base, &reads, &writes)
            .is_err());
    }

    #[test]
    fn fast_order_puts_cheap_checks_first() {
        let p = plan_of("acyclic (po ; rf)+ as expensive\nempty 0 as cheap");
        assert_eq!(p.fast_order, vec![1, 0]);
    }

    #[test]
    fn env_eval_matches_interpreter_on_operators() {
        let (base, reads, writes) = env3();
        let mut ctx = EvalContext::new();
        for src in [
            "empty po & rf as c",
            "empty po \\ po as c",
            "empty (po ; rf) as c",
            "irreflexive (po ; rf) as c",
            "empty rf^-1 as c",
            "acyclic po+ as c",
            "irreflexive po* as c",
            "empty 0 as c",
            "acyclic po? as c",
            "empty WW(po) as c",
            "empty RR(po) as c",
            "irreflexive RW(po) | WR(rf) as c",
        ] {
            let prog = CatProgram::parse(src).unwrap();
            let plan = Plan::compile(&prog).unwrap();
            assert_eq!(
                plan.check_in_env(&mut ctx, &base, &reads, &writes).unwrap(),
                prog.check(&base, &reads, &writes).unwrap(),
                "{src}"
            );
        }
    }

    #[test]
    fn exec_eval_matches_env_eval_on_candidates() {
        // The execution fast path must agree with evaluating the same
        // program over `base_relations()` through the interpreter.
        let src = "\
let com = rf | co | fr
let po-loc-llh = WW(po-loc) | WR(po-loc) | RW(po-loc)
acyclic (po-loc-llh | com) as sc-per-loc-llh
acyclic (po | com) as sc
irreflexive (fre ; coe) as aux
";
        let prog = CatProgram::parse(src).unwrap();
        let plan = Plan::compile(&prog).unwrap();
        let mut ctx = EvalContext::new();
        let test = corpus::sb(ThreadScope::IntraCta, None);
        for cand in enumerate_executions(&test, &EnumConfig::default()).unwrap() {
            let exec = &cand.execution;
            let interp = prog
                .check(&exec.base_relations(), &exec.read_set(), &exec.write_set())
                .unwrap();
            assert_eq!(plan.check_exec(&mut ctx, exec).unwrap(), interp);
            assert_eq!(
                plan.allows_exec(&mut ctx, exec).unwrap(),
                interp.iter().all(|c| c.passed)
            );
        }
    }

    #[test]
    fn context_survives_plan_and_universe_changes() {
        let (base, reads, writes) = env3();
        let p1 = plan_of("acyclic po as c");
        let p2 = plan_of("let com = rf | co | fr\nacyclic (po | com) as sc");
        let mut ctx = EvalContext::new();
        let test = corpus::mp(ThreadScope::InterCta, None);
        let cands = enumerate_executions(&test, &EnumConfig::default()).unwrap();
        for _ in 0..2 {
            // Alternate between a 3-event map environment and a larger
            // execution, and between two different plans, through one
            // context: epoch bumps must prevent any stale-buffer reuse.
            assert!(p1.allows_in_env(&mut ctx, &base, &reads, &writes).unwrap());
            let _ = p2.allows_exec(&mut ctx, &cands[0].execution).unwrap();
            let _ = p1.allows_exec(&mut ctx, &cands[0].execution).unwrap();
        }
    }

    #[test]
    fn let_shadowing_matches_interpreter() {
        // A let can shadow a base relation for subsequent statements.
        let (base, reads, writes) = env3();
        let src = "empty po & rf as before\nlet po = 0\nempty po as after";
        let prog = CatProgram::parse(src).unwrap();
        let plan = Plan::compile(&prog).unwrap();
        let mut ctx = EvalContext::new();
        let ours = plan.check_in_env(&mut ctx, &base, &reads, &writes).unwrap();
        assert_eq!(ours, prog.check(&base, &reads, &writes).unwrap());
        assert!(ours[1].passed, "shadowed po is empty");
    }
}
