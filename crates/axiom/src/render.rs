//! Rendering candidate executions — the graphs the paper draws (Fig. 14),
//! as ASCII summaries or Graphviz DOT, plus "why forbidden" diagnostics
//! extracting the cycle that trips a model's check.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::cat::CheckOutcome;
use crate::exec::Execution;
use crate::model::CatModel;
use crate::relation::Relation;

/// Edge kinds drawn in an execution graph.
const DRAWN: [&str; 7] = [
    "po",
    "rf",
    "co",
    "fr",
    "membar.cta",
    "membar.gl",
    "membar.sys",
];

/// An ASCII rendering: one line per event, then one line per edge of the
/// communication and ordering relations (po restricted to immediate
/// successors for readability).
pub fn ascii(exec: &Execution) -> String {
    let mut out = String::new();
    for e in &exec.events {
        let _ = writeln!(out, "{}", e.label());
    }
    let rels = exec.base_relations();
    for name in DRAWN {
        let rel = &rels[name];
        let rel = if name == "po" {
            immediate(rel)
        } else {
            rel.clone()
        };
        for (a, b) in rel.iter_pairs() {
            let _ = writeln!(out, "  {} --{name}--> {}", letter(a), letter(b));
        }
    }
    // Init reads: rf edges with no source (the paper draws a sourceless
    // arrow into the read).
    for (r, src) in exec.rf.iter().enumerate() {
        if src.is_none() && exec.events.get(r).is_some_and(|e| e.is_read()) {
            let _ = writeln!(out, "  (init) --rf--> {}", letter(r));
        }
    }
    out
}

/// A Graphviz DOT rendering, one cluster per thread.
pub fn dot(exec: &Execution, title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{title}\" {{");
    let _ = writeln!(out, "  rankdir=TB; node [shape=box, fontname=monospace];");
    let mut by_thread: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for e in &exec.events {
        by_thread.entry(e.tid).or_default().push(e.id);
    }
    for (tid, ids) in &by_thread {
        let _ = writeln!(out, "  subgraph cluster_t{tid} {{");
        let _ = writeln!(out, "    label=\"T{tid}\";");
        for &id in ids {
            let _ = writeln!(
                out,
                "    e{id} [label=\"{}\"];",
                exec.events[id].label().replace('"', "'")
            );
        }
        let _ = writeln!(out, "  }}");
    }
    let rels = exec.base_relations();
    let styles: BTreeMap<&str, &str> = [
        ("po", "color=gray"),
        ("rf", "color=red"),
        ("co", "color=blue"),
        ("fr", "color=orange"),
        ("membar.cta", "color=green,style=dashed"),
        ("membar.gl", "color=darkgreen,style=dashed"),
        ("membar.sys", "color=black,style=dashed"),
    ]
    .into_iter()
    .collect();
    for name in DRAWN {
        let rel = &rels[name];
        let rel = if name == "po" {
            immediate(rel)
        } else {
            rel.clone()
        };
        for (a, b) in rel.iter_pairs() {
            let _ = writeln!(out, "  e{a} -> e{b} [label=\"{name}\", {}];", styles[name]);
        }
    }
    let _ = writeln!(out, "}}");
    out
}

/// Reduces a (transitive) order to immediate-successor edges for drawing.
fn immediate(rel: &Relation) -> Relation {
    let n = rel.universe();
    let mut out = Relation::empty(n);
    for (a, b) in rel.iter_pairs() {
        let has_mid = (0..n).any(|m| m != a && m != b && rel.contains(a, m) && rel.contains(m, b));
        if !has_mid {
            out.add(a, b);
        }
    }
    out
}

fn letter(id: usize) -> char {
    (b'a' + (id % 26) as u8) as char
}

/// Why a `.cat` model forbids an execution: the failing checks, each with
/// a cycle witness rendered through event labels.
///
/// Uses the plan's full-outcome mode ([`CatModel::check`]) rather than
/// the short-circuiting `allows` fast path, so every failing check is
/// named even when an earlier (cheaper) one already decides the verdict.
///
/// Returns an empty vector when the model allows the execution.
pub fn explain_verdict(model: &CatModel, exec: &Execution) -> Vec<String> {
    let mut reasons = Vec::new();
    if !exec.rmw_atomicity_holds(model.rmw_atomicity()) {
        reasons.push("an atomic read-modify-write lost its exclusivity".to_owned());
    }
    let outcomes: Vec<CheckOutcome> = match model.check(exec) {
        Ok(o) => o,
        Err(e) => return vec![format!("model evaluation failed: {e}")],
    };
    for check in outcomes.into_iter().filter(|c| !c.passed) {
        // Re-derive the checked relation to extract a witness cycle. The
        // simplest route: re-evaluate every prefix is costly; instead use
        // the fact that all the paper's checks are acyclicity checks and
        // report the failing check's name plus the cycle found in the
        // union of communication and program order restricted to… the
        // checked expression is not directly recoverable here, so report
        // the strongest general witness: a cycle in com ∪ po (which every
        // failing check embeds into for this model family).
        let rels = exec.base_relations();
        let com_po = rels["rf"]
            .union(&rels["co"])
            .union(&rels["fr"])
            .union(&rels["po"]);
        let witness = com_po
            .find_cycle()
            .map(|cycle| {
                cycle
                    .iter()
                    .map(|&id| exec.events[id].label())
                    .collect::<Vec<_>>()
                    .join("  →  ")
            })
            .unwrap_or_else(|| "(no com∪po cycle; ordering is scope-internal)".to_owned());
        reasons.push(format!("check `{}` fails: {witness}", check.name));
    }
    reasons
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::{enumerate_executions, EnumConfig};
    use weakgpu_litmus::{corpus, ThreadScope};

    fn forbidden_sb_execution() -> Execution {
        // Find the sb weak candidate (both reads 0).
        let test = corpus::sb(ThreadScope::IntraCta, None);
        enumerate_executions(&test, &EnumConfig::default())
            .unwrap()
            .into_iter()
            .find(|c| test.cond().witnessed_by(&c.outcome))
            .expect("weak candidate exists")
            .execution
    }

    #[test]
    fn ascii_lists_events_and_edges() {
        let exec = forbidden_sb_execution();
        let s = ascii(&exec);
        assert!(s.contains("W.cg x=1"), "{s}");
        assert!(s.contains("--fr-->"), "{s}");
        assert!(s.contains("(init) --rf-->"), "{s}");
    }

    #[test]
    fn dot_is_valid_shaped() {
        let exec = forbidden_sb_execution();
        let d = dot(&exec, "sb");
        assert!(d.starts_with("digraph"));
        assert!(d.contains("subgraph cluster_t0"));
        assert!(d.contains("subgraph cluster_t1"));
        assert!(d.trim_end().ends_with('}'));
        assert_eq!(d.matches("label=\"fr\"").count(), 2);
    }

    #[test]
    fn immediate_reduction_drops_transitive_edges() {
        let r = Relation::from_pairs(3, [(0, 1), (1, 2), (0, 2)]);
        let m = immediate(&r);
        assert!(m.contains(0, 1) && m.contains(1, 2));
        assert!(!m.contains(0, 2));
    }

    #[test]
    fn explain_names_the_failing_check() {
        use crate::model::sc_model;
        let exec = forbidden_sb_execution();
        let sc = sc_model();
        let reasons = explain_verdict(&sc, &exec);
        assert_eq!(reasons.len(), 1, "{reasons:?}");
        assert!(reasons[0].contains("check `sc` fails"), "{reasons:?}");
        assert!(reasons[0].contains("→"), "{reasons:?}");
    }

    #[test]
    fn explain_is_empty_for_allowed_executions() {
        use crate::model::{sc_model, Model};
        let test = corpus::sb(ThreadScope::IntraCta, None);
        let sc = sc_model();
        let allowed = enumerate_executions(&test, &EnumConfig::default())
            .unwrap()
            .into_iter()
            .find(|c| sc.allows(&c.execution))
            .expect("some SC execution exists")
            .execution;
        assert!(explain_verdict(&sc, &allowed).is_empty());
    }
}
