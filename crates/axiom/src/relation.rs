//! Finite binary relations over event ids, as dense bit matrices, plus the
//! relational algebra the `.cat` language needs: union, intersection,
//! difference, composition, inverse, closures, sort filters and acyclicity.
//!
//! Litmus executions have at most a few dozen events, so an `n × n` bit
//! matrix (one `u64` row segment per 64 events) is both the simplest and the
//! fastest representation.
//!
//! Every operator comes in two forms: an allocating method (`union`,
//! `seq`, …) returning a fresh [`Relation`], and an in-place `*_from`
//! variant writing into an existing buffer (`union_from`, `seq_from`, …).
//! The in-place forms reuse the destination's allocation whenever the
//! universe fits its capacity, which is what lets the compiled-plan
//! evaluator ([`crate::plan`]) judge thousands of candidate executions
//! without touching the heap.

use std::fmt;

/// A set of event ids in `0..n`, as a bitset.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct EventSet {
    n: usize,
    bits: Vec<u64>,
}

impl Default for EventSet {
    /// The empty set over the empty universe.
    fn default() -> Self {
        EventSet::empty(0)
    }
}

impl EventSet {
    /// The empty set over a universe of `n` events.
    pub fn empty(n: usize) -> Self {
        EventSet {
            n,
            bits: vec![0; n.div_ceil(64)],
        }
    }

    /// The full set over a universe of `n` events: whole words are set at
    /// once and the tail word masked, rather than inserting bit by bit.
    pub fn full(n: usize) -> Self {
        let mut bits = vec![!0u64; n.div_ceil(64)];
        if let Some(last) = bits.last_mut() {
            *last &= tail_mask(n);
        }
        EventSet { n, bits }
    }

    /// Builds a set from the ids yielded by `iter`.
    pub fn from_iter_n(n: usize, iter: impl IntoIterator<Item = usize>) -> Self {
        let mut s = EventSet::empty(n);
        for i in iter {
            s.insert(i);
        }
        s
    }

    /// Reinitialises to the empty set over `n` events, reusing the
    /// allocation when the capacity suffices.
    pub fn reset(&mut self, n: usize) {
        self.n = n;
        self.bits.clear();
        self.bits.resize(n.div_ceil(64), 0);
    }

    /// Becomes a copy of `src`, reusing the allocation.
    pub fn copy_from(&mut self, src: &EventSet) {
        self.n = src.n;
        self.bits.clear();
        self.bits.extend_from_slice(&src.bits);
    }

    /// Universe size.
    pub fn universe(&self) -> usize {
        self.n
    }

    /// Inserts `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    pub fn insert(&mut self, i: usize) {
        assert!(i < self.n, "event id {i} out of universe {}", self.n);
        self.bits[i / 64] |= 1 << (i % 64);
    }

    /// Membership test.
    pub fn contains(&self, i: usize) -> bool {
        i < self.n && self.bits[i / 64] & (1 << (i % 64)) != 0
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` when no members.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// Iterates members in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.n).filter(|&i| self.contains(i))
    }

    /// The `w`-th 64-bit word of the membership mask (0 past the end).
    pub(crate) fn word(&self, w: usize) -> u64 {
        self.bits.get(w).copied().unwrap_or(0)
    }
}

/// A word-level undo log shared by any number of relations: before a
/// journaled mutation overwrites a 64-bit word, the word's previous
/// value is recorded together with a caller-chosen `tag` identifying
/// which relation it belongs to. Popping to a [`EdgeJournal::mark`]
/// replays the records in reverse, restoring every touched relation to
/// its state at the mark in O(words actually changed) — the delta
/// journal the incremental decision-tree walk pushes and pops along
/// the path (one mark per tree level).
///
/// The journal never dedupes: the same word may be recorded several
/// times between two marks, and reversed replay still restores the
/// oldest value last. Entries are `(tag, flat word index, old value)`.
#[derive(Clone, Default, Debug)]
pub struct EdgeJournal {
    entries: Vec<(u32, u32, u64)>,
}

impl EdgeJournal {
    /// A fresh, empty journal.
    pub fn new() -> Self {
        EdgeJournal::default()
    }

    /// The current position — pass it back to `pop_to` to undo
    /// everything recorded after this call.
    pub fn mark(&self) -> usize {
        self.entries.len()
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Forgets every record, keeping the allocation.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Records that word `word` of the relation labelled `tag` held
    /// `old` before the mutation about to happen.
    pub(crate) fn record(&mut self, tag: u32, word: u32, old: u64) {
        self.entries.push((tag, word, old));
    }

    /// The records from `mark` onward, oldest first (callers replay
    /// them reversed).
    pub(crate) fn entries_from(&self, mark: usize) -> &[(u32, u32, u64)] {
        &self.entries[mark..]
    }

    /// Drops every record from `mark` onward (after replaying them).
    pub(crate) fn truncate(&mut self, mark: usize) {
        self.entries.truncate(mark);
    }
}

/// The mask selecting the valid bits of the last word of an `n`-bit row.
fn tail_mask(n: usize) -> u64 {
    match n % 64 {
        0 => !0,
        k => (1u64 << k) - 1,
    }
}

/// A binary relation over event ids `0..n`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Relation {
    n: usize,
    words: usize,
    rows: Vec<u64>,
}

impl Default for Relation {
    /// The empty relation over the empty universe.
    fn default() -> Self {
        Relation::empty(0)
    }
}

impl Relation {
    /// The empty relation over `n` events.
    pub fn empty(n: usize) -> Self {
        let words = n.div_ceil(64).max(1);
        Relation {
            n,
            words,
            rows: vec![0; n * words],
        }
    }

    /// The identity relation over `n` events.
    pub fn identity(n: usize) -> Self {
        let mut r = Relation::empty(n);
        r.add_identity();
        r
    }

    /// The full (universal) relation over `n` events: each row is written
    /// as whole words with a masked tail, not bit by bit.
    pub fn full(n: usize) -> Self {
        let mut r = Relation::empty(n);
        r.fill_full();
        r
    }

    /// Builds a relation from pairs.
    pub fn from_pairs(n: usize, pairs: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut r = Relation::empty(n);
        for (a, b) in pairs {
            r.add(a, b);
        }
        r
    }

    /// Universe size.
    pub fn universe(&self) -> usize {
        self.n
    }

    /// Reinitialises to the empty relation over `n` events, reusing the
    /// allocation when the capacity suffices.
    pub fn reset(&mut self, n: usize) {
        self.n = n;
        self.words = n.div_ceil(64).max(1);
        self.rows.clear();
        self.rows.resize(n * self.words, 0);
    }

    /// Makes this the full relation over its current universe.
    pub fn fill_full(&mut self) {
        let mask = tail_mask(self.n);
        for row in self.rows.chunks_mut(self.words) {
            let full_words = self.n / 64;
            for w in row.iter_mut().take(full_words) {
                *w = !0;
            }
            if !self.n.is_multiple_of(64) {
                row[full_words] = mask;
            }
        }
    }

    /// Adds every pair `(i, i)`.
    pub fn add_identity(&mut self) {
        for i in 0..self.n {
            self.rows[i * self.words + i / 64] |= 1 << (i % 64);
        }
    }

    /// ORs the successor range `[lo, hi)` into row `a`, whole words at a
    /// time — the workhorse of the skeleton's relation fills, where
    /// thread blocks are contiguous id ranges.
    ///
    /// # Panics
    ///
    /// Panics if `a` is outside the universe or `hi > n`.
    pub(crate) fn or_range(&mut self, a: usize, lo: usize, hi: usize) {
        if lo >= hi {
            return;
        }
        assert!(a < self.n && hi <= self.n, "range row out of universe");
        let row = &mut self.rows[a * self.words..(a + 1) * self.words];
        let (wl, wh) = (lo / 64, (hi - 1) / 64);
        let start_mask = !0u64 << (lo % 64);
        let end_mask = tail_mask(hi);
        if wl == wh {
            row[wl] |= start_mask & end_mask;
        } else {
            row[wl] |= start_mask;
            for w in &mut row[wl + 1..wh] {
                *w = !0;
            }
            row[wh] |= end_mask;
        }
    }

    /// ORs `mask` (a word bitmap over the universe) into row `a`.
    pub(crate) fn or_mask(&mut self, a: usize, mask: &[u64]) {
        let row = &mut self.rows[a * self.words..(a + 1) * self.words];
        for (w, &m) in row.iter_mut().zip(mask) {
            *w |= m;
        }
    }

    /// ORs `mask` restricted to the range `[lo, hi)` into row `a`.
    pub(crate) fn or_mask_range(&mut self, a: usize, mask: &[u64], lo: usize, hi: usize) {
        if lo >= hi {
            return;
        }
        let row = &mut self.rows[a * self.words..(a + 1) * self.words];
        let (wl, wh) = (lo / 64, (hi - 1) / 64);
        let start_mask = !0u64 << (lo % 64);
        let end_mask = tail_mask(hi);
        if wl == wh {
            row[wl] |= mask[wl] & start_mask & end_mask;
        } else {
            row[wl] |= mask[wl] & start_mask;
            for w in wl + 1..wh {
                row[w] |= mask[w];
            }
            row[wh] |= mask[wh] & end_mask;
        }
    }

    /// Adds the pair `(a, b)`.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is outside the universe.
    pub fn add(&mut self, a: usize, b: usize) {
        assert!(
            a < self.n && b < self.n,
            "pair ({a},{b}) out of universe {}",
            self.n
        );
        self.rows[a * self.words + b / 64] |= 1 << (b % 64);
    }

    /// Membership test.
    pub fn contains(&self, a: usize, b: usize) -> bool {
        a < self.n && b < self.n && self.rows[a * self.words + b / 64] & (1 << (b % 64)) != 0
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.rows.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` when no pairs.
    pub fn is_empty(&self) -> bool {
        self.rows.iter().all(|&w| w == 0)
    }

    /// Iterates pairs in row-major order.
    pub fn iter_pairs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.n).flat_map(move |a| {
            (0..self.n)
                .filter(move |&b| self.contains(a, b))
                .map(move |b| (a, b))
        })
    }

    /// Calls `f(a, b)` for every pair in row-major order, scanning whole
    /// words instead of probing every `(a, b)` combination.
    pub fn for_each_pair(&self, mut f: impl FnMut(usize, usize)) {
        for a in 0..self.n {
            let row = &self.rows[a * self.words..(a + 1) * self.words];
            for (w, &word) in row.iter().enumerate() {
                let mut bits = word;
                while bits != 0 {
                    f(a, w * 64 + bits.trailing_zeros() as usize);
                    bits &= bits - 1;
                }
            }
        }
    }

    /// Words per row segment.
    pub(crate) fn words_per_row(&self) -> usize {
        self.words
    }

    /// Row `a` as its word slice.
    pub(crate) fn row(&self, a: usize) -> &[u64] {
        &self.rows[a * self.words..(a + 1) * self.words]
    }

    /// The word at flat index `idx` (`row * words_per_row + word`).
    pub(crate) fn word_at(&self, idx: usize) -> u64 {
        self.rows[idx]
    }

    /// Overwrites the word at flat index `idx` — the undo primitive
    /// [`EdgeJournal`] replay dispatches to.
    pub(crate) fn set_word(&mut self, idx: usize, val: u64) {
        self.rows[idx] = val;
    }

    /// Adds `pairs`, journaling each changed word under `tag` so
    /// [`Relation::pop_to`] (or a caller-side tag dispatch) can undo the
    /// delta exactly. Pairs already present record nothing.
    pub fn push_edges(
        &mut self,
        journal: &mut EdgeJournal,
        tag: u32,
        pairs: impl IntoIterator<Item = (usize, usize)>,
    ) {
        for (a, b) in pairs {
            debug_assert!(a < self.n && b < self.n, "pair ({a},{b}) out of universe");
            let idx = a * self.words + b / 64;
            let old = self.rows[idx];
            let new = old | 1 << (b % 64);
            if new != old {
                journal.record(tag, idx as u32, old);
                self.rows[idx] = new;
            }
        }
    }

    /// Removes `pairs`, journaling each changed word under `tag` — the
    /// complement of [`Relation::push_edges`], used to shrink an upper
    /// bound when a tree level commits a choice.
    pub fn clear_edges(
        &mut self,
        journal: &mut EdgeJournal,
        tag: u32,
        pairs: impl IntoIterator<Item = (usize, usize)>,
    ) {
        for (a, b) in pairs {
            debug_assert!(a < self.n && b < self.n, "pair ({a},{b}) out of universe");
            let idx = a * self.words + b / 64;
            let old = self.rows[idx];
            let new = old & !(1 << (b % 64));
            if new != old {
                journal.record(tag, idx as u32, old);
                self.rows[idx] = new;
            }
        }
    }

    /// Replaces row `a` with `new_row`, no journaling — the incremental
    /// evaluator's baseline (root) fills, which are never popped.
    pub(crate) fn set_row(&mut self, a: usize, new_row: &[u64]) {
        debug_assert_eq!(new_row.len(), self.words);
        self.rows[a * self.words..(a + 1) * self.words].copy_from_slice(new_row);
    }

    /// Replaces row `a` with `new_row`, journaling only the words that
    /// actually differ. Returns `true` when the row changed.
    pub(crate) fn set_row_journaled(
        &mut self,
        journal: &mut EdgeJournal,
        tag: u32,
        a: usize,
        new_row: &[u64],
    ) -> bool {
        debug_assert_eq!(new_row.len(), self.words);
        let base = a * self.words;
        let mut changed = false;
        for (w, &val) in new_row.iter().enumerate() {
            let old = self.rows[base + w];
            if old != val {
                journal.record(tag, (base + w) as u32, old);
                self.rows[base + w] = val;
                changed = true;
            }
        }
        changed
    }

    /// Undoes every record after `mark`, restoring this relation to its
    /// state when the mark was taken. Only valid when the journal was
    /// used for this relation alone — multi-relation journals dispatch
    /// on the tag at the call site instead.
    pub fn pop_to(&mut self, journal: &mut EdgeJournal, mark: usize) {
        for &(_tag, idx, old) in journal.entries_from(mark).iter().rev() {
            self.rows[idx as usize] = old;
        }
        journal.truncate(mark);
    }

    /// The smallest successor of `node` that is `>= from`, scanning words.
    pub(crate) fn next_succ(&self, node: usize, from: usize) -> Option<usize> {
        if from >= self.n {
            return None;
        }
        let row = &self.rows[node * self.words..(node + 1) * self.words];
        let mut w = from / 64;
        let mut bits = row.get(w)? & (!0u64 << (from % 64));
        loop {
            if bits != 0 {
                return Some(w * 64 + bits.trailing_zeros() as usize);
            }
            w += 1;
            bits = *row.get(w)?;
        }
    }

    fn zip_with(&self, rhs: &Relation, f: impl Fn(u64, u64) -> u64) -> Relation {
        let mut out = Relation::default();
        out.zip_from(self, rhs, f);
        out
    }

    fn zip_from(&mut self, a: &Relation, b: &Relation, f: impl Fn(u64, u64) -> u64) {
        assert_eq!(a.n, b.n, "relation universes differ");
        self.n = a.n;
        self.words = a.words;
        self.rows.clear();
        self.rows
            .extend(a.rows.iter().zip(&b.rows).map(|(&x, &y)| f(x, y)));
    }

    /// Union.
    pub fn union(&self, rhs: &Relation) -> Relation {
        self.zip_with(rhs, |a, b| a | b)
    }

    /// Intersection.
    pub fn inter(&self, rhs: &Relation) -> Relation {
        self.zip_with(rhs, |a, b| a & b)
    }

    /// Difference (`self \ rhs`).
    pub fn diff(&self, rhs: &Relation) -> Relation {
        self.zip_with(rhs, |a, b| a & !b)
    }

    /// In-place union: `self = a ∪ b`.
    pub fn union_from(&mut self, a: &Relation, b: &Relation) {
        self.zip_from(a, b, |x, y| x | y);
    }

    /// In-place intersection: `self = a ∩ b`.
    pub fn inter_from(&mut self, a: &Relation, b: &Relation) {
        self.zip_from(a, b, |x, y| x & y);
    }

    /// In-place difference: `self = a \ b`.
    pub fn diff_from(&mut self, a: &Relation, b: &Relation) {
        self.zip_from(a, b, |x, y| x & !y);
    }

    /// Becomes a copy of `src`, reusing the allocation.
    pub fn copy_from(&mut self, src: &Relation) {
        self.n = src.n;
        self.words = src.words;
        self.rows.clear();
        self.rows.extend_from_slice(&src.rows);
    }

    /// ORs `rhs` into `self`, reporting whether any new pair appeared.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn or_in_place(&mut self, rhs: &Relation) -> bool {
        assert_eq!(self.n, rhs.n, "relation universes differ");
        let mut changed = false;
        for (d, &s) in self.rows.iter_mut().zip(&rhs.rows) {
            let next = *d | s;
            changed |= next != *d;
            *d = next;
        }
        changed
    }

    /// Relational composition `self ; rhs`.
    pub fn seq(&self, rhs: &Relation) -> Relation {
        let mut out = Relation::default();
        out.seq_from(self, rhs);
        out
    }

    /// In-place composition: `self = a ; b`.
    pub fn seq_from(&mut self, a: &Relation, b: &Relation) {
        assert_eq!(a.n, b.n, "relation universes differ");
        self.reset(a.n);
        for x in 0..a.n {
            // self[x] = ⋃ { b[y] : (x,y) ∈ a }, one word-OR sweep per y.
            let row = &a.rows[x * a.words..(x + 1) * a.words];
            for (w, &word) in row.iter().enumerate() {
                let mut bits = word;
                while bits != 0 {
                    let y = w * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let (dst, src) = (x * self.words, y * b.words);
                    for k in 0..self.words {
                        self.rows[dst + k] |= b.rows[src + k];
                    }
                }
            }
        }
    }

    /// Inverse (`r^-1`).
    pub fn inverse(&self) -> Relation {
        let mut out = Relation::default();
        out.inverse_from(self);
        out
    }

    /// In-place inverse: `self = a^-1`.
    pub fn inverse_from(&mut self, a: &Relation) {
        self.reset(a.n);
        a.for_each_pair(|x, y| {
            self.rows[y * self.words + x / 64] |= 1 << (x % 64);
        });
    }

    /// Transitive closure (`r+`).
    pub fn transitive_closure(&self) -> Relation {
        let mut out = Relation::default();
        out.plus_from(self, &mut Relation::default());
        out
    }

    /// In-place transitive closure: `self = a+`, by repeated squaring to a
    /// fixpoint. `scratch` holds the intermediate products.
    pub fn plus_from(&mut self, a: &Relation, scratch: &mut Relation) {
        self.copy_from(a);
        loop {
            scratch.seq_from(self, self);
            if !self.or_in_place(scratch) {
                return;
            }
        }
    }

    /// Reflexive-transitive closure (`r*`).
    pub fn reflexive_transitive_closure(&self) -> Relation {
        let mut out = Relation::default();
        out.star_from(self, &mut Relation::default());
        out
    }

    /// In-place reflexive-transitive closure: `self = a*`.
    pub fn star_from(&mut self, a: &Relation, scratch: &mut Relation) {
        self.plus_from(a, scratch);
        self.add_identity();
    }

    /// Optional closure (`r?` = r ∪ id).
    pub fn optional(&self) -> Relation {
        let mut out = Relation::default();
        out.opt_from(self);
        out
    }

    /// In-place optional closure: `self = a ∪ id`.
    pub fn opt_from(&mut self, a: &Relation) {
        self.copy_from(a);
        self.add_identity();
    }

    /// Restriction to pairs with source in `dom` and target in `rng`.
    pub fn restrict(&self, dom: &EventSet, rng: &EventSet) -> Relation {
        let mut out = Relation::default();
        out.restrict_from(self, dom, rng);
        out
    }

    /// In-place restriction: `self = { (a,b) ∈ src : a ∈ dom, b ∈ rng }`.
    /// Each kept row is ANDed against the range mask word by word.
    pub fn restrict_from(&mut self, src: &Relation, dom: &EventSet, rng: &EventSet) {
        self.reset(src.n);
        for a in 0..src.n {
            if !dom.contains(a) {
                continue;
            }
            let base = a * src.words;
            for w in 0..src.words {
                self.rows[base + w] = src.rows[base + w] & rng.word(w);
            }
        }
    }

    /// `true` if the relation contains no cycle (self-loops are cycles).
    pub fn is_acyclic(&self) -> bool {
        self.is_acyclic_with(&mut Vec::new(), &mut Vec::new())
    }

    /// [`Relation::is_acyclic`] with caller-owned scratch buffers, so a
    /// loop over many relations never reallocates. Both buffers are
    /// cleared and regrown as needed; their previous contents are ignored.
    ///
    /// Uses an iterative depth-first search with white/grey/black
    /// colouring; `stack` holds `(node, next successor to examine)`
    /// frames.
    pub fn is_acyclic_with(&self, colour: &mut Vec<u8>, stack: &mut Vec<(usize, usize)>) -> bool {
        const WHITE: u8 = 0;
        const GREY: u8 = 1;
        const BLACK: u8 = 2;
        colour.clear();
        colour.resize(self.n, WHITE);
        stack.clear();
        for start in 0..self.n {
            if colour[start] != WHITE {
                continue;
            }
            colour[start] = GREY;
            stack.push((start, 0));
            while let Some(&(node, frame_next)) = stack.last() {
                let mut next = frame_next;
                let mut pushed = false;
                while let Some(succ) = self.next_succ(node, next) {
                    next = succ + 1;
                    match colour[succ] {
                        GREY => return false,
                        WHITE => {
                            colour[succ] = GREY;
                            stack.last_mut().expect("frame exists").1 = next;
                            stack.push((succ, 0));
                            pushed = true;
                            break;
                        }
                        _ => {}
                    }
                }
                if !pushed {
                    colour[node] = BLACK;
                    stack.pop();
                }
            }
        }
        true
    }

    /// `true` if no pair `(a, a)` is present.
    pub fn is_irreflexive(&self) -> bool {
        (0..self.n).all(|i| !self.contains(i, i))
    }

    /// Finds one cycle, as the list of nodes along it (first node not
    /// repeated), or `None` if the relation is acyclic. Used to explain
    /// *why* a model forbids an execution.
    pub fn find_cycle(&self) -> Option<Vec<usize>> {
        // DFS with an explicit path stack.
        const WHITE: u8 = 0;
        const GREY: u8 = 1;
        const BLACK: u8 = 2;
        let mut colour = vec![WHITE; self.n];
        let mut path: Vec<usize> = Vec::new();

        fn dfs(
            rel: &Relation,
            node: usize,
            colour: &mut [u8],
            path: &mut Vec<usize>,
        ) -> Option<Vec<usize>> {
            colour[node] = GREY;
            path.push(node);
            for succ in 0..rel.n {
                if !rel.contains(node, succ) {
                    continue;
                }
                match colour[succ] {
                    GREY => {
                        // Cycle: the path suffix from succ's position.
                        let start = path
                            .iter()
                            .position(|&x| x == succ)
                            .expect("grey nodes are on the path");
                        return Some(path[start..].to_vec());
                    }
                    WHITE => {
                        if let Some(c) = dfs(rel, succ, colour, path) {
                            return Some(c);
                        }
                    }
                    _ => {}
                }
            }
            colour[node] = BLACK;
            path.pop();
            None
        }

        for s in 0..self.n {
            if colour[s] == WHITE {
                if let Some(c) = dfs(self, s, &mut colour, &mut path) {
                    return Some(c);
                }
            }
        }
        None
    }

    /// Like [`Relation::find_cycle`] but iterative and allocation-free
    /// in steady state: scratch buffers are caller-owned and the cycle
    /// comes back as its **edge list** in `out_edges` (cleared first).
    /// Returns `true` iff a cycle was found. The incremental evaluator
    /// caches the witness edges so the next node can confirm "still
    /// cyclic" by membership probes instead of a fresh search.
    pub fn find_cycle_with(
        &self,
        colour: &mut Vec<u8>,
        stack: &mut Vec<(usize, usize)>,
        out_edges: &mut Vec<(u32, u32)>,
    ) -> bool {
        const WHITE: u8 = 0;
        const GREY: u8 = 1;
        const BLACK: u8 = 2;
        out_edges.clear();
        colour.clear();
        colour.resize(self.n, WHITE);
        stack.clear();
        for start in 0..self.n {
            if colour[start] != WHITE {
                continue;
            }
            colour[start] = GREY;
            stack.push((start, 0));
            while let Some(&(node, frame_next)) = stack.last() {
                let mut next = frame_next;
                let mut pushed = false;
                while let Some(succ) = self.next_succ(node, next) {
                    next = succ + 1;
                    match colour[succ] {
                        GREY => {
                            // The stack *is* the grey path: the cycle
                            // runs from succ's frame to the top, plus
                            // the closing edge just probed.
                            let at = stack
                                .iter()
                                .position(|&(x, _)| x == succ)
                                .expect("grey nodes are on the stack");
                            for w in stack[at..].windows(2) {
                                out_edges.push((w[0].0 as u32, w[1].0 as u32));
                            }
                            out_edges.push((node as u32, succ as u32));
                            return true;
                        }
                        WHITE => {
                            colour[succ] = GREY;
                            stack.last_mut().expect("frame exists").1 = next;
                            stack.push((succ, 0));
                            pushed = true;
                            break;
                        }
                        _ => {}
                    }
                }
                if !pushed {
                    colour[node] = BLACK;
                    stack.pop();
                }
            }
        }
        false
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Relation(n={}, {:?})",
            self.n,
            self.iter_pairs().collect::<Vec<_>>()
        )
    }
}

/// Up to 64 same-universe relations evaluated together, one **bit-plane
/// lane** per relation.
///
/// Where [`Relation`] stores one bit per pair, `LaneRel` stores a `u64`
/// per pair: bit `l` of `planes[a * n + b]` says whether lane `l`'s
/// relation contains `(a, b)`. Every word operation below therefore
/// covers all 64 lanes at once — union, intersection, difference,
/// composition, closures and restriction cost the same word traffic as
/// 64 scalar evaluations would cost for *one*. This is the bit-plane
/// half of the batched evaluator ([`crate::plan::Plan::allows_batch`]):
/// sibling candidate executions that differ only in trailing rf/co
/// choices become lanes, and one plan pass judges them all.
///
/// Lanes past the batch's live count hold garbage (broadcast fills set
/// all 64 lanes); consumers mask verdicts with the live lane mask.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct LaneRel {
    n: usize,
    planes: Vec<u64>,
}

impl LaneRel {
    /// The empty lane relation (all lanes empty) over `n` events.
    pub fn empty(n: usize) -> Self {
        LaneRel {
            n,
            planes: vec![0; n * n],
        }
    }

    /// Universe size.
    pub fn universe(&self) -> usize {
        self.n
    }

    /// Reinitialises to all-lanes-empty over `n` events, reusing the
    /// allocation when the capacity suffices.
    pub fn reset(&mut self, n: usize) {
        self.n = n;
        self.planes.clear();
        self.planes.resize(n * n, 0);
    }

    /// Adds the pair `(a, b)` in lane `lane`.
    ///
    /// # Panics
    ///
    /// Panics if the pair is outside the universe or `lane >= 64`.
    pub fn add(&mut self, a: usize, b: usize, lane: usize) {
        assert!(
            a < self.n && b < self.n,
            "pair ({a},{b}) out of universe {}",
            self.n
        );
        assert!(lane < 64, "lane {lane} out of range");
        self.planes[a * self.n + b] |= 1 << lane;
    }

    /// ORs a whole lane mask into pair `(a, b)` — the bulk form of
    /// [`LaneRel::add`] used by axis-masked batch packing, where one
    /// edge is shared by every lane in `mask` and adding it per lane
    /// would cost a multiply and a bounds check each.
    pub fn or_pair(&mut self, a: usize, b: usize, mask: u64) {
        debug_assert!(
            a < self.n && b < self.n,
            "pair ({a}, {b}) out of universe {}",
            self.n
        );
        self.planes[a * self.n + b] |= mask;
    }

    /// The lane mask of pair `(a, b)`: which lanes contain it.
    pub fn lanes_of(&self, a: usize, b: usize) -> u64 {
        self.planes[a * self.n + b]
    }

    /// Membership test for one lane.
    pub fn contains(&self, a: usize, b: usize, lane: usize) -> bool {
        a < self.n && b < self.n && self.planes[a * self.n + b] & (1 << lane) != 0
    }

    /// Extracts lane `lane` as a scalar [`Relation`] (test/debug aid).
    pub fn lane(&self, lane: usize) -> Relation {
        let mut r = Relation::empty(self.n);
        for a in 0..self.n {
            for b in 0..self.n {
                if self.contains(a, b, lane) {
                    r.add(a, b);
                }
            }
        }
        r
    }

    /// Becomes a copy of `src`, reusing the allocation.
    pub fn copy_from(&mut self, src: &LaneRel) {
        self.n = src.n;
        self.planes.clear();
        self.planes.extend_from_slice(&src.planes);
    }

    /// Broadcasts a scalar relation into **all 64 lanes**: each pair of
    /// `src` gets the all-ones lane mask. Skeleton-derived relations are
    /// identical across a batch's candidates, so they are broadcast once
    /// per skeleton and shared by every batch.
    pub fn broadcast_from(&mut self, src: &Relation) {
        self.reset(src.universe());
        src.for_each_pair(|a, b| {
            self.planes[a * self.n + b] = !0;
        });
    }

    fn zip_from(&mut self, a: &LaneRel, b: &LaneRel, f: impl Fn(u64, u64) -> u64) {
        assert_eq!(a.n, b.n, "lane-relation universes differ");
        self.n = a.n;
        self.planes.clear();
        self.planes
            .extend(a.planes.iter().zip(&b.planes).map(|(&x, &y)| f(x, y)));
    }

    /// In-place lane union: `self = a ∪ b` in every lane.
    pub fn union_from(&mut self, a: &LaneRel, b: &LaneRel) {
        self.zip_from(a, b, |x, y| x | y);
    }

    /// In-place lane intersection: `self = a ∩ b` in every lane.
    pub fn inter_from(&mut self, a: &LaneRel, b: &LaneRel) {
        self.zip_from(a, b, |x, y| x & y);
    }

    /// In-place lane difference: `self = a \ b` in every lane.
    pub fn diff_from(&mut self, a: &LaneRel, b: &LaneRel) {
        self.zip_from(a, b, |x, y| x & !y);
    }

    /// In-place intersection with a scalar relation, lane-wise: keeps a
    /// pair's lane mask where `b` has the pair, zeroes it elsewhere. Used
    /// to derive `rfe`/`rfi`-style variants (overlay plane ∩ skeleton
    /// `ext`/`int`) without broadcasting `b` first.
    pub fn inter_rel_from(&mut self, a: &LaneRel, b: &Relation) {
        assert_eq!(a.n, b.universe(), "universes differ");
        self.reset(a.n);
        for x in 0..self.n {
            for y in 0..self.n {
                if b.contains(x, y) {
                    self.planes[x * self.n + y] = a.planes[x * self.n + y];
                }
            }
        }
    }

    /// ORs `rhs` into `self` lane-wise, reporting whether any lane gained
    /// a pair.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn or_in_place(&mut self, rhs: &LaneRel) -> bool {
        assert_eq!(self.n, rhs.n, "lane-relation universes differ");
        let mut changed = false;
        for (d, &s) in self.planes.iter_mut().zip(&rhs.planes) {
            let next = *d | s;
            changed |= next != *d;
            *d = next;
        }
        changed
    }

    /// In-place lane composition: `self = a ; b` in every lane. The
    /// sparse middle scan skips pairs dead in all lanes, so the cost
    /// tracks the populated pairs, not `n³`.
    pub fn seq_from(&mut self, a: &LaneRel, b: &LaneRel) {
        assert_eq!(a.n, b.n, "lane-relation universes differ");
        self.reset(a.n);
        let n = self.n;
        for x in 0..n {
            for y in 0..n {
                let m = a.planes[x * n + y];
                if m == 0 {
                    continue;
                }
                // (x,z) joins lane l iff (x,y) and (y,z) are both in l.
                let (dst, src) = (x * n, y * n);
                for z in 0..n {
                    self.planes[dst + z] |= m & b.planes[src + z];
                }
            }
        }
    }

    /// In-place lane inverse: `self = a⁻¹` in every lane.
    pub fn inverse_from(&mut self, a: &LaneRel) {
        self.reset(a.n);
        for x in 0..self.n {
            for y in 0..self.n {
                self.planes[y * self.n + x] = a.planes[x * self.n + y];
            }
        }
    }

    /// Adds the pair `(i, i)` in **every** lane, for the reflexive
    /// closures.
    pub fn add_identity(&mut self) {
        for i in 0..self.n {
            self.planes[i * self.n + i] = !0;
        }
    }

    /// In-place lane transitive closure: `self = a⁺` in every lane, by
    /// repeated squaring to a simultaneous fixpoint.
    pub fn plus_from(&mut self, a: &LaneRel, scratch: &mut LaneRel) {
        self.copy_from(a);
        loop {
            scratch.seq_from(self, self);
            if !self.or_in_place(scratch) {
                return;
            }
        }
    }

    /// In-place lane reflexive-transitive closure: `self = a*`.
    pub fn star_from(&mut self, a: &LaneRel, scratch: &mut LaneRel) {
        self.plus_from(a, scratch);
        self.add_identity();
    }

    /// In-place lane optional closure: `self = a ∪ id` in every lane.
    pub fn opt_from(&mut self, a: &LaneRel) {
        self.copy_from(a);
        self.add_identity();
    }

    /// In-place lane restriction to `dom × rng` (both scalar sets — sort
    /// filters are skeleton-derived and shared by all lanes).
    pub fn restrict_from(&mut self, src: &LaneRel, dom: &EventSet, rng: &EventSet) {
        self.reset(src.n);
        for a in 0..self.n {
            if !dom.contains(a) {
                continue;
            }
            let base = a * self.n;
            for b in 0..self.n {
                if rng.contains(b) {
                    self.planes[base + b] = src.planes[base + b];
                }
            }
        }
    }

    /// The lanes containing at least one pair (the per-lane `empty`
    /// check, inverted).
    pub fn nonempty_lanes(&self) -> u64 {
        self.planes.iter().fold(0, |m, &w| m | w)
    }

    /// The lanes containing a reflexive pair (the per-lane
    /// `irreflexive` check, inverted).
    pub fn reflexive_lanes(&self) -> u64 {
        (0..self.n).fold(0, |m, i| m | self.planes[i * self.n + i])
    }

    /// The lanes (among `live`) whose relation contains a cycle — the
    /// per-lane acyclicity check, all lanes per word op.
    ///
    /// Lane-parallel source elimination: `active[v]` holds the lanes in
    /// which node `v` has not yet been discharged. Each sweep keeps `v`
    /// active only in lanes where some active predecessor edge reaches it
    /// (`active[v] &= ⋃ᵤ planes[u→v] & active[u]`); nodes whose incoming
    /// support vanished are discharged, exactly like peeling sources from
    /// a topological sort, in every lane at once. At the fixpoint a lane
    /// retains an active node iff every one of its active nodes has an
    /// active predecessor — iff the lane contains a cycle (self-loops
    /// included). Each sweep costs `n²` word ops and the sweep count is
    /// bounded by the longest path, so the worst case matches 64 scalar
    /// DFS passes while typical (mostly id-ordered) relations drain in a
    /// few sweeps.
    pub fn cyclic_lanes(&self, live: u64, active: &mut Vec<u64>) -> u64 {
        active.clear();
        active.resize(self.n, live);
        loop {
            let mut changed = false;
            for v in 0..self.n {
                let cur = active[v];
                if cur == 0 {
                    continue;
                }
                let mut incoming = 0u64;
                for (u, &au) in active.iter().enumerate() {
                    incoming |= self.planes[u * self.n + v] & au;
                    if incoming == cur {
                        break;
                    }
                }
                let next = cur & incoming;
                if next != cur {
                    active[v] = next;
                    changed = true;
                }
            }
            if !changed {
                return active.iter().fold(0, |m, &a| m | a);
            }
        }
    }

    /// [`LaneRel::cyclic_lanes`] sweeping nodes in `order` instead of id
    /// order. The result is identical — chaotic descending iteration of
    /// a monotone operator from the top reaches the same greatest
    /// fixpoint in any order — but seeding with a maintained
    /// topological order of the definite-edge bound discharges long
    /// chains in one sweep instead of one node per sweep, which is how
    /// the lane verdicts share the incremental walk's cycle state.
    ///
    /// `order` must be a permutation of `0..universe()`.
    pub fn cyclic_lanes_seeded(&self, live: u64, active: &mut Vec<u64>, order: &[u32]) -> u64 {
        debug_assert_eq!(order.len(), self.n);
        active.clear();
        active.resize(self.n, live);
        loop {
            let mut changed = false;
            for &v32 in order {
                let v = v32 as usize;
                let cur = active[v];
                if cur == 0 {
                    continue;
                }
                let mut incoming = 0u64;
                for (u, &au) in active.iter().enumerate() {
                    incoming |= self.planes[u * self.n + v] & au;
                    if incoming == cur {
                        break;
                    }
                }
                let next = cur & incoming;
                if next != cur {
                    active[v] = next;
                    changed = true;
                }
            }
            if !changed {
                return active.iter().fold(0, |m, &a| m | a);
            }
        }
    }

    /// ORs lane-mask edges `(a, b, mask)` into the planes, journaling
    /// each changed plane word under `tag` — [`Relation::push_edges`]'s
    /// lane-parallel analog.
    pub fn push_edges(
        &mut self,
        journal: &mut EdgeJournal,
        tag: u32,
        edges: impl IntoIterator<Item = (usize, usize, u64)>,
    ) {
        for (a, b, mask) in edges {
            debug_assert!(a < self.n && b < self.n, "pair ({a},{b}) out of universe");
            let idx = a * self.n + b;
            let old = self.planes[idx];
            let new = old | mask;
            if new != old {
                journal.record(tag, idx as u32, old);
                self.planes[idx] = new;
            }
        }
    }

    /// Clears lane-mask edges `(a, b, mask)` from the planes,
    /// journaling each changed plane word under `tag`.
    pub fn clear_edges(
        &mut self,
        journal: &mut EdgeJournal,
        tag: u32,
        edges: impl IntoIterator<Item = (usize, usize, u64)>,
    ) {
        for (a, b, mask) in edges {
            debug_assert!(a < self.n && b < self.n, "pair ({a},{b}) out of universe");
            let idx = a * self.n + b;
            let old = self.planes[idx];
            let new = old & !mask;
            if new != old {
                journal.record(tag, idx as u32, old);
                self.planes[idx] = new;
            }
        }
    }

    /// Undoes every record after `mark` — see [`Relation::pop_to`];
    /// the same single-relation-journal caveat applies.
    pub fn pop_to(&mut self, journal: &mut EdgeJournal, mark: usize) {
        for &(_tag, idx, old) in journal.entries_from(mark).iter().rev() {
            self.planes[idx as usize] = old;
        }
        journal.truncate(mark);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_basics() {
        let mut s = EventSet::empty(70);
        assert!(s.is_empty());
        s.insert(0);
        s.insert(69);
        assert!(s.contains(0) && s.contains(69) && !s.contains(33));
        assert_eq!(s.len(), 2);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 69]);
        assert_eq!(EventSet::full(70).len(), 70);
    }

    #[test]
    fn full_set_masks_the_tail_word() {
        // Word-filled construction must not set ghost bits past n.
        for n in [0usize, 1, 63, 64, 65, 127, 128, 130] {
            let s = EventSet::full(n);
            assert_eq!(s.len(), n, "n={n}");
            assert_eq!(s.iter().collect::<Vec<_>>(), (0..n).collect::<Vec<_>>());
            assert!(!s.contains(n));
        }
    }

    #[test]
    fn full_relation_masks_the_tail_word() {
        for n in [0usize, 1, 63, 64, 65, 130] {
            let r = Relation::full(n);
            assert_eq!(r.len(), n * n, "n={n}");
            if n > 0 {
                assert!(r.contains(n - 1, n - 1));
                assert!(!r.contains(n - 1, n));
            }
        }
    }

    #[test]
    fn set_reset_reuses_and_clears() {
        let mut s = EventSet::full(100);
        s.reset(70);
        assert!(s.is_empty());
        assert_eq!(s.universe(), 70);
        s.insert(69);
        assert!(s.contains(69));
    }

    #[test]
    #[should_panic(expected = "out of universe")]
    fn set_insert_out_of_range() {
        EventSet::empty(3).insert(3);
    }

    #[test]
    fn relation_ops() {
        let a = Relation::from_pairs(4, [(0, 1), (1, 2)]);
        let b = Relation::from_pairs(4, [(1, 2), (2, 3)]);
        assert_eq!(a.union(&b).len(), 3);
        assert_eq!(a.inter(&b).len(), 1);
        assert!(a.inter(&b).contains(1, 2));
        assert_eq!(a.diff(&b).iter_pairs().collect::<Vec<_>>(), vec![(0, 1)]);
    }

    #[test]
    fn composition() {
        let a = Relation::from_pairs(4, [(0, 1), (1, 2)]);
        let b = Relation::from_pairs(4, [(1, 3), (2, 3)]);
        let c = a.seq(&b);
        assert_eq!(c.iter_pairs().collect::<Vec<_>>(), vec![(0, 3), (1, 3)]);
    }

    #[test]
    fn inverse_and_closures() {
        let a = Relation::from_pairs(4, [(0, 1), (1, 2)]);
        assert_eq!(
            a.inverse().iter_pairs().collect::<Vec<_>>(),
            vec![(1, 0), (2, 1)]
        );
        let t = a.transitive_closure();
        assert!(t.contains(0, 2));
        assert_eq!(t.len(), 3);
        let rt = a.reflexive_transitive_closure();
        assert!(rt.contains(3, 3));
        assert_eq!(a.optional().len(), 2 + 4);
    }

    #[test]
    fn in_place_ops_match_allocating_ones() {
        let a = Relation::from_pairs(70, [(0, 1), (1, 65), (65, 2), (69, 69)]);
        let b = Relation::from_pairs(70, [(1, 65), (2, 3), (65, 0)]);
        let dom = EventSet::from_iter_n(70, [0, 1, 65]);
        let rng = EventSet::from_iter_n(70, [2, 3, 65]);
        // Start from a dirty buffer of a different universe to prove the
        // reset path.
        let mut out = Relation::full(3);
        let mut scratch = Relation::full(5);
        out.union_from(&a, &b);
        assert_eq!(out, a.union(&b));
        out.inter_from(&a, &b);
        assert_eq!(out, a.inter(&b));
        out.diff_from(&a, &b);
        assert_eq!(out, a.diff(&b));
        out.seq_from(&a, &b);
        assert_eq!(out, a.seq(&b));
        out.inverse_from(&a);
        assert_eq!(out, a.inverse());
        out.plus_from(&a, &mut scratch);
        assert_eq!(out, a.transitive_closure());
        out.star_from(&a, &mut scratch);
        assert_eq!(out, a.reflexive_transitive_closure());
        out.opt_from(&a);
        assert_eq!(out, a.optional());
        out.restrict_from(&a, &dom, &rng);
        assert_eq!(out, a.restrict(&dom, &rng));
        out.copy_from(&b);
        assert_eq!(out, b);
    }

    #[test]
    fn or_in_place_reports_change() {
        let mut a = Relation::from_pairs(4, [(0, 1)]);
        let b = Relation::from_pairs(4, [(1, 2)]);
        assert!(a.or_in_place(&b));
        assert!(!a.or_in_place(&b), "second OR adds nothing");
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn for_each_pair_matches_iter_pairs() {
        let r = Relation::from_pairs(130, [(0, 129), (64, 64), (129, 0), (5, 63)]);
        let mut seen = Vec::new();
        r.for_each_pair(|a, b| seen.push((a, b)));
        assert_eq!(seen, r.iter_pairs().collect::<Vec<_>>());
    }

    #[test]
    fn acyclicity() {
        assert!(Relation::from_pairs(4, [(0, 1), (1, 2), (2, 3)]).is_acyclic());
        assert!(!Relation::from_pairs(4, [(0, 1), (1, 2), (2, 0)]).is_acyclic());
        assert!(!Relation::from_pairs(4, [(2, 2)]).is_acyclic());
        assert!(Relation::empty(0).is_acyclic());
        assert!(Relation::empty(4).is_acyclic());
        // Two disjoint components, one cyclic.
        assert!(!Relation::from_pairs(6, [(0, 1), (4, 5), (5, 4)]).is_acyclic());
    }

    #[test]
    fn acyclicity_with_reused_scratch() {
        let mut colour = Vec::new();
        let mut stack = Vec::new();
        let acyclic = Relation::from_pairs(70, [(0, 69), (69, 65)]);
        let cyclic = Relation::from_pairs(70, [(0, 69), (69, 0)]);
        for _ in 0..3 {
            assert!(acyclic.is_acyclic_with(&mut colour, &mut stack));
            assert!(!cyclic.is_acyclic_with(&mut colour, &mut stack));
        }
    }

    #[test]
    fn irreflexivity() {
        assert!(Relation::from_pairs(3, [(0, 1)]).is_irreflexive());
        assert!(!Relation::from_pairs(3, [(0, 1), (1, 1)]).is_irreflexive());
    }

    #[test]
    fn restriction() {
        let r = Relation::full(3);
        let dom = EventSet::from_iter_n(3, [0]);
        let rng = EventSet::from_iter_n(3, [1, 2]);
        let s = r.restrict(&dom, &rng);
        assert_eq!(s.iter_pairs().collect::<Vec<_>>(), vec![(0, 1), (0, 2)]);
    }

    /// A deterministic little family of lane relations: lane `l` of the
    /// result holds pairs `(a, b)` with `(a * 7 + b * 13 + l * seed) % m
    /// == 0` — enough variety to exercise every word path.
    fn lane_family(n: usize, lanes: usize, seed: usize, m: usize) -> (LaneRel, Vec<Relation>) {
        let mut lr = LaneRel::empty(n);
        let mut scalars = vec![Relation::empty(n); lanes];
        for (l, sc) in scalars.iter_mut().enumerate() {
            for a in 0..n {
                for b in 0..n {
                    if (a * 7 + b * 13 + l * seed).is_multiple_of(m) {
                        lr.add(a, b, l);
                        sc.add(a, b);
                    }
                }
            }
        }
        (lr, scalars)
    }

    #[test]
    fn lane_ops_match_scalar_ops_per_lane() {
        let n = 9;
        let lanes = 64;
        let (la, sa) = lane_family(n, lanes, 3, 5);
        let (lb, sb) = lane_family(n, lanes, 11, 4);
        let dom = EventSet::from_iter_n(n, (0..n).filter(|i| i % 2 == 0));
        let rng = EventSet::from_iter_n(n, (0..n).filter(|i| i % 3 != 0));
        let mut out = LaneRel::empty(1);
        let mut scratch = LaneRel::default();
        let mut scalar = Relation::default();
        let mut scalar_scratch = Relation::default();
        type LaneOp = fn(&mut LaneRel, &LaneRel, &LaneRel);
        type ScalarOp = fn(&mut Relation, &Relation, &Relation);
        let cases: &[(&str, LaneOp, ScalarOp)] = &[
            (
                "union",
                |o, a, b| o.union_from(a, b),
                |o, a, b| {
                    o.union_from(a, b);
                },
            ),
            (
                "inter",
                |o, a, b| o.inter_from(a, b),
                |o, a, b| {
                    o.inter_from(a, b);
                },
            ),
            (
                "diff",
                |o, a, b| o.diff_from(a, b),
                |o, a, b| {
                    o.diff_from(a, b);
                },
            ),
            (
                "seq",
                |o, a, b| o.seq_from(a, b),
                |o, a, b| {
                    o.seq_from(a, b);
                },
            ),
        ];
        for (name, lane_op, scalar_op) in cases {
            lane_op(&mut out, &la, &lb);
            for (l, (s_a, s_b)) in sa.iter().zip(&sb).enumerate() {
                scalar_op(&mut scalar, s_a, s_b);
                assert_eq!(out.lane(l), scalar, "{name}, lane {l}");
            }
        }
        out.inverse_from(&la);
        for (l, s) in sa.iter().enumerate() {
            assert_eq!(out.lane(l), s.inverse(), "inverse, lane {l}");
        }
        out.plus_from(&la, &mut scratch);
        for (l, s) in sa.iter().enumerate() {
            scalar.plus_from(s, &mut scalar_scratch);
            assert_eq!(out.lane(l), scalar, "plus, lane {l}");
        }
        out.star_from(&la, &mut scratch);
        for (l, s) in sa.iter().enumerate() {
            scalar.star_from(s, &mut scalar_scratch);
            assert_eq!(out.lane(l), scalar, "star, lane {l}");
        }
        out.opt_from(&la);
        for (l, s) in sa.iter().enumerate() {
            assert_eq!(out.lane(l), s.optional(), "opt, lane {l}");
        }
        out.restrict_from(&la, &dom, &rng);
        for (l, s) in sa.iter().enumerate() {
            assert_eq!(out.lane(l), s.restrict(&dom, &rng), "restrict, lane {l}");
        }
        out.inter_rel_from(&la, &sb[0]);
        for (l, s) in sa.iter().enumerate() {
            assert_eq!(out.lane(l), s.inter(&sb[0]), "inter_rel, lane {l}");
        }
    }

    #[test]
    fn lane_checks_match_scalar_checks_per_lane() {
        let n = 8;
        let lanes = 64;
        let (la, sa) = lane_family(n, lanes, 5, 6);
        let live = !0u64;
        let mut active = Vec::new();
        let cyclic = la.cyclic_lanes(live, &mut active);
        let nonempty = la.nonempty_lanes();
        let reflexive = la.reflexive_lanes();
        for (l, s) in sa.iter().enumerate() {
            assert_eq!(
                cyclic >> l & 1 == 1,
                !s.is_acyclic(),
                "cyclic verdict, lane {l}: {s:?}"
            );
            assert_eq!(nonempty >> l & 1 == 1, !s.is_empty(), "empty, lane {l}");
            assert_eq!(
                reflexive >> l & 1 == 1,
                !s.is_irreflexive(),
                "irreflexive, lane {l}"
            );
        }
    }

    #[test]
    fn cyclic_lanes_respects_liveness_and_mixed_lanes() {
        // Lane 0 a chain, lane 1 a 3-cycle, lane 2 a self-loop, lane 3
        // empty; lanes 4+ dead garbage (full graph — certainly cyclic).
        let mut lr = LaneRel::empty(4);
        for (a, b) in [(0, 1), (1, 2), (2, 3)] {
            lr.add(a, b, 0);
        }
        for (a, b) in [(0, 1), (1, 2), (2, 0)] {
            lr.add(a, b, 1);
        }
        lr.add(3, 3, 2);
        for a in 0..4 {
            for b in 0..4 {
                for l in 4..64 {
                    lr.add(a, b, l);
                }
            }
        }
        let mut active = Vec::new();
        let live = 0b1111;
        assert_eq!(lr.cyclic_lanes(live, &mut active) & live, 0b0110);
        // Dead lanes never resurface even though their planes are full.
        assert_eq!(lr.cyclic_lanes(0b0001, &mut active), 0);
    }

    #[test]
    fn broadcast_fills_all_lanes() {
        let r = Relation::from_pairs(5, [(0, 1), (4, 2)]);
        let mut lr = LaneRel::default();
        lr.broadcast_from(&r);
        for l in [0usize, 17, 63] {
            assert_eq!(lr.lane(l), r, "lane {l}");
        }
        assert_eq!(lr.nonempty_lanes(), !0);
    }

    #[test]
    fn lane_rel_reset_reuses_and_clears() {
        let mut lr = LaneRel::empty(3);
        lr.add(0, 1, 5);
        lr.reset(4);
        assert_eq!(lr.universe(), 4);
        assert_eq!(lr.nonempty_lanes(), 0);
        lr.add(3, 3, 63);
        assert!(lr.contains(3, 3, 63));
    }

    #[test]
    fn journal_push_pop_restores_relation() {
        let mut r = Relation::from_pairs(70, [(0, 1), (65, 2)]);
        let snapshot = r.clone();
        let mut j = EdgeJournal::new();
        let m0 = j.mark();
        r.push_edges(&mut j, 7, [(1, 65), (69, 69), (0, 1)]);
        assert!(r.contains(1, 65) && r.contains(69, 69));
        // Re-adding (0,1) recorded nothing: only two words changed.
        assert_eq!(j.len(), 2);
        let m1 = j.mark();
        r.clear_edges(&mut j, 7, [(0, 1), (2, 3)]);
        assert!(!r.contains(0, 1));
        r.pop_to(&mut j, m1);
        assert!(r.contains(0, 1), "inner pop restores the cleared edge");
        assert!(r.contains(1, 65), "inner pop keeps the outer push");
        r.pop_to(&mut j, m0);
        assert_eq!(r, snapshot, "outer pop restores the snapshot");
        assert!(j.is_empty());
    }

    #[test]
    fn journal_same_word_twice_restores_oldest() {
        // Two mutations of one word between marks: reversed replay must
        // land on the original value, not the intermediate one.
        let mut r = Relation::empty(4);
        let mut j = EdgeJournal::new();
        let m = j.mark();
        r.push_edges(&mut j, 0, [(1, 2)]);
        r.clear_edges(&mut j, 0, [(1, 2)]);
        r.push_edges(&mut j, 0, [(1, 3)]);
        r.pop_to(&mut j, m);
        assert_eq!(r, Relation::empty(4));
    }

    #[test]
    fn set_row_journaled_roundtrip() {
        let mut r = Relation::from_pairs(70, [(3, 0), (3, 69)]);
        let snapshot = r.clone();
        let mut j = EdgeJournal::new();
        let m = j.mark();
        let new_row = vec![0b1010u64, 0];
        r.set_row_journaled(&mut j, 1, 3, &new_row);
        assert!(r.contains(3, 1) && r.contains(3, 3));
        assert!(!r.contains(3, 0) && !r.contains(3, 69));
        r.pop_to(&mut j, m);
        assert_eq!(r, snapshot);
    }

    #[test]
    fn lane_rel_journal_push_pop_restores() {
        let (mut lr, _) = lane_family(6, 8, 3, 4);
        let snapshot = lr.clone();
        let mut j = EdgeJournal::new();
        let m = j.mark();
        lr.push_edges(&mut j, 2, [(0, 5, 0xff00), (5, 0, !0)]);
        lr.clear_edges(&mut j, 2, [(0, 0, 0xf)]);
        assert_eq!(lr.lanes_of(0, 5) & 0xff00, 0xff00);
        lr.pop_to(&mut j, m);
        assert_eq!(lr, snapshot);
    }

    #[test]
    fn seeded_cyclic_lanes_matches_unseeded() {
        let n = 8;
        let (la, _) = lane_family(n, 64, 5, 6);
        let mut active = Vec::new();
        let want = la.cyclic_lanes(!0, &mut active);
        let orders: Vec<Vec<u32>> = vec![
            (0..n as u32).collect(),
            (0..n as u32).rev().collect(),
            vec![3, 1, 4, 0, 5, 2, 7, 6],
        ];
        for order in orders {
            assert_eq!(
                la.cyclic_lanes_seeded(!0, &mut active, &order),
                want,
                "order {order:?}"
            );
        }
        assert_eq!(
            la.cyclic_lanes_seeded(0b101, &mut active, &[3, 1, 4, 0, 5, 2, 7, 6]),
            la.cyclic_lanes(0b101, &mut active)
        );
    }

    #[test]
    fn find_cycle_with_returns_real_edges() {
        let mut colour = Vec::new();
        let mut stack = Vec::new();
        let mut edges = Vec::new();
        let acyclic = Relation::from_pairs(70, [(0, 69), (69, 65)]);
        assert!(!acyclic.find_cycle_with(&mut colour, &mut stack, &mut edges));
        assert!(edges.is_empty());
        let cases = [
            Relation::from_pairs(70, [(0, 69), (69, 0)]),
            Relation::from_pairs(5, [(2, 2)]),
            Relation::from_pairs(6, [(0, 1), (1, 2), (2, 3), (3, 1), (4, 5)]),
        ];
        for rel in &cases {
            assert!(rel.find_cycle_with(&mut colour, &mut stack, &mut edges));
            assert!(!edges.is_empty());
            // Every reported edge is in the relation, and the edges
            // chain into a closed walk.
            for w in edges.windows(2) {
                assert_eq!(w[0].1, w[1].0, "edges chain");
            }
            assert_eq!(
                edges.last().unwrap().1,
                edges[0].0,
                "the walk closes: {edges:?}"
            );
            for &(a, b) in &edges {
                assert!(rel.contains(a as usize, b as usize), "({a},{b}) is real");
            }
        }
    }

    #[test]
    fn large_universe_crosses_word_boundaries() {
        let mut r = Relation::empty(130);
        r.add(0, 129);
        r.add(129, 64);
        assert!(r.contains(0, 129) && r.contains(129, 64));
        assert_eq!(r.len(), 2);
        let t = r.transitive_closure();
        assert!(t.contains(0, 64));
        assert!(t.is_acyclic());
    }
}
