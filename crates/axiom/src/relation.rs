//! Finite binary relations over event ids, as dense bit matrices, plus the
//! relational algebra the `.cat` language needs: union, intersection,
//! difference, composition, inverse, closures, sort filters and acyclicity.
//!
//! Litmus executions have at most a few dozen events, so an `n × n` bit
//! matrix (one `u64` row segment per 64 events) is both the simplest and the
//! fastest representation.

use std::fmt;

/// A set of event ids in `0..n`, as a bitset.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct EventSet {
    n: usize,
    bits: Vec<u64>,
}

impl EventSet {
    /// The empty set over a universe of `n` events.
    pub fn empty(n: usize) -> Self {
        EventSet {
            n,
            bits: vec![0; n.div_ceil(64)],
        }
    }

    /// The full set over a universe of `n` events.
    pub fn full(n: usize) -> Self {
        let mut s = EventSet::empty(n);
        for i in 0..n {
            s.insert(i);
        }
        s
    }

    /// Builds a set from the ids yielded by `iter`.
    pub fn from_iter_n(n: usize, iter: impl IntoIterator<Item = usize>) -> Self {
        let mut s = EventSet::empty(n);
        for i in iter {
            s.insert(i);
        }
        s
    }

    /// Universe size.
    pub fn universe(&self) -> usize {
        self.n
    }

    /// Inserts `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    pub fn insert(&mut self, i: usize) {
        assert!(i < self.n, "event id {i} out of universe {}", self.n);
        self.bits[i / 64] |= 1 << (i % 64);
    }

    /// Membership test.
    pub fn contains(&self, i: usize) -> bool {
        i < self.n && self.bits[i / 64] & (1 << (i % 64)) != 0
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` when no members.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// Iterates members in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.n).filter(|&i| self.contains(i))
    }
}

/// A binary relation over event ids `0..n`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Relation {
    n: usize,
    words: usize,
    rows: Vec<u64>,
}

impl Relation {
    /// The empty relation over `n` events.
    pub fn empty(n: usize) -> Self {
        let words = n.div_ceil(64).max(1);
        Relation {
            n,
            words,
            rows: vec![0; n * words],
        }
    }

    /// The identity relation over `n` events.
    pub fn identity(n: usize) -> Self {
        let mut r = Relation::empty(n);
        for i in 0..n {
            r.add(i, i);
        }
        r
    }

    /// The full (universal) relation over `n` events.
    pub fn full(n: usize) -> Self {
        let mut r = Relation::empty(n);
        for i in 0..n {
            for j in 0..n {
                r.add(i, j);
            }
        }
        r
    }

    /// Builds a relation from pairs.
    pub fn from_pairs(n: usize, pairs: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut r = Relation::empty(n);
        for (a, b) in pairs {
            r.add(a, b);
        }
        r
    }

    /// Universe size.
    pub fn universe(&self) -> usize {
        self.n
    }

    /// Adds the pair `(a, b)`.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is outside the universe.
    pub fn add(&mut self, a: usize, b: usize) {
        assert!(
            a < self.n && b < self.n,
            "pair ({a},{b}) out of universe {}",
            self.n
        );
        self.rows[a * self.words + b / 64] |= 1 << (b % 64);
    }

    /// Membership test.
    pub fn contains(&self, a: usize, b: usize) -> bool {
        a < self.n && b < self.n && self.rows[a * self.words + b / 64] & (1 << (b % 64)) != 0
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.rows.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` when no pairs.
    pub fn is_empty(&self) -> bool {
        self.rows.iter().all(|&w| w == 0)
    }

    /// Iterates pairs in row-major order.
    pub fn iter_pairs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.n).flat_map(move |a| {
            (0..self.n)
                .filter(move |&b| self.contains(a, b))
                .map(move |b| (a, b))
        })
    }

    fn zip_with(&self, rhs: &Relation, f: impl Fn(u64, u64) -> u64) -> Relation {
        assert_eq!(self.n, rhs.n, "relation universes differ");
        Relation {
            n: self.n,
            words: self.words,
            rows: self
                .rows
                .iter()
                .zip(&rhs.rows)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Union.
    pub fn union(&self, rhs: &Relation) -> Relation {
        self.zip_with(rhs, |a, b| a | b)
    }

    /// Intersection.
    pub fn inter(&self, rhs: &Relation) -> Relation {
        self.zip_with(rhs, |a, b| a & b)
    }

    /// Difference (`self \ rhs`).
    pub fn diff(&self, rhs: &Relation) -> Relation {
        self.zip_with(rhs, |a, b| a & !b)
    }

    /// Relational composition `self ; rhs`.
    pub fn seq(&self, rhs: &Relation) -> Relation {
        assert_eq!(self.n, rhs.n, "relation universes differ");
        let mut out = Relation::empty(self.n);
        for a in 0..self.n {
            // out[a] = ⋃ { rhs[b] : (a,b) ∈ self }
            for b in 0..self.n {
                if self.contains(a, b) {
                    let (dst, src) = (a * self.words, b * self.words);
                    for w in 0..self.words {
                        out.rows[dst + w] |= rhs.rows[src + w];
                    }
                }
            }
        }
        out
    }

    /// Inverse (`r^-1`).
    pub fn inverse(&self) -> Relation {
        let mut out = Relation::empty(self.n);
        for (a, b) in self.iter_pairs() {
            out.add(b, a);
        }
        out
    }

    /// Transitive closure (`r+`).
    pub fn transitive_closure(&self) -> Relation {
        let mut out = self.clone();
        // Floyd–Warshall on bits: via repeated squaring until fixpoint.
        loop {
            let next = out.union(&out.seq(&out));
            if next == out {
                return out;
            }
            out = next;
        }
    }

    /// Reflexive-transitive closure (`r*`).
    pub fn reflexive_transitive_closure(&self) -> Relation {
        self.transitive_closure().union(&Relation::identity(self.n))
    }

    /// Optional closure (`r?` = r ∪ id).
    pub fn optional(&self) -> Relation {
        self.union(&Relation::identity(self.n))
    }

    /// Restriction to pairs with source in `dom` and target in `rng`.
    pub fn restrict(&self, dom: &EventSet, rng: &EventSet) -> Relation {
        let mut out = Relation::empty(self.n);
        for (a, b) in self.iter_pairs() {
            if dom.contains(a) && rng.contains(b) {
                out.add(a, b);
            }
        }
        out
    }

    /// `true` if the relation contains no cycle (self-loops are cycles).
    ///
    /// Uses an iterative depth-first search with white/grey/black colouring.
    pub fn is_acyclic(&self) -> bool {
        const WHITE: u8 = 0;
        const GREY: u8 = 1;
        const BLACK: u8 = 2;
        let mut colour = vec![WHITE; self.n];
        // Stack frames: (node, next successor index to examine).
        let mut stack: Vec<(usize, usize)> = Vec::new();
        for start in 0..self.n {
            if colour[start] != WHITE {
                continue;
            }
            colour[start] = GREY;
            stack.push((start, 0));
            while let Some(&(node, frame_next)) = stack.last() {
                let mut next = frame_next;
                let mut pushed = false;
                while next < self.n {
                    let succ = next;
                    next += 1;
                    if self.contains(node, succ) {
                        match colour[succ] {
                            GREY => return false,
                            WHITE => {
                                colour[succ] = GREY;
                                stack.last_mut().expect("frame exists").1 = next;
                                stack.push((succ, 0));
                                pushed = true;
                                break;
                            }
                            _ => {}
                        }
                    }
                }
                if !pushed {
                    colour[node] = BLACK;
                    stack.pop();
                }
            }
        }
        true
    }

    /// `true` if no pair `(a, a)` is present.
    pub fn is_irreflexive(&self) -> bool {
        (0..self.n).all(|i| !self.contains(i, i))
    }

    /// Finds one cycle, as the list of nodes along it (first node not
    /// repeated), or `None` if the relation is acyclic. Used to explain
    /// *why* a model forbids an execution.
    pub fn find_cycle(&self) -> Option<Vec<usize>> {
        // DFS with an explicit path stack.
        const WHITE: u8 = 0;
        const GREY: u8 = 1;
        const BLACK: u8 = 2;
        let mut colour = vec![WHITE; self.n];
        let mut path: Vec<usize> = Vec::new();

        fn dfs(
            rel: &Relation,
            node: usize,
            colour: &mut [u8],
            path: &mut Vec<usize>,
        ) -> Option<Vec<usize>> {
            colour[node] = GREY;
            path.push(node);
            for succ in 0..rel.n {
                if !rel.contains(node, succ) {
                    continue;
                }
                match colour[succ] {
                    GREY => {
                        // Cycle: the path suffix from succ's position.
                        let start = path
                            .iter()
                            .position(|&x| x == succ)
                            .expect("grey nodes are on the path");
                        return Some(path[start..].to_vec());
                    }
                    WHITE => {
                        if let Some(c) = dfs(rel, succ, colour, path) {
                            return Some(c);
                        }
                    }
                    _ => {}
                }
            }
            colour[node] = BLACK;
            path.pop();
            None
        }

        for s in 0..self.n {
            if colour[s] == WHITE {
                if let Some(c) = dfs(self, s, &mut colour, &mut path) {
                    return Some(c);
                }
            }
        }
        None
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Relation(n={}, {:?})",
            self.n,
            self.iter_pairs().collect::<Vec<_>>()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_basics() {
        let mut s = EventSet::empty(70);
        assert!(s.is_empty());
        s.insert(0);
        s.insert(69);
        assert!(s.contains(0) && s.contains(69) && !s.contains(33));
        assert_eq!(s.len(), 2);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 69]);
        assert_eq!(EventSet::full(70).len(), 70);
    }

    #[test]
    #[should_panic(expected = "out of universe")]
    fn set_insert_out_of_range() {
        EventSet::empty(3).insert(3);
    }

    #[test]
    fn relation_ops() {
        let a = Relation::from_pairs(4, [(0, 1), (1, 2)]);
        let b = Relation::from_pairs(4, [(1, 2), (2, 3)]);
        assert_eq!(a.union(&b).len(), 3);
        assert_eq!(a.inter(&b).len(), 1);
        assert!(a.inter(&b).contains(1, 2));
        assert_eq!(a.diff(&b).iter_pairs().collect::<Vec<_>>(), vec![(0, 1)]);
    }

    #[test]
    fn composition() {
        let a = Relation::from_pairs(4, [(0, 1), (1, 2)]);
        let b = Relation::from_pairs(4, [(1, 3), (2, 3)]);
        let c = a.seq(&b);
        assert_eq!(c.iter_pairs().collect::<Vec<_>>(), vec![(0, 3), (1, 3)]);
    }

    #[test]
    fn inverse_and_closures() {
        let a = Relation::from_pairs(4, [(0, 1), (1, 2)]);
        assert_eq!(
            a.inverse().iter_pairs().collect::<Vec<_>>(),
            vec![(1, 0), (2, 1)]
        );
        let t = a.transitive_closure();
        assert!(t.contains(0, 2));
        assert_eq!(t.len(), 3);
        let rt = a.reflexive_transitive_closure();
        assert!(rt.contains(3, 3));
        assert_eq!(a.optional().len(), 2 + 4);
    }

    #[test]
    fn acyclicity() {
        assert!(Relation::from_pairs(4, [(0, 1), (1, 2), (2, 3)]).is_acyclic());
        assert!(!Relation::from_pairs(4, [(0, 1), (1, 2), (2, 0)]).is_acyclic());
        assert!(!Relation::from_pairs(4, [(2, 2)]).is_acyclic());
        assert!(Relation::empty(0).is_acyclic());
        assert!(Relation::empty(4).is_acyclic());
        // Two disjoint components, one cyclic.
        assert!(!Relation::from_pairs(6, [(0, 1), (4, 5), (5, 4)]).is_acyclic());
    }

    #[test]
    fn irreflexivity() {
        assert!(Relation::from_pairs(3, [(0, 1)]).is_irreflexive());
        assert!(!Relation::from_pairs(3, [(0, 1), (1, 1)]).is_irreflexive());
    }

    #[test]
    fn restriction() {
        let r = Relation::full(3);
        let dom = EventSet::from_iter_n(3, [0]);
        let rng = EventSet::from_iter_n(3, [1, 2]);
        let s = r.restrict(&dom, &rng);
        assert_eq!(s.iter_pairs().collect::<Vec<_>>(), vec![(0, 1), (0, 2)]);
    }

    #[test]
    fn large_universe_crosses_word_boundaries() {
        let mut r = Relation::empty(130);
        r.add(0, 129);
        r.add(129, 64);
        assert!(r.contains(0, 129) && r.contains(129, 64));
        assert_eq!(r.len(), 2);
        let t = r.transitive_closure();
        assert!(t.contains(0, 64));
        assert!(t.is_acyclic());
    }
}
