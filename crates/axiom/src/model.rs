//! The [`Model`] trait and the `.cat`-backed [`CatModel`] implementation.
//!
//! Concrete models (the paper's PTX model, SC, TSO, RMO, the operational
//! baseline) live in the `weakgpu-models` crate; this module provides the
//! machinery plus a minimal [`sc_model`] used in documentation and tests.
//!
//! A [`CatModel`] compiles its `.cat` source into a reusable
//! [`Plan`] at construction; verdicts are evaluated
//! through the plan, allocation-free when callers thread a shared
//! [`EvalContext`] via [`Model::allows_with`]. The original tree-walking
//! interpreter ([`CatProgram::check`]) is retained as the
//! differential-testing oracle ([`CatModel::allows_tree_walk`]).

use crate::cat::{CatError, CatProgram, CheckOutcome};
use crate::exec::Execution;
pub use crate::exec::RmwAtomicity;
use crate::plan::{EvalContext, Plan};
use crate::skeleton::{ExecutionView, LaneMask, OverlayBatch, PartialView};

/// A memory consistency model: a predicate on candidate executions
/// (paper Sec. 5.2).
pub trait Model {
    /// Human-readable model name.
    fn name(&self) -> &str;

    /// `true` iff the model allows this execution.
    fn allows(&self, exec: &Execution) -> bool;

    /// [`Model::allows`] with a caller-owned [`EvalContext`], so hot
    /// loops (candidate enumeration, sweeps) reuse one arena across
    /// executions. The default ignores the context and calls `allows`;
    /// plan-backed models override it with the allocation-free path.
    fn allows_with(&self, ctx: &mut EvalContext, exec: &Execution) -> bool {
        let _ = ctx;
        self.allows(exec)
    }

    /// The verdict on a streamed skeleton/overlay candidate
    /// ([`ExecutionView`]), the form the streaming enumerator hands out.
    /// The default materialises an owned [`Execution`] and defers to
    /// [`Model::allows_with`] — correct for any model; plan-backed
    /// models override it to evaluate the view directly, refilling only
    /// rf/co-derived base relations per candidate.
    fn allows_view(&self, ctx: &mut EvalContext, view: &ExecutionView<'_>) -> bool {
        self.allows_with(ctx, &view.to_execution())
    }

    /// Three-valued verdict on a *partially* committed candidate: the
    /// conflict-driven cutoff of the pruned enumerator
    /// ([`crate::enumerate::for_each_execution_pruned`]). `Some(v)`
    /// asserts that **every** concrete extension of `partial`'s open rf
    /// slots and coherence axes gets verdict `v`; `None` means "cannot
    /// tell, keep descending". The default returns `None` — always
    /// sound, never prunes — so third-party models degrade to per-leaf
    /// evaluation; plan-backed models override it with the interval
    /// evaluation of [`Plan::check_partial_view`].
    fn partial_verdict(&self, ctx: &mut EvalContext, partial: &PartialView<'_>) -> Option<bool> {
        let _ = (ctx, partial);
        None
    }

    /// Judges up to 64 sibling candidates packed into an
    /// [`OverlayBatch`] in one pass: `Some(mask)` with bit `i` set iff
    /// lane `i`'s candidate is allowed. The default returns `None` —
    /// "no batched path, judge each lane individually" — so third-party
    /// models degrade gracefully to per-leaf [`Model::allows_view`]
    /// calls; plan-backed models override it with the bit-plane
    /// evaluation of [`Plan::allows_batch`]. `view` borrows the batch's
    /// skeleton (its overlay contents are unspecified).
    fn allows_batch(
        &self,
        ctx: &mut EvalContext,
        view: &ExecutionView<'_>,
        batch: &OverlayBatch,
    ) -> Option<LaneMask> {
        let _ = (ctx, view, batch);
        None
    }
}

/// Models pass through [`std::sync::Arc`], so registry-shared models
/// (`weakgpu-models`' lazy statics) can be used anywhere a model is
/// expected, including as `&dyn Model`.
impl<M: Model + ?Sized> Model for std::sync::Arc<M> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn allows(&self, exec: &Execution) -> bool {
        (**self).allows(exec)
    }

    fn allows_with(&self, ctx: &mut EvalContext, exec: &Execution) -> bool {
        (**self).allows_with(ctx, exec)
    }

    fn allows_view(&self, ctx: &mut EvalContext, view: &ExecutionView<'_>) -> bool {
        (**self).allows_view(ctx, view)
    }

    fn partial_verdict(&self, ctx: &mut EvalContext, partial: &PartialView<'_>) -> Option<bool> {
        (**self).partial_verdict(ctx, partial)
    }

    fn allows_batch(
        &self,
        ctx: &mut EvalContext,
        view: &ExecutionView<'_>,
        batch: &OverlayBatch,
    ) -> Option<LaneMask> {
        (**self).allows_batch(ctx, view, batch)
    }
}

/// A model defined by a `.cat` program plus an RMW-atomicity mode.
///
/// ```
/// use weakgpu_axiom::{CatModel, RmwAtomicity};
///
/// let sc = CatModel::new("sc", "acyclic (po | rf | co | fr) as sc")
///     .unwrap()
///     .with_rmw_atomicity(RmwAtomicity::Full);
/// assert_eq!(weakgpu_axiom::Model::name(&sc), "sc");
/// ```
#[derive(Clone, Debug)]
pub struct CatModel {
    name: String,
    program: CatProgram,
    plan: Plan,
    rmw: RmwAtomicity,
}

impl CatModel {
    /// Parses `src` as a `.cat` program, compiles it into an evaluation
    /// [`Plan`], and wraps both as a model with
    /// [`RmwAtomicity::AmongAtomics`] (the PTX default).
    ///
    /// # Errors
    ///
    /// Returns the underlying [`CatError`] if `src` does not parse or
    /// does not compile (e.g. applies a relation as a function).
    pub fn new(name: impl Into<String>, src: &str) -> Result<Self, CatError> {
        let program = CatProgram::parse(src)?;
        let plan = Plan::compile(&program)?;
        Ok(CatModel {
            name: name.into(),
            program,
            plan,
            rmw: RmwAtomicity::AmongAtomics,
        })
    }

    /// Sets the RMW-atomicity mode.
    pub fn with_rmw_atomicity(mut self, rmw: RmwAtomicity) -> Self {
        self.rmw = rmw;
        self
    }

    /// The underlying program.
    pub fn program(&self) -> &CatProgram {
        &self.program
    }

    /// The compiled evaluation plan.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// The RMW-atomicity mode.
    pub fn rmw_atomicity(&self) -> RmwAtomicity {
        self.rmw
    }

    /// Evaluates all named checks on `exec` (without the RMW side
    /// condition) — the full-outcome mode used by `render`/diagnostics.
    ///
    /// # Errors
    ///
    /// Returns a [`CatError`] if the program references unbound relations.
    pub fn check(&self, exec: &Execution) -> Result<Vec<CheckOutcome>, CatError> {
        self.check_with(&mut EvalContext::new(), exec)
    }

    /// [`CatModel::check`] with a caller-owned [`EvalContext`].
    ///
    /// # Errors
    ///
    /// See [`CatModel::check`].
    pub fn check_with(
        &self,
        ctx: &mut EvalContext,
        exec: &Execution,
    ) -> Result<Vec<CheckOutcome>, CatError> {
        self.plan.check_exec(ctx, exec)
    }

    /// The fast path: the RMW side condition plus the compiled plan's
    /// cheapest-first, short-circuiting check evaluation, reusing `ctx`'s
    /// buffers. This is what [`Model::allows_with`] resolves to.
    ///
    /// # Panics
    ///
    /// Panics if the `.cat` program references relations the execution
    /// does not define — a defect in the model source, not in the
    /// execution under test.
    pub fn allows_with(&self, ctx: &mut EvalContext, exec: &Execution) -> bool {
        if !exec.rmw_atomicity_holds(self.rmw) {
            return false;
        }
        self.plan
            .allows_exec(ctx, exec)
            .unwrap_or_else(|e| panic!("model {:?} failed to evaluate: {e}", self.name))
    }

    /// The streamed form of [`CatModel::allows_with`]: the RMW side
    /// condition evaluated against the overlay's coherence orders, then
    /// the compiled plan over the view — skeleton-derived relations and
    /// registers are reused across all of a skeleton's candidates.
    ///
    /// # Panics
    ///
    /// Panics if the `.cat` program references relations the execution
    /// layer does not define — a defect in the model source.
    pub fn allows_view(&self, ctx: &mut EvalContext, view: &ExecutionView<'_>) -> bool {
        if !view.rmw_atomicity_holds(self.rmw) {
            return false;
        }
        self.plan
            .allows_view(ctx, view)
            .unwrap_or_else(|e| panic!("model {:?} failed to evaluate: {e}", self.name))
    }

    /// Three-valued verdict on a partially committed candidate: the RMW
    /// side condition and the compiled plan's interval evaluation
    /// ([`Plan::check_partial_view`]), combined as a three-valued AND —
    /// a definite failure of either forces `Some(false)` for the whole
    /// subtree, `Some(true)` needs both definitely passing.
    ///
    /// # Panics
    ///
    /// Panics if the `.cat` program references relations the execution
    /// layer does not define — a defect in the model source.
    pub fn partial_verdict(
        &self,
        ctx: &mut EvalContext,
        partial: &PartialView<'_>,
    ) -> Option<bool> {
        let rmw = partial.rmw_atomicity_partial(self.rmw);
        if rmw == Some(false) {
            return Some(false);
        }
        let plan = self
            .plan
            .check_partial_view(ctx, partial)
            .unwrap_or_else(|e| panic!("model {:?} failed to evaluate: {e}", self.name));
        match (rmw, plan) {
            (_, Some(false)) => Some(false),
            (Some(true), Some(true)) => Some(true),
            _ => None,
        }
    }

    /// The batched form of [`CatModel::allows_view`]: the RMW side
    /// condition (precomputed per lane by the batch at pack time) ANDed
    /// with the compiled plan's bit-plane evaluation
    /// ([`Plan::allows_batch`]). When every lane already fails the RMW
    /// condition the plan is not evaluated at all.
    ///
    /// # Panics
    ///
    /// Panics if the `.cat` program references relations the execution
    /// layer does not define — a defect in the model source.
    pub fn allows_batch(
        &self,
        ctx: &mut EvalContext,
        view: &ExecutionView<'_>,
        batch: &OverlayBatch,
    ) -> LaneMask {
        let rmw = batch.rmw_mask(self.rmw).bits() & batch.live_mask().bits();
        if rmw == 0 {
            return LaneMask::EMPTY;
        }
        let plan = self
            .plan
            .allows_batch(ctx, view, batch)
            .unwrap_or_else(|e| panic!("model {:?} failed to evaluate: {e}", self.name));
        LaneMask::from_bits(rmw & plan.bits())
    }

    /// The legacy tree-walking evaluation of the same verdict (RMW side
    /// condition plus [`CatProgram::allows`] over
    /// [`Execution::base_relations`]). Retained purely as the
    /// differential-testing oracle for the compiled plan; use
    /// [`Model::allows`] everywhere else.
    ///
    /// # Errors
    ///
    /// Returns a [`CatError`] for unbound relations.
    pub fn allows_tree_walk(&self, exec: &Execution) -> Result<bool, CatError> {
        if !exec.rmw_atomicity_holds(self.rmw) {
            return Ok(false);
        }
        let base = exec.base_relations();
        self.program
            .allows(&base, &exec.read_set(), &exec.write_set())
    }

    /// Tree-walking [`CatModel::check`] (without the RMW side condition):
    /// the full-outcome differential oracle.
    ///
    /// # Errors
    ///
    /// Returns a [`CatError`] for unbound relations.
    pub fn check_tree_walk(&self, exec: &Execution) -> Result<Vec<CheckOutcome>, CatError> {
        let base = exec.base_relations();
        self.program
            .check(&base, &exec.read_set(), &exec.write_set())
    }
}

impl Model for CatModel {
    fn name(&self) -> &str {
        &self.name
    }

    /// # Panics
    ///
    /// Panics if the `.cat` program references relations that are not in
    /// the base environment — a defect in the model source, not in the
    /// execution under test.
    fn allows(&self, exec: &Execution) -> bool {
        self.allows_with(&mut EvalContext::new(), exec)
    }

    fn allows_with(&self, ctx: &mut EvalContext, exec: &Execution) -> bool {
        CatModel::allows_with(self, ctx, exec)
    }

    fn allows_view(&self, ctx: &mut EvalContext, view: &ExecutionView<'_>) -> bool {
        CatModel::allows_view(self, ctx, view)
    }

    fn partial_verdict(&self, ctx: &mut EvalContext, partial: &PartialView<'_>) -> Option<bool> {
        CatModel::partial_verdict(self, ctx, partial)
    }

    fn allows_batch(
        &self,
        ctx: &mut EvalContext,
        view: &ExecutionView<'_>,
        batch: &OverlayBatch,
    ) -> Option<LaneMask> {
        Some(CatModel::allows_batch(self, ctx, view, batch))
    }
}

/// A plain sequential-consistency model: `acyclic (po | rf | co | fr)`,
/// with full RMW atomicity.
pub fn sc_model() -> CatModel {
    CatModel::new("SC", "let com = rf | co | fr\nacyclic (po | com) as sc")
        .expect("embedded model parses")
        .with_rmw_atomicity(RmwAtomicity::Full)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::{enumerate_executions, model_outcomes, EnumConfig};
    use weakgpu_litmus::{corpus, ThreadScope};

    #[test]
    fn sc_forbids_all_weak_idioms() {
        let sc = sc_model();
        let cfg = EnumConfig::default();
        for test in [
            corpus::corr(),
            corpus::mp(ThreadScope::InterCta, None),
            corpus::sb(ThreadScope::InterCta, None),
            corpus::lb(ThreadScope::InterCta, None),
        ] {
            let out = model_outcomes(&test, &sc, &cfg).unwrap();
            assert!(
                !out.condition_witnessed,
                "SC must forbid the weak outcome of {}",
                test.name()
            );
            assert!(
                out.num_allowed > 0,
                "SC allows some execution of {}",
                test.name()
            );
        }
    }

    #[test]
    fn sc_allows_the_mp_strong_outcomes() {
        let sc = sc_model();
        let test = corpus::mp(ThreadScope::InterCta, None);
        let out = model_outcomes(&test, &sc, &EnumConfig::default()).unwrap();
        // r1=1 ∧ r2=1, r1=0 outcomes are all SC; only r1=1 ∧ r2=0 is weak.
        assert_eq!(out.allowed_outcomes.len(), 3);
        assert_eq!(out.all_outcomes.len(), 4);
    }

    #[test]
    fn cat_model_counts_candidate_verdicts() {
        let sc = sc_model();
        let test = corpus::corr();
        let cands = enumerate_executions(&test, &EnumConfig::default()).unwrap();
        let allowed = cands.iter().filter(|c| sc.allows(&c.execution)).count();
        assert!(allowed > 0 && allowed < cands.len());
    }

    #[test]
    fn check_reports_named_outcomes() {
        let sc = sc_model();
        let test = corpus::corr();
        let cands = enumerate_executions(&test, &EnumConfig::default()).unwrap();
        let outcomes = sc.check(&cands[0].execution).unwrap();
        assert_eq!(outcomes.len(), 1);
        assert_eq!(outcomes[0].name, "sc");
    }

    #[test]
    fn rmw_atomicity_mode_matters() {
        // dlb-lb uses CASes; under None vs Full the allowed sets differ in
        // general. This is a smoke test that the mode is plumbed through.
        let relaxed = CatModel::new("r", "acyclic rf & 0 as trivial")
            .unwrap()
            .with_rmw_atomicity(RmwAtomicity::None);
        let strict = CatModel::new("s", "acyclic rf & 0 as trivial")
            .unwrap()
            .with_rmw_atomicity(RmwAtomicity::Full);
        let test = corpus::dlb_lb(false);
        let out_relaxed = model_outcomes(&test, &relaxed, &EnumConfig::default()).unwrap();
        let out_strict = model_outcomes(&test, &strict, &EnumConfig::default()).unwrap();
        assert!(out_relaxed.num_allowed >= out_strict.num_allowed);
        assert!(out_strict.num_allowed > 0);
    }
}
