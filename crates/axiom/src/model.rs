//! The [`Model`] trait and the `.cat`-backed [`CatModel`] implementation.
//!
//! Concrete models (the paper's PTX model, SC, TSO, RMO, the operational
//! baseline) live in the `weakgpu-models` crate; this module provides the
//! machinery plus a minimal [`sc_model`] used in documentation and tests.

use crate::cat::{CatError, CatProgram, CheckOutcome};
use crate::exec::Execution;
pub use crate::exec::RmwAtomicity;

/// A memory consistency model: a predicate on candidate executions
/// (paper Sec. 5.2).
pub trait Model {
    /// Human-readable model name.
    fn name(&self) -> &str;

    /// `true` iff the model allows this execution.
    fn allows(&self, exec: &Execution) -> bool;
}

/// A model defined by a `.cat` program plus an RMW-atomicity mode.
///
/// ```
/// use weakgpu_axiom::{CatModel, RmwAtomicity};
///
/// let sc = CatModel::new("sc", "acyclic (po | rf | co | fr) as sc")
///     .unwrap()
///     .with_rmw_atomicity(RmwAtomicity::Full);
/// assert_eq!(weakgpu_axiom::Model::name(&sc), "sc");
/// ```
#[derive(Clone, Debug)]
pub struct CatModel {
    name: String,
    program: CatProgram,
    rmw: RmwAtomicity,
}

impl CatModel {
    /// Parses `src` as a `.cat` program and wraps it as a model, with
    /// [`RmwAtomicity::AmongAtomics`] (the PTX default).
    ///
    /// # Errors
    ///
    /// Returns the underlying [`CatError`] if `src` does not parse.
    pub fn new(name: impl Into<String>, src: &str) -> Result<Self, CatError> {
        Ok(CatModel {
            name: name.into(),
            program: CatProgram::parse(src)?,
            rmw: RmwAtomicity::AmongAtomics,
        })
    }

    /// Sets the RMW-atomicity mode.
    pub fn with_rmw_atomicity(mut self, rmw: RmwAtomicity) -> Self {
        self.rmw = rmw;
        self
    }

    /// The underlying program.
    pub fn program(&self) -> &CatProgram {
        &self.program
    }

    /// The RMW-atomicity mode.
    pub fn rmw_atomicity(&self) -> RmwAtomicity {
        self.rmw
    }

    /// Evaluates all named checks on `exec` (without the RMW side
    /// condition).
    ///
    /// # Errors
    ///
    /// Returns a [`CatError`] if the program references unbound relations.
    pub fn check(&self, exec: &Execution) -> Result<Vec<CheckOutcome>, CatError> {
        let base = exec.base_relations();
        self.program
            .check(&base, &exec.read_set(), &exec.write_set())
    }
}

impl Model for CatModel {
    fn name(&self) -> &str {
        &self.name
    }

    /// # Panics
    ///
    /// Panics if the `.cat` program references relations that are not in
    /// the base environment — a defect in the model source, not in the
    /// execution under test.
    fn allows(&self, exec: &Execution) -> bool {
        if !exec.rmw_atomicity_holds(self.rmw) {
            return false;
        }
        let base = exec.base_relations();
        self.program
            .allows(&base, &exec.read_set(), &exec.write_set())
            .unwrap_or_else(|e| panic!("model {:?} failed to evaluate: {e}", self.name))
    }
}

/// A plain sequential-consistency model: `acyclic (po | rf | co | fr)`,
/// with full RMW atomicity.
pub fn sc_model() -> CatModel {
    CatModel::new("SC", "let com = rf | co | fr\nacyclic (po | com) as sc")
        .expect("embedded model parses")
        .with_rmw_atomicity(RmwAtomicity::Full)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::{enumerate_executions, model_outcomes, EnumConfig};
    use weakgpu_litmus::{corpus, ThreadScope};

    #[test]
    fn sc_forbids_all_weak_idioms() {
        let sc = sc_model();
        let cfg = EnumConfig::default();
        for test in [
            corpus::corr(),
            corpus::mp(ThreadScope::InterCta, None),
            corpus::sb(ThreadScope::InterCta, None),
            corpus::lb(ThreadScope::InterCta, None),
        ] {
            let out = model_outcomes(&test, &sc, &cfg).unwrap();
            assert!(
                !out.condition_witnessed,
                "SC must forbid the weak outcome of {}",
                test.name()
            );
            assert!(
                out.num_allowed > 0,
                "SC allows some execution of {}",
                test.name()
            );
        }
    }

    #[test]
    fn sc_allows_the_mp_strong_outcomes() {
        let sc = sc_model();
        let test = corpus::mp(ThreadScope::InterCta, None);
        let out = model_outcomes(&test, &sc, &EnumConfig::default()).unwrap();
        // r1=1 ∧ r2=1, r1=0 outcomes are all SC; only r1=1 ∧ r2=0 is weak.
        assert_eq!(out.allowed_outcomes.len(), 3);
        assert_eq!(out.all_outcomes.len(), 4);
    }

    #[test]
    fn cat_model_counts_candidate_verdicts() {
        let sc = sc_model();
        let test = corpus::corr();
        let cands = enumerate_executions(&test, &EnumConfig::default()).unwrap();
        let allowed = cands.iter().filter(|c| sc.allows(&c.execution)).count();
        assert!(allowed > 0 && allowed < cands.len());
    }

    #[test]
    fn check_reports_named_outcomes() {
        let sc = sc_model();
        let test = corpus::corr();
        let cands = enumerate_executions(&test, &EnumConfig::default()).unwrap();
        let outcomes = sc.check(&cands[0].execution).unwrap();
        assert_eq!(outcomes.len(), 1);
        assert_eq!(outcomes[0].name, "sc");
    }

    #[test]
    fn rmw_atomicity_mode_matters() {
        // dlb-lb uses CASes; under None vs Full the allowed sets differ in
        // general. This is a smoke test that the mode is plumbed through.
        let relaxed = CatModel::new("r", "acyclic rf & 0 as trivial")
            .unwrap()
            .with_rmw_atomicity(RmwAtomicity::None);
        let strict = CatModel::new("s", "acyclic rf & 0 as trivial")
            .unwrap()
            .with_rmw_atomicity(RmwAtomicity::Full);
        let test = corpus::dlb_lb(false);
        let out_relaxed = model_outcomes(&test, &relaxed, &EnumConfig::default()).unwrap();
        let out_strict = model_outcomes(&test, &strict, &EnumConfig::default()).unwrap();
        assert!(out_relaxed.num_allowed >= out_strict.num_allowed);
        assert!(out_strict.num_allowed > 0);
    }
}
