//! Skeleton/overlay decomposition of candidate executions.
//!
//! All candidate executions of one thread-trace combination share their
//! events, program order and dependency relations; they differ only in
//! the read-from assignment and per-location coherence orders. The
//! materialising enumerator used to clone that shared structure into an
//! independent [`Execution`] per rf×co choice — the dominant cost of the
//! cache-miss verdict path once evaluation itself became allocation-free.
//!
//! This module splits a candidate into:
//!
//! * an immutable [`ExecutionSkeleton`] — events, dependencies and every
//!   communication-independent relation (`po`, `ext`, fences, scopes, …),
//!   built **once** per trace combination;
//! * a mutable [`Overlay`] — just the rf assignment and the chosen
//!   coherence orders, rewritten in place for each candidate (no heap
//!   allocation per candidate after the buffers have warmed);
//! * a borrowed [`ExecutionView`] pairing the two, which is what the
//!   streaming visitor ([`crate::enumerate::for_each_execution`]) hands
//!   to its callback and what [`crate::plan::Plan::allows_view`]
//!   evaluates — refilling only the rf/co-derived base relations per
//!   candidate while reusing everything skeleton-derived.
//!
//! Views are identified by process-unique stamps ([`ExecutionView::skeleton_id`],
//! [`ExecutionView::overlay_gen`]) so an [`crate::plan::EvalContext`] can
//! tell "same skeleton, new overlay" from "new skeleton" and invalidate
//! the minimum.

use std::collections::BTreeMap;
use std::mem;
use std::sync::atomic::{AtomicU64, Ordering};

use weakgpu_litmus::{FenceScope, FinalExpr, Loc, Outcome};

use crate::event::Event;
use crate::exec::{self, Execution, RmwAtomicity};
use crate::relation::{EventSet, LaneRel, Relation};
use crate::symbolic::ThreadTrace;

/// Process-unique stamps for skeletons, overlays and compiled plans.
static STAMP: AtomicU64 = AtomicU64::new(1);

/// The next process-unique stamp (never 0, so 0 can mean "none").
pub(crate) fn next_stamp() -> u64 {
    STAMP.fetch_add(1, Ordering::Relaxed)
}

/// How one observed [`FinalExpr`] resolves for candidates of a skeleton.
#[derive(Clone, Copy, Debug)]
enum ObservedSlot {
    /// The value is fixed by the trace combination (final register
    /// values, and locations no candidate writes).
    Fixed(i64),
    /// The final value of the location with this index in
    /// `ExecutionSkeleton::locs`: the last write of the overlay's chosen
    /// coherence order.
    Mem(usize),
}

/// The communication-independent part of a candidate execution: built
/// once per thread-trace combination and shared by every rf×co overlay.
/// The enumerator keeps **one** skeleton buffer and refills it in place
/// per combination (`fill`), so after the first
/// combination has sized the buffers, moving to the next allocates
/// almost nothing.
#[derive(Debug, Default)]
pub struct ExecutionSkeleton {
    id: u64,
    /// Stamp of the trace *combination* currently buffered: unlike `id`
    /// (which survives value-only changes so evaluation caches persist),
    /// this changes on every `fill` — key
    /// value-sensitive caches (observed outcomes) on it.
    combo_gen: u64,
    events: Vec<Event>,
    thread_cta: Vec<usize>,
    init: BTreeMap<Loc, i64>,
    addr: Relation,
    data: Relation,
    ctrl: Relation,
    rmw: Relation,
    po: Relation,
    po_loc: Relation,
    ext: Relation,
    int: Relation,
    same_loc: Relation,
    fence_cta: Relation,
    fence_gl: Relation,
    fence_sys: Relation,
    scope_cta: Relation,
    reads: EventSet,
    writes: EventSet,
    /// Written locations, in `BTreeMap` (sorted) order — the coherence
    /// axes of every overlay.
    locs: Vec<Loc>,
    /// Write event ids per location, aligned with `locs`.
    writes_by_loc: Vec<Vec<usize>>,
    /// Per event id: index into `locs` of its location, or `usize::MAX`
    /// when the event has no location or the location is never written.
    loc_idx: Vec<usize>,
    /// Initial memory value per written location, aligned with `locs`.
    init_of: Vec<i64>,
    /// The observed expressions, in `LitmusTest::observed` order.
    observed_exprs: Vec<FinalExpr>,
    /// How each observed expression resolves, aligned with
    /// `observed_exprs`.
    observed_slots: Vec<ObservedSlot>,
    /// Fill scratch: distinct locations of *any* event (first-seen
    /// order) and their membership bitmaps, `words` u64s per location.
    all_locs: Vec<Loc>,
    loc_mask_buf: Vec<u64>,
    /// Fill scratch: per thread, the `(offset, len)` of its contiguous
    /// event-id block.
    blocks: Vec<(usize, usize)>,
    /// Fill scratch: the incoming combination's events and dependency
    /// relations, built here first so they can be compared against the
    /// buffer's current contents before anything is overwritten.
    events_tmp: Vec<Event>,
    addr_tmp: Relation,
    data_tmp: Relation,
    ctrl_tmp: Relation,
    rmw_tmp: Relation,
}

/// `true` when two event lists agree on everything but the read/write
/// *values*: same ids, threads, program order, kinds, locations and
/// attributes. Combinations that differ only in values share every
/// skeleton relation (none of them reads a value), so the skeleton —
/// and with it an [`crate::plan::EvalContext`]'s cached
/// skeleton-derived registers — can be reused wholesale.
fn same_structure(a: &[Event], b: &[Event]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.id == y.id
                && x.tid == y.tid
                && x.po_idx == y.po_idx
                && x.kind == y.kind
                && x.loc == y.loc
                && x.cache == y.cache
                && x.volatile == y.volatile
                && x.atomic == y.atomic
                && x.instr_idx == y.instr_idx
        })
}

impl ExecutionSkeleton {
    /// An empty skeleton buffer, to be [`fill`](ExecutionSkeleton::fill)ed.
    pub(crate) fn empty() -> ExecutionSkeleton {
        ExecutionSkeleton::default()
    }

    /// Refills this buffer as the skeleton of one thread-trace
    /// combination: global event ids, dependency relations, and every
    /// communication-independent base relation. All buffers are reused.
    ///
    /// When the incoming combination differs from the buffered one only
    /// in event *values* (the common case — trace combinations of a
    /// branchless test vary read values, never structure), the skeleton
    /// **keeps its identity stamp**: every relation is value-independent
    /// and therefore still valid, and evaluation contexts keep their
    /// cached skeleton-derived registers too. Otherwise the buffer is
    /// rebuilt under a fresh stamp.
    /// Returns `true` when the buffer's identity (and with it every
    /// relation, set and table) was reused, `false` when it was rebuilt.
    pub(crate) fn fill(
        &mut self,
        traces: &[&ThreadTrace],
        thread_cta: &[usize],
        init: &BTreeMap<Loc, i64>,
        observed: &[FinalExpr],
    ) -> bool {
        self.events_tmp.clear();
        for tr in traces {
            for (i, e) in tr.events.iter().enumerate() {
                self.events_tmp.push(Event {
                    id: self.events_tmp.len(),
                    tid: tr.tid,
                    po_idx: i,
                    kind: e.kind,
                    loc: e.loc.clone(),
                    value: e.value,
                    cache: e.cache,
                    volatile: e.volatile,
                    atomic: e.atomic,
                    instr_idx: e.instr_idx,
                });
            }
        }
        let n = self.events_tmp.len();
        self.addr_tmp.reset(n);
        self.data_tmp.reset(n);
        self.ctrl_tmp.reset(n);
        self.rmw_tmp.reset(n);
        let mut off = 0usize;
        for tr in traces {
            for (i, e) in tr.events.iter().enumerate() {
                for &d in &e.addr_deps {
                    self.addr_tmp.add(off + d, off + i);
                }
                for &d in &e.data_deps {
                    self.data_tmp.add(off + d, off + i);
                }
                for &d in &e.ctrl_deps {
                    self.ctrl_tmp.add(off + d, off + i);
                }
            }
            for &(r, w) in &tr.rmw_pairs {
                self.rmw_tmp.add(off + r, off + w);
            }
            off += tr.events.len();
        }

        self.combo_gen = next_stamp();
        let structural_match = self.id != 0
            && self.thread_cta == thread_cta
            && self.init == *init
            && same_structure(&self.events, &self.events_tmp)
            && self.addr == self.addr_tmp
            && self.data == self.data_tmp
            && self.ctrl == self.ctrl_tmp
            && self.rmw == self.rmw_tmp;
        mem::swap(&mut self.events, &mut self.events_tmp);
        if structural_match {
            // Same structure, new values: relations, sets, location and
            // block tables all still hold; only the observable slots
            // (recomputed below) depend on values.
            self.refill_observed(traces, init, observed);
            return true;
        }

        self.id = next_stamp();
        mem::swap(&mut self.addr, &mut self.addr_tmp);
        mem::swap(&mut self.data, &mut self.data_tmp);
        mem::swap(&mut self.ctrl, &mut self.ctrl_tmp);
        mem::swap(&mut self.rmw, &mut self.rmw_tmp);
        let events = &self.events;

        self.thread_cta.clear();
        self.thread_cta.extend_from_slice(thread_cta);
        if self.init != *init {
            self.init.clone_from(init);
        }

        // A trace combination's event ids are contiguous per thread and
        // po-ordered within each block, so the pair relations reduce to
        // word-level range/mask fills instead of O(n²) pair loops.
        self.blocks.clear();
        self.blocks.resize(thread_cta.len(), (0, 0));
        let mut off = 0usize;
        for tr in traces {
            self.blocks[tr.tid] = (off, tr.events.len());
            off += tr.events.len();
        }
        let words = n.div_ceil(64).max(1);

        // Location membership bitmaps (all locations, read-only included).
        self.all_locs.clear();
        for e in events {
            if let Some(loc) = &e.loc {
                if !self.all_locs.contains(loc) {
                    self.all_locs.push(loc.clone());
                }
            }
        }
        self.loc_mask_buf.clear();
        self.loc_mask_buf.resize(self.all_locs.len() * words, 0);
        for e in events {
            if let Some(loc) = &e.loc {
                let li = self
                    .all_locs
                    .iter()
                    .position(|l| l == loc)
                    .expect("loc was recorded");
                self.loc_mask_buf[li * words + e.id / 64] |= 1 << (e.id % 64);
            }
        }

        self.po.reset(n);
        self.po_loc.reset(n);
        self.ext.reset(n);
        self.int.reset(n);
        self.same_loc.reset(n);
        for &(off, len) in &self.blocks {
            for a in off..off + len {
                self.po.or_range(a, a + 1, off + len);
                self.int.or_range(a, off, off + len);
                self.ext.or_range(a, 0, off);
                self.ext.or_range(a, off + len, n);
            }
        }
        for e in events {
            if let Some(loc) = &e.loc {
                let li = self
                    .all_locs
                    .iter()
                    .position(|l| l == loc)
                    .expect("loc was recorded");
                let mask = &self.loc_mask_buf[li * words..(li + 1) * words];
                self.same_loc.or_mask(e.id, mask);
                let (off, len) = self.blocks[e.tid];
                self.po_loc.or_mask_range(e.id, mask, e.id + 1, off + len);
            }
        }
        self.fence_cta.reset(n);
        self.fence_gl.reset(n);
        self.fence_sys.reset(n);
        for f in events {
            if let crate::event::EventKind::Fence(scope) = f.kind {
                let rel = match scope {
                    FenceScope::Cta => &mut self.fence_cta,
                    FenceScope::Gl => &mut self.fence_gl,
                    FenceScope::Sys => &mut self.fence_sys,
                };
                let (off, len) = self.blocks[f.tid];
                for a in off..f.id {
                    rel.or_range(a, f.id + 1, off + len);
                }
            }
        }
        self.scope_cta.reset(n);
        for &(off, len) in &self.blocks {
            for a in off..off + len {
                for (u, &(uoff, ulen)) in self.blocks.iter().enumerate() {
                    if thread_cta[events[a].tid] == thread_cta[u] {
                        self.scope_cta.or_range(a, uoff, uoff + ulen);
                    }
                }
            }
        }
        exec::read_set_into(events, &mut self.reads);
        exec::write_set_into(events, &mut self.writes);

        // Written locations and their writes, in sorted location order,
        // rebuilt without a temporary map: the distinct locations of a
        // litmus test are few, so insertion into the sorted `locs` list
        // is effectively free.
        self.locs.clear();
        for e in events {
            if e.is_write() {
                let loc = e.loc.as_ref().expect("writes have locations");
                if let Err(pos) = self.locs.binary_search(loc) {
                    self.locs.insert(pos, loc.clone());
                }
            }
        }
        // Grow-only: never drop inner buffers, so refills stay
        // allocation-free once warm. Only the first `locs.len()`
        // entries are live (`writes_per_loc` slices accordingly).
        if self.writes_by_loc.len() < self.locs.len() {
            self.writes_by_loc.resize(self.locs.len(), Vec::new());
        }
        for ws in &mut self.writes_by_loc[..self.locs.len()] {
            ws.clear();
        }
        for e in events {
            if e.is_write() {
                let loc = e.loc.as_ref().expect("writes have locations");
                let li = self.locs.binary_search(loc).expect("loc was inserted");
                self.writes_by_loc[li].push(e.id);
            }
        }
        self.loc_idx.clear();
        self.loc_idx.resize(n, usize::MAX);
        for e in events {
            if let Some(loc) = &e.loc {
                if let Ok(i) = self.locs.binary_search(loc) {
                    self.loc_idx[e.id] = i;
                }
            }
        }
        self.init_of.clear();
        self.init_of
            .extend(self.locs.iter().map(|l| init.get(l).copied().unwrap_or(0)));

        self.refill_observed(traces, init, observed);
        false
    }

    /// Recomputes the observable slots: the one piece of skeleton data
    /// that depends on trace *values* (final register contents).
    fn refill_observed(
        &mut self,
        traces: &[&ThreadTrace],
        init: &BTreeMap<Loc, i64>,
        observed: &[FinalExpr],
    ) {
        if self.observed_exprs != observed {
            self.observed_exprs.clear();
            self.observed_exprs.extend_from_slice(observed);
        }
        self.observed_slots.clear();
        self.observed_slots
            .extend(observed.iter().map(|expr| match expr {
                FinalExpr::Reg(tid, reg) => {
                    ObservedSlot::Fixed(traces.get(*tid).map(|tr| tr.final_int(reg)).unwrap_or(0))
                }
                FinalExpr::Mem(loc) => match self.locs.binary_search(loc) {
                    Ok(i) => ObservedSlot::Mem(i),
                    Err(_) => ObservedSlot::Fixed(init.get(loc).copied().unwrap_or(0)),
                },
            }));
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when there are no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The skeleton's process-unique stamp (see
    /// [`ExecutionView::skeleton_id`]).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The global event list (ids equal indices).
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Write event ids per written location, in sorted location order.
    pub(crate) fn writes_per_loc(&self) -> &[Vec<usize>] {
        &self.writes_by_loc[..self.locs.len()]
    }

    /// Index of event `e`'s location in the written-location table
    /// (`usize::MAX` when `e` has no location or it is never written).
    pub(crate) fn loc_index(&self, e: usize) -> usize {
        self.loc_idx[e]
    }

    /// Initial value of written location `li`.
    pub(crate) fn init_value(&self, li: usize) -> i64 {
        self.init_of[li]
    }
}

/// The per-candidate half of an execution: the rf assignment and one
/// coherence permutation per written location. One overlay is rewritten
/// in place for every candidate of a skeleton; after the first candidate
/// has sized the buffers, advancing to the next candidate allocates
/// nothing.
#[derive(Debug, Default)]
pub struct Overlay {
    gen: u64,
    /// Per event id: the rf source write (`None` = initial state); `None`
    /// for non-reads.
    rf: Vec<Option<usize>>,
    /// Chosen coherence order per location, aligned with the skeleton's
    /// written-location list. Grow-only (never truncated, so inner
    /// buffers keep their allocations across skeletons); only the first
    /// `co_active` entries are meaningful.
    co: Vec<Vec<usize>>,
    co_active: usize,
}

impl Overlay {
    /// A fresh overlay with empty buffers.
    pub fn new() -> Self {
        Overlay::default()
    }

    /// Re-sizes the buffers for `skel`, clearing previous contents.
    pub(crate) fn reset(&mut self, skel: &ExecutionSkeleton) {
        self.rf.clear();
        self.rf.resize(skel.len(), None);
        self.co_active = skel.locs.len();
        if self.co.len() < self.co_active {
            self.co.resize(self.co_active, Vec::new());
        }
        for order in &mut self.co[..self.co_active] {
            order.clear();
        }
    }

    /// Sets read `r`'s source.
    pub(crate) fn set_rf(&mut self, r: usize, src: Option<usize>) {
        self.rf[r] = src;
    }

    /// Sets location `loc_idx`'s coherence order.
    pub(crate) fn set_co(&mut self, loc_idx: usize, order: &[usize]) {
        self.co[loc_idx].clear();
        self.co[loc_idx].extend_from_slice(order);
    }

    /// Stamps this overlay as a new candidate, invalidating any cached
    /// rf/co-derived state in evaluation contexts.
    pub(crate) fn stamp(&mut self) {
        self.gen = next_stamp();
    }

    /// Read `r`'s current rf source (`None` = initial state).
    pub(crate) fn rf_of(&self, r: usize) -> Option<usize> {
        self.rf[r]
    }

    /// Location `loc_idx`'s current coherence order.
    pub(crate) fn co_order(&self, loc_idx: usize) -> &[usize] {
        &self.co[loc_idx]
    }
}

/// A set of lanes in a candidate batch: one bit per lane, lane `i` at
/// bit `i`. Lanes index the up-to-64 sibling candidates packed into an
/// [`OverlayBatch`]; masks flow through the bit-plane evaluation path
/// ([`crate::plan::Plan::allows_batch`]) as plain `u64` words, with this
/// newtype marking the API boundaries.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct LaneMask(u64);

impl LaneMask {
    /// The empty lane set.
    pub const EMPTY: LaneMask = LaneMask(0);

    /// The mask with the low `lanes` bits set (`lanes <= 64`).
    pub fn all(lanes: usize) -> LaneMask {
        debug_assert!(lanes <= 64);
        if lanes >= 64 {
            LaneMask(!0)
        } else {
            LaneMask((1u64 << lanes) - 1)
        }
    }

    /// Wraps a raw bit mask.
    pub fn from_bits(bits: u64) -> LaneMask {
        LaneMask(bits)
    }

    /// The raw bit mask.
    pub fn bits(self) -> u64 {
        self.0
    }

    /// `true` iff lane `lane` is in the set.
    pub fn contains(self, lane: usize) -> bool {
        lane < 64 && (self.0 >> lane) & 1 != 0
    }

    /// Number of lanes in the set.
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// `true` when no lane is set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

/// Up to 64 sibling candidates of one skeleton packed as bit-planes:
/// lane `i` of every [`LaneRel`] plane holds candidate `i`'s edge bit.
/// The batched enumeration driver fills one lane per surviving leaf of
/// a subtree (candidates that share an rf/co prefix and differ only in
/// the trailing choices), then judges all of them in one
/// [`crate::plan::Plan::allows_batch`] pass — skeleton-derived
/// registers are shared across lanes as broadcasts, and every word-level
/// relational op covers all 64 lanes at once.
///
/// Like [`Overlay`], one batch buffer is rewritten in place for every
/// batch ([`OverlayBatch::begin`] + [`OverlayBatch::push_lane`]); after
/// the first batch has sized the planes, refills allocate nothing.
#[derive(Debug, Default)]
pub struct OverlayBatch {
    gen: u64,
    n: usize,
    lanes: usize,
    rf: LaneRel,
    co: LaneRel,
    fr: LaneRel,
    /// Per-lane RMW exclusivity verdicts, precomputed at
    /// [`OverlayBatch::push_lane`] time for both checking modes (the
    /// batch former does not know which model will judge the batch).
    rmw_full: u64,
    rmw_atomics: u64,
    has_rmw: bool,
}

impl OverlayBatch {
    /// A fresh batch buffer with empty planes.
    pub fn new() -> OverlayBatch {
        OverlayBatch::default()
    }

    /// Re-arms the buffer for a new batch of candidates of `skel`:
    /// clears every plane, resets the lane count and stamps a fresh
    /// batch generation (shared stamp space with overlays and
    /// skeletons, so evaluation contexts can key cached lane planes on
    /// it without colliding with per-candidate stamps).
    pub fn begin(&mut self, skel: &ExecutionSkeleton) {
        self.gen = next_stamp();
        self.n = skel.len();
        self.lanes = 0;
        self.rf.reset(self.n);
        self.co.reset(self.n);
        self.fr.reset(self.n);
        self.has_rmw = !skel.rmw.is_empty();
        self.rmw_full = 0;
        self.rmw_atomics = 0;
    }

    /// Packs the candidate currently described by `view` into the next
    /// free lane: its rf edges, transitive coherence edges and from-read
    /// edges land in lane `i` of the respective planes, and its RMW
    /// exclusivity verdicts (when the skeleton has RMW pairs at all) in
    /// bit `i` of the per-mode masks. Returns the lane index.
    ///
    /// Panics when the batch is full (64 lanes) or `view` belongs to a
    /// different skeleton than [`OverlayBatch::begin`] saw.
    pub fn push_lane(&mut self, view: &ExecutionView<'_>) -> usize {
        assert!(self.lanes < 64, "OverlayBatch is full");
        assert_eq!(view.len(), self.n, "view belongs to a different skeleton");
        let lane = self.lanes;
        self.lanes += 1;
        let skel = view.skel;
        let overlay = view.overlay;
        for (read, src) in overlay.rf.iter().enumerate() {
            if let Some(w) = src {
                self.rf.add(*w, read, lane);
            }
        }
        for order in &overlay.co[..overlay.co_active] {
            for i in 0..order.len() {
                for j in (i + 1)..order.len() {
                    self.co.add(order[i], order[j], lane);
                }
            }
        }
        for e in &skel.events {
            if !e.is_read() {
                continue;
            }
            let li = skel.loc_idx[e.id];
            if li == usize::MAX {
                continue; // the location is never written: no fr edges
            }
            let order = &overlay.co[li];
            match overlay.rf[e.id] {
                None => {
                    for &w in order {
                        self.fr.add(e.id, w, lane);
                    }
                }
                Some(src) => {
                    let pos = order
                        .iter()
                        .position(|&w| w == src)
                        .expect("rf source is in co");
                    for &w in &order[pos + 1..] {
                        self.fr.add(e.id, w, lane);
                    }
                }
            }
        }
        if self.has_rmw {
            if view.rmw_atomicity_holds(RmwAtomicity::Full) {
                self.rmw_full |= 1 << lane;
            }
            if view.rmw_atomicity_holds(RmwAtomicity::AmongAtomics) {
                self.rmw_atomics |= 1 << lane;
            }
        }
        lane
    }

    /// `true` when batches of this skeleton must be packed by walking
    /// leaves ([`OverlayBatch::push_lane`]): RMW exclusivity is a
    /// per-lane verdict the axis-masked packing path cannot derive from
    /// edge masks alone.
    pub(crate) fn needs_lane_walk(&self) -> bool {
        self.has_rmw
    }

    /// Declares the batch's lane count without per-lane pushes. The
    /// axis-masked packing path fills whole planes with
    /// [`OverlayBatch::add_rf_masked`]-family bulk ORs and then claims
    /// all `lanes` lanes at once.
    pub(crate) fn set_lane_count(&mut self, lanes: usize) {
        debug_assert!(lanes <= 64, "OverlayBatch holds at most 64 lanes");
        self.lanes = lanes;
    }

    /// ORs `mask` into the rf plane at `(w, r)`: read `r` takes write
    /// `w` as its source in every lane of `mask`.
    pub(crate) fn add_rf_masked(&mut self, w: usize, r: usize, mask: u64) {
        self.rf.or_pair(w, r, mask);
    }

    /// ORs `mask` into the coherence plane at `(a, b)` (`a` before `b`
    /// in their location's order, transitively).
    pub(crate) fn add_co_pair_masked(&mut self, a: usize, b: usize, mask: u64) {
        self.co.or_pair(a, b, mask);
    }

    /// ORs `mask` into the from-read plane at `(r, w)`: read `r`
    /// precedes write `w` in coherence in every lane of `mask`.
    pub(crate) fn add_fr_masked(&mut self, r: usize, w: usize, mask: u64) {
        self.fr.or_pair(r, w, mask);
    }

    /// The batch's stamp: changes on every [`OverlayBatch::begin`].
    pub fn gen(&self) -> u64 {
        self.gen
    }

    /// Number of events of the batched skeleton.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when no lane has been pushed.
    pub fn is_empty(&self) -> bool {
        self.lanes == 0
    }

    /// Number of filled lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The filled lanes as a mask (lanes `0..lanes()`).
    pub fn live_mask(&self) -> LaneMask {
        LaneMask::all(self.lanes)
    }

    /// The lanes whose candidate satisfies RMW exclusivity under
    /// `mode`. All-ones (every lane passes) when the skeleton has no
    /// RMW pairs or the mode never fails.
    pub fn rmw_mask(&self, mode: RmwAtomicity) -> LaneMask {
        if !self.has_rmw || mode == RmwAtomicity::None {
            return LaneMask::from_bits(!0);
        }
        match mode {
            RmwAtomicity::Full => LaneMask::from_bits(self.rmw_full),
            RmwAtomicity::AmongAtomics => LaneMask::from_bits(self.rmw_atomics),
            RmwAtomicity::None => unreachable!(),
        }
    }

    /// The read-from planes (lane `i` = lane `i`'s rf edges).
    pub(crate) fn rf_planes(&self) -> &LaneRel {
        &self.rf
    }

    /// The coherence planes (transitive per-location orders).
    pub(crate) fn co_planes(&self) -> &LaneRel {
        &self.co
    }

    /// The from-read planes.
    pub(crate) fn fr_planes(&self) -> &LaneRel {
        &self.fr
    }
}

/// A borrowed candidate execution: a skeleton plus the overlay currently
/// describing one rf×co choice. Everything an [`Execution`] can answer,
/// without owning (or copying) anything.
#[derive(Clone, Copy, Debug)]
pub struct ExecutionView<'a> {
    skel: &'a ExecutionSkeleton,
    overlay: &'a Overlay,
}

impl<'a> ExecutionView<'a> {
    /// Pairs a skeleton with an overlay.
    pub(crate) fn new(skel: &'a ExecutionSkeleton, overlay: &'a Overlay) -> Self {
        ExecutionView { skel, overlay }
    }

    /// The shared skeleton.
    pub fn skeleton(&self) -> &'a ExecutionSkeleton {
        self.skel
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.skel.len()
    }

    /// `true` when there are no events.
    pub fn is_empty(&self) -> bool {
        self.skel.is_empty()
    }

    /// The skeleton's process-unique stamp. Stable across trace
    /// combinations that differ only in event values — evaluation
    /// caches of value-independent data key on this.
    pub fn skeleton_id(&self) -> u64 {
        self.skel.id
    }

    /// The trace combination's stamp: changes whenever any event value
    /// (and with it the observable outcome) may have changed, even when
    /// [`ExecutionView::skeleton_id`] is stable.
    pub fn combination_id(&self) -> u64 {
        self.skel.combo_gen
    }

    /// The overlay's candidate stamp (changes for every candidate).
    pub fn overlay_gen(&self) -> u64 {
        self.overlay.gen
    }

    /// The rf source of event `e` (`None` = initial state or non-read).
    pub fn rf(&self, e: usize) -> Option<usize> {
        self.overlay.rf[e]
    }

    /// Read event ids.
    pub fn read_set(&self) -> &'a EventSet {
        &self.skel.reads
    }

    /// Write event ids.
    pub fn write_set(&self) -> &'a EventSet {
        &self.skel.writes
    }

    /// Skeleton-derived base relations, by plan-facing accessor.
    pub(crate) fn po(&self) -> &'a Relation {
        &self.skel.po
    }

    pub(crate) fn po_loc(&self) -> &'a Relation {
        &self.skel.po_loc
    }

    pub(crate) fn ext(&self) -> &'a Relation {
        &self.skel.ext
    }

    pub(crate) fn int(&self) -> &'a Relation {
        &self.skel.int
    }

    pub(crate) fn same_loc(&self) -> &'a Relation {
        &self.skel.same_loc
    }

    pub(crate) fn addr(&self) -> &'a Relation {
        &self.skel.addr
    }

    pub(crate) fn data(&self) -> &'a Relation {
        &self.skel.data
    }

    pub(crate) fn ctrl(&self) -> &'a Relation {
        &self.skel.ctrl
    }

    pub(crate) fn rmw(&self) -> &'a Relation {
        &self.skel.rmw
    }

    pub(crate) fn fence(&self, scope: FenceScope) -> &'a Relation {
        match scope {
            FenceScope::Cta => &self.skel.fence_cta,
            FenceScope::Gl => &self.skel.fence_gl,
            FenceScope::Sys => &self.skel.fence_sys,
        }
    }

    pub(crate) fn scope_cta(&self) -> &'a Relation {
        &self.skel.scope_cta
    }

    /// Fills `r` with the overlay's read-from relation (init edges have
    /// no source write, so they do not appear; `fr` accounts for them).
    pub fn fill_rf_rel(&self, r: &mut Relation) {
        r.reset(self.len());
        for (read, src) in self.overlay.rf.iter().enumerate() {
            if let Some(w) = src {
                r.add(*w, read);
            }
        }
    }

    /// Fills `r` with the overlay's coherence relation (transitive over
    /// each location's chosen order).
    pub fn fill_co_rel(&self, r: &mut Relation) {
        r.reset(self.len());
        for order in &self.overlay.co[..self.overlay.co_active] {
            for i in 0..order.len() {
                for j in (i + 1)..order.len() {
                    r.add(order[i], order[j]);
                }
            }
        }
    }

    /// Fills `rel` with from-read: each read to every write
    /// coherence-after its source.
    pub fn fill_fr(&self, rel: &mut Relation) {
        rel.reset(self.len());
        for e in &self.skel.events {
            if !e.is_read() {
                continue;
            }
            let li = self.skel.loc_idx[e.id];
            if li == usize::MAX {
                continue; // the location is never written: no fr edges
            }
            let order = &self.overlay.co[li];
            match self.overlay.rf[e.id] {
                None => {
                    // Reads from init: all writes overwrite it.
                    for &w in order {
                        rel.add(e.id, w);
                    }
                }
                Some(src) => {
                    let pos = order
                        .iter()
                        .position(|&w| w == src)
                        .expect("rf source is in co");
                    for &w in &order[pos + 1..] {
                        rel.add(e.id, w);
                    }
                }
            }
        }
    }

    /// Checks RMW exclusivity under `mode`, like
    /// [`Execution::rmw_atomicity_holds`].
    pub fn rmw_atomicity_holds(&self, mode: RmwAtomicity) -> bool {
        if mode == RmwAtomicity::None || self.skel.rmw.is_empty() {
            return true;
        }
        for (r, w) in self.skel.rmw.iter_pairs() {
            let li = self.skel.loc_idx[r];
            if li == usize::MAX {
                continue;
            }
            let order = &self.overlay.co[li];
            let wpos = order
                .iter()
                .position(|&x| x == w)
                .expect("rmw write is in co");
            let start = match self.overlay.rf[r] {
                None => 0,
                Some(src) => match order.iter().position(|&x| x == src) {
                    Some(p) => p + 1,
                    None => continue,
                },
            };
            if start >= wpos {
                continue;
            }
            for &mid in &order[start..wpos] {
                let interferes = match mode {
                    RmwAtomicity::Full => true,
                    RmwAtomicity::AmongAtomics => self.skel.events[mid].atomic,
                    RmwAtomicity::None => false,
                };
                if interferes {
                    return false;
                }
            }
        }
        true
    }

    /// The value one observed slot takes under this overlay.
    fn slot_value(&self, slot: ObservedSlot) -> i64 {
        match slot {
            ObservedSlot::Fixed(v) => v,
            ObservedSlot::Mem(li) => {
                let w = *self.overlay.co[li]
                    .last()
                    .expect("written locations have non-empty coherence orders");
                self.skel.events[w].value
            }
        }
    }

    /// `true` iff the observed values are fixed by the skeleton (no
    /// observed expression reads final memory): every candidate of this
    /// skeleton then shares one outcome, so consumers can dedup once per
    /// skeleton instead of once per candidate.
    pub fn observed_is_skeleton_fixed(&self) -> bool {
        self.skel
            .observed_slots
            .iter()
            .all(|s| matches!(s, ObservedSlot::Fixed(_)))
    }

    /// Fills `out` with the observed values, in
    /// [`weakgpu_litmus::LitmusTest::observed`] order — the
    /// allocation-free form of [`ExecutionView::outcome`], for
    /// per-candidate dedup against previously seen value vectors.
    pub fn fill_observed(&self, out: &mut Vec<i64>) {
        out.clear();
        out.extend(self.skel.observed_slots.iter().map(|&s| self.slot_value(s)));
    }

    /// The candidate's observable [`Outcome`] (allocates; prefer
    /// [`ExecutionView::fill_observed`] in per-candidate loops).
    pub fn outcome(&self) -> Outcome {
        self.skel
            .observed_exprs
            .iter()
            .cloned()
            .zip(self.skel.observed_slots.iter().map(|&s| self.slot_value(s)))
            .collect()
    }

    /// Materialises an owned [`Execution`] — the bridge to the legacy
    /// API for `render`, diagnostics and differential testing. This is
    /// the one place the old per-candidate cloning survives; the
    /// streaming verdict paths never call it.
    pub fn to_execution(&self) -> Execution {
        Execution {
            events: self.skel.events.clone(),
            thread_cta: self.skel.thread_cta.clone(),
            rf: self.overlay.rf.clone(),
            co: self
                .skel
                .locs
                .iter()
                .cloned()
                .zip(self.overlay.co[..self.overlay.co_active].iter().cloned())
                .collect(),
            init: self.skel.init.clone(),
            addr: self.skel.addr.clone(),
            data: self.skel.data.clone(),
            ctrl: self.skel.ctrl.clone(),
            rmw: self.skel.rmw.clone(),
        }
    }
}

/// A *partially* assigned candidate: the first `rf_depth` read slots and
/// the first `co_depth` coherence axes of the overlay are committed, the
/// rest are still open. This is the node type of the pruned enumerator's
/// decision tree ([`crate::enumerate::for_each_execution_pruned`]): rf
/// slots form the outer tree levels (in ascending read-event order),
/// coherence axes the inner ones (in sorted location order), matching
/// the exhaustive stream's lexicographic candidate order exactly.
///
/// The partial view answers *interval* questions — for each overlay
/// base relation it can produce a lower bound (pairs present in every
/// extension) and an upper bound (pairs present in some extension),
/// which [`crate::plan::Plan::check_partial_view`] turns into a
/// three-valued verdict. It also spans the observable outcomes of the
/// subtree ([`PartialView::observed_combos`]): outcomes depend only on
/// fixed register values and the last write of each observed location,
/// so the open axes contribute a mixed-radix product of "which write is
/// last", independent of the open rf slots.
#[derive(Clone, Copy, Debug)]
pub struct PartialView<'a> {
    skel: &'a ExecutionSkeleton,
    overlay: &'a Overlay,
    /// Read event ids with at least one rf candidate, ascending — the
    /// tree's rf levels.
    reads: &'a [usize],
    /// Per read slot: its value-consistent rf candidates.
    rf_choices: &'a [Vec<Option<usize>>],
    rf_depth: usize,
    co_depth: usize,
}

impl<'a> PartialView<'a> {
    /// Pairs a skeleton/overlay with a committed prefix: the first
    /// `rf_depth` reads and `co_depth` coherence axes of the overlay are
    /// live, everything beyond may hold stale data and is never read.
    pub(crate) fn new(
        skel: &'a ExecutionSkeleton,
        overlay: &'a Overlay,
        reads: &'a [usize],
        rf_choices: &'a [Vec<Option<usize>>],
        rf_depth: usize,
        co_depth: usize,
    ) -> Self {
        PartialView {
            skel,
            overlay,
            reads,
            rf_choices,
            rf_depth,
            co_depth,
        }
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.skel.len()
    }

    /// `true` when there are no events.
    pub fn is_empty(&self) -> bool {
        self.skel.is_empty()
    }

    /// The skeleton's process-unique stamp.
    pub fn skeleton_id(&self) -> u64 {
        self.skel.id
    }

    /// The trace combination's stamp (see
    /// [`ExecutionView::combination_id`]).
    pub fn combination_id(&self) -> u64 {
        self.skel.combo_gen
    }

    /// The overlay's candidate stamp: every tree node is stamped before
    /// evaluation, so partial and concrete evaluations never share one.
    pub fn overlay_gen(&self) -> u64 {
        self.overlay.gen
    }

    /// How many read slots are committed.
    pub fn rf_depth(&self) -> usize {
        self.rf_depth
    }

    /// How many coherence axes are committed.
    pub fn co_depth(&self) -> usize {
        self.co_depth
    }

    /// `true` when every slot is committed — the node is a leaf and the
    /// view describes exactly one candidate.
    pub fn is_complete(&self) -> bool {
        self.rf_depth == self.reads.len() && self.co_depth == self.skel.locs.len()
    }

    /// The same skeleton/overlay pair as a concrete view — only valid
    /// for skeleton-derived (communication-independent) queries unless
    /// [`PartialView::is_complete`].
    pub(crate) fn as_view(&self) -> ExecutionView<'a> {
        ExecutionView::new(self.skel, self.overlay)
    }

    /// The underlying skeleton.
    pub(crate) fn skel(&self) -> &'a ExecutionSkeleton {
        self.skel
    }

    /// The underlying overlay.
    pub(crate) fn overlay(&self) -> &'a Overlay {
        self.overlay
    }

    /// The tree's read slots (ascending read-event order).
    pub(crate) fn reads_list(&self) -> &'a [usize] {
        self.reads
    }

    /// Read slot `k`'s value-consistent rf candidates.
    pub(crate) fn rf_candidates(&self, k: usize) -> &'a [Option<usize>] {
        &self.rf_choices[k]
    }

    /// A copy of this view re-rooted at explicit depths — how the
    /// incremental evaluator replays fills for intermediate tree levels
    /// while syncing its maintained state to a deeper node.
    pub(crate) fn at_depth(&self, rf_depth: usize, co_depth: usize) -> PartialView<'a> {
        PartialView {
            rf_depth,
            co_depth,
            ..*self
        }
    }

    /// Bounds on the read-from relation: `lo` holds edges of committed
    /// slots (plus forced single-candidate open slots), `hi` adds every
    /// candidate edge of the open slots.
    pub(crate) fn fill_rf_bounds(&self, lo: &mut Relation, hi: &mut Relation) {
        let n = self.skel.len();
        lo.reset(n);
        hi.reset(n);
        for (k, &r) in self.reads.iter().enumerate() {
            if k < self.rf_depth {
                if let Some(w) = self.overlay.rf[r] {
                    lo.add(w, r);
                    hi.add(w, r);
                }
            } else {
                let cands = &self.rf_choices[k];
                for w in cands.iter().flatten() {
                    hi.add(*w, r);
                }
                if cands.len() == 1 {
                    if let Some(w) = cands[0] {
                        lo.add(w, r);
                    }
                }
            }
        }
    }

    /// Bounds on coherence: committed axes contribute their transitive
    /// order to both bounds; open axes contribute every ordered pair of
    /// same-location writes (both directions) to `hi` only.
    pub(crate) fn fill_co_bounds(&self, lo: &mut Relation, hi: &mut Relation) {
        let n = self.skel.len();
        lo.reset(n);
        hi.reset(n);
        for li in 0..self.skel.locs.len() {
            if li < self.co_depth {
                let order = &self.overlay.co[li];
                for i in 0..order.len() {
                    for j in (i + 1)..order.len() {
                        lo.add(order[i], order[j]);
                        hi.add(order[i], order[j]);
                    }
                }
            } else {
                let ws = &self.skel.writes_by_loc[li];
                for &a in ws {
                    for &b in ws {
                        if a != b {
                            hi.add(a, b);
                        }
                    }
                }
            }
        }
    }

    /// Bounds on from-read. A committed init read precedes every write
    /// of its location under *any* coherence order — those edges are
    /// definite even while the axis is open, which is the main source of
    /// early conflict cuts. Open rf slots contribute an edge to `lo`
    /// only when every candidate source implies it.
    pub(crate) fn fill_fr_bounds(&self, lo: &mut Relation, hi: &mut Relation) {
        let n = self.skel.len();
        lo.reset(n);
        hi.reset(n);
        for (k, &r) in self.reads.iter().enumerate() {
            self.fr_slot_each(k, self.rf_depth, self.co_depth, |w, definite| {
                if definite {
                    lo.add(r, w);
                }
                hi.add(r, w);
            });
        }
    }

    /// Read slot `k`'s contribution to the from-read bounds at explicit
    /// depths: calls `edge(w, definite)` for every write `w` the slot's
    /// read may precede — `definite` when the edge is in every extension
    /// (the `lo` bound), otherwise `hi`-only. All of a slot's fr edges
    /// share the read as source, so one callback sweep rebuilds exactly
    /// one row — which is how the incremental evaluator recomputes only
    /// the rows an axis commit touched while [`fill_fr_bounds`] (the
    /// full fill, looping this helper over every slot) stays the single
    /// source of the fr semantics.
    ///
    /// [`fill_fr_bounds`]: PartialView::fill_fr_bounds
    pub(crate) fn fr_slot_each(
        &self,
        k: usize,
        rf_depth: usize,
        co_depth: usize,
        mut edge: impl FnMut(usize, bool),
    ) {
        let r = self.reads[k];
        let li = self.skel.loc_idx[r];
        if li == usize::MAX {
            return; // the location is never written: no fr edges
        }
        let ws = &self.skel.writes_by_loc[li];
        if k < rf_depth {
            match self.overlay.rf[r] {
                None => {
                    for &w in ws {
                        edge(w, true);
                    }
                }
                Some(src) => {
                    if li < co_depth {
                        let order = &self.overlay.co[li];
                        let pos = order
                            .iter()
                            .position(|&w| w == src)
                            .expect("rf source is in co");
                        for &w in &order[pos + 1..] {
                            edge(w, true);
                        }
                    } else {
                        for &w in ws {
                            if w != src {
                                edge(w, false);
                            }
                        }
                    }
                }
            }
        } else {
            let cands = &self.rf_choices[k];
            for &w in ws {
                let mut in_all = true;
                let mut in_any = false;
                for c in cands {
                    let (all, any) = match c {
                        None => (true, true),
                        Some(src) if *src == w => (false, false),
                        Some(src) => {
                            if li < co_depth {
                                let order = &self.overlay.co[li];
                                let spos = order
                                    .iter()
                                    .position(|&x| x == *src)
                                    .expect("rf source is in co");
                                let wpos =
                                    order.iter().position(|&x| x == w).expect("write is in co");
                                let after = spos < wpos;
                                (after, after)
                            } else {
                                (false, true)
                            }
                        }
                    };
                    in_all &= all;
                    in_any |= any;
                }
                if in_any {
                    edge(w, in_all);
                }
            }
        }
    }

    /// Three-valued RMW exclusivity: `Some(v)` when every extension
    /// agrees on `v`, `None` otherwise. A pair is only judged once both
    /// its read's rf slot and its location's coherence axis are
    /// committed; a committed violation forces `Some(false)` regardless
    /// of other pairs.
    pub fn rmw_atomicity_partial(&self, mode: RmwAtomicity) -> Option<bool> {
        if mode == RmwAtomicity::None || self.skel.rmw.is_empty() {
            return Some(true);
        }
        let mut definite = true;
        for (r, w) in self.skel.rmw.iter_pairs() {
            let li = self.skel.loc_idx[r];
            if li == usize::MAX {
                continue;
            }
            let k = match self.reads.binary_search(&r) {
                Ok(k) => k,
                Err(_) => continue, // no rf candidate: the slot never opens
            };
            if k >= self.rf_depth || li >= self.co_depth {
                definite = false;
                continue;
            }
            let order = &self.overlay.co[li];
            let wpos = order
                .iter()
                .position(|&x| x == w)
                .expect("rmw write is in co");
            let start = match self.overlay.rf[r] {
                None => 0,
                Some(src) => match order.iter().position(|&x| x == src) {
                    Some(p) => p + 1,
                    None => continue,
                },
            };
            if start >= wpos {
                continue;
            }
            for &mid in &order[start..wpos] {
                let interferes = match mode {
                    RmwAtomicity::Full => true,
                    RmwAtomicity::AmongAtomics => self.skel.events[mid].atomic,
                    RmwAtomicity::None => false,
                };
                if interferes {
                    return Some(false);
                }
            }
        }
        if definite {
            Some(true)
        } else {
            None
        }
    }

    /// How many distinct observed-value vectors the subtree under this
    /// node spans: a mixed-radix product over the *open* observed memory
    /// locations (each contributes "which write lands last"), saturating
    /// on overflow. Duplicate observations of one location share an
    /// axis; committed axes and fixed slots contribute nothing. The open
    /// rf slots contribute nothing either — rf choices never change an
    /// observed value.
    pub fn observed_combos(&self) -> usize {
        let mut combos = 1usize;
        for (j, slot) in self.skel.observed_slots.iter().enumerate() {
            if let ObservedSlot::Mem(li) = *slot {
                if li >= self.co_depth && self.first_mem_occurrence(li) == j {
                    combos = combos.saturating_mul(self.skel.writes_by_loc[li].len());
                }
            }
        }
        combos
    }

    /// Index of the first observed slot naming location `li`.
    fn first_mem_occurrence(&self, li: usize) -> usize {
        self.skel
            .observed_slots
            .iter()
            .position(|s| matches!(s, ObservedSlot::Mem(l) if *l == li))
            .expect("li comes from an observed slot")
    }

    /// Fills `out` with the observed values of combination `combo`
    /// (`0..observed_combos()`), in `LitmusTest::observed` order. Each
    /// open observed location decodes one mixed-radix digit of `combo`
    /// selecting which of its writes lands last.
    pub fn fill_observed_combo(&self, mut combo: usize, out: &mut Vec<i64>) {
        out.clear();
        for (j, slot) in self.skel.observed_slots.iter().enumerate() {
            let v = match *slot {
                ObservedSlot::Fixed(v) => v,
                ObservedSlot::Mem(li) => {
                    if li < self.co_depth {
                        let w = *self.overlay.co[li]
                            .last()
                            .expect("written locations have non-empty coherence orders");
                        self.skel.events[w].value
                    } else {
                        let fj = self.first_mem_occurrence(li);
                        if fj == j {
                            let ws = &self.skel.writes_by_loc[li];
                            let d = combo % ws.len();
                            combo /= ws.len();
                            self.skel.events[ws[d]].value
                        } else {
                            out[fj] // one `out` entry per slot: already decoded
                        }
                    }
                }
            };
            out.push(v);
        }
    }

    /// Zips a value vector (from [`PartialView::fill_observed_combo`])
    /// with the observed expressions into an [`Outcome`].
    pub fn outcome_from_vals(&self, vals: &[i64]) -> Outcome {
        self.skel
            .observed_exprs
            .iter()
            .cloned()
            .zip(vals.iter().copied())
            .collect()
    }
}
