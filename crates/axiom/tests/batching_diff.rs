//! Batched ≡ scalar, proven differentially.
//!
//! The bit-plane batch evaluator behind [`EnumConfig::batching`] packs
//! up to 64 sibling candidates — overlays differing only in trailing
//! rf slots / co axes — into the lanes of an `OverlayBatch` and judges
//! them with one pass over the compiled plan, every relational op
//! covering all lanes per machine word. Like the pruner before it, the
//! only safe way to ship it is to prove, bit for bit, that it changes
//! nothing observable: for **every** built-in model (PTX, SC, TSO,
//! RMO, the operational baseline, the no-LLH ablation, and the
//! natively-implemented PTX model, which exercises the `allows_batch`
//! default fallback), over the full hand-written corpus **and** the
//! whole generated `small` family, the batched [`ModelOutcomes`] must
//! equal the scalar one — on the exhaustive stream *and* composed with
//! pruning, where batches amortise exactly the leaves the cuts kept.
//! Proptests extend the battery to random corpus variants × random
//! `.cat` programs, mirroring `pruning_diff.rs`.

use std::ops::ControlFlow;

use proptest::prelude::*;
use weakgpu_axiom::enumerate::{
    condition_witnessed_with, for_each_execution_batched, for_each_execution_pruned,
    model_outcomes_counted, EnumConfig, PruneStats,
};
use weakgpu_axiom::plan::EvalContext;
use weakgpu_axiom::{model_outcomes, CatModel, Model, ModelOutcomes};
use weakgpu_diy::{generate, GenConfig};
use weakgpu_litmus::{corpus, corpus_extra, FenceScope, LitmusTest, ThreadScope};
use weakgpu_models::{all_models, native::NativePtxModel, ptx_model_without_llh};

fn batching_cfg() -> EnumConfig {
    EnumConfig {
        batching: true,
        ..EnumConfig::default()
    }
}

fn batched_pruning_cfg() -> EnumConfig {
    EnumConfig {
        pruning: true,
        batching: true,
        ..EnumConfig::default()
    }
}

/// Asserts the headline property for one (test, model) pair on both
/// batched arms — exhaustive and composed with pruning — and returns
/// the stats of each for invariant checks on top.
fn assert_batched_matches_scalar(
    test: &LitmusTest,
    model: &dyn Model,
    ctx: &mut EvalContext,
) -> (ModelOutcomes, PruneStats, PruneStats) {
    let (scalar, _) = model_outcomes_counted(test, model, &EnumConfig::default(), ctx)
        .unwrap_or_else(|e| panic!("{}: {e}", test.name()));

    let (batched, bstats) = model_outcomes_counted(test, model, &batching_cfg(), ctx)
        .unwrap_or_else(|e| panic!("{}: {e}", test.name()));
    assert_eq!(
        batched,
        scalar,
        "{} under {}: batched-exhaustive and scalar ModelOutcomes diverge",
        test.name(),
        model.name()
    );
    assert_eq!(
        bstats.classes_visited as usize,
        scalar.num_candidates,
        "{} under {}: batched-exhaustive must visit every candidate",
        test.name(),
        model.name()
    );
    assert_eq!(bstats.candidates_pruned, 0, "{}", test.name());
    assert!(
        bstats.lanes_filled >= 2 * bstats.batches_formed,
        "{} under {}: batches must hold at least two lanes",
        test.name(),
        model.name()
    );

    let (both, pstats) = model_outcomes_counted(test, model, &batched_pruning_cfg(), ctx)
        .unwrap_or_else(|e| panic!("{}: {e}", test.name()));
    assert_eq!(
        both,
        scalar,
        "{} under {}: pruned+batched and scalar ModelOutcomes diverge",
        test.name(),
        model.name()
    );
    assert_eq!(
        pstats.classes_visited + pstats.candidates_pruned,
        scalar.num_candidates as u64,
        "{} under {}: classes, cuts and batch leaves must partition the space",
        test.name(),
        model.name()
    );
    (scalar, bstats, pstats)
}

fn test_suite() -> Vec<LitmusTest> {
    let mut tests = corpus::all();
    tests.extend([
        corpus::mp(ThreadScope::IntraCta, Some(FenceScope::Cta)),
        corpus::sb(ThreadScope::IntraCta, None),
        corpus::lb(ThreadScope::InterCta, Some(FenceScope::Cta)),
        corpus::mp_dep(ThreadScope::InterCta, FenceScope::Gl),
    ]);
    tests
}

#[test]
fn batched_matches_scalar_for_every_builtin_model() {
    let mut ctx = EvalContext::new();
    for model in all_models() {
        for test in test_suite() {
            assert_batched_matches_scalar(&test, &model, &mut ctx);
        }
    }
}

#[test]
fn batched_matches_scalar_for_the_ablation_and_native_models() {
    let mut ctx = EvalContext::new();
    for test in test_suite() {
        assert_batched_matches_scalar(&test, &ptx_model_without_llh(), &mut ctx);
        // The native model has no plan, so `allows_batch` stays at the
        // trait default (`None`): batches still form, but pass 2
        // degrades to per-leaf evaluation and must agree bit for bit.
        assert_batched_matches_scalar(&test, &NativePtxModel::new(), &mut ctx);
    }
}

#[test]
fn batched_matches_scalar_over_the_small_family() {
    let family = generate(&GenConfig::small());
    assert!(!family.is_empty());
    let mut ctx = EvalContext::new();
    for model in all_models() {
        for test in &family {
            assert_batched_matches_scalar(test, &model, &mut ctx);
        }
    }
}

#[test]
fn batched_witness_query_matches_scalar() {
    let mut ctx = EvalContext::new();
    for model in all_models() {
        for test in test_suite() {
            let full = model_outcomes(&test, &model, &EnumConfig::default()).unwrap();
            for cfg in [batching_cfg(), batched_pruning_cfg()] {
                let fast = condition_witnessed_with(&test, &model, &cfg, &mut ctx).unwrap();
                assert_eq!(
                    fast,
                    full.condition_witnessed,
                    "{} under {} (pruning={})",
                    test.name(),
                    Model::name(&model),
                    cfg.pruning
                );
            }
        }
    }
}

/// The capability check: on the read-fan shape the trailing co axes and
/// rf slots multiply into large sibling groups, so batches must pack
/// well past two lanes — this is the lane occupancy the benchmark (and
/// sweep JSONL artifacts) rely on.
#[test]
fn fan_shapes_fill_lanes_densely() {
    let model = weakgpu_models::sc_model();
    let test = corpus_extra::corr_fan(2, 8);
    let mut ctx = EvalContext::new();
    let (_, bstats, pstats) = assert_batched_matches_scalar(&test, &model, &mut ctx);
    for (arm, stats) in [("exhaustive", bstats), ("pruned", pstats)] {
        assert!(stats.batches_formed > 0, "{arm}: no batches formed");
        let occupancy = stats.lanes_filled as f64 / stats.batches_formed as f64;
        assert!(
            occupancy >= 8.0,
            "{arm}: fan batches should pack densely, got {occupancy:.1} lanes/batch"
        );
    }
}

#[test]
fn batched_early_exit_stops_the_walk() {
    let model = weakgpu_models::sc_model();
    let test = corpus_extra::corr_fan(2, 5);
    let mut ctx = EvalContext::new();

    // Exhaustive batched stream: breaking mid-batch stops immediately.
    let mut stats = PruneStats::default();
    let mut total = 0u64;
    for_each_execution_batched(
        &test,
        &model,
        &batching_cfg(),
        &mut ctx,
        &mut stats,
        |_, _| {
            total += 1;
            ControlFlow::<()>::Continue(())
        },
    )
    .unwrap();
    assert!(total > 3);
    for stop_at in [1u64, 2, total] {
        let mut stats = PruneStats::default();
        let mut visits = 0u64;
        let out = for_each_execution_batched(
            &test,
            &model,
            &batching_cfg(),
            &mut ctx,
            &mut stats,
            |_, _| {
                visits += 1;
                if visits == stop_at {
                    ControlFlow::Break(visits)
                } else {
                    ControlFlow::Continue(())
                }
            },
        )
        .unwrap();
        assert_eq!(out, Some(stop_at));
        assert_eq!(visits, stop_at, "the visitor ran past its break");
        assert_eq!(stats.classes_visited, stop_at);
    }

    // Pruned + batched walk: same discipline over visited nodes.
    let mut visits = 0u64;
    let mut stats = PruneStats::default();
    let out = for_each_execution_pruned(
        &test,
        &model,
        &batched_pruning_cfg(),
        &mut ctx,
        &mut stats,
        |_| {
            visits += 1;
            ControlFlow::Break(visits)
        },
    )
    .unwrap();
    assert_eq!(out, Some(1));
    assert_eq!(stats.classes_visited, 1);
}

/// Random corpus variant: idiom × scope × fence (the `pruning_diff.rs`
/// shape, shared so the batteries sample the same space).
fn arb_corpus_test() -> impl Strategy<Value = LitmusTest> {
    let scopes = [ThreadScope::IntraCta, ThreadScope::InterCta];
    let fences = [
        None,
        Some(FenceScope::Cta),
        Some(FenceScope::Gl),
        Some(FenceScope::Sys),
    ];
    (0..5usize, 0..2usize, 0..4usize).prop_map(move |(idiom, s, f)| {
        let (scope, fence) = (scopes[s], fences[f]);
        match idiom {
            0 => corpus::mp(scope, fence),
            1 => corpus::sb(scope, fence),
            2 => corpus::lb(scope, fence),
            3 => match fence {
                Some(fs) => corpus::corr_fenced(fs),
                None => corpus::corr(),
            },
            _ => corpus::dlb_mp(f % 2 == 0),
        }
    })
}

/// A random scoped `.cat` model over overlay- and skeleton-derived
/// bases alike — including a `Diff` axiom and an `empty` check, so the
/// batch evaluator's lane checks see every check kind.
fn arb_model() -> impl Strategy<Value = CatModel> {
    let axioms = [
        "acyclic (po | rf | co | fr) as sc",
        "acyclic (po-loc | rf | co | fr) as coherence",
        "irreflexive (fre ; coe ; rfi?) as obs",
        "acyclic ((addr | data | ctrl) | rfe | membar.gl) & cta as scoped",
        "empty rmw \\ rmw as trivial",
        "irreflexive ((rf | co) \\ po) ; fr as mixed",
    ];
    prop::collection::vec(0..axioms.len(), 1..3).prop_map(move |picks| {
        let src: Vec<&str> = picks.iter().map(|&i| axioms[i]).collect();
        // Duplicate axiom names are fine for `allows`; rename per line.
        let src = src
            .iter()
            .enumerate()
            .map(|(i, a)| a.replace(" as ", &format!(" as a{i}-")))
            .collect::<Vec<_>>()
            .join("\n");
        CatModel::new("random", &src).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The headline batching property over random corpus variants and
    /// random models: both batched arms are bit-identical to the scalar
    /// stream and the counters account for every candidate.
    #[test]
    fn batched_outcomes_match_scalar_on_random_pairs(
        test in arb_corpus_test(),
        model in arb_model(),
    ) {
        let mut ctx = EvalContext::new();
        assert_batched_matches_scalar(&test, &model, &mut ctx);
    }

    /// The early-exit witness query agrees between the arms on random
    /// pairs too.
    #[test]
    fn batched_witness_query_matches_on_random_pairs(
        test in arb_corpus_test(),
        model in arb_model(),
    ) {
        let mut ctx = EvalContext::new();
        let full = model_outcomes(&test, &model, &EnumConfig::default()).unwrap();
        for cfg in [batching_cfg(), batched_pruning_cfg()] {
            let fast = condition_witnessed_with(&test, &model, &cfg, &mut ctx).unwrap();
            prop_assert_eq!(fast, full.condition_witnessed);
        }
    }
}
