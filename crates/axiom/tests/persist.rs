//! File-level integration tests for the persistent verdict cache: real
//! verdicts from the generated `small` family survive a save/load
//! roundtrip bit-identically, shard caches merge to the whole, the
//! incremental [`CacheWriter`] agrees with the one-shot [`save`], and
//! on-disk damage is rejected with a line-numbered diagnostic rather
//! than a panic.

use std::path::PathBuf;

use weakgpu_axiom::cache::VerdictCache;
use weakgpu_axiom::enumerate::EnumConfig;
use weakgpu_axiom::persist::{load, merge, parse, render, save, CacheWriter, PersistError, SCHEMA};
use weakgpu_axiom::plan::EvalContext;
use weakgpu_diy::{generate, GenConfig};
use weakgpu_litmus::LitmusTest;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("weakgpu-persist-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// A cache holding real PTX verdicts for `tests`.
fn judged(tests: &[LitmusTest]) -> VerdictCache {
    let model = weakgpu_models::ptx_model();
    let cfg = EnumConfig::default();
    let mut ctx = EvalContext::new();
    let mut cache = VerdictCache::new();
    for t in tests {
        cache.outcomes_with(t, &model, &cfg, &mut ctx).unwrap();
    }
    cache
}

#[test]
fn real_family_survives_a_disk_roundtrip_bit_identically() {
    let family: Vec<_> = generate(&GenConfig::small()).into_iter().take(25).collect();
    let cache = judged(&family);
    let path = scratch("roundtrip.wgc");
    save(&path, &cache).unwrap();
    let restored = load(&path).unwrap();

    assert_eq!(restored.len(), cache.len());
    assert_eq!(restored.warm_entries() as usize, cache.len());
    let originals: std::collections::BTreeMap<_, _> = cache
        .entries()
        .map(|(k, v)| (k.to_owned(), v.clone()))
        .collect();
    for (key, verdict) in restored.entries() {
        let original = &originals[key];
        assert_eq!(verdict.all_outcomes, original.all_outcomes, "{key}");
        assert_eq!(verdict.allowed_outcomes, original.allowed_outcomes);
        assert_eq!(verdict.num_candidates, original.num_candidates);
        assert_eq!(verdict.num_allowed, original.num_allowed);
        assert_eq!(verdict.condition_witnessed, original.condition_witnessed);
    }
    // Render of the restored cache is byte-identical: a stable disk
    // fixed point, so re-saving a loaded cache never churns the file.
    assert_eq!(render(&restored), render(&cache));
}

#[test]
fn shard_caches_merge_to_the_whole() {
    let family: Vec<_> = generate(&GenConfig::small()).into_iter().take(24).collect();
    let whole = judged(&family);
    let shards = (0..3).map(|k| {
        judged(
            &family
                .iter()
                .enumerate()
                .filter(|(i, _)| i % 3 == k)
                .map(|(_, t)| t.clone())
                .collect::<Vec<_>>(),
        )
    });
    let merged = merge(shards);
    assert_eq!(render(&merged), render(&whole));
}

#[test]
fn incremental_writer_agrees_with_one_shot_save() {
    let family: Vec<_> = generate(&GenConfig::small()).into_iter().take(10).collect();
    let cache = judged(&family);
    let one_shot = scratch("oneshot.wgc");
    save(&one_shot, &cache).unwrap();

    let incremental = scratch("incremental.wgc");
    // First half at create time, second half through a re-opened
    // appender — the crash-tolerant streaming path.
    let entries: Vec<_> = cache.entries().collect();
    let mut w = CacheWriter::create(&incremental).unwrap();
    for (k, v) in &entries[..5] {
        w.write_entry(k, v).unwrap();
    }
    w.flush().unwrap();
    drop(w);
    let mut w = CacheWriter::append(&incremental).unwrap();
    for (k, v) in &entries[5..] {
        w.write_entry(k, v).unwrap();
    }
    w.flush().unwrap();
    drop(w);

    // Load normalises entry order, so both files restore identically.
    assert_eq!(
        render(&load(&incremental).unwrap()),
        render(&load(&one_shot).unwrap())
    );
}

#[test]
fn damaged_files_are_rejected_with_diagnostics() {
    let family: Vec<_> = generate(&GenConfig::small()).into_iter().take(3).collect();
    let path = scratch("damaged.wgc");
    save(&path, &judged(&family)).unwrap();
    let good = std::fs::read_to_string(&path).unwrap();

    // Wrong version: a format-2 file must not be half-read by a
    // format-1 loader.
    let future = good.replacen(SCHEMA, "weakgpu-cache/2", 1);
    std::fs::write(&path, &future).unwrap();
    let err = load(&path).unwrap_err();
    assert!(matches!(err, PersistError::Version(_)), "{err}");
    // The human-facing diagnostic names both tags.
    assert!(err.to_string().contains("weakgpu-cache/2"), "{err}");
    assert!(err.to_string().contains(SCHEMA), "{err}");

    // Truncation mid-record: the damaged line is named, 1-based,
    // counting the header.
    let cut = good.len() - good.trim_end().len() + 10;
    std::fs::write(&path, &good[..good.len() - cut]).unwrap();
    match load(&path).unwrap_err() {
        PersistError::Format(line, _) => assert_eq!(line, 1 + family.len()),
        other => panic!("expected Format error, got {other}"),
    }

    // A missing file is Io, and the message carries the path.
    let gone = scratch("no-such.wgc");
    match load(&gone).unwrap_err() {
        PersistError::Io(msg) => assert!(msg.contains("no-such.wgc"), "{msg}"),
        other => panic!("expected Io error, got {other}"),
    }
}

#[test]
fn parse_never_panics_on_mutilated_input() {
    let family: Vec<_> = generate(&GenConfig::small()).into_iter().take(2).collect();
    let good = render(&judged(&family));
    // Every prefix and every single-byte deletion either parses or
    // errors — no slicing panics, no unwraps on attacker-shaped input.
    for end in 0..good.len() {
        if good.is_char_boundary(end) {
            let _ = parse(&good[..end]);
        }
    }
    for i in 0..good.len() {
        if good.is_char_boundary(i) && good.is_char_boundary(i + 1) {
            let mut s = String::with_capacity(good.len());
            s.push_str(&good[..i]);
            s.push_str(&good[i + 1..]);
            let _ = parse(&s);
        }
    }
}
