//! Pruned ≡ exhaustive, proven differentially.
//!
//! The rf-class decision tree behind [`EnumConfig::pruning`] cuts
//! subtrees whose verdict the three-valued partial check already
//! forced. The only safe way to ship a pruner is to prove, bit for
//! bit, that it changes nothing observable: for **every** built-in
//! model (PTX, SC, TSO, RMO, the operational baseline, the no-LLH
//! ablation, and the natively-implemented PTX model, which exercises
//! the `partial_verdict` default fallback), over the full hand-written
//! corpus **and** the whole generated `small` family, the pruned
//! [`ModelOutcomes`] must equal the exhaustive one — outcome sets,
//! candidate/allowed counts and witness flag alike. Proptests extend
//! the battery to random corpus variants × random `.cat` programs, and
//! a gated oversized test demonstrates the capability the pruner
//! unlocks: a read-fan shape whose candidate space blows the exhaustive
//! budget but collapses by orders of magnitude under pruning.

use std::ops::ControlFlow;

use proptest::prelude::*;
use weakgpu_axiom::enumerate::{
    condition_witnessed_with, for_each_execution, for_each_execution_pruned,
    model_outcomes_counted, EnumConfig, EnumError, PruneStats,
};
use weakgpu_axiom::plan::EvalContext;
use weakgpu_axiom::{model_outcomes, CatModel, Model};
use weakgpu_diy::{generate, GenConfig};
use weakgpu_litmus::{corpus, corpus_extra, FenceScope, LitmusTest, ThreadScope};
use weakgpu_models::{all_models, native::NativePtxModel, ptx_model_without_llh};

fn pruning_cfg() -> EnumConfig {
    EnumConfig {
        pruning: true,
        ..EnumConfig::default()
    }
}

/// Asserts the headline property for one (test, model) pair and returns
/// the pruning counters for invariant checks on top.
fn assert_pruned_matches_exhaustive(
    test: &LitmusTest,
    model: &dyn Model,
    ctx: &mut EvalContext,
) -> PruneStats {
    let (exhaustive, ex_stats) = model_outcomes_counted(test, model, &EnumConfig::default(), ctx)
        .unwrap_or_else(|e| panic!("{}: {e}", test.name()));
    assert_eq!(
        ex_stats.classes_visited as usize,
        exhaustive.num_candidates,
        "{}: exhaustive stats must degenerate to the candidate count",
        test.name()
    );
    assert_eq!(ex_stats.candidates_pruned, 0, "{}", test.name());
    let (pruned, stats) = model_outcomes_counted(test, model, &pruning_cfg(), ctx)
        .unwrap_or_else(|e| panic!("{}: {e}", test.name()));
    assert_eq!(
        pruned,
        exhaustive,
        "{} under {}: pruned and exhaustive ModelOutcomes diverge",
        test.name(),
        model.name()
    );
    assert_eq!(
        stats.classes_visited + stats.candidates_pruned,
        exhaustive.num_candidates as u64,
        "{} under {}: classes and cuts must partition the candidate space",
        test.name(),
        model.name()
    );
    stats
}

fn test_suite() -> Vec<LitmusTest> {
    let mut tests = corpus::all();
    tests.extend([
        corpus::mp(ThreadScope::IntraCta, Some(FenceScope::Cta)),
        corpus::sb(ThreadScope::IntraCta, None),
        corpus::lb(ThreadScope::InterCta, Some(FenceScope::Cta)),
        corpus::mp_dep(ThreadScope::InterCta, FenceScope::Gl),
    ]);
    tests
}

#[test]
fn pruned_matches_exhaustive_for_every_builtin_model() {
    let mut ctx = EvalContext::new();
    for model in all_models() {
        for test in test_suite() {
            assert_pruned_matches_exhaustive(&test, &model, &mut ctx);
        }
    }
}

#[test]
fn pruned_matches_exhaustive_for_the_ablation_and_native_models() {
    let mut ctx = EvalContext::new();
    for test in test_suite() {
        assert_pruned_matches_exhaustive(&test, &ptx_model_without_llh(), &mut ctx);
        // The native model has no plan, so `partial_verdict` stays at
        // the trait default (`None`): the walk degrades to per-leaf
        // evaluation and must still agree bit for bit, with nothing cut.
        let stats = assert_pruned_matches_exhaustive(&test, &NativePtxModel::new(), &mut ctx);
        assert_eq!(stats.candidates_pruned, 0, "{}", test.name());
    }
}

#[test]
fn pruned_matches_exhaustive_over_the_small_family() {
    let family = generate(&GenConfig::small());
    assert!(!family.is_empty());
    let mut ctx = EvalContext::new();
    for model in all_models() {
        for test in &family {
            assert_pruned_matches_exhaustive(test, &model, &mut ctx);
        }
    }
}

#[test]
fn pruned_witness_query_matches_exhaustive() {
    let cfg = pruning_cfg();
    let mut ctx = EvalContext::new();
    for model in all_models() {
        for test in test_suite() {
            let full = model_outcomes(&test, &model, &EnumConfig::default()).unwrap();
            let fast = condition_witnessed_with(&test, &model, &cfg, &mut ctx).unwrap();
            assert_eq!(
                fast,
                full.condition_witnessed,
                "{} under {}",
                test.name(),
                Model::name(&model)
            );
        }
    }
}

/// The capability gate: `corr-fan-2w12r` spans over a million
/// candidates — beyond the default exhaustive budget — yet the pruned
/// walk visits a few tens of thousands of classes and finishes well
/// inside the CI budget, with the verdict a smaller sibling proves
/// bit-identical.
#[test]
fn oversized_fan_completes_only_under_pruning() {
    let test = corpus_extra::corr_fan(2, 12);
    let budget = EnumConfig {
        max_traces_per_thread: 1 << 13,
        max_executions: 100_000,
        ..EnumConfig::default()
    };
    // Exhaustively the shape blows the class budget …
    let err = for_each_execution(&test, &budget, |_| ControlFlow::<()>::Continue(()));
    assert_eq!(err.unwrap_err(), EnumError::TooManyExecutions);
    // … but pruning collapses it to a fraction of the budget.
    let model = weakgpu_models::sc_model();
    let pruned_budget = EnumConfig {
        pruning: true,
        ..budget
    };
    let mut ctx = EvalContext::new();
    let (outcomes, stats) =
        model_outcomes_counted(&test, &model, &pruned_budget, &mut ctx).unwrap();
    assert!(
        stats.classes_visited < 50_000,
        "expected a collapsed class count, got {}",
        stats.classes_visited
    );
    assert!(stats.candidates_pruned > 1_000_000);
    assert_eq!(
        stats.classes_visited + stats.candidates_pruned,
        outcomes.num_candidates as u64
    );
    // SC forbids the long-distance new-then-old coRR pattern.
    assert!(!outcomes.condition_witnessed);
    // The same shape at a size both arms can afford is bit-identical —
    // the oversized run is the same walk, only deeper.
    let sibling = corpus_extra::corr_fan(2, 7);
    assert_pruned_matches_exhaustive(&sibling, &model, &mut ctx);
}

#[test]
fn pruned_early_exit_stops_the_walk() {
    let model = weakgpu_models::sc_model();
    let test = corpus_extra::corr_fan(2, 5);
    let cfg = pruning_cfg();
    let mut ctx = EvalContext::new();
    let mut stats = PruneStats::default();
    let mut total = 0u64;
    for_each_execution_pruned(&test, &model, &cfg, &mut ctx, &mut stats, |_| {
        total += 1;
        ControlFlow::<()>::Continue(())
    })
    .unwrap();
    assert!(total > 3);
    for stop_at in [1u64, 2, total] {
        let mut stats = PruneStats::default();
        let mut visits = 0u64;
        let out = for_each_execution_pruned(&test, &model, &cfg, &mut ctx, &mut stats, |_| {
            visits += 1;
            if visits == stop_at {
                ControlFlow::Break(visits)
            } else {
                ControlFlow::Continue(())
            }
        })
        .unwrap();
        assert_eq!(out, Some(stop_at));
        assert_eq!(visits, stop_at, "the visitor ran past its break");
        assert_eq!(stats.classes_visited, stop_at);
    }
}

/// Random corpus variant: idiom × scope × fence (the `streaming.rs`
/// shape, shared so both batteries sample the same space).
fn arb_corpus_test() -> impl Strategy<Value = LitmusTest> {
    let scopes = [ThreadScope::IntraCta, ThreadScope::InterCta];
    let fences = [
        None,
        Some(FenceScope::Cta),
        Some(FenceScope::Gl),
        Some(FenceScope::Sys),
    ];
    (0..5usize, 0..2usize, 0..4usize).prop_map(move |(idiom, s, f)| {
        let (scope, fence) = (scopes[s], fences[f]);
        match idiom {
            0 => corpus::mp(scope, fence),
            1 => corpus::sb(scope, fence),
            2 => corpus::lb(scope, fence),
            3 => match fence {
                Some(fs) => corpus::corr_fenced(fs),
                None => corpus::corr(),
            },
            _ => corpus::dlb_mp(f % 2 == 0),
        }
    })
}

/// A random scoped `.cat` model over overlay- and skeleton-derived
/// bases alike — including a `Diff` axiom, the one non-monotone
/// operator of the interval evaluation.
fn arb_model() -> impl Strategy<Value = CatModel> {
    let axioms = [
        "acyclic (po | rf | co | fr) as sc",
        "acyclic (po-loc | rf | co | fr) as coherence",
        "irreflexive (fre ; coe ; rfi?) as obs",
        "acyclic ((addr | data | ctrl) | rfe | membar.gl) & cta as scoped",
        "empty rmw \\ rmw as trivial",
        "irreflexive ((rf | co) \\ po) ; fr as mixed",
    ];
    prop::collection::vec(0..axioms.len(), 1..3).prop_map(move |picks| {
        let src: Vec<&str> = picks.iter().map(|&i| axioms[i]).collect();
        // Duplicate axiom names are fine for `allows`; rename per line.
        let src = src
            .iter()
            .enumerate()
            .map(|(i, a)| a.replace(" as ", &format!(" as a{i}-")))
            .collect::<Vec<_>>()
            .join("\n");
        CatModel::new("random", &src).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The headline pruning property over random corpus variants and
    /// random models: the pruned `ModelOutcomes` is bit-identical to
    /// the exhaustive one and the counters partition the space.
    #[test]
    fn pruned_outcomes_match_exhaustive_on_random_pairs(
        test in arb_corpus_test(),
        model in arb_model(),
    ) {
        let mut ctx = EvalContext::new();
        assert_pruned_matches_exhaustive(&test, &model, &mut ctx);
    }

    /// The early-exit witness query agrees between the arms on random
    /// pairs too.
    #[test]
    fn pruned_witness_query_matches_on_random_pairs(
        test in arb_corpus_test(),
        model in arb_model(),
    ) {
        let mut ctx = EvalContext::new();
        let full = model_outcomes(&test, &model, &EnumConfig::default()).unwrap();
        let fast = condition_witnessed_with(&test, &model, &pruning_cfg(), &mut ctx).unwrap();
        prop_assert_eq!(fast, full.condition_witnessed);
    }
}
